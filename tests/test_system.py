"""System facade tests: wiring, processes, power cycling basics."""

import pytest

from repro.errors import InvalidArgumentError
from repro.fs.ext4 import Ext4Dax
from repro.fs.nova import Nova
from repro.system import System


def test_fs_type_selection():
    assert isinstance(System(device_bytes=1 << 30).fs, Ext4Dax)
    assert isinstance(System(device_bytes=1 << 30, fs_type="nova").fs,
                      Nova)
    with pytest.raises(InvalidArgumentError):
        System(device_bytes=1 << 30, fs_type="btrfs")


def test_device_frames_live_in_pmem_range():
    system = System(device_bytes=1 << 30)
    frame = system.device.frame_of(0)
    assert system.physmem.medium_of(frame).value == "pmem"


def test_processes_have_independent_address_spaces():
    system = System(device_bytes=1 << 30)
    a = system.new_process()
    b = system.new_process()
    assert a.mm is not b.mm
    assert a.mm.mmap_sem is not b.mm.mmap_sem
    assert a.name != b.name


def test_filetable_manager_is_shared_across_processes():
    system = System(device_bytes=1 << 30)
    a = system.new_process()
    b = system.new_process()
    dax_a = system.daxvm_for(a)
    dax_b = system.daxvm_for(b)
    assert dax_a.filetables is dax_b.filetables
    # But the per-process machinery is private.
    assert dax_a.ephemeral is not dax_b.ephemeral
    assert dax_a.unmapper is not dax_b.unmapper


def test_spawn_registers_core_in_cpumask():
    system = System(device_bytes=1 << 30)
    proc = system.new_process()

    def idle():
        from repro.sim.engine import Compute
        yield Compute(1)

    system.spawn(idle(), core=3, process=proc)
    system.run()
    assert 3 in proc.mm.active_cores


def test_seconds_conversion():
    system = System(device_bytes=1 << 30)
    assert system.seconds(2.7e9) == pytest.approx(1.0)


def test_shared_bandwidth_is_wired():
    system = System(device_bytes=1 << 30)
    assert system.mem.shared is not None
    assert system.fs.engine is system.engine


def test_power_cycle_resets_engine_and_caches():
    system = System(device_bytes=1 << 30)
    proc = system.new_process()

    def flow():
        from repro.sim.engine import Compute
        f = yield from system.fs.open("/x", create=True)
        yield from system.fs.write(f, 0, 4096)
        yield Compute(1000)

    system.spawn(flow(), core=0, process=proc)
    system.run()
    assert system.engine.now > 0
    old_engine = system.engine
    system.power_cycle()
    assert system.engine is not old_engine
    assert system.engine.now == 0.0
    assert len(system.vfs.inode_cache) == 0
    # Storage persisted.
    assert "/x" in system.vfs
    assert system.vfs.lookup("/x").block_count == 1


def test_power_cycle_without_filetables_returns_none():
    system = System(device_bytes=1 << 30)
    assert system.power_cycle() is None
