"""Workload smoke/semantics tests (small scales; shapes live in
benchmarks/)."""

import pytest

from repro.paging.tlb import AccessPattern
from repro.system import System
from repro.workloads import (
    ApacheConfig,
    AppendConfig,
    AppendVariant,
    DaxVMOptions,
    EphemeralConfig,
    Interface,
    KVConfig,
    PRedisConfig,
    RepetitiveConfig,
    ServerInterface,
    SyncConfig,
    SyncDiscipline,
    TextSearchConfig,
    YCSBConfig,
    create_file_set,
    linux_tree_sizes,
    run_apache,
    run_append,
    run_ephemeral,
    run_predis,
    run_repetitive,
    run_sync,
    run_textsearch,
    run_ycsb,
)


def small_system(aged=False, fs_type="ext4"):
    return System(device_bytes=1 << 30, aged=aged, fs_type=fs_type)


# ---------------------------------------------------------------------------
# filegen.
# ---------------------------------------------------------------------------
def test_create_file_set_builds_real_files():
    system = small_system()
    inodes = create_file_set(system, 10, 32 << 10)
    assert len(inodes) == 10
    assert all(i.size == 32 << 10 for i in inodes)
    assert all(i.block_count == 8 for i in inodes)


def test_linux_tree_sizes_scaled():
    sizes = linux_tree_sizes(500, total_bytes=32 << 20)
    assert sum(sizes) == pytest.approx(32 << 20, rel=0.1)
    assert max(sizes) > 20 * (sum(sizes) / len(sizes))  # heavy tail


# ---------------------------------------------------------------------------
# Ephemeral / repetitive microbenchmarks.
# ---------------------------------------------------------------------------
@pytest.mark.parametrize("interface", list(Interface))
def test_ephemeral_all_interfaces_run(interface):
    system = small_system()
    cfg = EphemeralConfig(file_size=16 << 10, num_files=20,
                          interface=interface)
    result = run_ephemeral(system, cfg)
    assert result.operations == 20
    assert result.cycles > 0
    assert result.mb_per_second > 0


def test_ephemeral_multithreaded_completes_all_files():
    system = small_system()
    cfg = EphemeralConfig(file_size=16 << 10, num_files=23,
                          num_threads=4, interface=Interface.READ)
    result = run_ephemeral(system, cfg)
    assert result.counters.get("vfs.cold_opens") == 23


@pytest.mark.parametrize("interface", [Interface.READ, Interface.MMAP,
                                       Interface.DAXVM])
def test_repetitive_runs(interface):
    system = small_system()
    cfg = RepetitiveConfig(file_size=8 << 20, op_size=4096, num_ops=500,
                           interface=interface,
                           pattern=AccessPattern.RANDOM)
    result = run_repetitive(system, cfg)
    assert result.operations == 500


def test_repetitive_write_tracks_dirty_pages():
    system = small_system()
    cfg = RepetitiveConfig(file_size=4 << 20, op_size=4096, num_ops=200,
                           interface=Interface.MMAP, write=True)
    result = run_repetitive(system, cfg)
    assert result.counters.get("vm.dirty_faults", 0) > 0


# ---------------------------------------------------------------------------
# Sync / append.
# ---------------------------------------------------------------------------
@pytest.mark.parametrize("discipline", list(SyncDiscipline))
def test_sync_disciplines_run(discipline):
    system = small_system()
    cfg = SyncConfig(file_size=16 << 20, op_size=1024, ops_per_sync=8,
                     num_syncs=10, discipline=discipline)
    result = run_sync(system, cfg)
    assert result.operations == 80


def test_daxvm_nosync_discipline_msyncs_are_noops():
    system = small_system()
    cfg = SyncConfig(file_size=16 << 20, op_size=1024, ops_per_sync=8,
                     num_syncs=5, discipline=SyncDiscipline.DAXVM_NOSYNC)
    result = run_sync(system, cfg)
    assert result.counters.get("vm.msync_noop") == 5
    assert "vm.msync_calls" not in result.counters


@pytest.mark.parametrize("variant", list(AppendVariant))
def test_append_variants_run(variant):
    system = small_system()
    cfg = AppendConfig(append_size=64 << 10, num_appends=5,
                       variant=variant)
    result = run_append(system, cfg)
    assert result.operations == 5


def test_append_prezero_removes_zeroing():
    base = run_append(small_system(),
                      AppendConfig(append_size=256 << 10, num_appends=5,
                                   variant=AppendVariant.DAXVM))
    prez = run_append(small_system(),
                      AppendConfig(append_size=256 << 10, num_appends=5,
                                   variant=AppendVariant.DAXVM_PREZERO))
    assert base.counters.get("fs.blocks_zeroed_sync", 0) > 0
    assert prez.counters.get("fs.blocks_zeroed_sync", 0) == 0
    assert prez.ops_per_second > base.ops_per_second


# ---------------------------------------------------------------------------
# Applications.
# ---------------------------------------------------------------------------
@pytest.mark.parametrize("interface", list(ServerInterface))
def test_apache_interfaces_run(interface):
    system = small_system()
    cfg = ApacheConfig(num_pages=8, num_workers=2, requests=40,
                       interface=interface)
    result = run_apache(system, cfg)
    assert result.operations == 40


def test_apache_multiprocess_uses_separate_address_spaces():
    system = small_system()
    cfg = ApacheConfig(num_pages=8, num_workers=3, requests=30,
                       interface=ServerInterface.MMAP, multiprocess=True)
    result = run_apache(system, cfg)
    assert result.operations == 30
    assert result.counters.get("vm.mmap_calls") == 30


def test_textsearch_runs_and_covers_all_files():
    system = small_system()
    cfg = TextSearchConfig(num_files=40, total_bytes=4 << 20,
                           num_threads=3, interface=Interface.DAXVM)
    result = run_textsearch(system, cfg)
    assert result.operations >= 40


def test_predis_timeline_and_boot():
    system = small_system()
    cfg = PRedisConfig(cache_size=64 << 20, index_size=4 << 20,
                       num_gets=4000, window=1000,
                       interface=Interface.MMAP_POPULATE)
    result = run_predis(system, cfg)
    assert result.boot_seconds > 0  # populate pays at boot
    assert len(result.timeline.points) == 4
    assert all(v > 0 for _t, v in result.timeline.points)


def test_predis_lazy_ramp_up():
    system = small_system()
    cfg = PRedisConfig(cache_size=64 << 20, index_size=4 << 20,
                       num_gets=6000, window=1000,
                       interface=Interface.MMAP)
    result = run_predis(system, cfg)
    first = result.timeline.points[0][1]
    last = result.timeline.points[-1][1]
    assert last > first  # warm-up: throughput climbs


# ---------------------------------------------------------------------------
# KV store / YCSB.
# ---------------------------------------------------------------------------
def test_kvstore_flushes_and_rolls():
    system = small_system()
    cfg = YCSBConfig(workload="load_a", num_ops=3000, preload_records=0,
                     kv=KVConfig(memtable_limit=1 << 20,
                                 wal_size=1 << 20,
                                 sstable_size=1 << 20))
    result = run_ycsb(system, cfg)
    assert result.operations == 3000


def test_ycsb_unknown_workload_rejected():
    with pytest.raises(ValueError):
        run_ycsb(small_system(), YCSBConfig(workload="run_z"))


@pytest.mark.parametrize("workload", ["run_a", "run_c", "run_e", "run_f"])
def test_ycsb_run_phases(workload):
    system = small_system()
    cfg = YCSBConfig(workload=workload, num_ops=800, preload_records=800,
                     kv=KVConfig(memtable_limit=1 << 20,
                                 wal_size=1 << 20,
                                 sstable_size=1 << 20))
    result = run_ycsb(system, cfg)
    assert result.operations == 800
    assert result.ops_per_second > 0


def test_ycsb_daxvm_takes_fewer_sync_commits_than_mmap():
    def commits(iface, opts=None):
        system = System(device_bytes=2 << 30, aged=True)
        kv = KVConfig(interface=iface, memtable_limit=1 << 20,
                      wal_size=1 << 20, sstable_size=1 << 20)
        if opts:
            kv.daxvm = opts
        cfg = YCSBConfig(workload="load_a", num_ops=2000,
                         preload_records=0, kv=kv)
        result = run_ycsb(system, cfg)
        return result.counters.get("journal.sync_commits", 0)

    mmap_commits = commits(Interface.MMAP)
    dax_commits = commits(Interface.DAXVM,
                          DaxVMOptions(ephemeral=False,
                                       unmap_async=False))
    assert mmap_commits > dax_commits * 4  # "10x less" in the paper
