"""xfs-DAX behaviour tests (between ext4's and NOVA's disciplines)."""

import pytest

from repro.system import System
from repro.workloads import AppendConfig, AppendVariant, run_append


@pytest.fixture
def xfs_system():
    return System(device_bytes=1 << 30, fs_type="xfs")


def run(system, gen):
    thread = system.spawn(gen, core=0)
    system.run()
    return thread.result


def test_xfs_selectable(xfs_system):
    assert xfs_system.fs.name == "xfs-dax"


def test_xfs_skips_zeroing_on_write_path(xfs_system):
    def flow():
        f = yield from xfs_system.fs.open("/x", create=True)
        yield from xfs_system.fs.write(f, 0, 1 << 20)

    run(xfs_system, flow())
    assert xfs_system.stats.get("fs.blocks_zeroed_sync") == 0


def test_xfs_zeroes_on_fallocate(xfs_system):
    def flow():
        f = yield from xfs_system.fs.open("/x", create=True)
        yield from xfs_system.fs.fallocate(f, 1 << 20)

    run(xfs_system, flow())
    assert xfs_system.stats.get("fs.blocks_zeroed_sync") == 256


def test_xfs_mapsync_fault_commits_journal(xfs_system):
    def flow():
        yield from xfs_system.fs.mapsync_fault()

    t0 = xfs_system.engine.now
    run(xfs_system, flow())
    assert xfs_system.engine.now - t0 >= xfs_system.costs.journal_commit


def test_xfs_appends_sit_between_ext4_and_nova():
    """write() appends: ext4 zeroes (slow), xfs/NOVA do not; so the
    mmap-vs-write gap on xfs resembles NOVA's, while MAP_SYNC costs
    resemble ext4's."""

    def write_throughput(fs_type):
        system = System(device_bytes=2 << 30, fs_type=fs_type)
        cfg = AppendConfig(append_size=512 << 10, num_appends=20,
                           variant=AppendVariant.WRITE)
        return run_append(system, cfg).mb_per_second

    ext4 = write_throughput("ext4")
    xfs = write_throughput("xfs")
    nova = write_throughput("nova")
    assert xfs > 1.3 * ext4       # no conservative zeroing
    assert abs(xfs - nova) / nova < 0.5  # same write-path discipline


def test_daxvm_prezero_closes_xfs_mmap_gap():
    def tput(variant):
        system = System(device_bytes=2 << 30, fs_type="xfs")
        cfg = AppendConfig(append_size=512 << 10, num_appends=20,
                           variant=variant)
        return run_append(system, cfg).mb_per_second

    mmap = tput(AppendVariant.MMAP)
    write = tput(AppendVariant.WRITE)
    dax = tput(AppendVariant.DAXVM_PREZERO_NOSYNC)
    assert mmap < write            # MM appends pay fallocate zeroing
    assert dax > mmap              # pre-zeroing removes it
