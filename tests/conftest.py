"""Shared fixtures for the test suite."""

import pytest

from repro.config import DEFAULT_COSTS
from repro.mem.latency import MemoryModel
from repro.mem.physmem import PhysicalMemory
from repro.sim.engine import Engine
from repro.sim.stats import Stats
from repro.system import System


@pytest.fixture
def engine():
    return Engine(num_cores=4)


@pytest.fixture
def costs():
    return DEFAULT_COSTS


@pytest.fixture
def stats():
    return Stats()


@pytest.fixture
def physmem():
    return PhysicalMemory(dram_bytes=1 << 30, pmem_bytes=4 << 30)


@pytest.fixture
def memmodel():
    return MemoryModel(DEFAULT_COSTS)


@pytest.fixture
def system():
    """A small fresh-image ext4 system."""
    return System(device_bytes=1 << 30)


@pytest.fixture
def aged_system():
    return System(device_bytes=2 << 30, aged=True)


@pytest.fixture
def nova_system():
    return System(device_bytes=1 << 30, fs_type="nova")


def run_gen(engine, gen, core=0):
    """Helper: spawn one generator and run to completion."""
    thread = engine.spawn(gen, core=core)
    engine.run()
    return thread.result
