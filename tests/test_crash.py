"""Crash-point exploration: every enumerated point must recover.

The property the subsystem exists to check: for each crash workload,
crash the machine at any persistence-state transition, reboot, replay,
and find **zero** invariant violations — no acked msync/fsync data
lost, no torn extent trees, bitmaps consistent, tables rebuildable.
The second half checks the checker itself: an intentionally injected
ordering bug (acknowledging journal commits without fencing the commit
record) must be *caught*.
"""

import pytest

from repro.crash import (
    CrashInjector,
    CrashTriggered,
    PersistenceDomain,
    StoreState,
    run_crash,
)
from repro.system import System


def factory():
    return System(device_bytes=1 << 30)


# ---------------------------------------------------------------------------
# The recovery property, over both workloads and several seeds.
# ---------------------------------------------------------------------------
@pytest.mark.parametrize("workload", ["syncbench", "kvstore"])
@pytest.mark.parametrize("seed", [0, 1])
def test_every_explored_crash_point_recovers_cleanly(workload, seed):
    summary = run_crash(factory, workload, seed=seed, max_points=8)
    assert summary.total_transitions >= 100
    assert summary.points_explored == 8
    assert summary.violations == []
    for outcome in summary.outcomes:
        assert outcome.ok
        assert outcome.recovery_cycles >= 0


def test_syncbench_crashes_actually_lose_undurable_state():
    """The sweep is only meaningful if crashes discard something."""
    summary = run_crash(factory, "syncbench", seed=0, max_points=10)
    state = summary.to_state()
    assert state["lost_records"] > 0
    assert state["rolled_back_txns"] > 0
    assert state["invariant_violations"] == 0


# ---------------------------------------------------------------------------
# Determinism: same seed, same machine, same outcome — golden-file-able.
# ---------------------------------------------------------------------------
def test_probe_and_point_selection_are_deterministic():
    a = CrashInjector(factory, "syncbench", seed=3, max_points=6)
    b = CrashInjector(factory, "syncbench", seed=3, max_points=6)
    ta, tb = a.probe(), b.probe()
    assert ta == tb
    assert a.select_points(ta) == b.select_points(tb)


def test_crash_sweep_is_replica_deterministic():
    a = run_crash(factory, "kvstore", seed=2, max_points=5)
    b = run_crash(factory, "kvstore", seed=2, max_points=5)
    assert a.to_state() == b.to_state()
    assert a.outcomes == b.outcomes


# ---------------------------------------------------------------------------
# The bug fixture: the checker must catch a broken fence discipline.
# ---------------------------------------------------------------------------
def test_skipped_commit_fence_is_caught_by_checker():
    broken = CrashInjector(factory, "syncbench", seed=0, max_points=4,
                           break_commit_fence=True)
    total = broken.probe()
    outcome = broken.run_point(total - 1)
    assert not outcome.ok
    assert any("acked" in v and "lost" in v for v in outcome.violations)

    clean = CrashInjector(factory, "syncbench", seed=0, max_points=4)
    good = clean.run_point(clean.probe() - 1)
    assert good.ok


# ---------------------------------------------------------------------------
# Domain unit behaviour backing the property above.
# ---------------------------------------------------------------------------
class _NoLuck:
    """rng stub: unfenced flushes never drain."""

    def random(self):
        return 1.0


class _AllLuck:
    def random(self):
        return 0.0


def test_domain_three_state_lifecycle():
    domain = PersistenceDomain()
    rec = domain.data_store(1, 4096)
    assert rec.state is StoreState.VOLATILE
    domain.flush(rec)
    assert rec.state is StoreState.FLUSHED
    domain.fence()
    assert rec.state is StoreState.DURABLE
    state = domain.apply_crash(_NoLuck())
    assert rec.survived and not rec.lost
    assert state.lost_records == 0


def test_unfenced_flush_survival_is_coin_flipped():
    lucky = PersistenceDomain()
    lucky.data_store(1, 4096, nt=True)  # flushed, never fenced
    assert lucky.apply_crash(_AllLuck()).lost_records == 0

    unlucky = PersistenceDomain()
    unlucky.data_store(1, 4096, nt=True)
    assert unlucky.apply_crash(_NoLuck()).lost_records == 1


def test_acked_data_loss_is_a_violation():
    domain = PersistenceDomain()
    domain.data_store(1, 4096, nt=True)
    domain.sync_data(1, domain.cursor())  # fence + ack
    domain.records[0].state = StoreState.FLUSHED  # simulate bad fence
    state = domain.apply_crash(_NoLuck())
    assert state.acked_lost == 1
    assert state.violations


def test_uncommitted_metadata_is_undone_in_reverse_order():
    undone = []
    domain = PersistenceDomain()
    domain.meta_store("a", 1, 64, undo=lambda: undone.append("a"))
    domain.meta_store("b", 1, 64, undo=lambda: undone.append("b"))
    state = domain.apply_crash(_NoLuck())
    assert undone == ["b", "a"]
    assert state.rolled_back_txns == 1


def test_committed_transaction_survives_and_runs_deferred_frees():
    freed = []
    domain = PersistenceDomain()
    domain.meta_store("trunc", 1, 64,
                      on_durable=lambda: freed.append("blocks"))
    domain.commit_metadata(acked=True)
    assert freed == ["blocks"]  # the commit fence ran the deferral
    state = domain.apply_crash(_NoLuck())
    assert state.lost_records == 0
    assert not domain.records[0].lost


def test_armed_domain_raises_at_its_transition():
    domain = PersistenceDomain(crash_at=1)
    domain.data_store(1, 4096)  # transition 0
    with pytest.raises(CrashTriggered):
        domain.data_store(1, 4096)  # transition 1: boom
    # The crashing store was never recorded (power died mid-store).
    assert len(domain.records) == 1


def test_journal_replay_stops_at_first_torn_commit():
    """A surviving commit *after* a torn one is still rolled back —
    journal replay is a sequential scan."""
    undone = []
    domain = PersistenceDomain()
    domain.meta_store("t1", 1, 64, undo=lambda: undone.append("t1"))
    domain.commit_metadata(acked=False)
    domain.meta_store("t2", 1, 64, undo=lambda: undone.append("t2"))
    domain.commit_metadata(acked=False)
    # Tear the first commit record; leave the second durable.
    first_commit = next(r for r in domain.records if r.kind == "commit")
    first_commit.state = StoreState.FLUSHED
    state = domain.apply_crash(_NoLuck())
    assert undone == ["t2", "t1"]
    assert state.rolled_back_txns == 2
