"""VFS tests: namespace, inode cache LRU and lifecycle hooks."""

import pytest

from repro.errors import (
    BadFileDescriptorError,
    FileExistsError_,
    NoSuchFileError,
)
from repro.fs.vfs import VFS, DaxFile, Inode, InodeCache


def test_namespace_create_lookup_remove():
    vfs = VFS()
    inode = vfs.create("/a")
    assert vfs.lookup("/a") is inode
    assert "/a" in vfs
    with pytest.raises(FileExistsError_):
        vfs.create("/a")
    vfs.remove("/a")
    with pytest.raises(NoSuchFileError):
        vfs.lookup("/a")
    with pytest.raises(NoSuchFileError):
        vfs.remove("/a")


def test_paths_sorted():
    vfs = VFS()
    for p in ("/c", "/a", "/b"):
        vfs.create(p)
    assert vfs.paths() == ["/a", "/b", "/c"]
    assert len(vfs) == 3


def test_inode_numbers_unique():
    a, b = Inode("/x"), Inode("/y")
    assert a.number != b.number


def test_cache_hit_miss_and_lru_eviction():
    cache = InodeCache(capacity=2)
    inodes = [Inode(f"/f{i}") for i in range(3)]
    hit, _ = cache.lookup(inodes[0])
    assert not hit
    hit, _ = cache.lookup(inodes[0])
    assert hit
    cache.lookup(inodes[1])
    cache.lookup(inodes[2])  # evicts inodes[0] (LRU)
    assert inodes[0] not in cache
    assert inodes[1] in cache
    assert cache.hits == 1
    assert cache.misses == 3


def test_cache_hooks_fire_and_charge():
    cache = InodeCache(capacity=1)
    events = []
    cache.load_hooks.append(lambda i: events.append(("load", i.path)) or 42.0)
    cache.evict_hooks.append(lambda i: events.append(("evict", i.path)))
    a, b = Inode("/a"), Inode("/b")
    _hit, cycles = cache.lookup(a)
    assert cycles == 42.0
    cache.lookup(b)
    assert ("load", "/a") in events
    assert ("evict", "/a") in events


def test_evict_all():
    cache = InodeCache()
    evicted = []
    cache.evict_hooks.append(lambda i: evicted.append(i.path))
    for i in range(3):
        cache.lookup(Inode(f"/f{i}"))
    cache.evict_all()
    assert len(cache) == 0
    assert len(evicted) == 3


def test_closed_fd_rejected():
    f = DaxFile(Inode("/x"), None)
    f.closed = True
    with pytest.raises(BadFileDescriptorError):
        f._check_open()
