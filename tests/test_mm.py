"""MMStruct tests: mmap/munmap, demand paging, dirty tracking, msync."""

import pytest

from repro.errors import NotSupportedError
from repro.paging.tlb import AccessPattern
from repro.vm.vma import MapFlags, Protection

PAGE = 4096


def run(system, gen):
    thread = system.spawn(gen, core=0)
    system.run()
    return thread.result


def make_file(system, size, path="/f"):
    def flow():
        f = yield from system.fs.open(path, create=True)
        yield from system.fs.write(f, 0, size)
        return f

    return run(system, flow())


def test_mmap_inserts_vma_and_munmap_removes(system):
    f = make_file(system, 64 * PAGE)
    proc = system.new_process()

    def flow():
        vma = yield from proc.mm.mmap(system.fs, f.inode, 0, 64 * PAGE,
                                      Protection.READ, MapFlags.SHARED)
        assert proc.mm.find_vma(vma.start) is vma
        assert vma in f.inode.i_mmap
        yield from proc.mm.munmap(vma)
        assert proc.mm.find_vma(vma.start) is None
        assert vma not in f.inode.i_mmap

    run(system, flow())
    assert system.stats.get("vm.mmap_calls") == 1
    assert system.stats.get("vm.munmap_calls") == 1


def test_demand_faults_install_translations_once(system):
    f = make_file(system, 8 * PAGE)
    proc = system.new_process()

    def flow():
        vma = yield from proc.mm.mmap(system.fs, f.inode, 0, 8 * PAGE,
                                      Protection.READ, MapFlags.SHARED)
        yield from proc.mm.access(vma, 0, 8 * PAGE)
        first = system.stats.get("vm.faults")
        yield from proc.mm.access(vma, 0, 8 * PAGE)
        return first, system.stats.get("vm.faults")

    first, second = run(system, flow())
    assert first == 8
    assert second == 8  # warm accesses take no faults


def test_populate_prefaults(system):
    f = make_file(system, 8 * PAGE)
    proc = system.new_process()

    def flow():
        vma = yield from proc.mm.mmap(
            system.fs, f.inode, 0, 8 * PAGE, Protection.READ,
            MapFlags.SHARED | MapFlags.POPULATE)
        before = system.stats.get("vm.faults")
        yield from proc.mm.access(vma, 0, 8 * PAGE)
        return before, system.stats.get("vm.faults")

    before, after = run(system, flow())
    assert before == after == 0  # populate is not a fault


def test_huge_page_mapping_on_fresh_image(system):
    f = make_file(system, 4 << 20)
    proc = system.new_process()

    def flow():
        vma = yield from proc.mm.mmap(system.fs, f.inode, 0, 4 << 20,
                                      Protection.READ, MapFlags.SHARED)
        yield from proc.mm.access(vma, 0, 4 << 20)
        return vma

    vma = run(system, flow())
    assert len(vma.huge_regions) == 2
    assert system.stats.get("vm.huge_faults") == 2
    assert system.stats.get("vm.pte_faults") == 0


def test_huge_disabled_falls_back_to_ptes(system):
    system.fs.allow_huge = False
    f = make_file(system, 2 << 20)
    proc = system.new_process()

    def flow():
        vma = yield from proc.mm.mmap(system.fs, f.inode, 0, 2 << 20,
                                      Protection.READ, MapFlags.SHARED)
        yield from proc.mm.access(vma, 0, 2 << 20)
        return vma

    vma = run(system, flow())
    assert not vma.huge_regions
    assert len(vma.populated) == 512


def test_write_tracking_takes_permission_faults(system):
    f = make_file(system, 8 * PAGE)
    proc = system.new_process()

    def flow():
        vma = yield from proc.mm.mmap(system.fs, f.inode, 0, 8 * PAGE,
                                      Protection.rw(), MapFlags.SHARED)
        yield from proc.mm.access(vma, 0, 4 * PAGE, write=True)
        return vma

    vma = run(system, flow())
    assert system.stats.get("vm.dirty_faults") == 4
    assert proc.mm.page_cache.dirty_count(f.inode) == 4
    assert len(vma.writable) == 4


def test_mapsync_write_fault_commits_journal(system):
    f = make_file(system, 4 * PAGE)
    proc = system.new_process()

    def flow():
        vma = yield from proc.mm.mmap(
            system.fs, f.inode, 0, 4 * PAGE, Protection.rw(),
            MapFlags.SHARED | MapFlags.SYNC)
        yield from proc.mm.access(vma, 0, 2 * PAGE, write=True)

    run(system, flow())
    assert system.stats.get("journal.sync_commits") == 2


def test_msync_flushes_and_restarts_tracking(system):
    f = make_file(system, 8 * PAGE)
    proc = system.new_process()

    def flow():
        vma = yield from proc.mm.mmap(system.fs, f.inode, 0, 8 * PAGE,
                                      Protection.rw(), MapFlags.SHARED)
        yield from proc.mm.access(vma, 0, 4 * PAGE, write=True)
        faults1 = system.stats.get("vm.dirty_faults")
        yield from proc.mm.msync(vma)
        yield from proc.mm.access(vma, 0, 4 * PAGE, write=True)
        return faults1, system.stats.get("vm.dirty_faults")

    faults1, faults2 = run(system, flow())
    assert faults1 == 4
    assert faults2 == 8  # re-protected after msync: faults repeat
    assert system.stats.get("vm.msync_flushed") == 4
    assert proc.mm.page_cache.dirty_count(f.inode) == 4


def test_msync_fault_blowup_matches_paper_section3(system):
    """§III-A4: 1 msync / 10 writes => ~2.8x more faults than no sync."""
    f = make_file(system, 4 << 20, path="/blow")
    proc = system.new_process()

    def flow(sync_every):
        vma = yield from proc.mm.mmap(system.fs, f.inode, 0, 4 << 20,
                                      Protection.rw(), MapFlags.SHARED)
        before = system.stats.get("vm.faults")
        # 1 KB writes revisiting a 40-page working set, as the random
        # writes over the paper's 10 GB file revisit pages over time.
        for i in range(200):
            offset = (i * 7 * PAGE) % (40 * PAGE)
            yield from proc.mm.access(vma, offset, 1024, write=True)
            if sync_every and (i + 1) % sync_every == 0:
                yield from proc.mm.msync(vma)
        count = system.stats.get("vm.faults") - before
        yield from proc.mm.munmap(vma)
        return count

    system.fs.allow_huge = False
    no_sync = run(system, flow(0))
    with_sync = run(system, flow(10))
    assert with_sync / no_sync > 1.5


def test_nosync_mapping_takes_no_tracking_faults(system):
    f = make_file(system, 8 * PAGE)
    proc = system.new_process()

    def flow():
        vma = yield from proc.mm.mmap(
            system.fs, f.inode, 0, 8 * PAGE, Protection.rw(),
            MapFlags.SHARED | MapFlags.SYNC | MapFlags.NO_MSYNC)
        yield from proc.mm.access(vma, 0, 8 * PAGE, write=True)
        yield from proc.mm.msync(vma)

    run(system, flow())
    assert system.stats.get("vm.dirty_faults") == 0
    assert system.stats.get("vm.msync_noop") == 1


def test_munmap_triggers_shootdown_on_other_cores(system):
    f = make_file(system, 8 * PAGE)
    proc = system.new_process()
    proc.mm.register_thread(0)
    proc.mm.register_thread(1)

    def flow():
        vma = yield from proc.mm.mmap(system.fs, f.inode, 0, 8 * PAGE,
                                      Protection.READ, MapFlags.SHARED)
        yield from proc.mm.access(vma, 0, 8 * PAGE)
        yield from proc.mm.munmap(vma)

    run(system, flow())
    assert system.stats.get("tlb.shootdowns") >= 1
    assert system.stats.get("tlb.ipis") >= 1


def test_mprotect_full_range(system):
    f = make_file(system, 8 * PAGE)
    proc = system.new_process()

    def flow():
        vma = yield from proc.mm.mmap(system.fs, f.inode, 0, 8 * PAGE,
                                      Protection.rw(), MapFlags.SHARED)
        yield from proc.mm.access(vma, 0, 8 * PAGE)
        yield from proc.mm.mprotect(vma, 0, 8 * PAGE, Protection.READ)
        return vma

    vma = run(system, flow())
    assert vma.prot == Protection.READ
    assert not proc.mm.page_table.translate(vma.start).flags.writable


def test_mprotect_rejected_on_ephemeral(system):
    f = make_file(system, 8 * PAGE)
    proc = system.new_process()

    def flow():
        vma = yield from proc.mm.mmap(
            system.fs, f.inode, 0, 8 * PAGE, Protection.rw(),
            MapFlags.SHARED | MapFlags.EPHEMERAL)
        yield from proc.mm.mprotect(vma, 0, 8 * PAGE, Protection.READ)

    with pytest.raises(NotSupportedError):
        run(system, flow())


def test_mremap_shrink(system):
    f = make_file(system, 16 * PAGE)
    proc = system.new_process()

    def flow():
        vma = yield from proc.mm.mmap(system.fs, f.inode, 0, 16 * PAGE,
                                      Protection.READ, MapFlags.SHARED)
        yield from proc.mm.access(vma, 0, 16 * PAGE)
        yield from proc.mm.mremap(vma, 8 * PAGE)
        return vma

    vma = run(system, flow())
    assert vma.length == 8 * PAGE
    assert max(vma.populated) < 8


def test_random_access_charges_more_tlb_than_sequential(system):
    f = make_file(system, 8 << 20, path="/tlb")
    system.fs.allow_huge = False
    proc = system.new_process()

    def flow(pattern):
        vma = yield from proc.mm.mmap(
            system.fs, f.inode, 0, 8 << 20, Protection.READ,
            MapFlags.SHARED | MapFlags.POPULATE)
        before = system.stats.get("vm.walk_cycles")
        yield from proc.mm.access(vma, 0, 4096, pattern=pattern,
                                  ops=500)
        cost = system.stats.get("vm.walk_cycles") - before
        yield from proc.mm.munmap(vma)
        return cost

    seq = run(system, flow(AccessPattern.SEQUENTIAL))
    rand = run(system, flow(AccessPattern.RANDOM))
    assert rand > seq
