"""The 1-node equivalence gate of the topology refactor.

DESIGN.md §8 promises that a default (1-node) machine reproduces the
pre-topology simulator bit for bit.  The golden file was captured on
the commit *before* the refactor; this test replays the same two fixed
configurations and compares the complete observable state — cycles,
counters, ledger attribution, histograms — byte for byte.

If this fails, the refactor leaked a NUMA factor into the uniform
path.  Recapture (``python -m repro.analysis.goldens``) only when a PR
intentionally changes simulated numbers, and say so in the PR.
"""

import json

from repro.analysis.goldens import GOLDEN_PATH, golden_json


def test_default_machine_reproduces_pre_topology_numbers_bitwise():
    assert GOLDEN_PATH.exists(), (
        "golden file missing; capture it on a known-good commit with "
        "`python -m repro.analysis.goldens`")
    current = golden_json()
    golden = GOLDEN_PATH.read_text()
    if current != golden:  # pragma: no cover - failure diagnostics
        cur, ref = json.loads(current), json.loads(golden)
        for name in ref:
            for field in ("cycles", "counters", "domains"):
                assert cur[name][field] == ref[name][field], (
                    f"{name}.{field} drifted from the pre-topology "
                    f"golden run")
    assert current == golden
