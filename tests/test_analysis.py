"""Result containers and report rendering."""

import pytest

from repro.analysis.results import RunResult, Series, Table
from repro.analysis.report import format_series, format_table, render_bars


def make_result(label="x", cycles=2.7e9, ops=1000, nbytes=1 << 20):
    return RunResult(label=label, cycles=cycles, operations=ops,
                     bytes_processed=nbytes)


def test_runresult_derived_metrics():
    r = make_result()
    assert r.seconds == pytest.approx(1.0)
    assert r.ops_per_second == pytest.approx(1000.0)
    assert r.mb_per_second == pytest.approx(1.0)
    assert r.latency_us == pytest.approx(1000.0)


def test_runresult_speedup():
    fast = make_result(cycles=1e9)
    slow = make_result(cycles=2e9)
    assert fast.speedup_over(slow) == pytest.approx(2.0)
    empty = RunResult("z", 0.0, 0.0)
    assert empty.ops_per_second == 0.0
    assert fast.speedup_over(empty) == 0.0


def test_series_operations():
    s = Series("daxvm")
    base = Series("read")
    for x, y in [(1, 10.0), (2, 20.0)]:
        s.add(x, y * 2)
        base.add(x, y)
    assert s.xs() == [1, 2]
    assert s.y_at(2) == 40.0
    assert s.y_at(99) is None
    rel = s.relative_to(base)
    assert rel.ys() == [2.0, 2.0]


def test_table_row_validation():
    t = Table("T", ["a", "b"])
    t.add_row(1, 2)
    with pytest.raises(ValueError):
        t.add_row(1)


def test_format_table_aligns():
    t = Table("Demo", ["name", "value"])
    t.add_row("alpha", 1.2345)
    t.add_row("b", 100)
    text = format_table(t)
    assert "Demo" in text
    assert "alpha" in text
    assert "1.23" in text  # 3 sig figs


def test_format_series_merges_xs():
    a = Series("a")
    a.add(1, 1.0)
    b = Series("b")
    b.add(2, 2.0)
    text = format_series("Fig", [a, b], x_label="cores")
    assert "cores" in text
    assert "-" in text  # missing points rendered as dashes


def test_render_bars():
    text = render_bars("Bars", ["x", "longer"], [1.0, 2.0])
    assert text.count("#") > 0
    assert "longer" in text
    assert render_bars("E", [], []) == "E"
