"""File system tests: syscall paths, zeroing policies, ext4 vs NOVA."""

import pytest

from repro.errors import InvalidArgumentError, NoSuchFileError


def run(system, gen):
    thread = system.spawn(gen, core=0)
    system.run()
    return thread.result


def test_open_create_write_read_close(system):
    def flow():
        f = yield from system.fs.open("/x", create=True)
        n = yield from system.fs.write(f, 0, 10_000)
        assert n == 10_000
        got = yield from system.fs.read(f, 0, 10_000)
        yield from system.fs.close(f)
        return got

    assert run(system, flow()) == 10_000
    inode = system.vfs.lookup("/x")
    assert inode.size == 10_000
    assert inode.block_count == 3  # rounded up to blocks


def test_read_clamps_to_eof(system):
    def flow():
        f = yield from system.fs.open("/x", create=True)
        yield from system.fs.write(f, 0, 1000)
        got = yield from system.fs.read(f, 500, 10_000)
        return got

    assert run(system, flow()) == 500


def test_open_missing_file_raises(system):
    def flow():
        yield from system.fs.open("/nope")

    with pytest.raises(NoSuchFileError):
        run(system, flow())


def test_write_zero_bytes_rejected(system):
    def flow():
        f = yield from system.fs.open("/x", create=True)
        yield from system.fs.write(f, 0, 0)

    with pytest.raises(InvalidArgumentError):
        run(system, flow())


def test_fallocate_reserves_without_size_growth_beyond(system):
    def flow():
        f = yield from system.fs.open("/x", create=True)
        yield from system.fs.fallocate(f, 1 << 20)
        return f.inode

    inode = run(system, flow())
    assert inode.block_count == 256
    assert inode.size == 1 << 20


def test_truncate_frees_blocks(system):
    before = system.device.free_blocks

    def flow():
        f = yield from system.fs.open("/x", create=True)
        yield from system.fs.write(f, 0, 1 << 20)
        yield from system.fs.truncate(f, 4096)

    run(system, flow())
    assert system.vfs.lookup("/x").block_count == 1
    assert system.device.free_blocks == before - 1


def test_unlink_releases_everything(system):
    before = system.device.free_blocks

    def flow():
        f = yield from system.fs.open("/x", create=True)
        yield from system.fs.write(f, 0, 1 << 20)
        yield from system.fs.close(f)
        yield from system.fs.unlink("/x")

    run(system, flow())
    assert "/x" not in system.vfs
    assert system.device.free_blocks == before


def test_ext4_zeroes_on_write_path(system):
    def flow():
        f = yield from system.fs.open("/x", create=True)
        yield from system.fs.write(f, 0, 1 << 20)

    run(system, flow())
    assert system.stats.get("fs.blocks_zeroed_sync") == 256


def test_nova_skips_zeroing_on_write_path(nova_system):
    def flow():
        f = yield from nova_system.fs.open("/x", create=True)
        yield from nova_system.fs.write(f, 0, 1 << 20)

    run(nova_system, flow())
    assert nova_system.stats.get("fs.blocks_zeroed_sync") == 0


def test_nova_zeroes_on_fallocate(nova_system):
    def flow():
        f = yield from nova_system.fs.open("/x", create=True)
        yield from nova_system.fs.fallocate(f, 1 << 20)

    run(nova_system, flow())
    assert nova_system.stats.get("fs.blocks_zeroed_sync") == 256


def test_prezeroed_blocks_skip_sync_zeroing(system):
    # Mark the whole device zeroed, then allocate.
    for extent in list(system.device._free):
        system.fs.zeroed.add(extent.start, extent.end)

    def flow():
        f = yield from system.fs.open("/x", create=True)
        yield from system.fs.fallocate(f, 1 << 20)

    run(system, flow())
    assert system.stats.get("fs.blocks_zeroed_sync") == 0


def test_mapsync_commit_ext4_vs_nova(system, nova_system):
    def probe(sys_):
        def flow():
            yield from sys_.fs.mapsync_fault()
        t0 = sys_.engine.now
        run(sys_, flow())
        return sys_.engine.now - t0

    assert probe(system) >= system.costs.journal_commit
    assert probe(nova_system) == 0.0


def test_fsync_commits_metadata(system):
    def flow():
        f = yield from system.fs.open("/x", create=True)
        yield from system.fs.write(f, 0, 4096)
        yield from system.fs.fsync(f)

    run(system, flow())
    assert system.stats.get("journal.sync_commits") == 1


def test_alloc_hooks_receive_runs_and_charge(system):
    calls = []

    def hook(inode, runs):
        calls.append((inode.path, sum(l for _s, l in runs)))
        return 123.0

    system.fs.alloc_hooks.append(hook)

    def flow():
        f = yield from system.fs.open("/x", create=True)
        yield from system.fs.write(f, 0, 8192)

    run(system, flow())
    assert calls == [("/x", 2)]
    assert system.stats.get("fs.filetable_maintenance_cycles") == 123.0


def test_free_barrier_runs_before_blocks_release(system):
    order = []

    def barrier(inode):
        order.append("barrier")
        yield from ()

    system.fs.free_barriers.append(barrier)
    system.fs.free_hooks.append(
        lambda inode, freed: order.append("free_hook"))

    def flow():
        f = yield from system.fs.open("/x", create=True)
        yield from system.fs.write(f, 0, 8192)
        yield from system.fs.truncate(f, 0)

    run(system, flow())
    assert order == ["barrier", "free_hook"]


def test_free_interceptor_takes_ownership(system):
    taken = []
    system.fs.free_interceptor = lambda runs: taken.extend(runs) or True
    before = system.device.free_blocks

    def flow():
        f = yield from system.fs.open("/x", create=True)
        yield from system.fs.write(f, 0, 8192)
        yield from system.fs.truncate(f, 0)

    run(system, flow())
    # Blocks did NOT return to the allocator (the interceptor owns them).
    assert system.device.free_blocks == before - 2
    assert sum(l for _s, l in taken) == 2


def test_fault_lookup_cost_grows_with_extents(system):
    inode = system.vfs.create("/x")
    small = system.fs.fault_lookup_cost(inode)
    for i in range(100):
        inode.extents.append(i * 10, 1)
    big = system.fs.fault_lookup_cost(inode)
    assert big > small * 3


def test_fragmented_writes_produce_multiple_extents(aged_system):
    def flow():
        f = yield from aged_system.fs.open("/big", create=True)
        yield from aged_system.fs.write(f, 0, 32 << 20)
        return f.inode

    inode = run(aged_system, flow())
    assert len(inode.extents) > 1
    assert 0.0 <= inode.extents.huge_coverage() < 1.0
