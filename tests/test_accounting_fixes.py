"""Regression tests for the PR 2 accounting and address-space fixes.

Each test pins one bug:

* rwsem handoff: the cache-line bounce on a contended grant is *wait*,
  not *hold* (it was previously booked as hold);
* zombie reaping: a zombie VMA is charged for both its PMD attachments
  and its faulted PTEs (previously ``A or B`` picked one);
* mremap growth: the extension is reserved in the layout (previously a
  later mmap could be handed overlapping addresses);
* msync: the reprotect shootdown reaches every mapping owner's cores
  (previously only the caller's cpumask got the IPI).
"""

import pytest

from repro.config import DEFAULT_COSTS
from repro.core.async_unmap import AsyncUnmapper
from repro.errors import AddressSpaceError
from repro.obs import CostDomain
from repro.sim.engine import Compute, Engine
from repro.sim.locks import RWSemaphore
from repro.vm.vma import VMA, MapFlags, Protection

PAGE = 4096


def run(system, gen, core=0, process=None):
    thread = system.spawn(gen, core=core, process=process)
    system.run()
    return thread.result


def make_file(system, size, path="/f"):
    def flow():
        f = yield from system.fs.open(path, create=True)
        yield from system.fs.write(f, 0, size)
        return f

    return run(system, flow())


# ---------------------------------------------------------------------------
# Fix 1: rwsem wait-vs-hold accounting on contended handoff.
# ---------------------------------------------------------------------------
def test_rwsem_write_hold_excludes_handoff_bounce():
    """Two 1000-cycle write sections must book exactly 2000 hold cycles.

    Pre-fix, the second writer's hold clock started at the *release*
    (not the wake ``lock_bounce`` cycles later), so the bounce was
    double-booked: once as the waiter's wait, once as its hold, and
    ``write_hold_cycles`` came out at 2000 + lock_bounce.
    """
    engine = Engine(4)
    sem = RWSemaphore(engine, DEFAULT_COSTS, "test")
    cs = 1000.0

    def writer(delay):
        yield Compute(delay)
        yield from sem.acquire_write()
        yield Compute(cs)
        yield from sem.release_write()

    engine.spawn(writer(0), core=0)
    engine.spawn(writer(100), core=1)  # arrives mid-hold, must queue
    engine.run()
    assert sem.write_acquisitions == 2
    assert sem.contended_acquisitions == 1
    assert sem.write_hold_cycles == pytest.approx(2 * cs)
    # The waiter's wait spans the handoff bounce.
    assert sem.write_wait_cycles >= DEFAULT_COSTS.lock_bounce


def test_rwsem_reader_batch_hold_excludes_handoff_bounce():
    """Readers granted on a writer's release hold from their wake."""
    engine = Engine(4)
    sem = RWSemaphore(engine, DEFAULT_COSTS, "test")
    cs = 500.0

    def writer():
        yield from sem.acquire_write()
        yield Compute(1000)
        yield from sem.release_write()

    def reader():
        yield Compute(100)  # queue behind the active writer
        yield from sem.acquire_read()
        yield Compute(cs)
        yield from sem.release_read()

    engine.spawn(writer(), core=0)
    engine.spawn(reader(), core=1)
    engine.spawn(reader(), core=2)
    engine.run()
    # Both readers wake together and overlap fully: the shared reader
    # hold is one critical section, counted from the wake.
    assert sem.read_hold_cycles == pytest.approx(cs)


# ---------------------------------------------------------------------------
# Fix 2: zombie teardown charges PMD attachments AND faulted PTEs.
# ---------------------------------------------------------------------------
def test_zombie_reap_charges_attachments_and_ptes(system):
    proc = system.new_process()
    unmapper = AsyncUnmapper(system.engine, proc.mm, system.costs,
                             system.stats, batch_pages=1 << 20)
    vma = VMA(0x7F10_0000_0000, 0x7F10_0000_0000 + 10 * PAGE,
              None, 0, Protection.READ, MapFlags.SHARED)
    vma.populated = set(range(10))
    vma.attachments = [(vma.start, 1, object()), (vma.start, 1, object())]
    vma.mapped_pages = 10

    def releaser(_vma):
        return
        yield  # pragma: no cover - generator shape only

    def flow():
        yield from unmapper.defer(vma, releaser)
        yield from unmapper.reap()

    run(system, flow())
    charged = system.ledger.event_total(CostDomain.SYSCALL,
                                        "zombie-teardown")
    expected = (2 * system.costs.pmd_attach
                + 10 * system.costs.pte_teardown)
    # Pre-fix, ``A or B`` charged only the attachment term.
    assert charged == pytest.approx(expected)


# ---------------------------------------------------------------------------
# Fix 3: mremap growth reserves the extension in the layout.
# ---------------------------------------------------------------------------
def test_mremap_grow_reserves_address_space(system):
    f = make_file(system, 64 * PAGE)
    proc = system.new_process()

    def flow():
        vma = yield from proc.mm.mmap(system.fs, f.inode, 0, 16 * PAGE,
                                      Protection.READ, MapFlags.SHARED)
        yield from proc.mm.mremap(vma, 32 * PAGE)
        other = yield from proc.mm.mmap(system.fs, f.inode, 0, 16 * PAGE,
                                        Protection.READ, MapFlags.SHARED)
        return vma, other

    vma, other = run(system, flow())
    assert vma.length == 32 * PAGE
    # Pre-fix, the layout cursor never moved and the second mmap was
    # handed addresses inside the grown mapping.
    assert other.end <= vma.start or other.start >= vma.end


def test_mremap_grow_fails_when_range_is_taken(system):
    f = make_file(system, 64 * PAGE)
    proc = system.new_process()

    def flow():
        vma = yield from proc.mm.mmap(system.fs, f.inode, 0, 16 * PAGE,
                                      Protection.READ, MapFlags.SHARED)
        blocker = yield from proc.mm.mmap(system.fs, f.inode, 0,
                                          16 * PAGE, Protection.READ,
                                          MapFlags.SHARED)
        assert blocker.start == vma.end  # bump allocation is adjacent
        with pytest.raises(AddressSpaceError):
            yield from proc.mm.mremap(vma, 32 * PAGE)
        assert vma.length == 16 * PAGE  # unchanged after the failure
        # The semaphore was released on the error path.
        assert not proc.mm.mmap_sem.writer_active

    run(system, flow())


def test_mremap_shrink_returns_tail_to_layout(system):
    f = make_file(system, 64 * PAGE)
    proc = system.new_process()

    def flow():
        vma = yield from proc.mm.mmap(system.fs, f.inode, 0, 32 * PAGE,
                                      Protection.READ, MapFlags.SHARED)
        yield from proc.mm.mremap(vma, 16 * PAGE)
        reused = yield from proc.mm.mmap(system.fs, f.inode, 0,
                                         16 * PAGE, Protection.READ,
                                         MapFlags.SHARED)
        return vma, reused

    vma, reused = run(system, flow())
    # The dropped tail is recycled for the next same-size mapping.
    assert reused.start == vma.end


# ---------------------------------------------------------------------------
# Fix 4: msync shootdown reaches every mapping owner's cores.
# ---------------------------------------------------------------------------
def test_msync_flushes_other_processes_cores(system):
    f = make_file(system, 8 * PAGE)
    proc_a = system.new_process("procA")
    proc_b = system.new_process("procB", aslr_seed=7)

    vmas = {}

    def map_and_dirty(proc, key):
        vma = yield from proc.mm.mmap(system.fs, f.inode, 0, 8 * PAGE,
                                      Protection.rw(), MapFlags.SHARED)
        yield from proc.mm.access(vma, 0, 8 * PAGE, write=True)
        vmas[key] = vma

    run(system, map_and_dirty(proc_b, "b"), core=3, process=proc_b)
    run(system, map_and_dirty(proc_a, "a"), core=0, process=proc_a)
    assert vmas["b"].writable  # B holds write-enabled PTEs

    before = system.engine.cores[3].total_interrupts

    def do_msync():
        yield from proc_a.mm.msync(vmas["a"])

    run(system, do_msync(), core=0, process=proc_a)
    # A's msync reprotected B's mapping too, so B's core must receive
    # a shootdown IPI (pre-fix only A's cpumask {0} was flushed).
    assert system.engine.cores[3].total_interrupts > before
    assert not vmas["b"].writable
