"""Block device / extent allocator tests, including property checks."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import NoSpaceError
from repro.fs.block import BLOCKS_PER_PMD, BlockDevice


def test_basic_alloc_free_cycle():
    dev = BlockDevice(1 << 20)  # 256 blocks
    runs = dev.alloc(10)
    assert sum(l for _s, l in runs) == 10
    assert dev.free_blocks == 246
    for start, length in runs:
        dev.free(start, length)
    assert dev.free_blocks == 256
    dev.check_invariants()


def test_alloc_rejects_bad_sizes():
    dev = BlockDevice(1 << 20)
    with pytest.raises(ValueError):
        dev.alloc(0)
    with pytest.raises(NoSpaceError):
        dev.alloc(10_000)


def test_aligned_allocation_on_fresh_device():
    dev = BlockDevice(16 << 20)
    runs = dev.alloc(BLOCKS_PER_PMD, align=BLOCKS_PER_PMD)
    assert len(runs) == 1
    assert runs[0][0] % BLOCKS_PER_PMD == 0


def test_piecewise_fallback_when_fragmented():
    dev = BlockDevice(1 << 20)
    # Fragment: allocate everything then free alternate small runs.
    dev.alloc(256)
    for start in range(0, 256, 8):
        dev.free(start, 4)
    dev.check_invariants()
    runs = dev.alloc(16)
    assert len(runs) > 1
    assert sum(l for _s, l in runs) == 16


def test_coalescing_both_sides():
    dev = BlockDevice(1 << 20)
    dev.alloc(256)
    dev.free(10, 5)
    dev.free(20, 5)
    dev.free(15, 5)  # bridges the two
    assert dev.free_extent_count() == 1
    assert dev.largest_free_extent() == 15
    dev.check_invariants()


def test_frame_mapping():
    dev = BlockDevice(1 << 20, base_frame=1000)
    assert dev.frame_of(5) == 1005


def test_huge_metrics():
    dev = BlockDevice(8 << 20)  # 2048 blocks = 4 PMDs
    assert dev.huge_capable_free_blocks() == 2048
    assert dev.huge_coverage_potential() == 1.0
    dev.alloc(1)  # chip one block off the front
    assert dev.huge_capable_free_blocks() == 3 * BLOCKS_PER_PMD


def test_goal_cursor_wanders():
    """Next-fit: successive small allocations don't all camp at the
    first hole."""
    dev = BlockDevice(4 << 20)
    dev.alloc(1024)
    for start in range(0, 1024, 16):
        dev.free(start, 8)
    starts = [dev.alloc(4)[0][0] for _ in range(8)]
    assert len(set(starts)) == len(starts)


@settings(max_examples=50, deadline=None)
@given(st.lists(st.integers(1, 64), min_size=1, max_size=60))
def test_property_alloc_free_conservation(sizes):
    """Total blocks are conserved and invariants hold under churn."""
    dev = BlockDevice(1 << 20)
    live = []
    for i, size in enumerate(sizes):
        if size <= dev.free_blocks:
            live.append(dev.alloc(size))
        if i % 3 == 2 and live:
            for start, length in live.pop(0):
                dev.free(start, length)
        dev.check_invariants()
    allocated = sum(l for runs in live for _s, l in runs)
    assert dev.free_blocks + allocated == dev.total_blocks
