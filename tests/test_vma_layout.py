"""VMA geometry/flags and the virtual address layout allocator."""

import pytest

from repro.errors import AddressSpaceError, InvalidArgumentError
from repro.fs.vfs import Inode
from repro.vm.layout import MMAP_BASE, PMD_SIZE, AddressSpaceLayout
from repro.vm.vma import VMA, MapFlags, Protection


def make_vma(size=8 * 4096, flags=MapFlags.SHARED,
             prot=Protection.rw()):
    return VMA(0x7F0000000000, 0x7F0000000000 + size, Inode("/f"), 0,
               prot, flags)


def test_vma_geometry():
    vma = make_vma()
    assert vma.length == 8 * 4096
    assert vma.num_pages == 8
    assert vma.contains(vma.start)
    assert not vma.contains(vma.end)
    assert vma.page_index(vma.start + 4096) == 1
    with pytest.raises(InvalidArgumentError):
        vma.page_index(vma.end)


def test_vma_validation():
    with pytest.raises(InvalidArgumentError):
        VMA(0x1000, 0x1000, None, 0, Protection.READ, MapFlags.SHARED)
    with pytest.raises(InvalidArgumentError):
        VMA(0x1001, 0x3000, None, 0, Protection.READ, MapFlags.SHARED)


def test_file_page_translation():
    vma = VMA(0, 4 * 4096, Inode("/f"), 2 * 4096, Protection.READ,
              MapFlags.SHARED)
    assert vma.file_page(0) == 2
    assert vma.file_page(3) == 5


def test_tracks_dirty_logic():
    assert make_vma().tracks_dirty
    # Read-only mappings are not tracked.
    assert not make_vma(prot=Protection.READ).tracks_dirty
    # nosync mode drops tracking.
    assert not make_vma(
        flags=MapFlags.SHARED | MapFlags.SYNC | MapFlags.NO_MSYNC
    ).tracks_dirty
    # Anonymous mappings are not file-backed.
    anon = VMA(0, 4096, None, 0, Protection.rw(), MapFlags.PRIVATE)
    assert not anon.tracks_dirty


def test_ephemeral_flag():
    assert make_vma(flags=MapFlags.SHARED | MapFlags.EPHEMERAL).is_ephemeral
    assert not make_vma().is_ephemeral


def test_layout_allocates_disjoint_aligned_ranges():
    layout = AddressSpaceLayout()
    a = layout.allocate(1 << 20, align=PMD_SIZE)
    b = layout.allocate(1 << 20, align=PMD_SIZE)
    assert a % PMD_SIZE == 0 and b % PMD_SIZE == 0
    assert abs(a - b) >= 1 << 20
    assert layout.allocated_bytes == 2 << 20


def test_layout_recycles_freed_ranges():
    layout = AddressSpaceLayout()
    a = layout.allocate(1 << 20)
    layout.free(a, 1 << 20)
    b = layout.allocate(1 << 20)
    assert b == a


def test_layout_rejects_bad_sizes():
    layout = AddressSpaceLayout()
    with pytest.raises(AddressSpaceError):
        layout.allocate(0)
    with pytest.raises(AddressSpaceError):
        layout.allocate(100)  # not page aligned


def test_aslr_slides_but_keeps_pmd_alignment():
    a = AddressSpaceLayout(aslr_seed=1).allocate(1 << 20, align=PMD_SIZE)
    b = AddressSpaceLayout(aslr_seed=2).allocate(1 << 20, align=PMD_SIZE)
    assert a != b  # randomised
    assert a % PMD_SIZE == 0 and b % PMD_SIZE == 0
    assert a >= MMAP_BASE and b >= MMAP_BASE
