"""Unit tests for physical memory regions and frame accounting."""

import pytest

from repro.errors import MemoryError_
from repro.mem.physmem import Medium, PhysicalMemory, Region


def test_frame_allocation_and_reuse():
    region = Region(Medium.DRAM, 16 * 4096)
    frames = [region.alloc_frame() for _ in range(4)]
    assert len(set(frames)) == 4
    region.free_frame(frames[0])
    assert region.alloc_frame() == frames[0]  # freelist reuse


def test_region_exhaustion():
    region = Region(Medium.DRAM, 2 * 4096)
    region.alloc_frame()
    region.alloc_frame()
    with pytest.raises(MemoryError_):
        region.alloc_frame()


def test_peak_tracking():
    region = Region(Medium.PMEM, 8 * 4096)
    frames = [region.alloc_frame() for _ in range(3)]
    for frame in frames:
        region.free_frame(frame)
    assert region.allocated_frames == 0
    assert region.peak_frames == 3
    assert region.peak_bytes == 3 * 4096


def test_double_free_raises():
    region = Region(Medium.DRAM, 8 * 4096)
    frame = region.alloc_frame()
    region.free_frame(frame)
    before = region.allocated_frames
    with pytest.raises(MemoryError_):
        region.free_frame(frame)
    # The failed free must not corrupt the accounting or the freelist.
    assert region.allocated_frames == before
    assert region.alloc_frame() == frame


def test_freeing_a_never_allocated_frame_raises():
    region = Region(Medium.PMEM, 8 * 4096, base_frame=100)
    region.alloc_frame()
    with pytest.raises(MemoryError_):
        region.free_frame(105)  # in range, but never handed out
    with pytest.raises(MemoryError_):
        region.free_frame(99)  # below the region entirely


def test_media_are_distinguishable_by_frame_number():
    pm = PhysicalMemory(dram_bytes=1 << 20, pmem_bytes=1 << 20)
    dram_frame = pm.alloc_frame(Medium.DRAM)
    pmem_frame = pm.alloc_frame(Medium.PMEM)
    assert pm.medium_of(dram_frame) is Medium.DRAM
    assert pm.medium_of(pmem_frame) is Medium.PMEM
    assert pmem_frame >= pm.pmem.base_frame


def test_free_routes_to_owning_region():
    pm = PhysicalMemory(dram_bytes=1 << 20, pmem_bytes=1 << 20)
    frame = pm.alloc_frame(Medium.PMEM)
    before = pm.pmem.allocated_frames
    pm.free_frame(frame)
    assert pm.pmem.allocated_frames == before - 1
