"""Unit tests for the x86-64 radix page tables."""

import pytest

from repro.errors import AddressSpaceError, SegmentationFault
from repro.mem.physmem import Medium, PhysicalMemory
from repro.paging.flags import PageFlags
from repro.paging.pagetable import (
    PMD_LEVEL,
    PTE_LEVEL,
    PUD_LEVEL,
    Entry,
    PageTable,
    PageTableNode,
    level_index,
    level_shift,
    level_size,
)

PMD = 2 << 20


@pytest.fixture
def pm():
    return PhysicalMemory(1 << 30, 1 << 30)


@pytest.fixture
def pt(pm):
    return PageTable(pm)


def test_level_geometry():
    assert level_shift(PTE_LEVEL) == 12
    assert level_shift(PMD_LEVEL) == 21
    assert level_size(PTE_LEVEL) == 4096
    assert level_size(PMD_LEVEL) == 2 << 20
    assert level_size(PUD_LEVEL) == 1 << 30
    assert level_index(0x201000, PTE_LEVEL) == 1
    assert level_index(0x40000000, PUD_LEVEL) == 1


def test_map_and_translate(pt):
    pt.map_page(0x1000, 777, PageFlags.rw())
    tr = pt.translate(0x1000)
    assert tr.frame == 777
    assert tr.flags.writable
    assert tr.leaf_level == PTE_LEVEL
    assert tr.page_size == 4096


def test_translate_hole_faults(pt):
    with pytest.raises(SegmentationFault):
        pt.translate(0xDEAD000)


def test_unmap_page(pt):
    pt.map_page(0x1000, 1, PageFlags.rw())
    assert pt.unmap_page(0x1000)
    with pytest.raises(SegmentationFault):
        pt.translate(0x1000)
    assert not pt.unmap_page(0x1000)  # already gone


def test_huge_page_mapping(pt):
    pt.map_page(PMD, 512, PageFlags.rw(), PMD_LEVEL)
    tr = pt.translate(PMD)
    assert tr.leaf_level == PMD_LEVEL
    assert tr.flags & PageFlags.HUGE
    # Offsets within the huge page resolve to consecutive frames.
    tr2 = pt.translate(PMD + 5 * 4096)
    assert tr2.frame == 512 + 5


def test_huge_mapping_requires_alignment(pt):
    with pytest.raises(AddressSpaceError):
        pt.map_page(0x1000, 1, PageFlags.rw(), PMD_LEVEL)


def test_interior_nodes_freed_on_unmap(pm):
    pt = PageTable(pm)
    before = pm.dram.allocated_frames
    pt.map_page(0x1000, 1, PageFlags.rw())
    assert pm.dram.allocated_frames > before
    pt.unmap_page(0x1000)
    assert pm.dram.allocated_frames == before


def test_permissions_combine_minimum():
    ro_at_pmd = PageFlags.ro().combine(PageFlags.rw())
    assert not ro_at_pmd.writable
    assert ro_at_pmd.present
    rw = PageFlags.rw().combine(PageFlags.rw())
    assert rw.writable


def test_attach_fragment_and_translate(pm, pt):
    # Build a shared PTE fragment (a DaxVM file table region).
    frame = pm.alloc_frame(Medium.PMEM)
    fragment = PageTableNode(PTE_LEVEL, frame, Medium.PMEM, shared=True)
    for i in range(8):
        fragment.entries[i] = Entry(frame=1000 + i, flags=PageFlags.rw())

    created = pt.attach_fragment(PMD, fragment, PageFlags.ro())
    assert created >= 1
    tr = pt.translate(PMD + 3 * 4096)
    assert tr.frame == 1003
    # Per-process permissions: RO at the attachment gates the RW PTE.
    assert not tr.flags.writable
    # The walk saw the fragment's PMem residency at the leaf.
    assert tr.level_media[-1] is Medium.PMEM


def test_attach_requires_alignment(pm, pt):
    fragment = PageTableNode(PTE_LEVEL, pm.alloc_frame(Medium.DRAM),
                             Medium.DRAM, shared=True)
    with pytest.raises(AddressSpaceError):
        pt.attach_fragment(PMD + 4096, fragment, PageFlags.rw())


def test_attach_slot_conflict(pm, pt):
    frag1 = PageTableNode(PTE_LEVEL, pm.alloc_frame(Medium.DRAM),
                          Medium.DRAM, shared=True)
    frag2 = PageTableNode(PTE_LEVEL, pm.alloc_frame(Medium.DRAM),
                          Medium.DRAM, shared=True)
    pt.attach_fragment(PMD, frag1, PageFlags.rw())
    with pytest.raises(AddressSpaceError):
        pt.attach_fragment(PMD, frag2, PageFlags.rw())


def test_detach_fragment_preserves_shared_node(pm, pt):
    fragment = PageTableNode(PTE_LEVEL, pm.alloc_frame(Medium.PMEM),
                             Medium.PMEM, shared=True)
    fragment.entries[0] = Entry(frame=55, flags=PageFlags.rw())
    pt.attach_fragment(PMD, fragment, PageFlags.rw())
    assert pt.detach_fragment(PMD, PTE_LEVEL + 1)
    with pytest.raises(SegmentationFault):
        pt.translate(PMD)
    # The fragment itself is untouched (other processes may use it).
    assert fragment.entries[0].frame == 55


def test_clear_range_counts_pages(pt):
    for i in range(10):
        pt.map_page(0x10000 + i * 4096, i, PageFlags.rw())
    pages = pt.clear_range(0x10000, 10 * 4096)
    assert pages == 10


def test_clear_range_detaches_shared_subtrees(pm, pt):
    fragment = PageTableNode(PTE_LEVEL, pm.alloc_frame(Medium.PMEM),
                             Medium.PMEM, shared=True)
    for i in range(20):
        fragment.entries[i] = Entry(frame=i, flags=PageFlags.rw())
    pt.attach_fragment(PMD, fragment, PageFlags.rw())
    pages = pt.clear_range(PMD, 2 << 20)
    assert pages == 20  # the fragment's population
    assert len(fragment.entries) == 20  # not cleared, only detached


def test_clear_range_huge_leaf(pt):
    pt.map_page(PMD, 512, PageFlags.rw(), PMD_LEVEL)
    pages = pt.clear_range(PMD, 2 << 20)
    assert pages == 512


def test_protect_range(pt):
    for i in range(4):
        pt.map_page(i * 4096, i, PageFlags.rw())
    changed = pt.protect_range(0, 4 * 4096, PageFlags.ro())
    assert changed == 4
    assert not pt.translate(0).flags.writable


def test_destroy_frees_everything_but_shared(pm):
    pt = PageTable(pm)
    baseline = pm.dram.allocated_frames
    shared_frame = pm.alloc_frame(Medium.PMEM)
    fragment = PageTableNode(PTE_LEVEL, shared_frame, Medium.PMEM,
                             shared=True)
    fragment.entries[0] = Entry(frame=9, flags=PageFlags.rw())
    pt.map_page(0x5000, 5, PageFlags.rw())
    pt.attach_fragment(PMD, fragment, PageFlags.rw())
    pt.destroy()
    # All private DRAM nodes gone (the root itself was pre-baseline).
    assert pm.dram.allocated_frames == baseline - 1
    pmem_before = pm.pmem.allocated_frames
    assert pmem_before == 1  # the shared fragment survives
