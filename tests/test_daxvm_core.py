"""DaxVM core tests: ephemeral heap, async unmap, pre-zero, monitor."""

import pytest

from repro.mem.physmem import Medium
from repro.vm.vma import MapFlags, Protection

PAGE = 4096
PMD = 2 << 20


def run(system, gen, core=0):
    thread = system.spawn(gen, core=core)
    system.run()
    return thread.result


def make_file(system, size, path="/f"):
    def flow():
        f = yield from system.fs.open(path, create=True)
        yield from system.fs.write(f, 0, size)
        return f.inode

    return run(system, flow())


def setup_dax(system, **kw):
    proc = system.new_process()
    dax = system.daxvm_for(proc, **kw)
    return proc, dax


# ---------------------------------------------------------------------------
# Ephemeral heap.
# ---------------------------------------------------------------------------
def test_ephemeral_heap_allocates_aligned_ranges(system):
    proc, dax = setup_dax(system)

    def flow():
        a = yield from dax.ephemeral.allocate(PMD, align=PMD)
        b = yield from dax.ephemeral.allocate(PMD, align=PMD)
        return a, b

    a, b = run(system, flow())
    assert a % PMD == 0 and b % PMD == 0
    assert a != b
    assert dax.ephemeral.contains(a)


def test_ephemeral_region_recycles_when_quiet(system):
    proc, dax = setup_dax(system)
    heap = dax.ephemeral
    heap.region_bytes = 4 * PMD  # tiny regions to force rollover
    inode = make_file(system, 32 << 10)

    def flow():
        vmas = []
        for _ in range(6):
            vma = yield from dax.mmap(
                inode, 0, 32 << 10, Protection.READ,
                MapFlags.SHARED | MapFlags.EPHEMERAL)
            vmas.append(vma)
        for vma in vmas:
            yield from dax.munmap(vma)

    run(system, flow())
    assert system.stats.get("daxvm.ephemeral_region_recycles") >= 1
    assert heap.live_mappings == 0


def test_ephemeral_mappings_bypass_vma_tree(system):
    proc, dax = setup_dax(system)
    inode = make_file(system, 32 << 10)

    def flow():
        vma = yield from dax.mmap(
            inode, 0, 32 << 10, Protection.READ,
            MapFlags.SHARED | MapFlags.EPHEMERAL)
        return vma

    vma = run(system, flow())
    assert proc.mm.find_vma(vma.start) is None  # not in mm_rb
    assert vma.start in dax.ephemeral.vmas       # in the heap's table
    assert vma in inode.i_mmap                   # still FS-visible


def test_ephemeral_mmap_takes_sem_as_reader_only(system):
    proc, dax = setup_dax(system)
    inode = make_file(system, 32 << 10)

    def flow():
        vma = yield from dax.mmap(
            inode, 0, 32 << 10, Protection.READ,
            MapFlags.SHARED | MapFlags.EPHEMERAL | MapFlags.UNMAP_ASYNC)
        yield from dax.munmap(vma)

    run(system, flow())
    assert proc.mm.mmap_sem.write_acquisitions == 0
    assert proc.mm.mmap_sem.read_acquisitions >= 1


# ---------------------------------------------------------------------------
# Asynchronous unmapping.
# ---------------------------------------------------------------------------
def test_async_unmap_defers_until_batch_threshold(system):
    proc, dax = setup_dax(system)
    inode = make_file(system, 16 << 10)  # 4 pages

    def flow():
        for i in range(12):  # 48 zombie pages total; threshold 33
            vma = yield from dax.mmap(
                inode, 0, 16 << 10, Protection.READ,
                MapFlags.SHARED | MapFlags.EPHEMERAL
                | MapFlags.UNMAP_ASYNC)
            yield from dax.munmap(vma)

    run(system, flow())
    assert system.stats.get("daxvm.unmaps_deferred") == 12
    assert system.stats.get("daxvm.zombie_reaps") == 1
    assert system.stats.get("tlb.full_flushes") == 1
    # Leftover zombies remain queued.
    assert dax.unmapper.pending_vmas > 0


def test_async_unmap_batch_level_is_configurable(system):
    proc, dax = setup_dax(system, batch_pages=512)
    inode = make_file(system, 16 << 10)

    def flow():
        for _ in range(12):
            vma = yield from dax.mmap(
                inode, 0, 16 << 10, Protection.READ,
                MapFlags.SHARED | MapFlags.EPHEMERAL
                | MapFlags.UNMAP_ASYNC)
            yield from dax.munmap(vma)

    run(system, flow())
    assert system.stats.get("daxvm.zombie_reaps") == 0


def test_zombie_addresses_not_recycled_before_reap(system):
    proc, dax = setup_dax(system, batch_pages=10_000)
    inode = make_file(system, 32 << 10)

    def flow():
        seen = set()
        for _ in range(5):
            vma = yield from dax.mmap(
                inode, 0, 32 << 10, Protection.READ,
                MapFlags.SHARED | MapFlags.EPHEMERAL
                | MapFlags.UNMAP_ASYNC)
            assert vma.start not in seen, "zombie vaddr reused!"
            seen.add(vma.start)
            yield from dax.munmap(vma)
        yield from dax.unmapper.reap()
        return seen

    run(system, flow())
    assert dax.unmapper.pending_vmas == 0


def test_fs_truncate_forces_synchronous_reap(system):
    proc, dax = setup_dax(system, batch_pages=10_000)
    inode = make_file(system, 64 << 10, path="/t")

    def flow():
        vma = yield from dax.mmap(
            inode, 0, 64 << 10, Protection.READ,
            MapFlags.SHARED | MapFlags.EPHEMERAL | MapFlags.UNMAP_ASYNC)
        yield from dax.munmap(vma)
        assert dax.unmapper.pending_vmas == 1
        f = yield from system.fs.open("/t")
        yield from system.fs.truncate(f, 0)

    run(system, flow())
    assert dax.unmapper.pending_vmas == 0
    assert system.stats.get("daxvm.forced_sync_unmaps") == 1


# ---------------------------------------------------------------------------
# Pre-zeroing.
# ---------------------------------------------------------------------------
def test_prezero_intercepts_frees_and_daemon_zeroes(system):
    proc, dax = setup_dax(system)
    dax.prezero.start(core=3)
    make_file(system, 1 << 20, path="/dead")
    free_before = system.device.free_blocks

    def flow():
        yield from system.fs.unlink("/dead")
        # Keep the simulation alive long enough for the kthread.
        from repro.sim.engine import Compute
        yield Compute(5e8)

    run(system, flow())
    assert dax.prezero.blocks_zeroed >= 256
    assert dax.prezero.pending_blocks == 0
    # Blocks returned to the allocator *and* marked zeroed.
    assert system.device.free_blocks > free_before
    assert system.fs.zeroed.total >= 256


def test_prezeroed_allocation_skips_sync_zeroing(system):
    proc, dax = setup_dax(system)
    dax.prezero.prezero_all_free()

    def flow():
        f = yield from system.fs.open("/new", create=True)
        yield from system.fs.fallocate(f, 1 << 20)

    run(system, flow())
    assert system.stats.get("fs.blocks_zeroed_sync") == 0


def test_prezero_throttle_paces_the_daemon(system):
    proc, dax = setup_dax(system)
    dax.prezero.start(core=3)
    make_file(system, 8 << 20, path="/dead")

    def flow():
        yield from system.fs.unlink("/dead")
        from repro.sim.engine import Compute
        yield Compute(1e8)  # ~37 ms at 2.7 GHz; 64 MB/s => ~2.3 MB

    run(system, flow())
    zeroed_bytes = dax.prezero.blocks_zeroed * 4096
    assert zeroed_bytes < 8 << 20  # the throttle kept it from finishing


def test_drain_now_helper(system):
    proc, dax = setup_dax(system)
    make_file(system, 1 << 20, path="/dead")

    def flow():
        yield from system.fs.unlink("/dead")

    run(system, flow())
    assert dax.prezero.pending_blocks > 0
    drained = dax.prezero.drain_now()
    assert drained >= 256
    assert dax.prezero.pending_blocks == 0


# ---------------------------------------------------------------------------
# MMU monitor.
# ---------------------------------------------------------------------------
def test_monitor_rule_thresholds(system):
    proc, dax = setup_dax(system)
    monitor = dax.monitor
    assert monitor.should_migrate(250.0, 0.10)
    assert not monitor.should_migrate(150.0, 0.10)   # walks cheap
    assert not monitor.should_migrate(250.0, 0.01)   # overhead low


def test_monitor_samples_windowed_deltas(system):
    proc, dax = setup_dax(system)
    system.stats.add("vm.walk_cycles", 10_000)
    system.stats.add("vm.tlb_misses", 20)
    system.engine.now = 50_000.0
    avg, overhead = dax.monitor.sample()
    assert avg == pytest.approx(500.0)
    assert overhead == pytest.approx(0.2)
    # Second sample sees only new activity.
    avg2, _ = dax.monitor.sample()
    assert avg2 == 0.0


def test_monitor_triggers_migration_and_repoints_mapping(system):
    proc, dax = setup_dax(system)
    inode = make_file(system, 1 << 20)
    system.fs.allow_huge = False

    def flow():
        vma = yield from dax.mmap(inode, 0, 1 << 20, Protection.READ,
                                  MapFlags.SHARED)
        assert vma.leaf_medium is Medium.PMEM
        # Fake an expensive-walk window.
        system.stats.add("vm.walk_cycles", 1e6)
        system.stats.add("vm.tlb_misses", 1e6 / 800)
        migrated = yield from dax.monitor_check([vma])
        return vma, migrated

    vma, migrated = run(system, flow())
    assert migrated
    assert vma.leaf_medium is Medium.DRAM
    assert inode.volatile_file_table is not None
    tr = proc.mm.page_table.translate(vma.user_addr)
    assert tr.level_media[-1] is Medium.DRAM
