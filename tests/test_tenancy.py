"""The multi-tenant consolidation subsystem (PR-9 tentpole).

Covers the enforcement mechanisms in isolation (CPU throttle stretch,
reclaim-then-fail frame accounting, weighted bandwidth admission),
the attribution machinery (cross-tenant lock waits booked with the
holder recorded, exact-match ledger views — ``t1`` never absorbs
``t10``), the end-to-end consolidate driver (determinism, antagonist
containment, quota audit), and the spec round-trips that feed the
sweep cache key.
"""

import json

import pytest

from repro.config import DEFAULT_COSTS
from repro.errors import InvalidArgumentError
from repro.mem.physmem import Medium, PhysicalMemory
from repro.obs import CostDomain, Counter
from repro.runner.manifest import result_state
from repro.sim.engine import Compute, Engine
from repro.sim.locks import RWSemaphore
from repro.system import System
from repro.tenancy import (
    CpuThrottle,
    QuotaAccountingError,
    QuotaError,
    TenancyConfig,
    Tenant,
    TenantAccountant,
    TenantSpec,
    consolidate_config,
    run_consolidate,
)


# ---------------------------------------------------------------------------
# Specs: validation and the JSON round-trip the cache key rides on.
# ---------------------------------------------------------------------------
def test_spec_validation():
    with pytest.raises(InvalidArgumentError):
        TenantSpec(cpu_limit=0.0)
    with pytest.raises(InvalidArgumentError):
        TenantSpec(cpu_limit=1.5)
    with pytest.raises(InvalidArgumentError):
        TenantSpec(memory_request=2 << 20, memory_limit=1 << 20)
    with pytest.raises(InvalidArgumentError):
        TenantSpec(bandwidth_weight=0.0)
    with pytest.raises(InvalidArgumentError):
        Tenant(name="t0", kind="fortran")
    with pytest.raises(InvalidArgumentError):
        TenancyConfig(tenants=())
    with pytest.raises(InvalidArgumentError):
        TenancyConfig(tenants=(Tenant(name="a"), Tenant(name="a")))


def test_config_roundtrip_is_lossless():
    config = consolidate_config(3, "mixed", quotas=True, antagonist=True,
                                requests=12, think_cycles=500.0, seed=4)
    wire = json.loads(json.dumps(config.to_state()))
    back = TenancyConfig.from_state(wire)
    assert back == config
    assert back.to_state() == config.to_state()


def test_passive_detection():
    assert consolidate_config(1, "apache").passive
    assert not consolidate_config(2, "apache").passive
    assert not consolidate_config(1, "apache", quotas=True).passive
    assert not consolidate_config(1, "apache", antagonist=True).passive
    assert not consolidate_config(1, "apache",
                                  think_cycles=100.0).passive


def test_consolidate_config_mix_and_names():
    config = consolidate_config(4, "mixed", antagonist=True)
    assert [t.name for t in config.tenants] == ["t0", "t1", "t2", "t3",
                                                "hog"]
    assert [t.kind for t in config.tenants[:4]] == [
        "apache", "predis", "kvstore", "apache"]
    assert config.mix == "mixed"
    assert config.antagonist


# ---------------------------------------------------------------------------
# CPU throttle: limits.cpu as a charge stretch.
# ---------------------------------------------------------------------------
def test_cpu_throttle_stretches_charges_two_x():
    engine = Engine(2)
    done = {}

    def worker():
        yield Compute(10_000)
        done["at"] = engine.now

    thread = engine.spawn(worker(), core=0, name="t0.worker")
    thread.tenant = "t0"
    thread.cpu_throttle = CpuThrottle(0.5)
    engine.run()
    # A 0.5-core share serializes 2x the charged cycles.
    assert done["at"] == pytest.approx(20_000)
    assert thread.cpu_throttle.throttled_cycles == pytest.approx(10_000)
    assert engine.ledger.domain_total(CostDomain.TENANCY) \
        == pytest.approx(10_000)


def test_cpu_throttle_share_validation():
    with pytest.raises(QuotaAccountingError):
        CpuThrottle(0.0)
    with pytest.raises(QuotaAccountingError):
        CpuThrottle(1.5)


# ---------------------------------------------------------------------------
# Frame accounting: requests/limits.memory with reclaim-or-fail.
# ---------------------------------------------------------------------------
def _accountant_rig(limit_frames=4):
    engine = Engine(1)
    physmem = PhysicalMemory(dram_bytes=8 << 20, pmem_bytes=8 << 20)
    from repro.sim.stats import Stats

    stats = Stats()
    spec = TenantSpec(memory_request=0,
                      memory_limit=limit_frames * 4096)
    accountant = TenantAccountant(engine, stats, {"t0": spec})
    accountant.enforcing = True
    physmem.accountant = accountant
    return engine, physmem, stats, accountant


def _run_as_tenant(engine, fn, name="t0.worker", tenant="t0"):
    out = {}

    def gen():
        out["result"] = fn()
        yield Compute(1)

    thread = engine.spawn(gen(), core=0, name=name)
    thread.tenant = tenant
    engine.run()
    return out.get("result")


def test_accountant_tracks_and_limits_frames():
    engine, physmem, stats, accountant = _accountant_rig(limit_frames=2)

    def body():
        frames = [physmem.alloc_frame(Medium.DRAM) for _ in range(2)]
        # Books reflect ownership...
        assert accountant.usage_bytes("t0") == 2 * 4096
        # ...and the third allocation breaches limits.memory with no
        # reclaimer registered: refuse.
        with pytest.raises(QuotaError):
            physmem.alloc_frame(Medium.DRAM)
        return frames

    frames = _run_as_tenant(engine, body)
    assert stats.get(Counter.TENANCY_HARD_FAILURES) == 1
    assert accountant.hard_failures == 1
    # Frees return the frames to the tenant's headroom.
    for frame in frames:
        physmem.free_frame(frame)
    assert accountant.usage_bytes("t0") == 0


def test_accountant_runs_reclaim_before_failing():
    engine, physmem, stats, accountant = _accountant_rig(limit_frames=2)
    reclaim_calls = []

    def body():
        frames = [physmem.alloc_frame(Medium.DRAM) for _ in range(2)]

        def reclaimer(needed):
            # cgroup-style: free our own coldest frames through the
            # normal path, which updates the books via note_free.
            reclaim_calls.append(needed)
            physmem.free_frame(frames.pop(0))
            return 1

        accountant.register_reclaimer("t0", reclaimer)
        # Over the limit -> the reclaimer runs -> allocation succeeds.
        frames.append(physmem.alloc_frame(Medium.DRAM))
        return True

    assert _run_as_tenant(engine, body)
    assert reclaim_calls == [1]
    assert accountant.reclaimed_frames == 1
    assert stats.get(Counter.TENANCY_RECLAIMED_FRAMES) == 1
    assert stats.get(Counter.TENANCY_HARD_FAILURES) == 0


def test_accountant_ignores_untagged_threads():
    engine, physmem, _stats, accountant = _accountant_rig(limit_frames=1)

    def body():
        # No tenant tag: frames are kernel-global, never limited.
        return [physmem.alloc_frame(Medium.DRAM) for _ in range(4)]

    frames = _run_as_tenant(engine, body, tenant=None)
    assert len(frames) == 4
    assert accountant.usage_bytes("t0") == 0
    accountant.audit()


def test_accountant_audit_detects_drift():
    engine, physmem, _stats, accountant = _accountant_rig()

    def body():
        return physmem.alloc_frame(Medium.DRAM)

    _run_as_tenant(engine, body)
    accountant.audit()
    accountant.frames["t0"] += 1  # corrupt the books
    with pytest.raises(QuotaAccountingError):
        accountant.audit()


# ---------------------------------------------------------------------------
# Bandwidth admission: weighted-fair sub-buckets on the shared pools.
# ---------------------------------------------------------------------------
def test_admission_delays_low_weight_tenant_only():
    from repro.mem.latency import SharedBandwidth
    from repro.sim.stats import Stats
    from repro.tenancy import BandwidthAdmission

    engine = Engine(2)
    stats = Stats()
    pool = SharedBandwidth(read_bw=10e9, write_bw=5e9, freq_hz=2e9)
    admission = BandwidthAdmission(engine, stats,
                                   {"big": 3.0, "small": 1.0})
    pool.admission = admission
    waits = {}

    def worker(tenant):
        def gen():
            # Two back-to-back windows: the second pays the sub-bucket
            # debt of the first.
            pool.delay(8 << 20, 0, engine.now)
            waits[tenant] = pool.delay(8 << 20, 0, engine.now)
            yield Compute(1)

        thread = engine.spawn(gen(), core=0, name=f"{tenant}.worker")
        thread.tenant = tenant

    worker("small")
    engine.run()
    assert waits["small"] > 0.0
    assert stats.get(Counter.TENANCY_BW_THROTTLE_CYCLES) > 0.0
    # The small tenant's weight share (1/4 of pool bandwidth) must
    # wait ~4x longer than the shared pool alone would impose.
    small_wait = waits["small"]

    engine2 = Engine(2)
    pool2 = SharedBandwidth(read_bw=10e9, write_bw=5e9, freq_hz=2e9)
    # No admission: the shared bucket alone.
    def bare():
        pool2.delay(8 << 20, 0, engine2.now)
        waits["bare"] = pool2.delay(8 << 20, 0, engine2.now)
        yield Compute(1)

    engine2.spawn(bare(), core=0)
    engine2.run()
    assert small_wait > waits["bare"] * 3.0


def test_admission_untagged_and_full_share_sail_through():
    from repro.mem.latency import SharedBandwidth
    from repro.sim.stats import Stats
    from repro.tenancy import BandwidthAdmission

    engine = Engine(1)
    pool = SharedBandwidth(read_bw=10e9, write_bw=5e9, freq_hz=2e9)
    admission = BandwidthAdmission(engine, Stats(), {"only": 1.0})
    # No current thread at all: zero extra delay.
    assert admission.extra_delay(pool, 1 << 20, 0, 0.0) == 0.0

    def gen():
        # Full share (1.0): clipped to the pool itself, no extra.
        assert admission.extra_delay(pool, 64 << 20, 0, engine.now) == 0.0
        yield Compute(1)

    thread = engine.spawn(gen(), core=0, name="only.worker")
    thread.tenant = "only"
    engine.run()


# ---------------------------------------------------------------------------
# Cross-tenant lock attribution: waits booked with the holder named.
# ---------------------------------------------------------------------------
def test_rwsem_cross_tenant_wait_attribution():
    engine = Engine(2)
    lock = RWSemaphore(engine, DEFAULT_COSTS, "mmap_sem")
    tenants = {"alpha.writer": "alpha", "beta.reader": "beta"}
    engine.tenant_resolver = tenants.get

    def writer():
        yield from lock.acquire_write()
        yield Compute(50_000)
        yield from lock.release_write()

    def reader():
        yield Compute(100)  # arrive second, while alpha holds write
        yield from lock.acquire_read()
        yield from lock.release_read()

    engine.spawn(writer(), core=0, name="alpha.writer")
    engine.spawn(reader(), core=1, name="beta.reader")
    engine.run()
    # The wait is attributed to the *waiting* tenant, with the
    # holding tenant recorded.
    assert lock.tenant_waits
    ((waiter, holder), cycles), = lock.tenant_waits.items()
    assert waiter == "beta"
    assert holder == "alpha"
    assert cycles > 0.0
    report = lock.report()
    assert report["tenant_waits"] == {"beta<-alpha": cycles}
    # The ledger books the wait to the waiting thread in the tenancy
    # domain, naming the holder.
    events = engine.ledger.to_state()["events"]
    tagged = [e for e in events
              if e[0] == "tenancy" and "blocked-by:alpha" in e[1]]
    assert tagged and tagged[0][2] == pytest.approx(cycles)
    per_thread = engine.ledger.per_thread()
    assert per_thread["beta.reader"]["tenancy"] == pytest.approx(cycles)


def test_lock_report_untouched_without_resolver():
    engine = Engine(2)
    lock = RWSemaphore(engine, DEFAULT_COSTS, "mmap_sem")

    def writer():
        yield from lock.acquire_write()
        yield Compute(10_000)
        yield from lock.release_write()

    def reader():
        yield Compute(100)
        yield from lock.acquire_read()
        yield from lock.release_read()

    engine.spawn(writer(), core=0)
    engine.spawn(reader(), core=1)
    engine.run()
    # No resolver installed (the un-tenanted machine): no tenant_waits
    # key in the report, no tenancy ledger domain.
    assert "tenant_waits" not in lock.report()
    assert engine.ledger.domain_total(CostDomain.TENANCY) == 0.0


# ---------------------------------------------------------------------------
# Ledger views: exact-match thread registry (t1 vs t10 collision guard).
# ---------------------------------------------------------------------------
def test_ledger_views_use_exact_thread_names():
    system = System(device_bytes=1 << 30, aged=False)
    config = TenancyConfig(tenants=(
        Tenant(name="t1", requests=1), Tenant(name="t10", requests=1)))
    runtime = system.attach_tenancy(config)

    def burn(cycles):
        def gen():
            yield Compute(cycles)
        return gen()

    for name, cycles in (("t1", 1000), ("t10", 50_000)):
        tenant = runtime.tenants[name]
        thread = system.engine.spawn(burn(cycles), core=0,
                                     name=f"{name}.worker")
        runtime.register(thread, tenant)
    system.engine.run()
    views = runtime.ledger_views()
    # Prefix overlap must not bleed: t1's view excludes t10's cycles.
    assert sum(views["t1"].values()) == pytest.approx(1000)
    assert sum(views["t10"].values()) == pytest.approx(50_000)
    assert runtime.tenant_of("t1.worker") == "t1"
    assert runtime.tenant_of("t10.worker") == "t10"
    assert runtime.tenant_of("t1.workerX") is None


# ---------------------------------------------------------------------------
# The consolidate driver end to end.
# ---------------------------------------------------------------------------
def _consolidate_state(config):
    system = System(device_bytes=1 << 30, aged=False)
    run = run_consolidate(system, config)
    locks = [lock.report() for lock in system.engine.locks
             if lock.acquisitions]
    state = result_state(run, system.stats, system.ledger, locks, 0.0)
    del state["wall_seconds"]
    return system, run, state


def test_consolidate_is_deterministic():
    from repro.runner.worker import _reset_naming_counters

    config = consolidate_config(2, "mixed", quotas=True, antagonist=True,
                                requests=6)
    _reset_naming_counters()
    _sys1, _run1, state1 = _consolidate_state(config)
    _reset_naming_counters()
    _sys2, _run2, state2 = _consolidate_state(config)
    assert (json.dumps(state1, sort_keys=True)
            == json.dumps(state2, sort_keys=True))


def test_consolidate_observes_per_tenant_latency():
    config = consolidate_config(2, "apache", requests=5)
    system, run, _state = _consolidate_state(config)
    for name in ("t0", "t1"):
        hist = run.percentiles[f"tenant.{name}.request"]
        assert hist["count"] == 5
        assert hist["p99"] >= hist["p50"] > 0.0
        assert system.stats.get(f"tenant.{name}.requests") == 5
    assert run.counters[Counter.TENANCY_REQUESTS.value] == 10
    system.tenancy.audit()


def test_consolidate_think_time_paces_the_loop():
    fast = consolidate_config(2, "apache", requests=4)
    slow = consolidate_config(2, "apache", requests=4,
                              think_cycles=5e6)
    _s1, run_fast, _ = _consolidate_state(fast)
    _s2, run_slow, _ = _consolidate_state(slow)
    assert run_slow.cycles > run_fast.cycles + 4 * 2.5e6 / 2
    assert run_slow.counters[Counter.TENANCY_THINK_CYCLES.value] > 0


def test_quotas_contain_the_antagonist():
    config = consolidate_config(2, "apache", quotas=True,
                                antagonist=True, requests=5)
    system, run, _state = _consolidate_state(config)
    runtime = system.tenancy
    hog_spec = runtime.tenants["hog"].spec
    # The hog dirtied pages, was CPU-throttled, and its kernel-memory
    # footprint stayed inside limits.memory.
    assert run.counters[Counter.TENANCY_ANTAGONIST_PAGES.value] > 0
    assert system.stats.get("tenant.hog.cpu_throttle_cycles") > 0
    assert runtime.accountant.peak_bytes("hog") <= hog_spec.memory_limit
    # Quota scans ran and the books audit clean.
    assert run.counters[Counter.TENANCY_QUOTA_SCANS.value] > 0
    runtime.audit()


def test_quotas_off_leaves_enforcement_idle():
    config = consolidate_config(2, "apache", requests=5)
    system, run, _state = _consolidate_state(config)
    # Attribution runs (resolver + accountant installed, passive
    # books), but no throttle, no admission, no controller.
    assert system.tenancy.accountant is not None
    assert not system.tenancy.accountant.enforcing
    assert system.tenancy.admission is None
    assert system.tenancy.controller is None
    assert Counter.TENANCY_QUOTA_SCANS.value not in run.counters
    assert Counter.TENANCY_THROTTLE_CYCLES.value not in run.counters


def test_audit_catches_lost_throttle_cycles():
    config = consolidate_config(1, "apache", quotas=True,
                                antagonist=True, requests=4)
    system, _run, _state = _consolidate_state(config)
    runtime = system.tenancy
    runtime.audit()
    throttle = runtime._throttles["hog"]
    throttle.throttled_cycles += 12345.0  # lose a charge
    with pytest.raises(QuotaAccountingError):
        runtime.audit()
