"""Tests for the parallel sweep runner and its result cache.

The runner's contract is exactness: a point's result must be the same
whether it was simulated sequentially, simulated in a worker process,
or replayed from the content-addressed cache — and merged sweep-level
``Stats``/``Ledger`` must come out identical in all three cases.
"""

import json
import time

import pytest

from repro.cli import main as cli_main
from repro.errors import DeadlockError, MemoryError_
from repro.obs import CostDomain
from repro.obs.histogram import Histogram
from repro.obs.ledger import Ledger
from repro.runner import (
    ResultCache,
    SweepPoint,
    build_sweep,
    code_fingerprint,
    run_sweep,
)
from repro.runner.cache import TELEMETRY
from repro.runner.manifest import Sweep
from repro.runner.worker import run_point
from repro.sim.stats import Stats


def tiny_sweep() -> Sweep:
    """A fast two-series ephemeral sweep (4 points, small files)."""
    points = []
    for threads in (1, 2):
        for interface in ("read", "daxvm"):
            points.append(SweepPoint(
                experiment="ephemeral", series=interface, x=threads,
                params={"file_size": 8 << 10, "num_files": 16,
                        "num_threads": threads, "interface": interface},
                media="optane", device_gib=1, aged=False))
    return Sweep(name="tiny", title="tiny", points=points, axis="threads")


def canon(point_result) -> str:
    return json.dumps(point_result.comparable_state(), sort_keys=True)


# ---------------------------------------------------------------------------
# Serialisation round-trips (the cache's correctness foundation).
# ---------------------------------------------------------------------------
def test_histogram_state_roundtrip_through_json():
    hist = Histogram()
    for v in (1.0, 5.5, 42.0, 1e6, 0.0):
        hist.record(v)
    wire = json.loads(json.dumps(hist.to_state()))
    back = Histogram.from_state(wire)
    assert back.to_state() == hist.to_state()
    assert back.count == hist.count
    assert back.percentile(50) == hist.percentile(50)


def test_stats_state_roundtrip_and_merge():
    stats = Stats()
    stats.add("vm.faults", 3)
    stats.sample("throughput", 10.0, 1.5)
    stats.observe("span.op", 123.4)
    wire = json.loads(json.dumps(stats.to_state()))
    back = Stats.from_state(wire)
    assert back.to_state() == stats.to_state()
    merged = Stats()
    merged.merge(back)
    merged.merge(Stats.from_state(wire))
    assert merged.get("vm.faults") == 6


def test_ledger_state_roundtrip_preserves_events():
    ledger = Ledger()
    ledger.record("t0", CostDomain.SYSCALL, "mmap", 100.0)
    ledger.record("t1", CostDomain.LOCK_WAIT, "sem/odd-name", 25.0)
    wire = json.loads(json.dumps(ledger.to_state()))
    back = Ledger.from_state(wire)
    assert back.to_state() == ledger.to_state()
    assert back.event_total(CostDomain.LOCK_WAIT, "sem/odd-name") == 25.0


# ---------------------------------------------------------------------------
# Cache keys.
# ---------------------------------------------------------------------------
def test_cache_key_stability_and_sensitivity():
    fp = code_fingerprint()
    a = tiny_sweep().points[0]
    same = tiny_sweep().points[0]
    assert a.cache_key(fp) == same.cache_key(fp)
    changed = tiny_sweep().points[0]
    changed.params["num_files"] = 17
    assert changed.cache_key(fp) != a.cache_key(fp)
    other_media = tiny_sweep().points[0]
    other_media.media = "fast-nvm"
    assert other_media.cache_key(fp) != a.cache_key(fp)
    assert a.cache_key("deadbeef") != a.cache_key(fp)


# ---------------------------------------------------------------------------
# Cache round-trip: warm replay is exact.
# ---------------------------------------------------------------------------
def test_cache_roundtrip_is_exact(tmp_path):
    cache = ResultCache(tmp_path / "cache")
    cold = run_sweep(tiny_sweep(), jobs=1, cache=cache)
    assert cold.misses == len(cold.points) and cold.hits == 0
    warm = run_sweep(tiny_sweep(), jobs=1,
                     cache=ResultCache(tmp_path / "cache"))
    assert warm.hits == len(warm.points) and warm.misses == 0
    assert all(pr.cached for pr in warm.points)
    for a, b in zip(cold.points, warm.points):
        assert canon(a) == canon(b)
    assert warm.merged_stats().to_json() == cold.merged_stats().to_json()
    assert (warm.merged_ledger().to_json()
            == cold.merged_ledger().to_json())


def test_corrupt_cache_entry_is_a_miss(tmp_path):
    """A torn entry is counted, moved aside for post-mortem and then
    treated as a miss — never silently re-read or deleted."""
    cache = ResultCache(tmp_path / "cache")
    key = tiny_sweep().points[0].cache_key(code_fingerprint())
    cache.put(key, {"bogus": True})
    entry = tmp_path / "cache" / f"{key}.json"
    entry.write_text("{not json")  # simulate a truncated/torn write
    telemetry_before = len(TELEMETRY)
    assert cache.get(key) is None
    assert cache.corrupt == 1 and cache.misses == 1 and cache.hits == 0
    assert not entry.exists()
    moved = tmp_path / "cache" / f"{key}.corrupt"
    assert moved.read_text() == "{not json"
    record = TELEMETRY[-1]
    assert len(TELEMETRY) == telemetry_before + 1
    assert record["corrupt"] and not record["hit"]
    assert record["key"] == key and record["moved_to"] == str(moved)
    # The next put/get cycle works normally again.
    cache.put(key, {"fine": True})
    assert cache.get(key) == {"fine": True}
    assert cache.corrupt == 1 and cache.hits == 1


def test_cache_hit_wall_time_is_per_point(tmp_path):
    """Each cache hit reports the wall time of *its own* load, not the
    sweep's cumulative elapsed time (the old bug made the Nth hit look
    N times slower than the first)."""

    class SlowCache(ResultCache):
        delay = 0.02

        def get(self, key):
            time.sleep(self.delay)
            return super().get(key)

    run_sweep(tiny_sweep(), jobs=1, cache=ResultCache(tmp_path / "cache"))
    telemetry_before = len(TELEMETRY)
    warm = run_sweep(tiny_sweep(), jobs=1,
                     cache=SlowCache(tmp_path / "cache"))
    assert warm.hits == len(warm.points) == 4
    walls = [pr.wall_seconds for pr in warm.points]
    # Cumulative accounting would make the last point >= 4 * delay.
    assert all(SlowCache.delay <= w < 3 * SlowCache.delay for w in walls)
    hit_records = [r for r in TELEMETRY[telemetry_before:] if r["hit"]]
    assert [r["wall_seconds"] for r in hit_records] == walls


# ---------------------------------------------------------------------------
# Parallel execution is bit-identical to sequential.
# ---------------------------------------------------------------------------
def test_parallel_matches_sequential():
    seq = run_sweep(tiny_sweep(), jobs=1)
    par = run_sweep(tiny_sweep(), jobs=4)
    assert par.hits == 0  # no cache involved
    for a, b in zip(seq.points, par.points):
        assert a.point.label == b.point.label
        assert canon(a) == canon(b)
    assert par.merged_stats().to_json() == seq.merged_stats().to_json()
    assert (par.merged_ledger().to_json()
            == seq.merged_ledger().to_json())


def test_sweep_result_series_and_table():
    result = run_sweep(tiny_sweep(), jobs=1)
    series = result.series()
    assert [s.label for s in series] == ["read", "daxvm"]
    assert all(len(s.points) == 2 for s in series)
    table = result.table()
    assert len(table.rows) == 4
    assert result.hit_ratio == 0.0


# ---------------------------------------------------------------------------
# Fault isolation: a bad point never takes the sweep down.
# ---------------------------------------------------------------------------
def selftest_sweep_of(modes, **extra_params) -> Sweep:
    """A sweep of selftest points (one diagnostic mode per point)."""
    points = [SweepPoint(experiment="selftest", series=mode, x=i,
                         params={"mode": mode, **extra_params},
                         media="optane", device_gib=1, aged=False)
              for i, mode in enumerate(modes)]
    return Sweep(name="selftest", title="selftest", points=points,
                 axis="slot")


def test_worker_crash_is_quarantined_with_partial_results():
    result = run_sweep(selftest_sweep_of(["ok", "crash", "ok"]), jobs=1)
    assert [pr.point.series for pr in result.points] == ["ok", "ok"]
    assert len(result.failed) == 1
    failure = result.failed[0]
    assert failure.reason == "error" and failure.attempts == 1
    assert failure.error_type == "RuntimeError"
    assert "injected worker crash" in failure.message
    assert len(result.failed_table().rows) == 1


def test_oom_and_deadlock_surface_with_their_types():
    """ENOMEM and deadlock raised mid-point keep their identity through
    the quarantine machinery instead of collapsing into a generic
    failure."""
    with pytest.raises(MemoryError_):
        run_point(selftest_sweep_of(["oom"]).points[0].to_payload())
    with pytest.raises(DeadlockError):
        run_point(selftest_sweep_of(["deadlock"]).points[0].to_payload())
    result = run_sweep(selftest_sweep_of(["oom", "ok", "deadlock"]),
                       jobs=1)
    assert [pr.point.series for pr in result.points] == ["ok"]
    assert ([f.error_type for f in result.failed]
            == ["MemoryError_", "DeadlockError"])
    assert all(f.reason == "error" for f in result.failed)


def test_retryable_error_retries_with_backoff_then_succeeds():
    sweep = selftest_sweep_of(["flaky", "ok", "flaky"])
    no_retry = run_sweep(sweep, jobs=1, max_retries=0)
    assert ([f.error_type for f in no_retry.failed]
            == ["DeviceStallError", "DeviceStallError"])
    assert len(no_retry.points) == 1
    retried = run_sweep(sweep, jobs=1, max_retries=2, retry_seed=7)
    assert not retried.failed
    assert [pr.point.series for pr in retried.points] == sweep_series(
        sweep)


def sweep_series(sweep: Sweep):
    return [p.series for p in sweep.points]


def test_hung_point_quarantined_by_watchdog():
    """With ``point_timeout`` set and ``jobs >= 2``, a hung worker is
    detected on collection; the sweep still returns every healthy
    point's result."""
    sweep = selftest_sweep_of(["ok", "hang", "ok", "ok"],
                              hang_seconds=60.0)
    result = run_sweep(sweep, jobs=2, point_timeout=1.5)
    assert [pr.point.series for pr in result.points] == ["ok", "ok", "ok"]
    assert len(result.failed) == 1
    failure = result.failed[0]
    assert failure.reason == "timeout"
    assert failure.error_type == "TimeoutError"
    assert failure.point.series == "hang"


def test_parallel_survivors_match_sequential_with_failures():
    sweep = selftest_sweep_of(["ok", "crash", "ok"])
    seq = run_sweep(sweep, jobs=1)
    par = run_sweep(sweep, jobs=2)
    assert len(seq.points) == len(par.points) == 2
    for a, b in zip(seq.points, par.points):
        assert a.point.label == b.point.label
        assert canon(a) == canon(b)
    assert ([f.error_type for f in par.failed]
            == [f.error_type for f in seq.failed])


# ---------------------------------------------------------------------------
# Registered sweeps and the CLI entry point.
# ---------------------------------------------------------------------------
def test_build_sweep_registry():
    sweep = build_sweep("apache", ops=8, size=32 << 10, media="optane",
                        device_gib=1, aged=False)
    assert len(sweep.points) == 12
    with pytest.raises(KeyError):
        build_sweep("nope", ops=8, size=32 << 10, media="optane",
                    device_gib=1, aged=False)


def test_cli_sweep_smoke(tmp_path, capsys):
    argv = ["sweep", "apache", "--ops", "8", "--device", "1",
            "--jobs", "2", "--cache-dir", str(tmp_path / "cache")]
    assert cli_main(argv) == 0
    cold = capsys.readouterr().out
    assert "0/12 points served from cache" in cold
    assert cli_main(argv + ["--verify-cache"]) == 0
    warm = capsys.readouterr().out
    assert "12/12 points served from cache" in warm
    assert "cache verify OK" in warm


def test_cli_sweep_requires_name():
    assert cli_main(["sweep"]) == 2
