"""Cross-cutting hypothesis property tests on core invariants.

(Additional structure-specific property tests live next to their
units: rb-tree, interval set, block allocator, extent tree.)
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.config import DEFAULT_COSTS
from repro.errors import SegmentationFault
from repro.fs.block import BlockDevice
from repro.fs.extent import ExtentTree
from repro.mem.physmem import PhysicalMemory
from repro.paging.flags import PageFlags
from repro.paging.pagetable import PageTable
from repro.vm.layout import AddressSpaceLayout


# ---------------------------------------------------------------------------
# Page table vs a dict model.
# ---------------------------------------------------------------------------
@settings(max_examples=40, deadline=None)
@given(st.lists(st.tuples(st.booleans(), st.integers(0, 200)),
                max_size=100))
def test_pagetable_matches_dict_model(ops):
    pm = PhysicalMemory(1 << 30, 1 << 30)
    pt = PageTable(pm)
    model = {}
    for do_map, page in ops:
        vaddr = page * 4096
        if do_map:
            if page not in model:
                pt.map_page(vaddr, 1000 + page, PageFlags.rw())
                model[page] = 1000 + page
        else:
            assert pt.unmap_page(vaddr) == (page in model)
            model.pop(page, None)
    for page in range(201):
        if page in model:
            assert pt.translate(page * 4096).frame == model[page]
        else:
            try:
                pt.translate(page * 4096)
                assert False, "translated a hole"
            except SegmentationFault:
                pass


@settings(max_examples=30, deadline=None)
@given(st.lists(st.integers(0, 100), min_size=1, max_size=60))
def test_pagetable_frame_accounting_balances(pages):
    """After unmapping everything, all interior frames are freed."""
    pm = PhysicalMemory(1 << 30, 1 << 30)
    pt = PageTable(pm)
    baseline = pm.dram.allocated_frames
    unique = sorted(set(pages))
    for page in unique:
        pt.map_page(page * 4096, page, PageFlags.rw())
    for page in unique:
        pt.unmap_page(page * 4096)
    assert pm.dram.allocated_frames == baseline


# ---------------------------------------------------------------------------
# Address-space layout: no overlaps ever.
# ---------------------------------------------------------------------------
@settings(max_examples=40, deadline=None)
@given(st.lists(st.integers(1, 64), min_size=1, max_size=60),
       st.integers(0, 1 << 16))
def test_layout_never_hands_out_overlaps(sizes, seed):
    layout = AddressSpaceLayout(aslr_seed=seed)
    live = []
    for i, npages in enumerate(sizes):
        size = npages * 4096
        addr = layout.allocate(size)
        for start, end in live:
            assert addr + size <= start or addr >= end, "overlap!"
        live.append((addr, addr + size))
        if i % 4 == 3 and live:
            start, end = live.pop(0)
            layout.free(start, end - start)


# ---------------------------------------------------------------------------
# Extent tree lookups agree with a flat model.
# ---------------------------------------------------------------------------
@settings(max_examples=40, deadline=None)
@given(st.lists(st.tuples(st.integers(0, 5000), st.integers(1, 300)),
                min_size=1, max_size=25))
def test_extent_lookup_matches_flat_model(appends):
    tree = ExtentTree()
    flat = []
    for phys, length in appends:
        tree.append(phys, length)
        flat.extend(range(phys, phys + length))
    for logical in range(0, len(flat), max(1, len(flat) // 37)):
        assert tree.physical_block(logical) == flat[logical]
    assert tree.physical_block(len(flat)) is None


# ---------------------------------------------------------------------------
# FS-level conservation: alloc/free through chunked allocation.
# ---------------------------------------------------------------------------
@settings(max_examples=25, deadline=None)
@given(st.lists(st.integers(1, 1500), min_size=1, max_size=20),
       st.integers(0, 10_000))
def test_chunked_alloc_free_conservation(sizes, seed):
    """The FileSystem-style 2 MB-chunked allocation pattern conserves
    blocks and never corrupts the free list."""
    dev = BlockDevice(64 << 20)
    files = []
    for nblocks in sizes:
        if nblocks > dev.free_blocks:
            continue
        runs = []
        remaining = nblocks
        while remaining > 0:
            chunk = min(remaining, 512)
            align = 512 if chunk == 512 else 1
            runs.extend(dev.alloc(chunk, align=align))
            remaining -= chunk
        files.append(runs)
        dev.check_invariants()
    total_live = sum(l for runs in files for _s, l in runs)
    assert dev.free_blocks + total_live == dev.total_blocks
    for runs in files:
        for start, length in runs:
            dev.free(start, length)
    dev.check_invariants()
    assert dev.free_blocks == dev.total_blocks


# ---------------------------------------------------------------------------
# Cost-model sanity under arbitrary byte counts.
# ---------------------------------------------------------------------------
@settings(max_examples=60, deadline=None)
@given(st.integers(1, 1 << 28))
def test_cost_functions_are_positive_and_monotone(nbytes):
    from repro.mem.latency import MemoryModel
    from repro.mem.physmem import Medium

    mem = MemoryModel(DEFAULT_COSTS)
    read = mem.stream_read(nbytes, Medium.PMEM)
    assert read > 0
    assert mem.stream_read(nbytes + 4096, Medium.PMEM) >= read
    assert mem.clwb_flush(nbytes) > mem.stream_write(nbytes, Medium.PMEM)
