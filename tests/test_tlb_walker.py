"""Tests for the TLB model, page walker (Table II) and shootdowns."""

import pytest

from repro.config import DEFAULT_COSTS, DEFAULT_MACHINE
from repro.mem.physmem import Medium
from repro.paging.pagetable import PMD_LEVEL
from repro.paging.tlb import AccessPattern, ShootdownController, TLBModel
from repro.paging.walker import PageWalker
from repro.sim.engine import Engine
from repro.sim.stats import Stats


@pytest.fixture
def walker():
    return PageWalker(DEFAULT_COSTS)


def test_table2_dram_walk_costs(walker):
    """Paper Table II: 28 (seq) / 111 (rand) cycles with DRAM tables."""
    seq = walker.walk_cost(AccessPattern.SEQUENTIAL, Medium.DRAM)
    rand = walker.walk_cost(AccessPattern.RANDOM, Medium.DRAM)
    assert seq == pytest.approx(28, rel=0.15)
    assert rand == pytest.approx(111, rel=0.15)


def test_table2_pmem_walk_costs(walker):
    """Paper Table II: 103 (seq) / 821 (rand) cycles with PMem tables."""
    seq = walker.walk_cost(AccessPattern.SEQUENTIAL, Medium.PMEM)
    rand = walker.walk_cost(AccessPattern.RANDOM, Medium.PMEM)
    assert seq == pytest.approx(103, rel=0.20)
    assert rand == pytest.approx(821, rel=0.15)


def test_huge_walks_are_cheap(walker):
    huge = walker.walk_cost(AccessPattern.RANDOM, Medium.PMEM, PMD_LEVEL)
    small = walker.walk_cost(AccessPattern.RANDOM, Medium.PMEM)
    assert huge < small / 10


def test_mmu_overhead(walker):
    assert walker.mmu_overhead(1000, 100, 1_000_000) == pytest.approx(0.1)
    assert walker.mmu_overhead(0, 100, 0) == 0.0


def test_tlb_reach_and_scan_misses():
    tlb = TLBModel(DEFAULT_COSTS, DEFAULT_MACHINE)
    assert tlb.reach(4096) == 1536 * 4096
    assert tlb.scan_misses(1 << 20, 4096) == 256
    assert tlb.scan_misses(1 << 20, 2 << 20) == 1


def test_random_misses_saturate_out_of_reach():
    tlb = TLBModel(DEFAULT_COSTS, DEFAULT_MACHINE)
    big = 10 << 30
    assert tlb.random_op_misses(1000, 4096, 4096, big) == 1000
    small = 1 << 20  # fits in reach: bounded by resident pages
    assert tlb.random_op_misses(10_000, 4096, 4096, small) == 256


def _flush(engine, controller, initiator, cores, pages, force=False):
    def worker():
        yield from controller.flush(initiator, cores, pages,
                                    force_full=force)
    engine.spawn(worker(), core=initiator)
    engine.run()


def test_shootdown_policy_threshold():
    costs = DEFAULT_COSTS
    controller = ShootdownController(Engine(4), costs, Stats())
    assert not controller.wants_full_flush(costs.full_flush_threshold)
    assert controller.wants_full_flush(costs.full_flush_threshold + 1)


def test_range_flush_sends_ipis_to_remote_cores():
    engine = Engine(4)
    stats = Stats()
    controller = ShootdownController(engine, DEFAULT_COSTS, stats)
    _flush(engine, controller, 0, {0, 1, 2}, pages=4)
    assert stats.get("tlb.range_flushes") == 1
    assert stats.get("tlb.ipis") == 2
    # Remote cores carry interrupt debt.
    assert engine.cores[1].stolen_cycles > 0
    assert engine.cores[3].stolen_cycles == 0  # not in the cpumask


def test_full_flush_beyond_threshold():
    engine = Engine(4)
    stats = Stats()
    controller = ShootdownController(engine, DEFAULT_COSTS, stats)
    _flush(engine, controller, 0, {0, 1}, pages=100)
    assert stats.get("tlb.full_flushes") == 1
    assert stats.get("tlb.range_flushes") == 0


def test_local_only_flush_sends_no_ipis():
    engine = Engine(4)
    stats = Stats()
    controller = ShootdownController(engine, DEFAULT_COSTS, stats)
    _flush(engine, controller, 0, {0}, pages=4)
    assert stats.get("tlb.ipis") == 0


def test_full_flush_is_cheaper_than_many_page_invalidations():
    """The rationale for batching: one full flush beats N invlpg IPIs."""
    costs = DEFAULT_COSTS

    def cost_of(pages, force):
        engine = Engine(16)
        controller = ShootdownController(engine, costs, Stats())
        _flush(engine, controller, 0, set(range(16)), pages, force)
        return engine.now

    many_small = 10 * cost_of(8, force=False)
    one_full = cost_of(80, force=True)
    assert one_full < many_small
