"""LATR baseline tests."""

from repro.baselines.latr import LatrUnmapper
from repro.vm.vma import MapFlags, Protection


def run(system, gen, core=0):
    thread = system.spawn(gen, core=core)
    system.run()
    return thread.result


def make_file(system, size, path="/f"):
    def flow():
        f = yield from system.fs.open(path, create=True)
        yield from system.fs.write(f, 0, size)
        return f.inode

    return run(system, flow())


def test_latr_unmap_posts_messages_instead_of_ipis(system):
    inode = make_file(system, 32 << 10)
    proc = system.new_process()
    proc.mm.register_thread(0)
    proc.mm.register_thread(1)
    latr = LatrUnmapper(system.engine, proc.mm, system.costs,
                        system.stats)

    def flow():
        vma = yield from proc.mm.mmap(system.fs, inode, 0, 32 << 10,
                                      Protection.READ, MapFlags.SHARED)
        yield from proc.mm.access(vma, 0, 32 << 10)
        yield from latr.munmap(vma)

    run(system, flow())
    assert system.stats.get("latr.lazy_invalidations") == 1
    assert system.stats.get("tlb.ipis") == 0  # no synchronous IPIs
    assert proc.mm.find_vma(0x7F0000000000) is None
    # The remote core still pays a (deferred) apply cost.
    assert system.engine.cores[1].stolen_cycles > 0


def test_latr_cheaper_than_sync_unmap_single_run(system):
    inode = make_file(system, 32 << 10)

    def cost(use_latr):
        proc = system.new_process()
        for c in range(4):
            proc.mm.register_thread(c)
        latr = LatrUnmapper(system.engine, proc.mm, system.costs,
                            system.stats)

        def flow():
            vma = yield from proc.mm.mmap(system.fs, inode, 0, 32 << 10,
                                          Protection.READ,
                                          MapFlags.SHARED)
            yield from proc.mm.access(vma, 0, 32 << 10)
            t0 = system.engine.now
            if use_latr:
                yield from latr.munmap(vma)
            else:
                yield from proc.mm.munmap(vma)
            return system.engine.now - t0

        return run(system, flow())

    sync = cost(False)
    lazy = cost(True)
    assert lazy < sync
