"""Unit tests for the discrete-event engine."""

import pytest

from repro.errors import DeadlockError, SimulationError
from repro.obs import CostDomain, charge
from repro.sim.engine import Block, Compute, Engine, Spawn, Wake


def test_compute_advances_clock():
    engine = Engine(2)

    def worker():
        yield Compute(100)
        yield Compute(50)
        return "done"

    thread = engine.spawn(worker())
    final = engine.run()
    assert final == 150
    assert thread.result == "done"
    assert thread.finished
    assert thread.runtime == 150


def test_zero_compute_is_allowed():
    engine = Engine(1)

    def worker():
        yield Compute(0)

    engine.spawn(worker())
    assert engine.run() == 0


def test_negative_compute_rejected():
    with pytest.raises(SimulationError):
        Compute(-1)


def test_threads_interleave_by_time():
    engine = Engine(2)
    order = []

    def worker(name, step):
        for _ in range(3):
            yield Compute(step)
            order.append((name, engine.now))

    engine.spawn(worker("fast", 10), core=0)
    engine.spawn(worker("slow", 25), core=1)
    engine.run()
    assert order == [("fast", 10), ("fast", 20), ("slow", 25),
                     ("fast", 30), ("slow", 50), ("slow", 75)]


def test_block_and_wake():
    engine = Engine(2)
    events = []

    def sleeper():
        value = yield Block()
        events.append(("woke", engine.now, value))

    def waker(target):
        yield Compute(500)
        yield Wake(target, delay=20, value="hello")
        events.append(("waker-done", engine.now))

    t1 = engine.spawn(sleeper())
    engine.spawn(waker(t1))
    engine.run()
    assert ("woke", 520, "hello") in events


def test_wake_non_blocked_thread_fails():
    engine = Engine(2)

    def runner():
        yield Compute(10)
        yield Compute(10)

    def bad_waker(target):
        yield Wake(target)

    target = engine.spawn(runner())
    engine.spawn(bad_waker(target))
    with pytest.raises(SimulationError):
        engine.run()


def test_spawn_effect_returns_child():
    engine = Engine(2)
    seen = {}

    def child():
        yield Compute(5)
        return 42

    def parent():
        handle = yield Spawn(child(), name="kid")
        seen["child"] = handle
        yield Compute(1)

    engine.spawn(parent())
    engine.run()
    assert seen["child"].result == 42


def test_deadlock_detection():
    engine = Engine(1)

    def stuck():
        yield Block()

    engine.spawn(stuck())
    with pytest.raises(DeadlockError):
        engine.run()


def test_daemon_does_not_keep_engine_alive():
    engine = Engine(2)
    ticks = []

    def daemon():
        while True:
            yield Compute(10)
            ticks.append(engine.now)

    def fg():
        yield Compute(35)

    engine.spawn(daemon(), daemon=True)
    engine.spawn(fg())
    engine.run()
    assert engine.now == 35
    assert len(ticks) <= 4


def test_interrupt_steals_cycles():
    engine = Engine(2)

    def victim():
        yield Compute(100)
        yield Compute(100)

    thread = engine.spawn(victim(), core=1)
    engine.interrupt_cores([1], 40)
    engine.run()
    # First compute absorbs the 40-cycle interrupt.
    assert thread.finished_at == 240


def test_interrupt_debt_absorption_is_bounded():
    engine = Engine(2)
    times = []

    def victim():
        for _ in range(40):
            yield Compute(10)
            times.append(engine.now)

    engine.spawn(victim(), core=0)
    engine.cores[0].interrupt(50_000)
    engine.run()
    # A tiny compute must not absorb the entire 50k debt at once.
    assert times[0] <= 10 + (10 + 1000)
    # But the debt is eventually paid in full.
    assert times[-1] == pytest.approx(400 + 40 * 0 + 50_000, rel=0.3)


def test_determinism():
    def build():
        engine = Engine(4)

        def worker(i):
            for _ in range(5):
                yield Compute(7 * (i + 1))

        for i in range(4):
            engine.spawn(worker(i), core=i)
        return engine.run()

    assert build() == build()


def test_event_budget():
    engine = Engine(1)

    def spin():
        while True:
            yield Compute(1)

    engine.spawn(spin())
    with pytest.raises(SimulationError):
        engine.run(max_events=100)


def test_core_out_of_range():
    engine = Engine(2)

    def worker():
        yield Compute(1)

    with pytest.raises(SimulationError):
        engine.spawn(worker(), core=7)


def test_daemon_events_drain_at_shutdown():
    """Daemon events queued past the last foreground finish are
    discarded, and a re-entered run() is a no-op."""
    engine = Engine(2)
    ticks = []

    def daemon():
        while True:
            yield Compute(10)
            ticks.append(engine.now)

    def fg():
        yield Compute(25)

    engine.spawn(daemon(), daemon=True, core=0)
    engine.spawn(fg(), core=1)
    final = engine.run()
    assert final == 25
    assert all(t <= 25 for t in ticks)
    # The daemon's next event is still queued but must never execute:
    # no foreground work remains, so run() returns immediately.
    before = len(ticks)
    assert engine.run() == 25
    assert len(ticks) == before


def test_wake_already_runnable_thread_fails():
    """A second Wake racing the first must fail loudly, not double-
    schedule the sleeper."""
    engine = Engine(4)

    def sleeper():
        yield Block()
        yield Compute(1000)

    def waker(target, delay):
        yield Compute(delay)
        yield Wake(target)

    target = engine.spawn(sleeper())
    engine.spawn(waker(target, 10))
    engine.spawn(waker(target, 20))
    with pytest.raises(SimulationError):
        engine.run()


def test_wake_finished_thread_fails():
    engine = Engine(2)

    def quick():
        yield Compute(1)

    def late_waker(target):
        yield Compute(100)
        yield Wake(target)

    target = engine.spawn(quick())
    engine.spawn(late_waker(target))
    with pytest.raises(SimulationError):
        engine.run()


def test_equal_timestamp_tie_break_is_spawn_order():
    """Events at identical timestamps run in monotone sequence order
    (spawn order), so schedules are reproducible."""
    def build():
        engine = Engine(8)
        order = []

        def worker(i):
            yield Compute(10)
            order.append(i)
            yield Compute(10)
            order.append(i)

        for i in range(6):
            engine.spawn(worker(i), core=i)
        engine.run()
        return order

    first = build()
    assert first == [0, 1, 2, 3, 4, 5, 0, 1, 2, 3, 4, 5]
    assert first == build()


def test_ledger_attributes_charges_and_uncharged_compute():
    engine = Engine(2)

    def worker():
        yield charge(CostDomain.ZEROING, "zero-fill", 300)
        yield Compute(100)

    engine.spawn(worker(), core=0)
    engine.run()
    assert engine.ledger.domain_total(CostDomain.ZEROING) == 300
    assert engine.ledger.domain_total(CostDomain.USERSPACE) == 100
    assert engine.ledger.event_total(CostDomain.USERSPACE,
                                     "uncharged") == 100
    assert engine.ledger.total() == 400


def test_ledger_books_stolen_cycles_as_shootdown():
    engine = Engine(2)

    def victim():
        yield charge(CostDomain.COPY, "memcpy", 100)

    engine.spawn(victim(), core=1)
    engine.interrupt_cores([1], 40)
    engine.run()
    assert engine.ledger.domain_total(CostDomain.COPY) == 100
    assert engine.ledger.event_total(CostDomain.TLB_SHOOTDOWN,
                                     "ipi-stolen") == 40
    assert engine.now == 140


def test_seconds_conversion():
    engine = Engine(1)

    def worker():
        yield Compute(2.7e9)

    engine.spawn(worker())
    engine.run()
    assert engine.seconds() == pytest.approx(1.0)


def test_seconds_uses_configured_frequency():
    """seconds() must follow the engine's freq_hz, not a hardcoded
    2.7 GHz (the historical bug)."""
    engine = Engine(1, freq_hz=1e9)

    def worker():
        yield Compute(1e9)

    engine.spawn(worker())
    engine.run()
    assert engine.seconds() == pytest.approx(1.0)
    assert engine.seconds(5e8) == pytest.approx(0.5)
    # An explicit override still wins.
    assert engine.seconds(5e8, freq_hz=5e8) == pytest.approx(1.0)


def test_system_threads_machine_frequency_into_engine():
    import dataclasses

    from repro.config import CostModel, MachineConfig
    from repro.system import System

    costs = CostModel()
    costs = dataclasses.replace(
        costs, machine=dataclasses.replace(costs.machine, freq_hz=1e9))
    system = System(costs=costs, device_bytes=1 << 30)
    assert system.engine.freq_hz == 1e9
    assert system.engine.seconds(2e9) == pytest.approx(2.0)
    assert MachineConfig().freq_hz == 2.7e9  # default unchanged


def test_wake_race_within_delay_window_queues():
    """Two wakers inside the first wake's delay window: the target
    stays BLOCKED until delivery, so the second Wake queues instead of
    raising (the historical bug marked the target RUNNABLE at issue)."""
    engine = Engine(4)
    events = []

    def sleeper():
        first = yield Block()
        events.append(("woke", engine.now, first))
        yield Compute(100)
        second = yield Block()
        events.append(("woke", engine.now, second))

    def waker(target, at, value):
        yield Compute(at)
        yield Wake(target, delay=50, value=value)

    target = engine.spawn(sleeper())
    engine.spawn(waker(target, 10, "first"))
    engine.spawn(waker(target, 20, "second"))
    engine.run()
    # First token delivers at 60; the second fires at 70 while the
    # target is computing (until 160), is banked, and satisfies the
    # next Block() immediately.
    assert events == [("woke", 60, "first"), ("woke", 160, "second")]


def test_wake_delivery_order_is_deterministic():
    """Same-deadline tokens deliver in issue order (seq tie-break)."""
    engine = Engine(4)
    got = []

    def sleeper():
        while len(got) < 2:
            got.append((yield Block()))

    def waker(target, value):
        yield Wake(target, delay=30, value=value)

    target = engine.spawn(sleeper())
    engine.spawn(waker(target, "a"))
    engine.spawn(waker(target, "b"))
    engine.run()
    assert got == ["a", "b"]


def test_event_budget_is_per_call():
    """max_events budgets each run() call, not the engine lifetime
    (the historical bug compared the cumulative counter)."""
    engine = Engine(1)

    def phase():
        for _ in range(80):
            yield Compute(1)

    engine.spawn(phase())
    engine.run(max_events=100)
    assert engine.events_processed >= 80
    # A second phase gets its own 100-event budget; under the old
    # cumulative comparison this raised immediately.
    engine.spawn(phase())
    engine.run(max_events=100)


def test_event_budget_still_trips_within_one_call():
    engine = Engine(1)

    def spin():
        while True:
            yield Compute(1)

    engine.spawn(spin())
    with pytest.raises(SimulationError):
        engine.run(max_events=50)


def test_stolen_cycles_attributed_to_interrupting_source():
    """Mixed interrupt sources split FIFO into their own ledger
    buckets (the historical code booked everything to ipi-stolen)."""
    engine = Engine(2)

    def victim():
        yield charge(CostDomain.COPY, "memcpy", 100)

    engine.spawn(victim(), core=1)
    engine.interrupt_cores([1], 40)  # default: TLB shootdown IPI
    engine.cores[1].interrupt(25, domain=CostDomain.FAULTS,
                              event="stall-stolen")
    engine.run()
    assert engine.ledger.event_total(CostDomain.TLB_SHOOTDOWN,
                                     "ipi-stolen") == 40
    assert engine.ledger.event_total(CostDomain.FAULTS,
                                     "stall-stolen") == 25
    assert engine.now == 165


def test_stolen_attribution_respects_absorption_bound():
    """A bounded drain pays debts oldest-first; the remainder waits
    for the next charge."""
    engine = Engine(1)

    def victim():
        yield charge(CostDomain.COPY, "memcpy", 10)    # absorbs <= 1010
        yield charge(CostDomain.COPY, "memcpy", 1000)  # absorbs the rest

    engine.spawn(victim(), core=0)
    engine.cores[0].interrupt(600)
    engine.cores[0].interrupt(600, domain=CostDomain.FAULTS,
                              event="stall-stolen")
    engine.run()
    assert engine.ledger.event_total(CostDomain.TLB_SHOOTDOWN,
                                     "ipi-stolen") == 600
    assert engine.ledger.event_total(CostDomain.FAULTS,
                                     "stall-stolen") == 600
    assert engine.cores[0].stolen_cycles == 0.0


def test_broadcast_interrupt_spares_current_and_daemons():
    engine = Engine(4)

    def toucher():
        yield Compute(1)
        engine.broadcast_interrupt(50, CostDomain.FAULTS, "stall-stolen")
        yield Compute(1)

    def victim():
        yield Compute(5)
        yield Compute(200)  # absorbs the broadcast debt

    def daemon():
        while True:
            yield Compute(10)

    engine.spawn(toucher(), core=0)
    engine.spawn(victim(), core=1)
    engine.spawn(victim(), core=2)
    engine.spawn(daemon(), core=3, daemon=True)
    engine.run()
    assert engine.cores[0].total_interrupts == 0  # caller exempt
    assert engine.cores[3].total_interrupts == 0  # daemon exempt
    assert engine.ledger.event_total(CostDomain.FAULTS,
                                     "stall-stolen") == 100


def test_charge_span_matches_separate_charges():
    from repro.obs import charge_span

    entries = [(CostDomain.COPY, "data-access", 120.0),
               (CostDomain.NUMA, "remote-access", 30.0),
               (CostDomain.WALK, "tlb-walk", 7.5)]

    def spanned():
        yield charge_span(entries)

    def separate():
        for domain, event, cycles in entries:
            yield charge(domain, event, cycles)

    a = Engine(1)
    a.spawn(spanned(), core=0)
    a.run()
    b = Engine(1)
    b.spawn(separate(), core=0)
    b.run()
    assert a.now == b.now
    assert a.events_processed == b.events_processed
    assert a.ledger.to_state() == b.ledger.to_state()


def test_charge_span_validates_entries():
    from repro.obs import charge_span

    with pytest.raises(SimulationError):
        charge_span([("copy", "data", 1.0)])
    with pytest.raises(SimulationError):
        charge_span([(CostDomain.COPY, "data", -1.0)])
    # An empty span is a zero-cost scheduling point, like Compute(0).
    engine = Engine(1)

    def worker():
        yield charge_span([])
        yield Compute(5)

    engine.spawn(worker())
    assert engine.run() == 5


def test_fast_forward_off_matches_on():
    """The classic heap path and the fast-forward drain must produce
    identical clocks, ledgers and event counts."""
    from repro.obs import charge_span
    from repro.sim.locks import Spinlock

    def build(fast_forward):
        engine = Engine(4, fast_forward=fast_forward)
        from repro.config import CostModel
        lock = Spinlock(engine, CostModel(), "t-lock")

        def worker(n):
            for i in range(20):
                yield charge(CostDomain.COPY, "memcpy", 10.0 * (n + i))
                yield from lock.acquire()
                yield charge(CostDomain.JOURNAL, "commit", 5.0)
                yield from lock.release()
                yield charge_span([(CostDomain.WALK, "tlb-walk", 3.0),
                                   (CostDomain.NUMA, "remote", 2.0)])

        for n in range(3):
            engine.spawn(worker(n), core=n)
        engine.run()
        return engine

    on = build(True)
    off = build(False)
    assert on.now == off.now
    assert on.events_processed == off.events_processed
    assert on.ledger.to_state() == off.ledger.to_state()
