"""CLI tests (compact experiment registry)."""

import pytest

from repro.cli import EXPERIMENTS, build_parser, main


def test_list_prints_registry(capsys):
    assert main(["list"]) == 0
    out = capsys.readouterr().out
    for name in EXPERIMENTS:
        assert name in out


def test_parser_defaults():
    args = build_parser().parse_args(["ephemeral"])
    assert args.ops == 400
    assert args.media == "optane"
    assert not args.fresh


def test_parser_rejects_unknown_experiment():
    with pytest.raises(SystemExit):
        build_parser().parse_args(["nonsense"])


def test_ephemeral_experiment_runs(capsys):
    assert main(["ephemeral", "--ops", "40", "--device", "1"]) == 0
    out = capsys.readouterr().out
    assert "daxvm" in out
    assert "us/file" in out


def test_media_experiment_runs(capsys):
    assert main(["media", "--ops", "30", "--device", "1"]) == 0
    out = capsys.readouterr().out
    assert "cxl-flash" in out
    assert "fast-nvm" in out


def test_predis_experiment_runs(capsys):
    assert main(["predis", "--ops", "2000", "--device", "2"]) == 0
    out = capsys.readouterr().out
    assert "boot=" in out
