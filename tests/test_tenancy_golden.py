"""The single-tenant bit-identicality gate of the tenancy subsystem.

DESIGN.md §14 promises that consolidating the machine cost nothing
when nothing is consolidated: one plain tenant, no quotas, no
antagonist must execute *bit-identically* to a machine without the
tenancy subsystem.  The golden file was captured from the un-tenanted
runners (``python -m repro.tenancy.golden``); this test replays the
same points two ways —

* the capture path itself (un-tenanted runners, no hooks), guarding
  against cost drift in the plain workloads; and
* the **full sweep path**: ``worker.run_point`` with the point's
  tenancy payload attached, i.e. ``System.attach_tenancy`` plus the
  passive degenerate dispatch inside :func:`repro.tenancy.runtime.
  run_consolidate` —

and byte-compares the complete observable state (cycles, counters,
ledger attribution, lock reports) against the golden.

If this fails, some tenancy hook (engine throttle check, frame
accountant, bandwidth admission, lock holder tracking) leaked cost or
state into the un-tenanted path.  Recapture only when a PR
intentionally changes simulated numbers, and say so in the PR.
"""

import json

import pytest

from repro.runner.worker import run_point
from repro.tenancy.golden import GOLDEN_PATH, golden_json, pinned_points


@pytest.fixture(scope="module")
def golden() -> dict:
    assert GOLDEN_PATH.exists(), (
        "golden file missing; capture it on a known-good commit with "
        "`python -m repro.tenancy.golden`")
    return json.loads(GOLDEN_PATH.read_text())


def test_untenanted_capture_matches_golden(golden):
    assert json.loads(golden_json()) == golden


def test_degenerate_tenancy_point_is_bit_identical(golden):
    """The sweep path with a passive tenancy attached == the
    un-tenanted machine, byte for byte."""
    points = pinned_points()
    assert sorted(p.label for p in points) == sorted(golden)
    for point in points:
        assert point.tenancy, "pinned points must carry tenancy payloads"
        state = run_point(point.to_payload())
        state.pop("wall_seconds", None)
        reference = golden[point.label]
        for field in ("run", "stats", "ledger", "locks"):
            assert state[field] == reference[field], (
                f"{point.label}.{field}: the degenerate tenancy path "
                f"drifted from the un-tenanted machine")
        assert (json.dumps(state, sort_keys=True)
                == json.dumps(reference, sort_keys=True))
