"""Tests for the media-fault injection subsystem (``repro.faults``).

The contract under test has three layers:

1. deterministic planning — the same probe and seed always arm the
   same sites, and UE sites only land where the probe said they could;
2. device/extent mechanics — badblocks, quarantine and single-block
   remap keep the allocator and extent tree consistent;
3. the kernel-path audit — every armed uncorrectable error ends
   *handled* (remapped with accounted loss, cleared in place, or
   SIGBUS-delivered and repaired), and with nothing armed the fault
   hooks are bit-for-bit free (the golden equivalence gate).
"""

import json

import pytest

from repro.errors import InvalidArgumentError, PoisonedPageError
from repro.faults import (
    FaultInjector,
    FaultKind,
    FaultPlan,
    FaultSite,
    MediaFaults,
    run_faults,
)
from repro.faults.golden import GOLDEN_PATH, golden_states
from repro.faults.plan import TouchRecord, UE_KINDS
from repro.fs.block import BLOCK_SIZE, BlockDevice
from repro.fs.extent import ExtentTree
from repro.system import System


def factory() -> System:
    return System(device_bytes=1 << 30)


def probe_records(workload: str):
    return FaultInjector(factory, workload).probe()


# ---------------------------------------------------------------------------
# Fault plans.
# ---------------------------------------------------------------------------
def synthetic_probe(n: int = 40):
    """Alternating FS/map touches, UE-eligible on even indices."""
    return [TouchRecord(index=i,
                        category="map-write" if i % 3 == 0 else "read",
                        ue_eligible=i % 2 == 0, targets=1 + i % 4)
            for i in range(n)]


def test_plan_generate_is_seed_deterministic():
    probe = synthetic_probe()
    a = FaultPlan.generate(probe, seed=11, max_sites=16)
    b = FaultPlan.generate(probe, seed=11, max_sites=16)
    assert a.to_state() == b.to_state()
    other = FaultPlan.generate(probe, seed=12, max_sites=16)
    assert other.to_state() != a.to_state()


def test_plan_respects_ue_eligibility_and_budget():
    probe = synthetic_probe()
    plan = FaultPlan.generate(probe, seed=3, max_sites=16,
                              bw_windows=2, stalls=2)
    assert len(plan) <= 16
    eligible = {r.index for r in probe if r.ue_eligible}
    for site in plan.ordered():
        if site.kind in UE_KINDS:
            assert site.touch in eligible
        if site.kind is FaultKind.UE_MAP:
            assert probe[site.touch].category.startswith("map")
    kinds = [s.kind for s in plan.ordered()]
    assert kinds.count(FaultKind.BW_WINDOW) <= 2
    assert kinds.count(FaultKind.STALL) <= 2


def test_plan_rejects_duplicates_and_negative_touches():
    site = FaultSite(touch=4, kind=FaultKind.STALL, stall_cycles=1.0)
    with pytest.raises(InvalidArgumentError):
        FaultPlan([site, FaultSite(touch=4, kind=FaultKind.UE_BLOCK)])
    with pytest.raises(InvalidArgumentError):
        FaultPlan([FaultSite(touch=-1, kind=FaultKind.UE_BLOCK)])
    assert not FaultPlan.empty()
    assert len(FaultPlan([site])) == 1


# ---------------------------------------------------------------------------
# Device badblocks / quarantine and extent remap mechanics.
# ---------------------------------------------------------------------------
def test_device_badblocks_and_quarantine_split_free_space():
    device = BlockDevice(1 << 20)
    (start, length), = device.alloc(8, prefer_contiguous=True)
    assert length == 8
    bad = start + 3
    device.mark_bad(bad)
    assert device.is_bad(bad)
    assert device.bad_in_run(start, 8) == [bad]
    device.quarantine(bad)
    assert not device.is_bad(bad)  # quarantine retires the badblock
    free_before = device.free_blocks
    device.free(start, 8)
    # The quarantined block never returns to the free pool.
    assert device.free_blocks == free_before + 7
    assert device.free_overlap(bad, 1) == 0
    device.check_invariants()


def test_extent_replace_block_splits_around_the_bad_block():
    tree = ExtentTree()
    tree.append(100, 8)
    old = tree.replace_block(3, 500)
    assert old == 103
    assert tree.physical_block(3) == 500
    assert tree.physical_block(2) == 102
    assert tree.physical_block(4) == 104
    assert tree.block_count == 8
    tree.check_invariants()
    with pytest.raises(InvalidArgumentError):
        tree.replace_block(8, 600)  # past EOF: a hole


# ---------------------------------------------------------------------------
# Kernel poison-handling paths, one outcome each.
# ---------------------------------------------------------------------------
def site_outcome(workload: str, site: FaultSite):
    injector = FaultInjector(factory, workload)
    return injector.run_site(site)


def first_touch(workload: str, category: str, eligible=True) -> int:
    for record in probe_records(workload):
        if record.category == category and record.ue_eligible == eligible:
            return record.index
    raise AssertionError(
        f"{workload} probe has no {category!r} touch "
        f"(eligible={eligible})")


def test_read_ue_remaps_and_accounts_the_loss():
    touch = first_touch("readbench", "read")
    outcome = site_outcome(
        "readbench", FaultSite(touch=touch, kind=FaultKind.UE_BLOCK))
    assert outcome.outcome == "remapped"
    assert outcome.violations == []
    assert outcome.bytes_lost == BLOCK_SIZE
    assert outcome.handling_cycles > 0


def test_full_block_write_ue_clears_poison_in_place():
    touch = first_touch("readbench", "write")
    outcome = site_outcome(
        "readbench", FaultSite(touch=touch, kind=FaultKind.UE_BLOCK))
    assert outcome.outcome == "cleared"
    assert outcome.violations == []
    assert outcome.bytes_lost == 0  # overwrite supplied fresh data


def test_map_ue_delivers_sigbus_then_repair_clears_it():
    touch = first_touch("syncbench", "map-write")
    outcome = site_outcome(
        "syncbench", FaultSite(touch=touch, kind=FaultKind.UE_MAP))
    assert outcome.outcome == "sigbus-cleared"
    assert outcome.violations == []


def test_sigbus_carries_the_poisoned_location():
    injector = FaultInjector(factory, "syncbench")
    touch = first_touch("syncbench", "map-write")
    faults = MediaFaults(FaultPlan(
        [FaultSite(touch=touch, kind=FaultKind.UE_MAP)]))
    system = injector._build(faults)
    with pytest.raises(PoisonedPageError) as excinfo:
        injector.workload(system)
    err = excinfo.value
    assert err.signal_name == "SIGBUS"
    assert err.path and err.file_page >= 0 and err.frame >= 0
    assert faults.sigbus == 1 and faults.memory_failures == 1
    assert system.stats.get("faults.sigbus_delivered") == 1
    assert system.stats.get("faults.memory_failures") == 1


def test_bw_window_and_stall_fire_and_unwind():
    read_touch = first_touch("readbench", "read", eligible=True)
    window = site_outcome("readbench", FaultSite(
        touch=0, kind=FaultKind.BW_WINDOW, factor=3.0, duration=4))
    assert window.outcome == "bw-window" and not window.violations
    stall = site_outcome("readbench", FaultSite(
        touch=read_touch, kind=FaultKind.STALL, stall_cycles=50_000.0))
    assert stall.outcome == "stall" and not stall.violations
    assert stall.handling_cycles >= 50_000.0


# ---------------------------------------------------------------------------
# The full audit: no armed error may end unhandled.
# ---------------------------------------------------------------------------
def test_fault_sweep_is_deterministic():
    a = run_faults(factory, "syncbench", seed=3, max_sites=12)
    b = run_faults(factory, "syncbench", seed=3, max_sites=12)
    assert a.to_state() == b.to_state()
    assert ([o.to_state() for o in a.outcomes]
            == [o.to_state() for o in b.outcomes])


def test_acceptance_syncbench_seed7_explores_sites_without_loss():
    summary = run_faults(factory, "syncbench", seed=7, max_sites=64)
    assert summary.sites_explored >= 50
    assert summary.violations == []
    state = summary.to_state()
    assert state["sites_explored"] == summary.sites_explored
    # Every UE ended in a handled outcome.
    counts = summary.outcome_counts()
    ue_sites = sum(1 for o in summary.outcomes if o.kind in UE_KINDS)
    handled = (counts.get("remapped", 0) + counts.get("cleared", 0)
               + counts.get("sigbus-cleared", 0))
    assert handled == ue_sites


# ---------------------------------------------------------------------------
# Golden equivalence gate: empty plan == no fault subsystem at all.
# ---------------------------------------------------------------------------
def test_empty_fault_plan_is_bit_identical_to_golden():
    golden = json.loads(GOLDEN_PATH.read_text())

    def attach(system: System) -> None:
        system.attach_faults(MediaFaults(FaultPlan.empty()))

    live = golden_states(attach=attach)
    assert live == golden
