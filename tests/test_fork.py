"""fork() address-space duplication tests."""

from repro.vm.vma import MapFlags, Protection

PAGE = 4096


def run(system, gen):
    thread = system.spawn(gen, core=0)
    system.run()
    return thread.result


def make_file(system, size, path="/f"):
    def flow():
        f = yield from system.fs.open(path, create=True)
        yield from system.fs.write(f, 0, size)
        return f.inode

    return run(system, flow())


def test_fork_copies_vmas_and_translations(system):
    inode = make_file(system, 16 * PAGE)
    parent = system.new_process("parent")
    child = system.new_process("child")

    def flow():
        vma = yield from parent.mm.mmap(system.fs, inode, 0, 16 * PAGE,
                                        Protection.rw(), MapFlags.SHARED)
        yield from parent.mm.access(vma, 0, 16 * PAGE)
        yield from parent.mm.fork(child.mm)
        return vma

    vma = run(system, flow())
    clone = child.mm.find_vma(vma.start)
    assert clone is not None
    assert clone is not vma
    assert clone.populated == vma.populated
    # Both address spaces translate to the same PMem frames.
    pt = parent.mm.page_table.translate(vma.start)
    ct = child.mm.page_table.translate(vma.start)
    assert pt.frame == ct.frame
    assert system.stats.get("vm.forks") == 1


def test_fork_restarts_dirty_tracking_in_both(system):
    inode = make_file(system, 8 * PAGE)
    parent = system.new_process("parent")
    child = system.new_process("child")

    def flow():
        vma = yield from parent.mm.mmap(system.fs, inode, 0, 8 * PAGE,
                                        Protection.rw(), MapFlags.SHARED)
        yield from parent.mm.access(vma, 0, 8 * PAGE, write=True)
        assert len(vma.writable) == 8
        yield from parent.mm.fork(child.mm)
        # Parent's write-enable state was cleared (pages re-protected).
        assert len(vma.writable) == 0
        before = system.stats.get("vm.dirty_faults")
        yield from parent.mm.access(vma, 0, PAGE, write=True)
        return before, system.stats.get("vm.dirty_faults")

    before, after = run(system, flow())
    assert after == before + 1  # tracking restarted


def test_fork_skips_ephemeral_and_daxvm_mappings(system):
    inode = make_file(system, 1 << 20)
    parent = system.new_process("parent")
    child = system.new_process("child")
    dax = system.daxvm_for(parent)

    def flow():
        dvma = yield from dax.mmap(inode, 0, 1 << 20, Protection.READ)
        pvma = yield from parent.mm.mmap(system.fs, inode, 0, 4 * PAGE,
                                         Protection.READ,
                                         MapFlags.SHARED)
        yield from parent.mm.fork(child.mm)
        return dvma, pvma

    dvma, pvma = run(system, flow())
    # The POSIX mapping was duplicated; the DaxVM attachment was not
    # (children re-establish it with an O(1) daxvm_mmap).
    assert child.mm.find_vma(pvma.start) is not None
    assert child.mm.find_vma(dvma.start) is None
