"""Guest VMs over DAX files + post-copy live migration (DESIGN §15).

Covers the hypervisor layer end to end: double-attach refusal, the
pass-through no-op promise, nested walk pricing, a full migration
(pause → downtime bound → demand pulls + prefetch → COMPLETED), the
bounded retry ladder on a stalled link (degraded fallback and the
abort path), the forced-degraded diagnostic, the crash x faults
composition satellite, and a compact end-to-end hardening audit.
"""

import pytest

from repro.config import MEDIA_PRESETS
from repro.crash.workloads import CRASH_WORKLOADS
from repro.errors import InvalidArgumentError
from repro.faults.injector import FaultInjector
from repro.faults.model import MediaFaults
from repro.faults.plan import FaultPlan
from repro.obs import CostDomain, Counter
from repro.runner.worker import _reset_naming_counters
from repro.system import System
from repro.virt import (
    MigrationState,
    VirtConfig,
    run_migrate,
    run_migrate_audit,
)


def _system() -> System:
    _reset_naming_counters()
    return System(costs=MEDIA_PRESETS["optane"](), device_bytes=1 << 30,
                  aged=False)


def _factory() -> System:
    return System(costs=MEDIA_PRESETS["optane"](), device_bytes=1 << 30,
                  aged=False)


class _StalledLink(MediaFaults):
    """A fault model whose migration link never answers: every
    ``link_touch`` stalls past ``migrate_pull_timeout``, while map and
    block touches stay benign (empty plan)."""

    def __init__(self):
        super().__init__(FaultPlan(()))

    def link_touch(self, kind, nbytes):
        return (400_000.0, 1.0)


# -- attach guards (satellite: every attach refuses a double) -----------
def test_attach_hypervisor_twice_refused():
    system = _system()
    system.attach_hypervisor(VirtConfig())
    with pytest.raises(ValueError, match="already attached"):
        system.attach_hypervisor(VirtConfig())


def test_attach_faults_twice_refused():
    system = _system()
    system.attach_faults(MediaFaults(FaultPlan(())))
    with pytest.raises(ValueError, match="already attached"):
        system.attach_faults(MediaFaults(FaultPlan(())))


def test_attach_tiering_twice_refused():
    system = _system()
    system.attach_tiering()
    with pytest.raises(ValueError, match="already attached"):
        system.attach_tiering()


# -- config validation ---------------------------------------------------
def test_migrate_after_must_be_positive():
    with pytest.raises(InvalidArgumentError):
        VirtConfig(migrate=True, migrate_after=0)


def test_run_migrate_needs_hypervisor_and_known_workload():
    with pytest.raises(InvalidArgumentError, match="hypervisor"):
        run_migrate(_system())
    system = _system()
    system.attach_hypervisor(VirtConfig())
    with pytest.raises(InvalidArgumentError, match="unknown"):
        run_migrate(system, "no-such-guest")


# -- the pass-through promise -------------------------------------------
def test_passive_hypervisor_is_inert():
    system = _system()
    hv = system.attach_hypervisor(VirtConfig())
    CRASH_WORKLOADS["syncbench"](system)
    hv.finalize()
    assert hv.guests, "processes must still enroll as guests"
    assert not hv.jobs
    assert system.stats.get(Counter.VIRT_GUEST_ACCESSES) == 0
    assert system.engine.ledger.domain_total(CostDomain.VIRT) == 0.0


def test_nested_walks_cost_more_than_bare():
    bare = _system()
    CRASH_WORKLOADS["syncbench"](bare)
    nested = _system()
    nested.attach_hypervisor(VirtConfig(nested=True))
    CRASH_WORKLOADS["syncbench"](nested)
    surcharge = nested.stats.get(Counter.VIRT_NESTED_WALK_CYCLES)
    assert surcharge > 0
    assert nested.engine.now > bare.engine.now


# -- a clean migration ---------------------------------------------------
def test_migration_completes_within_downtime_budget():
    system = _system()
    hv = system.attach_hypervisor(VirtConfig(nested=True, migrate=True,
                                             migrate_after=8))
    result = run_migrate(system, "syncbench")
    assert hv.jobs, "the trigger threshold must have been reached"
    for job in hv.jobs:
        assert job.state is MigrationState.COMPLETED
        assert job.resident <= job.pulled
        assert 0.0 < job.downtime_cycles <= \
            system.costs.migrate_downtime_budget
        assert not job.violations
    assert result.counters["virt.pages_pulled"] > 0
    assert result.counters["virt.violations"] == 0
    assert result.domains["virt"] > 0.0


def test_prefetcher_moves_pages_the_demand_path_does_not():
    def pulled(prefetch):
        system = _system()
        system.attach_hypervisor(VirtConfig(nested=True, migrate=True,
                                            migrate_after=8,
                                            prefetch=prefetch))
        result = run_migrate(system, "syncbench")
        return result.counters["virt.prefetched_pages"]

    assert pulled(True) > 0
    assert pulled(False) == 0


# -- the retry ladder (satellite: stalls stay in-sim) --------------------
def test_stalled_link_walks_retry_ladder_then_degrades():
    system = _system()
    system.attach_faults(_StalledLink())
    hv = system.attach_hypervisor(VirtConfig(migrate=True,
                                             migrate_after=8,
                                             prefetch=False))
    CRASH_WORKLOADS["syncbench"](system)
    assert system.stats.get(Counter.VIRT_PULL_RETRIES) == \
        system.costs.migrate_max_pull_retries * len(hv.jobs)
    assert system.stats.get(Counter.VIRT_DEGRADED_ACCESSES) > 0
    hv.finalize()
    for job in hv.jobs:
        assert job.retries == system.costs.migrate_max_pull_retries
        assert job.degraded_reason == "pull retries exhausted"
        assert not job.pulled, "no page can cross a dead link"
        assert job.state is MigrationState.ABORTED
    assert not hv.violations()


def test_stalled_link_aborts_when_degraded_mode_is_disallowed():
    system = _system()
    system.attach_faults(_StalledLink())
    hv = system.attach_hypervisor(VirtConfig(migrate=True,
                                             migrate_after=8,
                                             prefetch=False,
                                             degraded_ok=False))
    CRASH_WORKLOADS["syncbench"](system)
    hv.finalize()
    for job in hv.jobs:
        assert job.state is MigrationState.ABORTED
        assert job.abort_reason == "pull retries exhausted"
        assert not job.pulled, "rollback must discard the partial image"
    assert system.stats.get(Counter.VIRT_MIGRATIONS_ABORTED) == \
        float(len(hv.jobs))
    assert not hv.violations()


def test_forced_degraded_serves_remotely_and_rolls_back():
    system = _system()
    hv = system.attach_hypervisor(VirtConfig(migrate=True,
                                             migrate_after=8,
                                             prefetch=False,
                                             force_degraded=True))
    result = run_migrate(system, "syncbench")
    assert result.counters["virt.degraded_accesses"] > 0
    assert result.counters["virt.pages_pulled"] == 0
    for job in hv.jobs:
        assert job.state is MigrationState.ABORTED
    assert not hv.violations()


# -- crash x faults composition (satellite) ------------------------------
def test_crash_points_compose_with_an_armed_fault_plan():
    from repro.crash.injector import CrashInjector

    probe = FaultInjector(_factory, "syncbench", seed=0, max_sites=4)
    plan = FaultPlan.generate(probe.probe(), seed=0, max_sites=4,
                              bw_windows=1, stalls=1)
    summary = CrashInjector(_factory, "syncbench", seed=0, max_points=6,
                            fault_plan=plan).run()
    assert summary.points_explored > 0
    assert summary.invariant_violations == 0


# -- the hardening audit, compactly --------------------------------------
def test_migrate_audit_finds_no_violations():
    summary = run_migrate_audit(workloads=("syncbench",), seeds=(0,),
                                max_points=6, max_sites=6,
                                composed_points=4)
    assert summary.points_explored >= 14
    assert summary.crash and summary.faults and summary.composed
    assert summary.violations == []
    state = summary.to_state()
    assert state["points_explored"] == summary.points_explored
    assert summary.to_result().operations == float(
        summary.points_explored)
