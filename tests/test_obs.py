"""Unit tests for the repro.obs instrumentation layer.

Covers the ledger, histograms, tracer spans, the Stats additions
(merge / percentile / observe / to_json), lock wait-vs-hold recording
and the ``python -m repro perf`` CLI entry point.
"""

import pytest

from repro.cli import main as cli_main
from repro.config import DEFAULT_COSTS
from repro.errors import MissingCounterError, SimulationError
from repro.obs import (
    Charge,
    CostDomain,
    DOMAIN_ORDER,
    Histogram,
    Ledger,
    Tracer,
    charge,
)
from repro.sim.engine import Compute, Engine
from repro.sim.locks import Mutex, RWSemaphore, Spinlock
from repro.sim.stats import Stats


# -- Charge ----------------------------------------------------------------

def test_charge_validates_domain_and_cycles():
    c = charge(CostDomain.JOURNAL, "commit", 12.5)
    assert isinstance(c, Charge)
    assert (c.domain, c.event, c.cycles) == (CostDomain.JOURNAL,
                                             "commit", 12.5)
    with pytest.raises(SimulationError):
        charge(CostDomain.JOURNAL, "commit", -1.0)
    with pytest.raises(SimulationError):
        Charge("journal", "commit", 1.0)


def test_domain_order_covers_every_domain():
    assert set(DOMAIN_ORDER) == set(CostDomain)


# -- Ledger ----------------------------------------------------------------

def test_ledger_records_and_aggregates():
    ledger = Ledger()
    ledger.record("t0", CostDomain.ZEROING, "sync-zero", 100)
    ledger.record("t0", CostDomain.ZEROING, "sync-zero", 50)
    ledger.record("t1", CostDomain.FAULT, "fault-entry", 30)
    assert ledger.domain_total(CostDomain.ZEROING) == 150
    assert ledger.event_total(CostDomain.ZEROING, "sync-zero") == 150
    assert ledger.thread_total("t0") == 150
    assert ledger.total() == 180
    assert ledger.share(CostDomain.ZEROING) == pytest.approx(150 / 180)
    assert ledger.domains() == {"zeroing": 150, "fault": 30}
    assert ledger.events()["zeroing/sync-zero"] == 150


def test_ledger_merge_and_reset_and_json():
    a, b = Ledger(), Ledger()
    a.record("t0", CostDomain.COPY, "memcpy", 10)
    b.record("t0", CostDomain.COPY, "memcpy", 5)
    b.record("t1", CostDomain.WALK, "tlb-walk", 7)
    a.merge(b)
    assert a.domain_total(CostDomain.COPY) == 15
    assert a.domain_total(CostDomain.WALK) == 7
    out = a.to_json()
    assert out["total_cycles"] == 22
    assert out["domains"]["copy"] == 15
    a.reset()
    assert a.total() == 0.0


def test_ledger_ignores_zero_cycle_records():
    ledger = Ledger()
    ledger.record("t0", CostDomain.JOURNAL, "noop", 0.0)
    assert ledger.total() == 0.0
    assert ledger.domains() == {}


# -- Histogram -------------------------------------------------------------

def test_histogram_percentiles_are_close():
    hist = Histogram()
    for value in range(1, 1001):
        hist.record(float(value))
    assert hist.count == 1000
    assert hist.percentile(50) == pytest.approx(500, rel=0.08)
    assert hist.percentile(99) == pytest.approx(990, rel=0.08)
    assert hist.percentile(100) <= hist.max_value
    assert hist.mean == pytest.approx(500.5)


def test_histogram_merge_matches_combined_recording():
    a, b, c = Histogram(), Histogram(), Histogram()
    for value in (3.0, 70.0, 900.0):
        a.record(value)
        c.record(value)
    for value in (5.0, 5000.0):
        b.record(value)
        c.record(value)
    a.merge(b)
    assert a.count == c.count
    assert a.percentile(50) == c.percentile(50)
    assert a.summary() == c.summary()


def test_histogram_edge_cases():
    hist = Histogram()
    with pytest.raises(ValueError):
        hist.record(-1.0)
    with pytest.raises(ValueError):
        hist.percentile(101)
    assert hist.percentile(99) == 0.0
    hist.record(0.0)
    assert hist.percentile(50) == 0.0
    summary = hist.summary()
    assert summary["count"] == 1 and summary["min"] == 0.0


# -- Tracer ----------------------------------------------------------------

class _FakeClock:
    def __init__(self):
        self.now = 0.0

    def __call__(self):
        return self.now


def test_tracer_nested_spans_attribute_self_time():
    clock = _FakeClock()
    stats = Stats()
    tracer = Tracer(clock, lambda: "t0", stats=stats, ring=8)
    with tracer.span("outer"):
        clock.now = 10.0
        with tracer.span("inner"):
            clock.now = 40.0
        clock.now = 45.0
    summary = tracer.summary()
    assert summary["outer"]["total_cycles"] == 45.0
    assert summary["outer"]["self_cycles"] == 15.0
    assert summary["inner"]["total_cycles"] == 30.0
    # Span exits feed the Stats latency histograms.
    assert stats.timings["span.outer"].count == 1
    assert stats.percentile("span.inner", 50) == pytest.approx(30.0,
                                                               rel=0.1)
    assert len(tracer.ring) == 2


def test_tracer_out_of_order_close_raises():
    clock = _FakeClock()
    tracer = Tracer(clock, lambda: "t0")
    outer = tracer.span("outer")
    inner = tracer.span("inner")
    outer.__enter__()
    inner.__enter__()
    with pytest.raises(RuntimeError):
        outer.__exit__(None, None, None)


def test_tracer_tracks_threads_independently():
    clock = _FakeClock()
    current = {"name": "a"}
    tracer = Tracer(clock, lambda: current["name"])
    span_a = tracer.span("op")
    span_a.__enter__()
    current["name"] = "b"
    span_b = tracer.span("op")
    span_b.__enter__()
    assert tracer.active_depth("a") == 1
    assert tracer.active_depth("b") == 1
    clock.now = 5.0
    span_b.__exit__(None, None, None)
    current["name"] = "a"
    span_a.__exit__(None, None, None)
    assert tracer.summary()["op"]["count"] == 2


# -- Stats additions -------------------------------------------------------

def test_stats_merge_folds_counters_series_histograms():
    a, b = Stats(), Stats()
    a.add("x", 1)
    b.add("x", 2)
    b.add("y", 5)
    a.sample("tl", 1.0, 10.0)
    b.sample("tl", 2.0, 20.0)
    a.observe("lat", 100.0)
    b.observe("lat", 300.0)
    a.merge(b)
    assert a.get("x") == 3 and a.get("y") == 5
    assert a.series("tl") == [(1.0, 10.0), (2.0, 20.0)]
    assert a.timings["lat"].count == 2


def test_stats_percentile_histogram_and_series_fallback():
    stats = Stats()
    for value in (10.0, 20.0, 30.0, 1000.0):
        stats.observe("lat", value)
    assert stats.percentile("lat", 50) == pytest.approx(20.0, rel=0.1)
    for i, value in enumerate((5.0, 1.0, 9.0)):
        stats.sample("ts", float(i), value)
    assert stats.percentile("ts", 50) == 5.0
    assert stats.percentile("ts", 0) == 1.0
    with pytest.raises(MissingCounterError):
        stats.percentile("nothing", 50)


def test_stats_to_json_shape():
    stats = Stats()
    stats.add("vm.faults", 3)
    stats.observe("lat", 50.0)
    stats.sample("ts", 1.0, 2.0)
    out = stats.to_json()
    assert out["counters"] == {"vm.faults": 3}
    assert out["timings"]["lat"]["count"] == 1
    assert out["series_points"] == {"ts": 1}


# -- Lock wait/hold accounting --------------------------------------------

def _contend(lock_cls, hold_cycles=50_000, threads=3):
    engine = Engine(threads)
    lock = lock_cls(engine, DEFAULT_COSTS, "l")

    def worker():
        yield from lock.acquire()
        yield charge(CostDomain.USERSPACE, "critical", hold_cycles)
        yield from lock.release()

    for i in range(threads):
        engine.spawn(worker(), core=i)
    engine.run()
    return engine, lock


@pytest.mark.parametrize("lock_cls", [Spinlock, Mutex])
def test_lock_report_wait_and_hold(lock_cls):
    engine, lock = _contend(lock_cls)
    rep = lock.report()
    assert rep["acquisitions"] == 3
    assert rep["contended"] == 2
    assert rep["wait_cycles"] > 0
    assert rep["hold_cycles"] >= 3 * 50_000
    assert lock in engine.locks
    # Blocked time lands in the ledger's lock_wait domain.
    assert engine.ledger.domain_total(CostDomain.LOCK_WAIT) > 0


def test_rwsem_report_splits_read_and_write():
    engine = Engine(4)
    sem = RWSemaphore(engine, DEFAULT_COSTS, "mm")

    def reader():
        yield from sem.acquire_read()
        yield charge(CostDomain.USERSPACE, "scan", 200)
        yield from sem.release_read()

    def writer():
        yield from sem.acquire_write()
        yield charge(CostDomain.USERSPACE, "mutate", 300)
        yield from sem.release_write()

    engine.spawn(reader(), core=0)
    engine.spawn(reader(), core=1)
    engine.spawn(writer(), core=2)
    engine.run()
    rep = sem.report()
    assert rep["read_acquisitions"] == 2
    assert rep["write_acquisitions"] == 1
    assert rep["read_hold_cycles"] >= 200
    assert rep["write_hold_cycles"] >= 300
    assert rep["write_wait_cycles"] > 0


# -- Engine ledger totals match clock --------------------------------------

def test_ledger_total_matches_elapsed_time_single_thread():
    engine = Engine(1)

    def worker():
        yield charge(CostDomain.SYSCALL, "open", 40)
        yield Compute(60)

    engine.spawn(worker())
    engine.run()
    assert engine.ledger.total() == engine.now == 100


# -- perf CLI --------------------------------------------------------------

def test_perf_fig7_reports_zeroing_share_in_band(capsys):
    assert cli_main(["perf", "fig7", "--ops", "64"]) == 0
    out = capsys.readouterr().out
    assert "zeroing" in out
    share = float(out.rsplit(":", 1)[1].strip().rstrip("%"))
    assert 30.0 <= share <= 40.0


def test_perf_fig8a_reports_rwsem_wait_and_hold(capsys):
    assert cli_main(["perf", "fig8a", "--ops", "48", "--threads",
                     "4"]) == 0
    out = capsys.readouterr().out
    assert "RWSemaphore" in out
    assert "read wait/hold" in out and "write wait/hold" in out


def test_perf_requires_target(capsys):
    assert cli_main(["perf"]) == 2
