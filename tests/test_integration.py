"""Integration tests: cross-module invariants and mini paper shapes.

These run small versions of the headline experiments and assert the
qualitative results the full benchmarks reproduce at scale.
"""

import pytest

from repro.system import System
from repro.workloads import (
    ApacheConfig,
    DaxVMOptions,
    EphemeralConfig,
    Interface,
    ServerInterface,
    run_apache,
    run_ephemeral,
)


def eph(interface, threads=1, n=150, aged=True, opts=None):
    system = System(device_bytes=2 << 30, aged=aged)
    cfg = EphemeralConfig(file_size=32 << 10, num_files=n,
                          num_threads=threads, interface=interface,
                          daxvm=opts or DaxVMOptions.full())
    return run_ephemeral(system, cfg)


def test_small_file_problem_mmap_slower_than_read():
    """§III: mmap trails read for small read-once files."""
    read = eph(Interface.READ)
    mmap = eph(Interface.MMAP)
    assert mmap.mb_per_second < read.mb_per_second
    # ... but not catastrophically (the paper reports ~20-30%).
    assert mmap.mb_per_second > 0.5 * read.mb_per_second


def test_daxvm_reverses_the_small_file_trend():
    read = eph(Interface.READ)
    daxvm = eph(Interface.DAXVM)
    assert daxvm.mb_per_second > 1.1 * read.mb_per_second


def test_daxvm_takes_no_faults_where_mmap_takes_many():
    mmap = eph(Interface.MMAP, n=60)
    daxvm = eph(Interface.DAXVM, n=60)
    assert mmap.counters.get("vm.faults", 0) >= 60 * 8
    assert daxvm.counters.get("vm.faults", 0) == 0


def test_mmap_scalability_collapse_and_daxvm_scaling():
    """Fig. 1b in miniature: 8 threads."""
    mmap_1 = eph(Interface.MMAP, threads=1, n=240)
    mmap_8 = eph(Interface.MMAP, threads=8, n=240)
    dax_1 = eph(Interface.DAXVM, threads=1, n=240)
    dax_8 = eph(Interface.DAXVM, threads=8, n=240)
    mmap_scaling = mmap_8.ops_per_second / mmap_1.ops_per_second
    dax_scaling = dax_8.ops_per_second / dax_1.ops_per_second
    assert dax_scaling > 3.5        # scales
    assert mmap_scaling < dax_scaling / 2  # does not


def test_apache_daxvm_beats_mmap_by_large_factor():
    def serve(interface, opts=None):
        system = System(device_bytes=2 << 30, aged=True)
        cfg = ApacheConfig(num_pages=16, num_workers=8, requests=400,
                           interface=interface,
                           daxvm=opts or DaxVMOptions.full())
        return run_apache(system, cfg)

    mmap = serve(ServerInterface.MMAP)
    daxvm = serve(ServerInterface.DAXVM)
    assert daxvm.ops_per_second > 1.5 * mmap.ops_per_second


def test_whole_workload_determinism():
    a = eph(Interface.DAXVM, threads=4, n=100)
    b = eph(Interface.DAXVM, threads=4, n=100)
    assert a.cycles == b.cycles
    assert a.counters == b.counters


def test_stats_conservation_across_subsystems():
    """Faults recorded by the VM layer match the populated pages."""
    system = System(device_bytes=2 << 30)
    cfg = EphemeralConfig(file_size=32 << 10, num_files=30,
                          interface=Interface.MMAP)
    result = run_ephemeral(system, cfg)
    assert result.counters["vm.faults"] == \
        result.counters["vm.pte_faults"]
    assert result.counters["vm.mmap_calls"] == 30
    assert result.counters["vm.munmap_calls"] == 30


def test_fresh_image_uses_huge_pages_aged_mixes():
    def huge_share(aged):
        system = System(device_bytes=2 << 30, aged=aged)
        cfg = EphemeralConfig(file_size=4 << 20, num_files=12,
                              interface=Interface.MMAP)
        result = run_ephemeral(system, cfg)
        huge = result.counters.get("vm.huge_faults", 0)
        small = result.counters.get("vm.pte_faults", 0)
        return huge * 512 / (huge * 512 + small)

    assert huge_share(aged=False) == pytest.approx(1.0)
    assert 0.0 < huge_share(aged=True) < 0.95


def test_memory_is_reclaimed_after_workload():
    system = System(device_bytes=2 << 30)
    proc = system.new_process()
    dax = system.daxvm_for(proc)

    def flow():
        f = yield from system.fs.open("/x", create=True)
        yield from system.fs.write(f, 0, 1 << 20)
        vma = yield from dax.mmap(f.inode, 0, 1 << 20)
        yield from proc.mm.access(vma, vma.user_addr - vma.start, 1 << 20)
        yield from dax.munmap(vma)
        yield from system.fs.close(f)
        yield from system.fs.unlink("/x")

    system.spawn(flow(), core=0, process=proc)
    system.run()
    # Freed blocks sit with the pre-zero daemon until zeroed; drain it.
    dax.prezero.drain_now()
    # All data blocks and table metadata returned to the allocator...
    assert system.device.free_blocks == system.device.total_blocks
    # ...and the inode is gone from the namespace.
    assert "/x" not in system.vfs
