"""Remaining coverage: PageFlags semantics, Translation geometry,
shootdown stats, RunResult counters in workloads, Interface plumbing."""

import pytest

from repro.config import DEFAULT_COSTS
from repro.mem.physmem import Medium, PhysicalMemory
from repro.paging.flags import PageFlags
from repro.paging.pagetable import (
    PMD_LEVEL,
    PTE_LEVEL,
    PageTable,
    Translation,
)
from repro.system import System
from repro.vm.vma import MapFlags, Protection


def test_pageflags_helpers():
    rw = PageFlags.rw()
    ro = PageFlags.ro()
    assert rw.writable and rw.present
    assert not ro.writable and ro.present
    assert not PageFlags.NONE.present


def test_pageflags_status_bits_carry_through_combine():
    leaf = PageFlags.rw() | PageFlags.DIRTY | PageFlags.HUGE
    gate = PageFlags.ro()
    eff = gate.combine(leaf)
    assert eff & PageFlags.DIRTY
    assert eff & PageFlags.HUGE
    assert not eff.writable


def test_translation_page_size():
    t4k = Translation(1, PageFlags.rw(), PTE_LEVEL, [Medium.DRAM])
    t2m = Translation(1, PageFlags.rw(), PMD_LEVEL, [Medium.DRAM])
    assert t4k.page_size == 4096
    assert t2m.page_size == 2 << 20


def test_pagetable_fragment_roots():
    pm = PhysicalMemory(1 << 30, 1 << 30)
    frag = PageTable(pm, Medium.PMEM, root_level=PTE_LEVEL, shared=True)
    assert frag.root.level == PTE_LEVEL
    assert frag.root.shared
    assert frag.root.medium is Medium.PMEM


def test_daxvm_mmap_default_length_covers_file():
    system = System(device_bytes=1 << 30)
    proc = system.new_process()
    dax = system.daxvm_for(proc)

    def flow():
        f = yield from system.fs.open("/x", create=True)
        yield from system.fs.write(f, 0, 3 << 20)
        vma = yield from dax.mmap(f.inode)  # no explicit length
        return vma

    thread = system.spawn(flow(), core=0, process=proc)
    system.run()
    vma = thread.result
    assert vma.length >= 3 << 20


def test_walk_cost_for_uses_translation_media():
    from repro.paging.tlb import AccessPattern
    from repro.paging.walker import PageWalker

    walker = PageWalker(DEFAULT_COSTS)
    pmem_leaf = Translation(1, PageFlags.rw(), PTE_LEVEL,
                            [Medium.DRAM, Medium.DRAM, Medium.PMEM])
    dram_leaf = Translation(1, PageFlags.rw(), PTE_LEVEL,
                            [Medium.DRAM, Medium.DRAM, Medium.DRAM])
    assert walker.walk_cost_for(pmem_leaf, AccessPattern.RANDOM) > \
        walker.walk_cost_for(dram_leaf, AccessPattern.RANDOM)


def test_msync_on_clean_mapping_is_cheap():
    system = System(device_bytes=1 << 30)
    proc = system.new_process()

    def flow():
        f = yield from system.fs.open("/x", create=True)
        yield from system.fs.write(f, 0, 64 << 10)
        vma = yield from proc.mm.mmap(system.fs, f.inode, 0, 64 << 10,
                                      Protection.rw(), MapFlags.SHARED)
        t0 = system.engine.now
        yield from proc.mm.msync(vma)
        return system.engine.now - t0

    thread = system.spawn(flow(), core=0, process=proc)
    system.run()
    # Nothing dirty: just the syscall and bookkeeping.
    assert thread.result < 5 * DEFAULT_COSTS.syscall_crossing


def test_access_rejects_nonpositive_length():
    from repro.errors import InvalidArgumentError

    system = System(device_bytes=1 << 30)
    proc = system.new_process()

    def flow():
        f = yield from system.fs.open("/x", create=True)
        yield from system.fs.write(f, 0, 4096)
        vma = yield from proc.mm.mmap(system.fs, f.inode, 0, 4096,
                                      Protection.READ, MapFlags.SHARED)
        yield from proc.mm.access(vma, 0, 0)

    thread = system.spawn(flow(), core=0, process=proc)
    with pytest.raises(InvalidArgumentError):
        system.run()


def test_interface_enum_round_trip():
    from repro.workloads import Interface

    assert Interface("read") is Interface.READ
    assert {i.value for i in Interface} == \
        {"read", "mmap", "populate", "daxvm"}
