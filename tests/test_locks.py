"""Unit tests for simulated locks: mutual exclusion, fairness, stats."""

import pytest

from repro.config import DEFAULT_COSTS
from repro.errors import SimulationError
from repro.sim.engine import Compute, Engine
from repro.sim.locks import Mutex, RWSemaphore, Spinlock


def make(lock_cls, cores=4):
    engine = Engine(cores)
    lock = lock_cls(engine, DEFAULT_COSTS, "test")
    return engine, lock


def test_spinlock_mutual_exclusion():
    engine, lock = make(Spinlock)
    active = {"count": 0, "max": 0}

    def worker():
        for _ in range(10):
            yield from lock.acquire()
            active["count"] += 1
            active["max"] = max(active["max"], active["count"])
            yield Compute(100)
            active["count"] -= 1
            yield from lock.release()

    for i in range(4):
        engine.spawn(worker(), core=i)
    engine.run()
    assert active["max"] == 1
    assert not lock.held


def test_spinlock_fifo_order():
    engine, lock = make(Spinlock)
    grants = []

    def holder():
        yield from lock.acquire()
        yield Compute(1000)
        yield from lock.release()

    def waiter(name, delay):
        yield Compute(delay)
        yield from lock.acquire()
        grants.append(name)
        yield from lock.release()

    engine.spawn(holder(), core=0)
    engine.spawn(waiter("first", 10), core=1)
    engine.spawn(waiter("second", 20), core=2)
    engine.spawn(waiter("third", 30), core=3)
    engine.run()
    assert grants == ["first", "second", "third"]


def test_spinlock_release_unlocked_raises():
    engine, lock = make(Spinlock)

    def worker():
        yield from lock.release()

    engine.spawn(worker())
    with pytest.raises(SimulationError):
        engine.run()


def test_spinlock_contention_stats():
    engine, lock = make(Spinlock)

    def worker():
        yield from lock.acquire()
        yield Compute(500)
        yield from lock.release()

    for i in range(3):
        engine.spawn(worker(), core=i)
    engine.run()
    assert lock.acquisitions == 3
    assert lock.contended_acquisitions == 2
    assert lock.total_wait_cycles > 0
    assert 0 < lock.contention_ratio < 1


def test_mutex_is_a_lock():
    engine, lock = make(Mutex)

    def worker():
        yield from lock.acquire()
        yield from lock.release()

    engine.spawn(worker())
    engine.run()
    assert lock.acquisitions == 1


def test_rwsem_readers_share():
    engine, sem = make(RWSemaphore)
    concurrency = {"now": 0, "max": 0}

    def reader():
        yield from sem.acquire_read()
        concurrency["now"] += 1
        concurrency["max"] = max(concurrency["max"], concurrency["now"])
        yield Compute(1000)
        concurrency["now"] -= 1
        yield from sem.release_read()

    for i in range(4):
        engine.spawn(reader(), core=i)
    engine.run()
    assert concurrency["max"] == 4


def test_rwsem_writer_exclusive():
    engine, sem = make(RWSemaphore)
    overlap = {"writer": False, "readers": 0, "violation": False}

    def writer():
        yield from sem.acquire_write()
        overlap["writer"] = True
        if overlap["readers"]:
            overlap["violation"] = True
        yield Compute(500)
        overlap["writer"] = False
        yield from sem.release_write()

    def reader():
        yield Compute(100)
        yield from sem.acquire_read()
        overlap["readers"] += 1
        if overlap["writer"]:
            overlap["violation"] = True
        yield Compute(200)
        overlap["readers"] -= 1
        yield from sem.release_read()

    engine.spawn(writer(), core=0)
    for i in range(1, 4):
        engine.spawn(reader(), core=i)
    engine.run()
    assert not overlap["violation"]


def test_rwsem_writer_fairness_blocks_new_readers():
    """A queued writer must not be starved by a reader stream."""
    engine, sem = make(RWSemaphore)
    order = []

    def long_reader():
        yield from sem.acquire_read()
        yield Compute(1000)
        order.append("reader1-done")
        yield from sem.release_read()

    def writer():
        yield Compute(100)  # arrives while reader1 holds it
        yield from sem.acquire_write()
        order.append("writer")
        yield from sem.release_write()

    def late_reader():
        yield Compute(200)  # arrives after the writer queued
        yield from sem.acquire_read()
        order.append("reader2")
        yield from sem.release_read()

    engine.spawn(long_reader(), core=0)
    engine.spawn(writer(), core=1)
    engine.spawn(late_reader(), core=2)
    engine.run()
    assert order.index("writer") < order.index("reader2")


def test_rwsem_write_serialisation_limits_throughput():
    """The Fig. 1b mechanism: writer streams serialise fully."""
    engine, sem = make(RWSemaphore, cores=8)
    cs = 1000.0

    def writer_stream(n):
        for _ in range(n):
            yield from sem.acquire_write()
            yield Compute(cs)
            yield from sem.release_write()

    for i in range(8):
        engine.spawn(writer_stream(5), core=i)
    total = engine.run()
    # 40 exclusive critical sections of 1000 cycles each cannot finish
    # faster than serially.
    assert total >= 40 * cs


def test_rwsem_release_underflow():
    engine, sem = make(RWSemaphore)

    def worker():
        yield from sem.release_read()

    engine.spawn(worker())
    with pytest.raises(SimulationError):
        engine.run()


def test_lock_without_current_thread():
    engine = Engine(1)
    lock = Spinlock(engine, DEFAULT_COSTS)
    with pytest.raises(SimulationError):
        next(lock.acquire())
