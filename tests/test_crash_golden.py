"""The crash-smoke golden gate (DESIGN.md §9).

Replays the pinned crash sweeps of :mod:`repro.crash.golden` and
asserts (a) zero invariant violations at every explored crash point
and (b) byte-for-byte agreement with the committed golden file — i.e.
the crash exploration is replica-deterministic.

Recapture (``python -m repro.crash.golden``) only when a PR
intentionally changes what the tracked workloads persist, and say so
in the PR.
"""

import json

from repro.crash.golden import GOLDEN_PATH, golden_json


def test_crash_smoke_matches_golden_with_zero_violations():
    assert GOLDEN_PATH.exists(), (
        "golden file missing; capture it on a known-good commit with "
        "`python -m repro.crash.golden`")
    current = golden_json()
    states = json.loads(current)
    for name, state in states.items():
        assert state["invariant_violations"] == 0, (
            f"{name}: crash recovery violated an invariant")
        assert state["points_explored"] > 0, name
    golden = GOLDEN_PATH.read_text()
    if current != golden:  # pragma: no cover - failure diagnostics
        cur, ref = json.loads(current), json.loads(golden)
        for name in ref:
            assert cur.get(name) == ref[name], (
                f"{name} drifted from the golden crash sweep")
    assert current == golden
