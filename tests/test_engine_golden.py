"""The fast-forward bit-identicality gate.

DESIGN.md §12 promises that the fast-forward scheduler and the batched
ledger flush changed no simulated number: an engine with the drain
enabled produces byte-for-byte the results of the classic
one-pop-per-event path.  The golden file is captured with fast-forward
OFF (the classic engine *is* the reference); this test replays the
same pinned points with fast-forward ON, and OFF again, and compares
the complete observable state (cycles, counters, ledger attribution,
record counts, lock reports) byte for byte.

If this fails, the drain moved a charge, reordered a ledger
accumulation, or miscounted an event.  Recapture
(``python -m repro.sim.golden``) only when a PR intentionally changes
simulated numbers, and say so in the PR.
"""

import json

import pytest

from repro.sim.golden import GOLDEN_PATH, golden_json


def _compare(current: str, golden: str) -> None:
    if current != golden:  # pragma: no cover - failure diagnostics
        cur, ref = json.loads(current), json.loads(golden)
        assert sorted(cur) == sorted(ref)
        for name in ref:
            assert sorted(cur[name]) == sorted(ref[name])
            for label in ref[name]:
                for field in ("run", "stats", "ledger", "locks"):
                    assert cur[name][label][field] \
                        == ref[name][label][field], (
                            f"{name}/{label}.{field} drifted from the "
                            f"classic-path golden run")
    assert current == golden


@pytest.fixture(scope="module")
def golden_text() -> str:
    assert GOLDEN_PATH.exists(), (
        "golden file missing; capture it with "
        "`python -m repro.sim.golden`")
    return GOLDEN_PATH.read_text()


def test_fast_forward_reproduces_classic_schedule(golden_text):
    _compare(golden_json(fast_forward=True), golden_text)


def test_classic_path_matches_its_own_golden(golden_text):
    _compare(golden_json(fast_forward=False), golden_text)
