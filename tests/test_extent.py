"""Extent tree tests: append/merge/truncate/lookup/huge geometry."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import InvalidArgumentError
from repro.fs.block import BLOCKS_PER_PMD
from repro.fs.extent import Extent, ExtentTree


def test_extent_basics():
    e = Extent(0, 100, 10)
    assert e.logical_end == 10
    assert e.physical_for(3) == 103
    with pytest.raises(InvalidArgumentError):
        e.physical_for(10)
    with pytest.raises(InvalidArgumentError):
        Extent(0, 0, 0)


def test_append_dense_and_merge():
    tree = ExtentTree()
    tree.append(100, 5)
    tree.append(105, 5)  # physically contiguous -> merges
    assert len(tree) == 1
    assert tree.block_count == 10
    tree.append(500, 3)  # discontiguous -> new extent
    assert len(tree) == 2
    tree.check_invariants()


def test_lookup():
    tree = ExtentTree()
    tree.append(100, 10)
    tree.append(500, 10)
    assert tree.physical_block(0) == 100
    assert tree.physical_block(9) == 109
    assert tree.physical_block(10) == 500
    assert tree.physical_block(25) is None
    assert tree.find(12).physical == 500


def test_truncate_returns_freed_runs():
    tree = ExtentTree()
    tree.append(100, 10)
    tree.append(500, 10)
    freed = tree.truncate_to(15)
    assert freed == [(505, 5)]
    assert tree.block_count == 15
    freed = tree.truncate_to(0)
    assert sorted(freed) == [(100, 10), (500, 5)]
    assert tree.block_count == 0
    tree.check_invariants()


def test_pmd_capable_requires_double_alignment():
    tree = ExtentTree()
    # Physically aligned, covers a full region.
    tree.append(BLOCKS_PER_PMD * 4, BLOCKS_PER_PMD)
    assert tree.pmd_capable(0)

    misaligned = ExtentTree()
    misaligned.append(BLOCKS_PER_PMD * 4 + 1, BLOCKS_PER_PMD)
    assert not misaligned.pmd_capable(0)

    short = ExtentTree()
    short.append(BLOCKS_PER_PMD * 4, BLOCKS_PER_PMD - 1)
    assert not short.pmd_capable(0)


def test_huge_coverage_fraction():
    tree = ExtentTree()
    tree.append(0, BLOCKS_PER_PMD)          # aligned region
    tree.append(BLOCKS_PER_PMD * 3 + 7, BLOCKS_PER_PMD)  # misaligned
    assert tree.huge_coverage() == pytest.approx(0.5)
    assert ExtentTree().huge_coverage() == 0.0


@settings(max_examples=50, deadline=None)
@given(st.lists(st.tuples(st.integers(0, 10_000), st.integers(1, 600)),
                min_size=1, max_size=30))
def test_property_append_truncate_roundtrip(appends):
    """Appends keep logical density; truncate frees exactly the tail."""
    tree = ExtentTree()
    total = 0
    for phys, length in appends:
        tree.append(phys, length)
        total += length
        tree.check_invariants()
    assert tree.block_count == total
    keep = total // 2
    freed = tree.truncate_to(keep)
    assert sum(l for _p, l in freed) == total - keep
    assert tree.block_count == keep
    tree.check_invariants()
