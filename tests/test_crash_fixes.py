"""Regression tests for the three fixes that rode the crash subsystem.

1. ``Journal.commit_sync`` books its commit record against the device's
   shared write-bandwidth pool (it used to be pure latency, invisible
   to bandwidth interference).
2. The msync sync epoch: a write racing an in-flight msync — through a
   still-writable PTE or through the reprotect fault — must come back
   dirty *after* the epoch instead of being swallowed by the flush.
3. ``RecoveryLog.recover_all`` walks inodes in inode-number order (the
   mount-scan order), with inode numbers assigned per mount, so
   recovery reports are deterministic regardless of path names.
"""

import pytest

from repro.config import DEFAULT_COSTS
from repro.core.recovery import RecoveryLog
from repro.fs.journal import Journal
from repro.fs.vfs import VFS
from repro.sim.stats import Stats
from repro.vm.vma import MapFlags, Protection

PAGE = 4096


def run(system, gen):
    thread = system.spawn(gen, core=0)
    system.run()
    return thread.result


def make_file(system, size, path="/f"):
    def flow():
        f = yield from system.fs.open(path, create=True)
        yield from system.fs.write(f, 0, size)
        return f

    return run(system, flow())


def drain(gen):
    """Drive a generator standalone, summing the cycles it charges."""
    total = 0.0
    try:
        while True:
            effect = gen.send(None)
            total += getattr(effect, "cycles", 0.0)
    except StopIteration:
        pass
    return total


# ---------------------------------------------------------------------------
# 1. Sync commits contend for device write bandwidth.
# ---------------------------------------------------------------------------
def test_sync_commit_pays_base_latency_on_an_idle_device(system):
    assert drain(system.fs.journal.commit_sync()) == pytest.approx(
        system.costs.journal_commit)


def test_sync_commit_stretches_when_write_bandwidth_is_saturated(system):
    # Backlog the shared write pool far into the simulated future, the
    # way a concurrent streaming writer would.
    system.mem.device_delay(0, 10 << 30, now=system.engine.now)
    cost = drain(system.fs.journal.commit_sync())
    assert cost > system.costs.journal_commit * 5


def test_standalone_journal_keeps_pure_latency_commits():
    journal = Journal(DEFAULT_COSTS, Stats())  # no fs: unit usage
    assert drain(journal.commit_sync()) == pytest.approx(
        DEFAULT_COSTS.journal_commit)


# ---------------------------------------------------------------------------
# 2. The msync sync epoch: racing writes are not lost.
# ---------------------------------------------------------------------------
def test_write_through_still_writable_pte_survives_the_epoch(system):
    """The lost-dirty-bit window: msync collected the tags but has not
    reprotected yet, so the racing write takes *no fault* — only the
    epoch re-mark can save it."""
    f = make_file(system, 4 * PAGE)
    proc = system.new_process()

    def flow():
        vma = yield from proc.mm.mmap(system.fs, f.inode, 0, 4 * PAGE,
                                      Protection.rw(), MapFlags.SHARED)
        yield from proc.mm.access(vma, 0, PAGE, write=True)
        return vma

    vma = run(system, flow())
    cache = proc.mm.page_cache
    assert cache.dirty_count(f.inode) == 1

    tags = cache.begin_sync(f.inode)  # msync collected the tags ...
    assert tags == {0}
    assert 0 in vma.writable          # ... but has not reprotected yet

    def racer():
        yield from proc.mm.access(vma, 0, PAGE, write=True)

    run(system, racer())
    assert cache.dirty_count(f.inode) == 0  # mid-epoch: tag deferred
    cache.end_sync(f.inode)
    assert cache.dirty_count(f.inode) == 1  # the write was not lost


def test_fault_during_sync_epoch_defers_the_remark(system):
    """Same window, reached through the fault path: the PTE is still
    writable, the fault is spurious, and the granule must be queued
    for re-tagging at epoch end rather than marked mid-flush."""
    f = make_file(system, 4 * PAGE)
    proc = system.new_process()

    def flow():
        vma = yield from proc.mm.mmap(system.fs, f.inode, 0, 4 * PAGE,
                                      Protection.rw(), MapFlags.SHARED)
        yield from proc.mm.access(vma, 0, PAGE, write=True)
        return vma

    vma = run(system, flow())
    cache = proc.mm.page_cache
    cache.begin_sync(f.inode)

    def racer():
        yield from proc.mm.fault(vma, 0, write=True)

    run(system, racer())
    assert cache.dirty_count(f.inode) == 0
    cache.end_sync(f.inode)
    assert cache.dirty_count(f.inode) == 1


def test_full_msync_cycle_still_reprotects_and_flushes(system):
    """The epoch refactor must not change the non-racing msync cycle:
    flush, reprotect, tracking restarts."""
    f = make_file(system, 8 * PAGE)
    proc = system.new_process()

    def flow():
        vma = yield from proc.mm.mmap(system.fs, f.inode, 0, 8 * PAGE,
                                      Protection.rw(), MapFlags.SHARED)
        yield from proc.mm.access(vma, 0, 4 * PAGE, write=True)
        yield from proc.mm.msync(vma)
        return vma

    vma = run(system, flow())
    cache = proc.mm.page_cache
    assert cache.dirty_count(f.inode) == 0
    assert not vma.writable
    assert not cache.in_sync(f.inode, 0)  # epoch closed


# ---------------------------------------------------------------------------
# 3. recover_all walks the inode table in inode-number order.
# ---------------------------------------------------------------------------
def test_vfs_inode_numbers_are_per_mount():
    a, b = VFS(), VFS()
    assert a.create("/zzz").number == 1
    assert b.create("/aaa").number == 1
    assert a.create("/aaa").number == 2


def test_vfs_inodes_sorted_by_number_not_path():
    vfs = VFS()
    vfs.create("/zzz")
    vfs.create("/mmm")
    vfs.create("/aaa")
    assert [i.path for i in vfs.inodes()] == ["/zzz", "/mmm", "/aaa"]


def test_recover_all_repairs_in_inode_table_order(system):
    manager = system.filetables
    system.fs.allow_huge = False

    def flow():
        for path in ("/zzz", "/aaa"):  # creation order != path order
            f = yield from system.fs.open(path, create=True)
            yield from system.fs.write(f, 0, 1 << 20)
            yield from system.fs.close(f)

    run(system, flow())
    for path in ("/zzz", "/aaa"):
        table = system.vfs.lookup(path).persistent_file_table
        assert table is not None
        table.truncate(table.filled_pages - 2)  # tear both tails

    report = RecoveryLog(system.vfs, manager).recover_all()
    assert report.tables_repaired == 2
    # Inode-number (creation) order, not lexicographic path order.
    assert report.repaired_paths == ["/zzz", "/aaa"]
