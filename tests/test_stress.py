"""Stress/concurrency integration tests: mixed workloads, many
processes, cross-FS invariants."""

import pytest

from repro.paging.tlb import AccessPattern
from repro.system import System
from repro.vm.vma import MapFlags, Protection


def test_sixteen_processes_mixed_interfaces_complete():
    """8 mmap processes + 8 DaxVM processes hammer the same file set
    concurrently; everything completes and block accounting balances."""
    system = System(device_bytes=2 << 30, aged=True)

    def setup():
        inodes = []
        for i in range(8):
            f = yield from system.fs.open(f"/shared{i}", create=True)
            yield from system.fs.write(f, 0, 64 << 10)
            yield from system.fs.close(f)
            inodes.append(f.inode)
        return inodes

    thread = system.spawn(setup(), core=0)
    system.run()
    inodes = thread.result
    done = []

    def mmap_worker(proc, wid):
        for i in range(20):
            inode = inodes[(wid + i) % len(inodes)]
            vma = yield from proc.mm.mmap(
                system.fs, inode, 0, 64 << 10, Protection.READ,
                MapFlags.SHARED)
            yield from proc.mm.access(vma, 0, 64 << 10)
            yield from proc.mm.munmap(vma)
        done.append(wid)

    def dax_worker(proc, dax, wid):
        for i in range(20):
            inode = inodes[(wid + i) % len(inodes)]
            vma = yield from dax.mmap(
                inode, 0, 64 << 10, Protection.READ,
                MapFlags.SHARED | MapFlags.EPHEMERAL
                | MapFlags.UNMAP_ASYNC)
            yield from proc.mm.access(vma, vma.user_addr - vma.start,
                                      64 << 10)
            yield from dax.munmap(vma)
        done.append(wid)

    for w in range(8):
        proc = system.new_process(f"m{w}")
        system.spawn(mmap_worker(proc, w), core=w, process=proc)
    for w in range(8, 16):
        proc = system.new_process(f"d{w}")
        dax = system.daxvm_for(proc)
        system.spawn(dax_worker(proc, dax, w), core=w, process=proc)
    system.run()
    assert sorted(done) == list(range(16))
    # Every translation shares the same physical frames across all 16
    # address spaces (no corruption of the shared file tables).
    for inode in inodes:
        frame = system.device.frame_of(inode.extents.physical_block(0))
        assert frame >= system.physmem.pmem.base_frame


def test_concurrent_appends_and_truncates_conserve_blocks():
    system = System(device_bytes=2 << 30)
    proc = system.new_process()
    dax = system.daxvm_for(proc)
    total = system.device.total_blocks

    def churn(wid):
        for i in range(15):
            path = f"/churn{wid}_{i}"
            f = yield from system.fs.open(path, create=True)
            yield from system.fs.write(f, 0, (1 + (i % 4)) << 16)
            if i % 2:
                yield from system.fs.truncate(f, 4096)
            yield from system.fs.close(f)
            if i % 3 == 2:
                yield from system.fs.unlink(path)

    for w in range(8):
        system.spawn(churn(w), core=w, process=proc)
    system.run()
    dax.prezero.drain_now()
    live = sum(system.vfs.lookup(p).block_count
               for p in system.vfs.paths())
    table_blocks = sum(
        (system.vfs.lookup(p).persistent_file_table.storage_bytes // 4096)
        for p in system.vfs.paths()
        if system.vfs.lookup(p).persistent_file_table is not None)
    assert system.device.free_blocks + live + table_blocks == total


def test_repetitive_concurrent_with_ephemeral_storm():
    """A database-style reader shares the machine with an mmap storm;
    both finish and the reader's faults are unaffected in count."""
    system = System(device_bytes=2 << 30, aged=True)
    db = system.new_process("db")
    web = system.new_process("web")

    def setup():
        f = yield from system.fs.open("/db", create=True)
        yield from system.fs.write(f, 0, 32 << 20)
        for i in range(8):
            g = yield from system.fs.open(f"/page{i}", create=True)
            yield from system.fs.write(g, 0, 32 << 10)
        return f.inode

    thread = system.spawn(setup(), core=0)
    system.run()
    db_inode = thread.result

    def reader():
        vma = yield from db.mm.mmap(system.fs, db_inode, 0, 32 << 20,
                                    Protection.READ, MapFlags.SHARED)
        for i in range(2000):
            offset = (i * 37 % 8192) * 4096
            yield from db.mm.access(vma, offset, 4096,
                                    pattern=AccessPattern.RANDOM,
                                    copy=True)

    def storm():
        for i in range(200):
            f = yield from system.fs.open(f"/page{i % 8}")
            vma = yield from web.mm.mmap(system.fs, f.inode, 0, 32 << 10,
                                         Protection.READ, MapFlags.SHARED)
            yield from web.mm.access(vma, 0, 32 << 10)
            yield from web.mm.munmap(vma)
            yield from system.fs.close(f)

    system.spawn(reader(), core=0, process=db)
    system.spawn(storm(), core=1, process=web)
    system.run()
    # Separate mm's: the storm's shootdowns target only its own cores.
    assert system.stats.get("vm.faults") > 0


@pytest.mark.parametrize("fs_type", ["ext4", "nova", "xfs"])
def test_cross_fs_invariants(fs_type):
    """Every FS honours the same accounting contract."""
    system = System(device_bytes=1 << 30, fs_type=fs_type)
    proc = system.new_process()
    dax = system.daxvm_for(proc)
    before = system.device.free_blocks

    def flow():
        f = yield from system.fs.open("/x", create=True)
        yield from system.fs.write(f, 0, 1 << 20)
        vma = yield from dax.mmap(f.inode, 0, 1 << 20, Protection.rw(),
                                  MapFlags.SHARED | MapFlags.SYNC)
        yield from proc.mm.access(vma, vma.user_addr - vma.start,
                                  1 << 20, write=True)
        yield from dax.munmap(vma)
        yield from system.fs.close(f)
        yield from system.fs.unlink("/x")

    system.spawn(flow(), core=0, process=proc)
    system.run()
    dax.prezero.drain_now()
    assert system.device.free_blocks == before
    assert system.device.check_invariants() is None
