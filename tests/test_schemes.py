"""TranslationScheme contract tests across the four MMUs.

Covers the satellites of the scheme refactor (DESIGN.md §11):

* the mapping-primitive contract every scheme implements;
* teardown safety — detaching a process mapping must never free or
  clear the *shared* file-table state, under every scheme, including
  double attach/detach and teardown while another process is attached;
* ``to_state``/``from_state`` losslessness and pool-worker parity (a
  point simulated twice produces identical bytes, like Stats/Ledger);
* the ``PageWalker.walk_cost_for`` leaf-factor regression;
* the sweep cache fingerprint: scheme name and per-scheme cost
  parameters both invalidate cached results.
"""

import dataclasses
import json

import pytest

from repro.config import DEFAULT_COSTS, MEDIA_PRESETS
from repro.errors import NotSupportedError, SegmentationFault
from repro.mem.physmem import Medium
from repro.obs import CostDomain
from repro.paging.pagetable import PMD_LEVEL, PTE_LEVEL, Translation
from repro.paging.flags import PageFlags
from repro.paging.schemes import (
    SCHEME_NAMES,
    HashedScheme,
    RangeScheme,
    make_scheme,
    restore_scheme,
)
from repro.paging.tlb import AccessPattern
from repro.paging.walker import PageWalker
from repro.runner.manifest import SweepPoint
from repro.runner.worker import run_point
from repro.system import System
from repro.vm.vma import MapFlags, Protection

PAGE = 4096
PMD = 2 << 20
BASE = 0x4000_0000  # GB-aligned: valid for every leaf level


def run(system, gen):
    thread = system.spawn(gen, core=0)
    system.run()
    return thread.result


def make_file(system, size, path="/f"):
    def flow():
        f = yield from system.fs.open(path, create=True)
        yield from system.fs.write(f, 0, size)
        return f.inode

    return run(system, flow())


def dax_map(system, dax, inode, size):
    def flow():
        vma = yield from dax.mmap(inode, 0, size, Protection.READ)
        return vma

    return run(system, flow())


def dax_unmap(system, dax, vma):
    def flow():
        yield from dax.munmap(vma)

    run(system, flow())


@pytest.fixture(params=SCHEME_NAMES)
def scheme_name(request):
    return request.param


@pytest.fixture
def scheme(scheme_name, physmem):
    return make_scheme(scheme_name, physmem, DEFAULT_COSTS)


# ---------------------------------------------------------------------------
# Mapping-primitive contract (uniform across schemes).
# ---------------------------------------------------------------------------
def test_map_translate_unmap_roundtrip(scheme):
    for i in range(8):
        scheme.map_page(BASE + i * PAGE, 100 + i, PageFlags.rw())
    t = scheme.translate(BASE + 3 * PAGE)
    assert t.frame == 103
    assert t.flags.writable
    assert scheme.unmap_page(BASE + 3 * PAGE)
    with pytest.raises(SegmentationFault):
        scheme.translate(BASE + 3 * PAGE)
    assert not scheme.unmap_page(BASE + 3 * PAGE)
    assert scheme.translate(BASE + 4 * PAGE).frame == 104


def test_huge_leaf_covers_whole_region(scheme):
    scheme.map_page(BASE, 7000, PageFlags.rw() | PageFlags.HUGE,
                    PMD_LEVEL)
    t = scheme.translate(BASE)
    assert t.leaf_level >= PMD_LEVEL or t.flags & PageFlags.HUGE
    # An interior address still resolves (no per-page entries exist).
    scheme.translate(BASE + 37 * PAGE)


def test_protect_range_drops_write_permission(scheme):
    for i in range(4):
        scheme.map_page(BASE + i * PAGE, 200 + i, PageFlags.rw())
    changed = scheme.protect_range(BASE, 4 * PAGE, PageFlags.ro())
    assert changed > 0
    assert not scheme.translate(BASE + PAGE).flags.writable


def test_clear_range_counts_pages(scheme):
    for i in range(8):
        scheme.map_page(BASE + i * PAGE, 300 + i, PageFlags.rw())
    assert scheme.clear_range(BASE, 8 * PAGE) == 8
    with pytest.raises(SegmentationFault):
        scheme.translate(BASE)


def test_fragment_capability_matches_flag(scheme):
    if scheme.supports_fragments:
        assert scheme.name in ("radix4", "radix5")
    else:
        with pytest.raises(NotSupportedError):
            scheme.attach_fragment(BASE, None, PageFlags.ro())
        with pytest.raises(NotSupportedError):
            scheme.detach_fragment(BASE, PMD_LEVEL)


def test_structure_report_accounts_every_frame(scheme):
    for i in range(16):
        scheme.map_page(BASE + i * PAGE, 400 + i, PageFlags.rw())
    report = scheme.structure_report()
    frames = scheme.structure_frames()
    assert report["scheme"] == scheme.name
    assert report["frames"] == len(frames) >= 1
    assert report["bytes"] == len(frames) * PAGE
    assert sum(report["by_node"].values()) == len(frames)


def test_make_scheme_rejects_unknown_names(physmem):
    with pytest.raises(KeyError):
        make_scheme("radix6", physmem, DEFAULT_COSTS)
    with pytest.raises(KeyError):
        restore_scheme({"name": "radix6"})


# ---------------------------------------------------------------------------
# Per-architecture structure behaviour.
# ---------------------------------------------------------------------------
def test_hashed_table_resizes_under_load(physmem):
    scheme = make_scheme("hashed", physmem, DEFAULT_COSTS)
    frames_before = len(scheme.structure_frames())
    # Exceed LOAD_FACTOR * INITIAL_CAPACITY entries.
    limit = int(HashedScheme.LOAD_FACTOR
                * HashedScheme.INITIAL_CAPACITY) + 8
    for i in range(limit):
        scheme.map_page(BASE + i * PAGE, 500 + i, PageFlags.rw())
    assert scheme.resizes >= 1
    assert len(scheme.structure_frames()) > frames_before


def test_range_merges_contiguous_runs(physmem):
    scheme = make_scheme("range", physmem, DEFAULT_COSTS)
    # Frame-contiguous, flag-equal neighbours collapse to one entry.
    for i in range(64):
        scheme.map_page(BASE + i * PAGE, 600 + i, PageFlags.rw())
    assert len(scheme.ranges) == 1
    assert scheme.range_merges > 0
    # A frame discontinuity forces a second entry.
    scheme.map_page(BASE + 64 * PAGE, 9000, PageFlags.rw())
    assert len(scheme.ranges) == 2


def test_range_walk_cost_grows_with_fragmentation(physmem):
    scheme = make_scheme("range", physmem, DEFAULT_COSTS)
    walker = PageWalker(DEFAULT_COSTS)
    scheme.map_page(BASE, 100, PageFlags.rw())
    cheap = scheme.walk_cost(walker, AccessPattern.RANDOM, Medium.PMEM)
    for i in range(1, 256):  # discontiguous frames: no merging
        scheme.map_page(BASE + i * PAGE, 100 + 2 * i, PageFlags.rw())
    assert len(scheme.ranges) > 128
    costly = scheme.walk_cost(walker, AccessPattern.RANDOM, Medium.PMEM)
    assert costly > cheap


def test_radix5_walks_cost_one_extra_level(physmem):
    r4 = make_scheme("radix4", physmem, DEFAULT_COSTS)
    r5 = make_scheme("radix5", physmem, DEFAULT_COSTS)
    walker = PageWalker(DEFAULT_COSTS)
    for pattern in (AccessPattern.SEQUENTIAL, AccessPattern.RANDOM):
        for medium in (Medium.DRAM, Medium.PMEM):
            assert (r5.walk_cost(walker, pattern, medium)
                    > r4.walk_cost(walker, pattern, medium))
    assert r5.huge_walk_cost(walker) > r4.huge_walk_cost(walker)


def test_hashed_walks_ignore_pattern_and_table_medium(physmem):
    scheme = make_scheme("hashed", physmem, DEFAULT_COSTS)
    walker = PageWalker(DEFAULT_COSTS)
    costs = {scheme.walk_cost(walker, pattern, medium)
             for pattern in (AccessPattern.SEQUENTIAL,
                             AccessPattern.RANDOM)
             for medium in (Medium.DRAM, Medium.PMEM)}
    assert len(costs) == 1  # one probe chain, always
    # A persistent file table never reaches the inverted table's walk.
    assert scheme.effective_leaf_medium(Medium.PMEM) is Medium.DRAM


# ---------------------------------------------------------------------------
# Satellite: walk_cost_for must forward the NUMA leaf factor.
# ---------------------------------------------------------------------------
def test_walk_cost_for_forwards_leaf_factor():
    walker = PageWalker(DEFAULT_COSTS)
    tr = Translation(1, PageFlags.rw(), PTE_LEVEL,
                     [Medium.DRAM, Medium.DRAM, Medium.DRAM, Medium.PMEM])
    remote = walker.walk_cost_for(tr, AccessPattern.RANDOM,
                                  leaf_factor=2.0)
    local = walker.walk_cost_for(tr, AccessPattern.RANDOM)
    # The regression: leaf_factor used to be dropped, making these equal.
    assert remote > local
    assert remote == walker.walk_cost(AccessPattern.RANDOM, Medium.PMEM,
                                      leaf_factor=2.0)
    assert local == walker.walk_cost(AccessPattern.RANDOM, Medium.PMEM)


# ---------------------------------------------------------------------------
# Satellite: teardown must detach, never free, shared file tables.
# ---------------------------------------------------------------------------
def _table_snapshot(table):
    """Complete observable file-table content (nodes + entries)."""
    return {
        "filled": table.filled_pages,
        "huge": dict(table.huge_frames),
        "pte": {region: sorted((idx, entry.frame)
                               for idx, entry in node.entries.items())
                for region, node in table.pte_nodes.items()},
        "pmd": sorted(table.pmd_nodes),
    }


def _table_frames(table):
    """Structure-node frames plus every data frame the table points at."""
    frames = set()
    for node in table.pte_nodes.values():
        frames.add(node.frame)
        frames.update(e.frame for e in node.entries.values())
    for node in table.pmd_nodes.values():
        frames.add(node.frame)
    frames.update(table.huge_frames.values())
    return frames


def _watch_frees(system):
    freed = []
    original = system.physmem.free_frame

    def recording(frame):
        freed.append(frame)
        original(frame)

    system.physmem.free_frame = recording
    return freed


def test_munmap_detaches_but_never_frees_table(scheme_name):
    system = System(device_bytes=1 << 30, scheme=scheme_name)
    system.fs.allow_huge = False  # force populated PTE fragments
    proc = system.new_process()
    dax = system.daxvm_for(proc)
    inode = make_file(system, 1 << 20)
    table = system.filetables.table_for(inode)
    before = _table_snapshot(table)
    protected = _table_frames(table)
    freed = _watch_frees(system)

    vma = dax_map(system, dax, inode, 1 << 20)
    assert len(vma.attachments) == 1
    dax_unmap(system, dax, vma)

    assert _table_snapshot(table) == before
    assert not (set(freed) & protected), (
        f"{scheme_name}: teardown freed shared file-table frames")


def test_double_attach_detach_leaves_table_reusable(scheme_name):
    system = System(device_bytes=1 << 30, scheme=scheme_name)
    system.fs.allow_huge = False
    proc = system.new_process()
    dax = system.daxvm_for(proc)
    inode = make_file(system, 1 << 20)
    table = system.filetables.table_for(inode)
    before = _table_snapshot(table)
    freed = _watch_frees(system)

    first = dax_map(system, dax, inode, 1 << 20)
    second = dax_map(system, dax, inode, 1 << 20)
    assert first.start != second.start
    dax_unmap(system, dax, first)
    # The surviving mapping still translates after its twin detached.
    assert proc.mm.page_table.translate(second.user_addr) is not None
    dax_unmap(system, dax, second)

    assert _table_snapshot(table) == before
    assert not (set(freed) & _table_frames(table))
    # And the table is still attachable: a third mapping works.
    third = dax_map(system, dax, inode, 1 << 20)
    assert proc.mm.page_table.translate(third.user_addr) is not None


def test_teardown_while_another_process_attached(scheme_name):
    system = System(device_bytes=1 << 30, scheme=scheme_name)
    system.fs.allow_huge = False
    proc1 = system.new_process("p1")
    proc2 = system.new_process("p2")
    dax1 = system.daxvm_for(proc1)
    dax2 = system.daxvm_for(proc2)
    inode = make_file(system, 1 << 20)
    table = system.filetables.table_for(inode)
    freed = _watch_frees(system)

    vma1 = dax_map(system, dax1, inode, 1 << 20)
    vma2 = dax_map(system, dax2, inode, 1 << 20)
    snapshot = _table_snapshot(table)
    dax_unmap(system, dax1, vma1)  # p1 exits while p2 is attached

    assert _table_snapshot(table) == snapshot
    assert not (set(freed) & _table_frames(table))
    t = proc2.mm.page_table.translate(vma2.user_addr)
    assert t.frame in {frame for _idx, frame
                       in sum(snapshot["pte"].values(), [])} \
        or snapshot["huge"]
    with pytest.raises(SegmentationFault):
        proc1.mm.page_table.translate(vma1.user_addr)


# ---------------------------------------------------------------------------
# Satellite: to_state/from_state losslessness + worker parity.
# ---------------------------------------------------------------------------
def test_state_roundtrip_is_lossless(scheme_name):
    system = System(device_bytes=1 << 30, scheme=scheme_name)
    proc = system.new_process()
    inode = make_file(system, 256 << 10)

    def flow():
        vma = yield from proc.mm.mmap(system.fs, inode, 0, 256 << 10,
                                      Protection.rw(), MapFlags.SHARED)
        for page in range(0, 64, 3):  # fault in owned translations
            yield from proc.mm.fault(vma, page, write=True)
        return vma

    vma = run(system, flow())
    original = proc.mm.scheme
    state = original.to_state()
    # JSON-safe: the snapshot survives the pool/cache boundary.
    assert json.loads(json.dumps(state)) == state

    restored = restore_scheme(state)
    assert restored.name == scheme_name
    assert restored.physmem is None  # detached: translate-only
    assert restored.to_state() == state
    for page in range(0, 64, 3):
        vaddr = vma.start + page * PAGE
        assert (restored.translate(vaddr).frame
                == original.translate(vaddr).frame)


def test_worker_points_are_deterministic_per_scheme(scheme_name):
    point = SweepPoint(
        experiment="syncbench", series=f"syncbench+{scheme_name}",
        x=0.0,
        params={"file_size": 4 << 20, "op_size": 1 << 10,
                "ops_per_sync": 8, "num_syncs": 4,
                "discipline": "daxvm+fsync"},
        media="optane", device_gib=1, aged=True, scheme=scheme_name)
    first = run_point(point.to_payload())
    second = run_point(point.to_payload())

    def strip(state):
        return {k: v for k, v in state.items() if k != "wall_seconds"}

    assert (json.dumps(strip(first), sort_keys=True)
            == json.dumps(strip(second), sort_keys=True))


# ---------------------------------------------------------------------------
# Satellite: scheme and its cost parameters fingerprint the cache.
# ---------------------------------------------------------------------------
def _point(scheme, media="optane"):
    return SweepPoint(experiment="syncbench", series="s", x=1.0,
                      params={"file_size": 4 << 20}, media=media,
                      scheme=scheme)


def test_cache_key_covers_scheme_name():
    keys = {_point(name).cache_key("fp") for name in SCHEME_NAMES}
    assert len(keys) == len(SCHEME_NAMES)
    assert _point("radix4").cache_key("fp") \
        == _point("radix4").cache_key("fp")


def test_cache_key_covers_scheme_cost_params():
    stable = MEDIA_PRESETS["optane"]().to_stable_dict()
    for param in ("walk5_upper_extra_seq", "walk5_upper_extra_rand",
                  "hashed_walk_compute", "hashed_probe_avg",
                  "hashed_insert", "range_walk_base", "range_walk_step",
                  "range_insert"):
        assert param in stable
    # Retuning a scheme constant must invalidate cached results.
    base = MEDIA_PRESETS["optane"]
    MEDIA_PRESETS["_tweak"] = base
    try:
        before = _point("hashed", media="_tweak").cache_key("fp")
        MEDIA_PRESETS["_tweak"] = \
            lambda: dataclasses.replace(base(), hashed_insert=999.0)
        after = _point("hashed", media="_tweak").cache_key("fp")
    finally:
        del MEDIA_PRESETS["_tweak"]
    assert before != after


# ---------------------------------------------------------------------------
# The attach asymmetry, at unit scale (the sweep benchmark holds the
# full-workload version).
# ---------------------------------------------------------------------------
def test_hashed_attach_degrades_to_per_page_inserts():
    attach = {}
    for name in SCHEME_NAMES:
        system = System(device_bytes=1 << 30, scheme=name)
        system.fs.allow_huge = False  # huge leaves would hide the cost
        proc = system.new_process()
        dax = system.daxvm_for(proc)
        inode = make_file(system, 8 << 20)
        dax_map(system, dax, inode, 8 << 20)
        attach[name] = system.ledger.event_total(CostDomain.FILETABLE,
                                                 "attach")
    assert attach["radix4"] == attach["radix5"] > 0
    assert attach["hashed"] > 50 * attach["radix4"]
    assert attach["hashed"] > 5 * attach["range"]


def test_range_attach_pays_for_aged_images():
    def attach_cycles(aged):
        system = System(device_bytes=1 << 30, aged=aged, scheme="range")
        proc = system.new_process()
        dax = system.daxvm_for(proc)
        inode = make_file(system, 8 << 20)
        vma = dax_map(system, dax, inode, 8 << 20)
        scheme = proc.mm.scheme
        assert isinstance(scheme, RangeScheme)
        assert vma is not None
        return system.ledger.event_total(CostDomain.FILETABLE, "attach")

    assert attach_cycles(aged=True) > attach_cycles(aged=False)
