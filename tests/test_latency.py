"""Unit tests for the memory cost model and bandwidth throttles."""

import pytest

from repro.config import DEFAULT_COSTS
from repro.errors import InvalidArgumentError
from repro.mem.latency import BandwidthThrottle, MemoryModel, SharedBandwidth
from repro.mem.physmem import Medium


@pytest.fixture
def mem():
    return MemoryModel(DEFAULT_COSTS)


def test_pmem_loads_slower_than_dram(mem):
    assert mem.load_latency(Medium.PMEM) > mem.load_latency(Medium.DRAM)
    assert mem.load_latency(Medium.DRAM, cached=True) \
        < mem.load_latency(Medium.DRAM)


def test_stream_read_scales_with_size(mem):
    small = mem.stream_read(4096, Medium.PMEM)
    big = mem.stream_read(65536, Medium.PMEM)
    assert big > small
    # Streaming is roughly linear beyond the startup cost.
    assert big / small == pytest.approx(16, rel=0.35)


def test_cached_read_is_fastest(mem):
    n = 1 << 20
    assert mem.stream_read(n, Medium.DRAM, cached=True) \
        < mem.stream_read(n, Medium.DRAM) \
        < mem.stream_read(n, Medium.PMEM)


def test_ntstore_beats_clwb_flush(mem):
    """FAST'20: nt-stores ~double the bandwidth of store+clwb."""
    n = 1 << 20
    nt = mem.stream_write(n, Medium.PMEM, ntstore=True)
    flush = mem.clwb_flush(n)
    assert flush / nt == pytest.approx(2.0, rel=0.25)


def test_cached_stores_defer_durability(mem):
    """Plain stores complete near DRAM speed; clwb cost comes later."""
    n = 1 << 20
    assert mem.stream_write(n, Medium.PMEM, ntstore=False) \
        < mem.stream_write(n, Medium.PMEM, ntstore=True)


def test_kernel_copy_discount(mem):
    n = 1 << 20
    user = mem.memcpy(n, Medium.PMEM, Medium.DRAM, kernel=False)
    kernel = mem.memcpy(n, Medium.PMEM, Medium.DRAM, kernel=True)
    assert kernel > user


def test_memcpy_bandwidth_is_min_of_sides(mem):
    n = 1 << 20
    to_pmem = mem.memcpy(n, Medium.DRAM, Medium.PMEM, ntstore=True)
    to_dram = mem.memcpy(n, Medium.PMEM, Medium.DRAM)
    # nt-store bandwidth (2.2 GB/s) is the bottleneck writing to PMem.
    assert to_pmem > to_dram


def test_random_read_pays_latency_per_chunk(mem):
    seq = mem.stream_read(64 << 10, Medium.PMEM)
    rand = mem.random_read(64 << 10, 4096, Medium.PMEM)
    assert rand > seq


def test_throttle_paces_consumption():
    throttle = BandwidthThrottle(64e6, 2.7e9)  # 64 MB/s
    one_chunk = (64 << 20) / 64e6 * 2.7e9  # cycles per 64 MiB chunk
    first = throttle.delay_for(64 << 20, now=0.0)
    assert first == pytest.approx(one_chunk, rel=0.01)
    second = throttle.delay_for(64 << 20, now=0.0)
    assert second == pytest.approx(2 * one_chunk, rel=0.01)


def test_throttle_idle_periods_do_not_accumulate_credit():
    throttle = BandwidthThrottle(1e9, 1e9)  # 1 B/cycle
    throttle.delay_for(1000, now=0.0)
    # Long idle gap, then a transfer: only the transfer time is owed.
    delay = throttle.delay_for(500, now=1e9)
    assert delay == pytest.approx(500)


def test_throttle_rejects_nonpositive_bandwidth():
    with pytest.raises(ValueError):
        BandwidthThrottle(0, 2.7e9)


def test_throttle_back_to_back_bursts_queue_linearly():
    """Each burst pays for itself plus whatever backlog is unpaid."""
    throttle = BandwidthThrottle(1e9, 1e9)  # 1 B/cycle
    assert throttle.delay_for(100, now=0.0) == pytest.approx(100)
    assert throttle.delay_for(100, now=0.0) == pytest.approx(200)
    assert throttle.delay_for(100, now=0.0) == pytest.approx(300)


def test_throttle_budget_accrues_while_waiting():
    """Time the caller actually waits pays the backlog down, so a
    later transfer owes only the remainder plus its own cost."""
    throttle = BandwidthThrottle(1e9, 1e9)  # 1 B/cycle
    assert throttle.delay_for(1000, now=0.0) == pytest.approx(1000)
    # 600 cycles later, 400 cycles of backlog remain ahead of the
    # next 100-byte transfer.
    assert throttle.delay_for(100, now=600.0) == pytest.approx(500)


def test_throttle_fully_waited_backlog_leaves_only_transfer_time():
    throttle = BandwidthThrottle(2e9, 1e9)  # 2 B/cycle
    first = throttle.delay_for(1000, now=0.0)
    assert first == pytest.approx(500)
    # The consumer slept through its delay: the next transfer starts
    # with a clean bucket and owes exactly its own transfer time.
    assert throttle.delay_for(1000, now=first) == pytest.approx(500)


def test_shared_bandwidth_is_invisible_at_low_load():
    shared = SharedBandwidth(19.8e9, 7.5e9, 2.7e9)
    # One 4 KB read takes ~0.56 us of device time; a second request a
    # long time later sees no queueing.
    assert shared.delay(4096, 0, now=0.0) > 0
    assert shared.delay(4096, 0, now=1e9) < 1000


def test_shared_bandwidth_queues_at_saturation():
    shared = SharedBandwidth(1e9, 1e9, 1e9)  # 1 B/cycle
    d1 = shared.delay(1 << 20, 0, now=0.0)
    d2 = shared.delay(1 << 20, 0, now=0.0)
    assert d2 > d1  # back-to-back requests queue


def test_device_delay_absent_without_wiring(mem):
    assert mem.device_delay(1 << 20, 0, now=0.0) == 0.0


def test_interference_enter_exit_composes(mem):
    """Concurrent background streams stack; the worst one wins, and
    exiting one stream leaves the others' penalties intact."""
    assert mem.interference_for(0) == 1.0
    mem.enter_interference(1.07)
    mem.enter_interference(1.5)
    assert mem.interference_for(0) == 1.5
    mem.exit_interference(1.5)
    assert mem.interference_for(0) == 1.07
    mem.exit_interference(1.07)
    assert mem.interference_for(0) == 1.0


def test_interference_unmatched_exit_raises(mem):
    with pytest.raises(InvalidArgumentError):
        mem.exit_interference(1.07)


def test_interference_is_per_node(mem):
    mem.enter_interference(1.3, node=1)
    assert mem.interference_for(0) == 1.0
    assert mem.interference_for(1) == 1.3
    # Unknown nodes read as quiet rather than raising.
    assert mem.interference_for(7) == 1.0
    mem.exit_interference(1.3, node=1)


def test_interference_slows_pmem_streams(mem):
    quiet = mem.stream_read(1 << 20, Medium.PMEM)
    mem.enter_interference(1.07)
    slowed = mem.stream_read(1 << 20, Medium.PMEM)
    mem.exit_interference(1.07)
    # The fixed per-copy startup cost is not media-bound, so compare
    # the bandwidth-proportional part.
    assert slowed == pytest.approx(quiet * 1.07, rel=1e-4)
