"""The pluggable tier model and the hot/cold tiering daemon.

Covers the PR-8 satellites end to end:

* exhaustive spec dispatch — pricing an unknown medium is a loud
  :class:`~repro.errors.InvalidArgumentError`, never a silent PMem
  fallback (the old ``else:`` branch);
* range-scheme TLB coalescing — one TLB entry per contiguous run, so
  clean images walk once per access window while aged images pay per
  fragment;
* :class:`~repro.topology.InterleaveMap` stripe-granule validation;
* tier state round-trips (TierMap / TieringConfig / TieringDaemon /
  expander topologies) and sequential-vs-parallel determinism of
  daemon-enabled sweep points;
* the daemon's promote / clean-demote / dirty-writeback / budget
  behaviours against a live :class:`~repro.system.System`.
"""

import json

import pytest

from repro.config import DEFAULT_COSTS
from repro.errors import InvalidArgumentError
from repro.mem.latency import MemoryModel
from repro.mem.physmem import Medium, PhysicalMemory
from repro.mem.tiers import medium_specs, spec_for
from repro.obs import CostDomain, Counter
from repro.paging.flags import PageFlags
from repro.paging.pagetable import PAGE_SIZE
from repro.paging.schemes import make_scheme
from repro.runner import run_sweep
from repro.runner.manifest import Sweep
from repro.runner.sweeps import build_sweep
from repro.system import System
from repro.tiering import (
    GRANULE_BYTES,
    GRANULE_PAGES,
    TierMap,
    TieringConfig,
    TieringDaemon,
)
from repro.topology import MachineTopology

MACHINE = DEFAULT_COSTS.machine


# ---------------------------------------------------------------------------
# Exhaustive spec dispatch (no silent PMem fallback).
# ---------------------------------------------------------------------------
def test_spec_registry_covers_every_medium():
    specs = medium_specs(DEFAULT_COSTS)
    assert set(specs) == set(Medium)
    assert specs[Medium.DRAM].persistent is False
    assert specs[Medium.PMEM].persistent is True
    # The expander media stream nt-stores at device rate (no DRAM
    # write-combining escape hatch like the old ``DRAM or not
    # ntstore`` branch gave).
    assert specs[Medium.CXL].ntstore_streams is True
    assert specs[Medium.FAR].ntstore_streams is True


def test_unknown_medium_raises_everywhere():
    """Pricing paths must refuse media without a registered spec —
    the failure mode the refactor retires is the implicit ``else:
    price as PMem`` arm."""
    specs = medium_specs(DEFAULT_COSTS)
    with pytest.raises(InvalidArgumentError, match="no MediumSpec"):
        spec_for(specs, "hbm")
    mem = MemoryModel(DEFAULT_COSTS)
    with pytest.raises(InvalidArgumentError):
        mem.load_latency("hbm")
    with pytest.raises(InvalidArgumentError):
        mem.stream_read(4096, "hbm")
    with pytest.raises(InvalidArgumentError):
        mem.stream_write(4096, "hbm")
    with pytest.raises(InvalidArgumentError):
        mem.memcpy(4096, Medium.DRAM, "hbm")
    with pytest.raises(InvalidArgumentError):
        mem.memcpy(4096, "hbm", Medium.DRAM)


def test_expander_pricing_sits_between_dram_and_pmem():
    mem = MemoryModel(DEFAULT_COSTS)
    dram = mem.load_latency(Medium.DRAM)
    cxl = mem.load_latency(Medium.CXL)
    pmem = mem.load_latency(Medium.PMEM)
    assert dram < cxl < pmem
    assert (mem.stream_read(1 << 20, Medium.DRAM)
            < mem.stream_read(1 << 20, Medium.CXL)
            < mem.stream_read(1 << 20, Medium.PMEM))


# ---------------------------------------------------------------------------
# Range-scheme TLB coalescing (one entry per contiguous run).
# ---------------------------------------------------------------------------
def _range_scheme():
    return make_scheme("range", PhysicalMemory(1 << 30, 1 << 30),
                       DEFAULT_COSTS)


BASE = 0x40000000


def test_range_coalesces_contiguous_run_to_one_miss():
    scheme = _range_scheme()
    for i in range(64):
        scheme.map_page(BASE + i * PAGE_SIZE, 5000 + i, PageFlags.rw())
    assert len(scheme.ranges) == 1
    assert scheme.coalesce_tlb_misses(32.0, BASE, 64) == 1.0


def test_range_coalescing_scales_with_fragmentation():
    scheme = _range_scheme()
    # Frames alternate direction, so no two pages merge: 64 runs.
    for i in range(64):
        frame = 5000 + i if i % 2 == 0 else 9000 - i
        scheme.map_page(BASE + i * PAGE_SIZE, frame, PageFlags.rw())
    assert len(scheme.ranges) == 64
    # More runs than misses: the TLB can't do better than the miss
    # count the walker already priced.
    assert scheme.coalesce_tlb_misses(32.0, BASE, 64) == 32.0
    # Fewer runs than misses: one entry per run.
    scheme2 = _range_scheme()
    for run in range(4):
        for i in range(16):
            scheme2.map_page(BASE + (run * 16 + i) * PAGE_SIZE,
                             5000 + run * 1000 + i, PageFlags.rw())
    assert len(scheme2.ranges) == 4
    assert scheme2.coalesce_tlb_misses(32.0, BASE, 64) == 4.0


def test_radix_coalescing_is_identity():
    """The default hook must return the miss count unchanged (the
    golden gate leans on this being exact, not just close)."""
    scheme = make_scheme("radix4", PhysicalMemory(1 << 30, 1 << 30),
                         DEFAULT_COSTS)
    misses = 17.3
    assert scheme.coalesce_tlb_misses(misses, BASE, 64) is misses


def test_range_walks_fewer_on_clean_than_aged_image():
    """End to end: the same syncbench over a clean image (few
    contiguous runs) must charge fewer walk cycles than over an aged
    one (fragmented extents -> many runs, deeper binary searches)."""
    from repro.workloads import SyncConfig, SyncDiscipline, run_sync

    walks = {}
    for aged in (False, True):
        system = System(device_bytes=1 << 30, aged=aged, scheme="range")
        cfg = SyncConfig(file_size=8 << 20, op_size=1 << 10,
                         ops_per_sync=16, num_syncs=16,
                         discipline=SyncDiscipline.DAXVM_FSYNC)
        run_sync(system, cfg)
        walks[aged] = system.stats.get(Counter.VM_WALK_CYCLES)
    assert walks[False] < walks[True]


# ---------------------------------------------------------------------------
# InterleaveMap stripe-granule validation.
# ---------------------------------------------------------------------------
def test_interleave_granule_must_tile_attach_granule():
    from repro.topology import INTERLEAVE_BLOCKS, InterleaveMap

    ranges = [(1000, 4 * INTERLEAVE_BLOCKS), (9000, 4 * INTERLEAVE_BLOCKS)]
    # Multiples of the 2 MB chunk are fine (including the default).
    InterleaveMap(ranges)
    InterleaveMap(ranges, granule=2 * INTERLEAVE_BLOCKS)
    with pytest.raises(InvalidArgumentError, match="2 MB"):
        InterleaveMap(ranges, granule=INTERLEAVE_BLOCKS - 1)
    with pytest.raises(InvalidArgumentError):
        InterleaveMap(ranges, granule=0)
    with pytest.raises(InvalidArgumentError):
        InterleaveMap([])


# ---------------------------------------------------------------------------
# State round-trips.
# ---------------------------------------------------------------------------
class FakeInode:
    def __init__(self, number):
        self.number = number
        self.i_mmap = []


def test_tiermap_state_roundtrip_is_lossless():
    tiers = TierMap(default=Medium.CXL)
    tiers.place(3, 0, Medium.DRAM)
    tiers.place(3, 7, Medium.DRAM)
    tiers.place(9, 2, Medium.FAR)
    tiers.note_touch(FakeInode(3), 0, GRANULE_PAGES * 2, write=True)
    wire = json.loads(json.dumps(tiers.to_state()))
    back = TierMap.from_state(wire)
    assert back.to_state() == tiers.to_state()
    assert back.default is Medium.CXL
    assert back.placements() == tiers.placements()
    assert back.medium_for(FakeInode(3), 7 * GRANULE_PAGES) is Medium.DRAM
    assert back.medium_for(FakeInode(3), GRANULE_PAGES) is Medium.CXL


def test_tiering_config_roundtrip_and_validation():
    cfg = TieringConfig(scan_interval=7e5, hot_touches=3, cold_scans=1,
                        hot_medium=Medium.DRAM,
                        migrate_budget_bytes=8 << 20)
    wire = json.loads(json.dumps(cfg.to_state()))
    assert TieringConfig.from_state(wire) == cfg
    with pytest.raises(InvalidArgumentError):
        TieringConfig(scan_interval=0)
    with pytest.raises(InvalidArgumentError):
        TieringConfig(hot_touches=0)


def test_daemon_state_roundtrip_preserves_cold_and_dirty():
    system = System(device_bytes=1 << 30, aged=False)
    tiers = system.attach_tiering(data_medium=Medium.CXL)
    daemon = TieringDaemon(system.engine, system.mem, system.costs,
                           system.stats, tiers)
    tiers.place(5, 1, Medium.DRAM)
    daemon._cold[(5, 1)] = 1
    daemon._dirty.add((5, 1))
    daemon.scans = 4
    wire = json.loads(json.dumps(daemon.to_state()))
    back = TieringDaemon.from_state(wire)
    assert back.to_state() == daemon.to_state()
    assert back.config == daemon.config
    assert back._cold == {(5, 1): 1}
    assert back._dirty == {(5, 1)}


def test_expander_topology_roundtrips():
    topo = MachineTopology.with_kinds(MACHINE, ("ddr", "cxl", "far"))
    assert [n.kind for n in topo.nodes] == ["ddr", "cxl", "far"]
    assert tuple(topo.compute_nodes) == (0,)
    back = MachineTopology.from_state(
        json.loads(json.dumps(topo.to_stable_dict())))
    assert back == topo


def test_daemon_rejects_hot_medium_equal_to_device_tier():
    system = System(device_bytes=1 << 30, aged=False)
    tiers = system.attach_tiering(data_medium=Medium.DRAM)
    with pytest.raises(InvalidArgumentError):
        TieringDaemon(system.engine, system.mem, system.costs,
                      system.stats, tiers)


# ---------------------------------------------------------------------------
# Daemon behaviour (driven scans against a live System).
# ---------------------------------------------------------------------------
def _daemon_rig(**knobs):
    system = System(device_bytes=1 << 30, aged=False)
    tiers = system.attach_tiering(data_medium=Medium.CXL)
    daemon = TieringDaemon(system.engine, system.mem, system.costs,
                           system.stats, tiers,
                           config=TieringConfig(**knobs))
    return system, tiers, daemon


def _run_scans(system, daemon, n):
    def driver():
        for _ in range(n):
            yield from daemon.scan()
    system.spawn(driver(), core=0)
    system.run()


def test_daemon_promotes_hot_granule_and_charges_tiering():
    system, tiers, daemon = _daemon_rig(hot_touches=2)
    inode = FakeInode(11)
    tiers.note_touch(inode, 0, GRANULE_PAGES - 1)
    tiers.note_touch(inode, 0, GRANULE_PAGES - 1)
    _run_scans(system, daemon, 1)
    assert tiers.placements() == [(11, 0, Medium.DRAM)]
    assert tiers.medium_for(inode, 0) is Medium.DRAM
    assert system.stats.get(Counter.TIERING_PROMOTED_PAGES) == GRANULE_PAGES
    assert system.stats.get(Counter.TIERING_MIGRATED_BYTES) == GRANULE_BYTES
    assert system.ledger.domain_total(CostDomain.TIERING) > 0


def test_daemon_cold_granule_demotes_clean_without_writeback():
    system, tiers, daemon = _daemon_rig(hot_touches=1, cold_scans=2)
    inode = FakeInode(12)
    tiers.note_touch(inode, 0, 0)
    _run_scans(system, daemon, 1)
    assert tiers.residency() == {"dram": 1}
    # Two untouched scans: demoted back to the device tier, and since
    # it was never written while promoted, no write-back copy.
    _run_scans(system, daemon, 2)
    assert tiers.placements() == []
    assert system.stats.get(Counter.TIERING_DEMOTED_PAGES) == GRANULE_PAGES
    assert system.stats.get(Counter.TIERING_WRITEBACK_BYTES) == 0


def test_daemon_dirty_granule_pays_writeback_on_demote():
    system, tiers, daemon = _daemon_rig(hot_touches=1, cold_scans=2)
    inode = FakeInode(13)
    tiers.note_touch(inode, 0, 0)
    _run_scans(system, daemon, 1)
    assert tiers.residency() == {"dram": 1}
    # Written while promoted: the device copy is stale.
    tiers.note_touch(inode, 0, 0, write=True)
    _run_scans(system, daemon, 3)
    assert tiers.placements() == []
    assert (system.stats.get(Counter.TIERING_WRITEBACK_BYTES)
            == GRANULE_BYTES)


def test_daemon_migration_budget_bounds_each_scan():
    system, tiers, daemon = _daemon_rig(
        hot_touches=1, migrate_budget_bytes=GRANULE_BYTES)
    inode = FakeInode(14)
    for granule in range(3):
        first = granule * GRANULE_PAGES
        tiers.note_touch(inode, first, first)
    _run_scans(system, daemon, 1)
    # One-granule budget: exactly one promotion this scan.
    assert len(tiers.placements()) == 1
    # Untouched promoted granules go cold, so a steady state is
    # reached rather than round-robin churn; re-touch to re-heat.
    for granule in range(3):
        first = granule * GRANULE_PAGES
        tiers.note_touch(inode, first, first)
    _run_scans(system, daemon, 1)
    assert len(tiers.placements()) == 2


def test_overlay_none_means_pmem_pricing():
    """No overlay => the FS and VM paths price PMem exactly (the
    golden gate pins the full numbers; this is the unit-level check
    that ``mem.tiers`` stays None unless attached)."""
    system = System(device_bytes=1 << 30, aged=False)
    assert system.mem.tiers is None
    assert system.tiering is None


# ---------------------------------------------------------------------------
# Sweep integration: tier config in cache keys, parallel determinism.
# ---------------------------------------------------------------------------
def _tiny_tiering_sweep() -> Sweep:
    full = build_sweep("tiering", ops=6, size=16 << 10, media="optane",
                       device_gib=1, aged=False)
    daemon_points = [p for p in full.points if p.tiering.get("daemon")]
    assert daemon_points, "tiering sweep must carry daemon points"
    points = daemon_points[:2] + [p for p in full.points
                                  if not p.tiering.get("daemon")][:2]
    return Sweep(name="tiering-tiny", title="tiny tiering",
                 points=points, axis="tier")


def test_tiering_sweep_cache_keys_cover_tier_config():
    full = build_sweep("tiering", ops=4, size=16 << 10, media="optane",
                       device_gib=1, aged=False)
    keys = {p.cache_key("fp") for p in full.points}
    assert len(keys) == len(full.points)
    base = full.points[0]
    payload = base.to_payload()
    assert "tiering" in payload and "node_kinds" in payload
    # Flipping only the tier flips the key.
    twin = type(base)(**{**payload, "tiering": {"data": "far"}})
    assert twin.cache_key("fp") != base.cache_key("fp")


def test_daemon_points_parallel_matches_sequential():
    seq = run_sweep(_tiny_tiering_sweep(), jobs=1)
    par = run_sweep(_tiny_tiering_sweep(), jobs=2)
    assert not seq.failed and not par.failed
    for a, b in zip(seq.points, par.points):
        assert a.point.label == b.point.label
        assert (json.dumps(a.comparable_state(), sort_keys=True)
                == json.dumps(b.comparable_state(), sort_keys=True))


# ---------------------------------------------------------------------------
# Bandwidth-aware promotion rate limiting (PR-9 satellite).
# ---------------------------------------------------------------------------
def test_bw_budget_defers_hotset_storm_under_foreground_load():
    """A hot-set storm arriving while the foreground saturates the
    device defers its promotions instead of stealing bandwidth — and
    catches up once the device goes idle."""
    system, tiers, daemon = _daemon_rig(hot_touches=1,
                                        bw_budget_fraction=0.5)
    pool = system.mem.pool(0)
    inode = FakeInode(15)
    for granule in range(8):
        first = granule * GRANULE_PAGES
        tiers.note_touch(inode, first, first)
    # Foreground traffic fills one full scan period of pool capacity
    # before the scan runs: the telemetry must see zero headroom.
    capacity = ((pool.read_bw + pool.write_bw) / pool.freq_hz
                * daemon.config.scan_interval)
    pool.delay(int(capacity / 2), int(capacity / 2), now=0.0)
    _run_scans(system, daemon, 1)
    assert tiers.placements() == []
    assert system.stats.get(Counter.TIERING_RATE_DEFERRED) == 8
    # Device idle since the last scan: headroom returns, the storm
    # drains at the configured fraction of capacity per scan.
    for granule in range(8):
        first = granule * GRANULE_PAGES
        tiers.note_touch(inode, first, first)
    _run_scans(system, daemon, 1)
    promoted = len(tiers.placements())
    assert promoted >= 1
    # Still rate-limited below the whole storm (0.5 of a scan period
    # of capacity is ~3 granules).
    assert promoted < 8


def test_fixed_budget_deferrals_stay_uncounted():
    """With the limiter disarmed (the default), budget-exhausted
    scans behave exactly as before the telemetry existed: silent —
    no rate-limit counter, bit-identical stats."""
    system, tiers, daemon = _daemon_rig(
        hot_touches=1, migrate_budget_bytes=GRANULE_BYTES)
    inode = FakeInode(16)
    for granule in range(3):
        first = granule * GRANULE_PAGES
        tiers.note_touch(inode, first, first)
    _run_scans(system, daemon, 1)
    assert len(tiers.placements()) == 1
    assert system.stats.get(Counter.TIERING_RATE_DEFERRED) == 0


def test_bw_budget_fraction_state_compat_and_validation():
    # States written before the limiter existed rehydrate to 0.0.
    old = TieringConfig().to_state()
    del old["bw_budget_fraction"]
    assert TieringConfig.from_state(old).bw_budget_fraction == 0.0
    armed = TieringConfig(bw_budget_fraction=0.25)
    assert (TieringConfig.from_state(armed.to_state())
            .bw_budget_fraction == 0.25)
    with pytest.raises(InvalidArgumentError):
        TieringConfig(bw_budget_fraction=1.5)
