"""Edge cases: pre-zero daemon details, ephemeral heap exhaustion,
async-unmap interaction corners."""

import pytest

from repro.core.prezero import PreZeroDaemon
from repro.errors import AddressSpaceError
from repro.sim.engine import Compute
from repro.vm.vma import MapFlags, Protection


def run(system, gen, core=0):
    thread = system.spawn(gen, core=core)
    system.run()
    return thread.result


def make_file(system, size, path="/f"):
    def flow():
        f = yield from system.fs.open(path, create=True)
        yield from system.fs.write(f, 0, size)
        return f.inode

    return run(system, flow())


def test_prezero_per_core_lists_follow_freeing_core(system):
    proc = system.new_process()
    dax = system.daxvm_for(proc)
    make_file(system, 256 << 10, path="/a")
    make_file(system, 256 << 10, path="/b")

    def unlink(path):
        yield from system.fs.unlink(path)

    run(system, unlink("/a"), core=2)
    run(system, unlink("/b"), core=5)
    assert dax.prezero._lists[2]
    assert dax.prezero._lists[5]
    assert dax.prezero.pending_blocks > 0


def test_prezero_interference_resets_when_idle(system):
    proc = system.new_process()
    dax = system.daxvm_for(proc)
    dax.prezero.start(core=3)
    make_file(system, 256 << 10, path="/dead")

    def flow():
        yield from system.fs.unlink("/dead")
        yield Compute(3e8)

    run(system, flow())
    assert dax.prezero.pending_blocks == 0
    assert system.mem.interference == 1.0


def test_prezero_idle_tick_does_not_clobber_other_streams(system):
    """Regression: the daemon's idle path used to write the scalar
    ``mem.interference = 1.0``, erasing penalties owned by *other*
    background streams.  Idle must release only the daemon's claim."""
    daemon = PreZeroDaemon(system.engine, system.fs, system.costs,
                           system.mem, system.stats)
    system.mem.enter_interference(1.5)  # someone else's stream
    gen = daemon._run()
    next(gen)  # one idle tick
    assert system.mem.interference_for(0) == 1.5
    system.mem.exit_interference(1.5)
    assert system.mem.interference_for(0) == 1.0


def test_prezero_interference_brackets_zeroing(system):
    daemon = PreZeroDaemon(system.engine, system.fs, system.costs,
                           system.mem, system.stats)
    runs = system.fs.device.alloc(4)
    daemon.intercept(runs)
    gen = daemon._run()
    next(gen)  # zeroing in flight: the media penalty is active
    assert system.mem.interference_for(0) == \
        PreZeroDaemon.MEDIA_INTERFERENCE
    next(gen)  # queue drained -> claim released before idling
    assert system.mem.interference_for(0) == 1.0


def test_prezero_all_free_marks_whole_free_list(system):
    proc = system.new_process()
    dax = system.daxvm_for(proc)
    dax.prezero.prezero_all_free()
    assert system.fs.zeroed.total == system.device.free_blocks


def test_ephemeral_rejects_unaligned_sizes(system):
    proc = system.new_process()
    dax = system.daxvm_for(proc)

    def flow():
        yield from dax.ephemeral.allocate(1000)

    with pytest.raises(AddressSpaceError):
        run(system, flow())


def test_ephemeral_heap_grows_new_regions(system):
    proc = system.new_process()
    dax = system.daxvm_for(proc)
    dax.ephemeral.region_bytes = 8 << 20  # tiny regions

    def flow():
        addrs = []
        for _ in range(10):  # 10 x 2 MB > one 8 MB region
            addrs.append((yield from dax.ephemeral.allocate(2 << 20)))
        return addrs

    addrs = run(system, flow())
    assert len(set(addrs)) == 10
    assert len(dax.ephemeral._regions) >= 2


def test_async_unmap_reap_noop_when_empty(system):
    proc = system.new_process()
    dax = system.daxvm_for(proc)

    def flow():
        yield from dax.unmapper.reap()
        yield Compute(1)

    run(system, flow())
    assert system.stats.get("daxvm.zombie_reaps") == 0


def test_async_unmap_mixed_ephemeral_and_regular_zombies(system):
    proc = system.new_process()
    dax = system.daxvm_for(proc, batch_pages=10_000)
    inode = make_file(system, 64 << 10)

    def flow():
        e = yield from dax.mmap(inode, 0, 64 << 10, Protection.READ,
                                MapFlags.SHARED | MapFlags.EPHEMERAL
                                | MapFlags.UNMAP_ASYNC)
        r = yield from dax.mmap(inode, 0, 64 << 10, Protection.READ,
                                MapFlags.SHARED | MapFlags.UNMAP_ASYNC)
        yield from dax.munmap(e)
        yield from dax.munmap(r)
        assert dax.unmapper.pending_vmas == 2
        yield from dax.unmapper.reap()
        return e, r

    e, r = run(system, flow())
    assert dax.unmapper.pending_vmas == 0
    assert not e.zombie and not r.zombie
    # Both address kinds were released to their own allocators.
    assert e.start not in dax.ephemeral.vmas
    assert proc.mm.find_vma(r.start) is None


def test_zombie_mapping_still_translates_until_reap(system):
    """§IV-G: with MAP_UNMAP_ASYNC, accesses after munmap may not trap
    for a window — translations stay live until the batched reap."""
    proc = system.new_process()
    dax = system.daxvm_for(proc, batch_pages=10_000)
    inode = make_file(system, 64 << 10)

    def flow():
        vma = yield from dax.mmap(inode, 0, 64 << 10, Protection.READ,
                                  MapFlags.SHARED | MapFlags.EPHEMERAL
                                  | MapFlags.UNMAP_ASYNC)
        yield from dax.munmap(vma)
        return vma

    vma = run(system, flow())
    assert vma.zombie
    # The data is still reachable (the paper's vulnerability window).
    tr = proc.mm.page_table.translate(vma.user_addr)
    assert tr.frame == system.device.frame_of(
        inode.extents.physical_block(0))
