"""The NUMA topology model and its end-to-end effects.

Unit coverage of :mod:`repro.topology` (core map, distance matrices,
interleave map, placement resolution), the per-node allocator policies
of :class:`~repro.mem.physmem.PhysicalMemory`, and behavioural checks
on a 2-socket :class:`~repro.system.System`: remote file placement
must cost more than local, and cross-socket shootdown IPIs must be
counted and priced.
"""

import pytest

from repro.config import DEFAULT_COSTS, NUMA_IPI_CROSS_SOCKET_EXTRA
from repro.errors import InvalidArgumentError, MemoryError_
from repro.mem.physmem import AllocPolicy, Medium, PhysicalMemory
from repro.obs import CostDomain
from repro.system import System
from repro.topology import (
    INTERLEAVE_BLOCKS,
    InterleaveMap,
    MachineTopology,
    NodeSpec,
    device_placement,
)
from repro.workloads import EphemeralConfig, Interface, run_ephemeral

MACHINE = DEFAULT_COSTS.machine


def two_nodes() -> MachineTopology:
    return MachineTopology.split(MACHINE, 2)


# ---------------------------------------------------------------------------
# The static model.
# ---------------------------------------------------------------------------
def test_single_node_matches_machine():
    topo = MachineTopology.single_node(MACHINE)
    assert topo.num_nodes == 1
    assert topo.nodes[0] == NodeSpec(MACHINE.dram_bytes,
                                     MACHINE.pmem_bytes)
    assert topo.num_cores == MACHINE.num_cores


def test_split_is_even_and_frame_aligned():
    topo = MachineTopology.split(MACHINE, 2)
    assert topo.num_nodes == 2
    for node in topo.nodes:
        assert node.dram_bytes % MACHINE.page_size == 0
        assert node.pmem_bytes % MACHINE.page_size == 0
    assert topo.nodes[0] == topo.nodes[1]
    with pytest.raises(InvalidArgumentError):
        MachineTopology.split(MACHINE, 0)


def test_core_map_partitions_all_cores():
    topo = two_nodes()
    seen = []
    for node in range(topo.num_nodes):
        cores = topo.cores_of_node(node)
        assert all(topo.node_of_core(c) == node for c in cores)
        seen.extend(cores)
    assert seen == list(range(topo.num_cores))


def test_same_node_factors_are_exactly_neutral():
    """The 1-node equivalence contract: same-socket factors must be
    the exact float 1.0 (and IPI extras exactly 0.0), not merely
    close, so multiplying by them cannot perturb golden numbers."""
    topo = two_nodes()
    for medium in Medium:
        assert topo.latency_factor(1, 1, medium) == 1.0
        assert topo.bandwidth_factor(0, 0, medium) == 1.0
    assert topo.ipi_extra(0, 0) == 0.0


def test_cross_socket_factors_penalise():
    topo = two_nodes()
    assert topo.latency_factor(0, 1, Medium.PMEM) > \
        topo.latency_factor(0, 1, Medium.DRAM) > 1.0
    assert topo.bandwidth_factor(0, 1, Medium.PMEM) < \
        topo.bandwidth_factor(0, 1, Medium.DRAM) < 1.0
    assert topo.ipi_extra(0, 1) == NUMA_IPI_CROSS_SOCKET_EXTRA
    assert topo.ipi_matrix() == [[0.0, NUMA_IPI_CROSS_SOCKET_EXTRA],
                                 [NUMA_IPI_CROSS_SOCKET_EXTRA, 0.0]]


def test_stable_dict_round_trips():
    topo = two_nodes()
    assert MachineTopology.from_state(topo.to_stable_dict()) == topo


# ---------------------------------------------------------------------------
# Interleaving and placement.
# ---------------------------------------------------------------------------
def test_interleave_map_round_trips_and_stripes():
    frames = 4 * INTERLEAVE_BLOCKS
    imap = InterleaveMap([(1000, frames), (9000, frames)])
    for block in (0, 1, INTERLEAVE_BLOCKS - 1, INTERLEAVE_BLOCKS,
                  3 * INTERLEAVE_BLOCKS + 7, 8 * INTERLEAVE_BLOCKS - 1):
        assert imap.block_of(imap.frame_of(block)) == block
    # Consecutive 2 MB chunks alternate sockets.
    assert imap.frame_of(0) == 1000
    assert imap.frame_of(INTERLEAVE_BLOCKS) == 9000
    assert imap.frame_of(2 * INTERLEAVE_BLOCKS) == 1000 + INTERLEAVE_BLOCKS
    with pytest.raises(InvalidArgumentError):
        imap.frame_of(8 * INTERLEAVE_BLOCKS)
    with pytest.raises(InvalidArgumentError):
        imap.block_of(999)


def test_device_placement_resolution():
    topo = two_nodes()
    bases, frames = [100, 900], [800, 800]
    assert device_placement(topo, bases, frames, "local", 0) == (100, None)
    assert device_placement(topo, bases, frames, "local", 1) == (900, None)
    assert device_placement(topo, bases, frames, "remote", 0) == (900, None)
    base, imap = device_placement(topo, bases, frames, "interleave", 0)
    assert base == 100 and imap is not None
    assert imap.ranges == [(100, 800), (900, 800)]
    with pytest.raises(InvalidArgumentError):
        device_placement(topo, bases, frames, "nearest", 0)


def test_device_placement_collapses_on_one_node():
    topo = MachineTopology.single_node(MACHINE)
    for placement in ("local", "remote", "interleave"):
        assert device_placement(topo, [42], [100], placement) == (42, None)


# ---------------------------------------------------------------------------
# Per-node physical memory.
# ---------------------------------------------------------------------------
def test_physmem_frame_numbers_recover_medium_and_node():
    pm = PhysicalMemory(topology=two_nodes())
    assert pm.num_nodes == 2
    for medium in (Medium.DRAM, Medium.PMEM):
        for node in (0, 1):
            frame = pm.alloc_frame(medium, node=node)
            assert pm.medium_of(frame) is medium
            assert pm.node_of(frame) == node


def test_physmem_recovers_expander_media_too():
    """Same round-trip on a machine with CXL and far-memory nodes;
    each expander medium resolves to the node that carries it."""
    topo = MachineTopology.with_kinds(MACHINE, ("ddr", "cxl", "far"))
    pm = PhysicalMemory(topology=topo)
    assert pm.media_present() == [Medium.DRAM, Medium.PMEM,
                                  Medium.CXL, Medium.FAR]
    for medium, node in ((Medium.DRAM, 0), (Medium.PMEM, 0),
                         (Medium.CXL, 1), (Medium.FAR, 2)):
        frame = pm.alloc_frame(medium, node=node)
        assert pm.medium_of(frame) is medium
        assert pm.node_of(frame) == node


def test_physmem_refuses_absent_medium():
    pm = PhysicalMemory(topology=two_nodes())
    with pytest.raises(MemoryError_):
        pm.alloc_frame(Medium.CXL, node=0)


def test_physmem_local_policy_does_not_spill():
    topo = MachineTopology(nodes=(NodeSpec(2 * 4096, 4096),
                                  NodeSpec(2 * 4096, 4096)),
                           num_cores=4)
    pm = PhysicalMemory(topology=topo)
    pm.alloc_frame(Medium.PMEM, node=0)
    with pytest.raises(MemoryError_):
        pm.alloc_frame(Medium.PMEM, node=0, policy=AllocPolicy.LOCAL)


def test_physmem_preferred_policy_spills_in_node_order():
    topo = MachineTopology(nodes=(NodeSpec(2 * 4096, 4096),
                                  NodeSpec(2 * 4096, 4096)),
                           num_cores=4)
    pm = PhysicalMemory(topology=topo)
    pm.alloc_frame(Medium.PMEM, node=0)
    spilled = pm.alloc_frame(Medium.PMEM, node=0,
                             policy=AllocPolicy.PREFERRED)
    assert pm.node_of(spilled) == 1


def test_physmem_interleave_policy_round_robins():
    pm = PhysicalMemory(topology=two_nodes())
    nodes = [pm.node_of(pm.alloc_frame(Medium.DRAM,
                                       policy=AllocPolicy.INTERLEAVE))
             for _ in range(4)]
    assert nodes == [0, 1, 0, 1]


def test_single_node_layout_matches_historical_construction():
    topo = MachineTopology.single_node(MACHINE)
    modern = PhysicalMemory(topology=topo)
    legacy = PhysicalMemory(dram_bytes=MACHINE.dram_bytes,
                            pmem_bytes=MACHINE.pmem_bytes)
    assert modern.dram.base_frame == legacy.dram.base_frame
    assert modern.pmem.base_frame == legacy.pmem.base_frame
    assert modern.pmem.total_frames == legacy.pmem.total_frames


# ---------------------------------------------------------------------------
# End to end on two sockets.
# ---------------------------------------------------------------------------
def _ephemeral_cycles(placement: str):
    system = System(costs=DEFAULT_COSTS, device_bytes=1 << 30,
                    topology=two_nodes(), placement=placement)
    cfg = EphemeralConfig(file_size=32 << 10, num_files=30,
                          num_threads=2, interface=Interface.MMAP,
                          pin_node=0)
    run_ephemeral(system, cfg)
    return system.engine.now, system.stats


def test_remote_placement_costs_more_than_local():
    local_cycles, local_stats = _ephemeral_cycles("local")
    remote_cycles, remote_stats = _ephemeral_cycles("remote")
    assert remote_cycles > local_cycles
    # Pinned threads see a pure access mix: all-local vs all-remote.
    assert local_stats.get("numa.remote_accesses") == 0
    assert local_stats.get("numa.local_accesses") > 0
    assert remote_stats.get("numa.local_accesses") == 0
    assert remote_stats.get("numa.remote_accesses") > 0


def test_remote_accesses_charge_the_numa_domain():
    system = System(costs=DEFAULT_COSTS, device_bytes=1 << 30,
                    topology=two_nodes(), placement="remote")
    cfg = EphemeralConfig(file_size=32 << 10, num_files=20,
                          num_threads=1, interface=Interface.MMAP,
                          pin_node=0)
    run_ephemeral(system, cfg)
    assert system.ledger.domain_total(CostDomain.NUMA) > 0


def test_cross_socket_shootdowns_are_counted_and_priced():
    """Unpinned threads span both sockets, so every munmap's IPI fan
    crosses the UPI link for half its targets."""
    system = System(costs=DEFAULT_COSTS, device_bytes=1 << 30,
                    topology=two_nodes(), placement="local")
    cfg = EphemeralConfig(file_size=32 << 10, num_files=32,
                          num_threads=16, interface=Interface.MMAP)
    run_ephemeral(system, cfg)
    ipis = system.stats.get("numa.cross_socket_ipis")
    assert ipis > 0
    assert system.stats.get("numa.cross_socket_ipi_cycles") == \
        pytest.approx(ipis * NUMA_IPI_CROSS_SOCKET_EXTRA)


def test_one_node_runs_keep_numa_counters_silent(aged_system):
    cfg = EphemeralConfig(file_size=32 << 10, num_files=20,
                          num_threads=4, interface=Interface.MMAP)
    run_ephemeral(aged_system, cfg)
    for name in ("numa.local_accesses", "numa.remote_accesses",
                 "numa.cross_socket_ipis"):
        assert aged_system.stats.get(name) == 0
    assert aged_system.ledger.domain_total(CostDomain.NUMA) == 0
