"""Red-black tree: unit tests plus hypothesis model checks."""

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.vm.rbtree import RBTree


def test_insert_and_get():
    tree = RBTree()
    tree.insert(10, "a")
    tree.insert(5, "b")
    tree.insert(20, "c")
    assert tree.get(10) == "a"
    assert tree.get(5) == "b"
    assert tree.get(99) is None
    assert len(tree) == 3
    assert 20 in tree


def test_insert_replaces_value():
    tree = RBTree()
    tree.insert(1, "x")
    tree.insert(1, "y")
    assert tree.get(1) == "y"
    assert len(tree) == 1


def test_floor_and_ceiling():
    tree = RBTree()
    for key in (10, 20, 30):
        tree.insert(key, key)
    assert tree.floor(25) == (20, 20)
    assert tree.floor(10) == (10, 10)
    assert tree.floor(5) is None
    assert tree.ceiling(25) == (30, 30)
    assert tree.ceiling(31) is None


def test_items_in_order():
    tree = RBTree()
    keys = [5, 3, 8, 1, 4, 7, 9, 2, 6]
    for key in keys:
        tree.insert(key, None)
    assert [k for k, _v in tree.items()] == sorted(keys)
    assert tree.min() == (1, None)


def test_delete():
    tree = RBTree()
    for key in range(20):
        tree.insert(key, key)
    assert tree.delete(7)
    assert not tree.delete(7)
    assert tree.get(7) is None
    assert len(tree) == 19
    tree.check_invariants()


def test_large_random_workload_keeps_invariants():
    rng = random.Random(0)
    tree = RBTree()
    model = {}
    for _ in range(3000):
        key = rng.randrange(500)
        if rng.random() < 0.6:
            tree.insert(key, key * 2)
            model[key] = key * 2
        else:
            assert tree.delete(key) == (key in model)
            model.pop(key, None)
    tree.check_invariants()
    assert sorted(model.items()) == list(tree.items())


@settings(max_examples=60, deadline=None)
@given(st.lists(st.tuples(st.booleans(), st.integers(0, 64)),
                max_size=200))
def test_property_matches_dict_model(ops):
    """Insert/delete streams agree with a dict model; RB invariants
    hold at every step's end."""
    tree = RBTree()
    model = {}
    for insert, key in ops:
        if insert:
            tree.insert(key, key)
            model[key] = key
        else:
            assert tree.delete(key) == (key in model)
            model.pop(key, None)
    tree.check_invariants()
    assert list(tree.items()) == sorted(model.items())
    for probe in range(-1, 66):
        expected = max((k for k in model if k <= probe), default=None)
        got = tree.floor(probe)
        assert (got[0] if got else None) == expected
