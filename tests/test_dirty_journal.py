"""DirtyTracker and Journal unit tests."""

import pytest

from repro.config import DEFAULT_COSTS
from repro.errors import MissingCounterError
from repro.fs.journal import Journal
from repro.fs.vfs import Inode
from repro.sim.engine import Engine
from repro.sim.stats import Stats
from repro.vm.dirty import DirtyTracker


def test_mark_is_idempotent_per_granule():
    tracker = DirtyTracker()
    inode = Inode("/f")
    assert tracker.mark(inode, 5)
    assert not tracker.mark(inode, 5)
    assert tracker.mark(inode, 6)
    assert tracker.dirty_count(inode) == 2
    assert tracker.tags_written == 2


def test_collect_clears_tags_and_bytes():
    tracker = DirtyTracker()
    inode = Inode("/f")
    tracker.mark(inode, 0)
    tracker.add_bytes(inode, 1024)
    assert tracker.written_bytes(inode) == 1024
    tags = tracker.collect(inode)
    assert tags == {0}
    assert tracker.dirty_count(inode) == 0
    assert tracker.written_bytes(inode) == 0


def test_drop_discards_without_flushing():
    tracker = DirtyTracker()
    inode = Inode("/f")
    tracker.mark(inode, 1)
    tracker.add_bytes(inode, 10)
    tracker.drop(inode)
    assert tracker.dirty_count(inode) == 0


def test_per_inode_isolation():
    tracker = DirtyTracker()
    a, b = Inode("/a"), Inode("/b")
    tracker.mark(a, 0)
    assert tracker.dirty_count(b) == 0
    tracker.collect(a)
    assert tracker.dirty_count(a) == 0


def _run(gen):
    engine = Engine(1)
    thread = engine.spawn(gen)
    engine.run()
    return engine.now


def test_journal_batched_updates_are_amortised():
    stats = Stats()
    journal = Journal(DEFAULT_COSTS, stats)

    def flow():
        for _ in range(Journal.BATCH_FACTOR):
            yield from journal.metadata_update()

    total = _run(flow())
    # One full commit's worth of cycles across BATCH_FACTOR updates.
    assert total == pytest.approx(DEFAULT_COSTS.journal_commit)
    assert journal.batched_updates == Journal.BATCH_FACTOR


def test_journal_sync_commit_charges_full_cost():
    stats = Stats()
    journal = Journal(DEFAULT_COSTS, stats)

    def flow():
        yield from journal.commit_sync()

    total = _run(flow())
    assert total == DEFAULT_COSTS.journal_commit
    assert journal.sync_commits == 1
    assert stats.get("journal.sync_commits") == 1


def test_stats_counters_and_series():
    stats = Stats()
    stats.add("x")
    stats.add("x", 2.5)
    assert stats.get("x") == 3.5
    assert stats.get("missing") == 0.0
    stats.add("y", 7)
    assert stats.ratio("y", "x") == pytest.approx(2.0)
    with pytest.raises(MissingCounterError):
        stats.ratio("y", "nothing")
    stats.add("touched-zero", 0.0)
    assert stats.ratio("y", "touched-zero") == 0.0
    stats.sample("tl", 1.0, 10.0)
    stats.sample("tl", 2.0, 20.0)
    assert stats.series("tl") == [(1.0, 10.0), (2.0, 20.0)]
    snap = stats.snapshot()
    stats.reset()
    assert stats.get("x") == 0.0
    assert snap["x"] == 3.5
