"""IntervalSet: unit tests plus a hypothesis model check."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.fs.intervals import IntervalSet


def test_add_and_total():
    s = IntervalSet()
    s.add(0, 10)
    s.add(20, 30)
    assert s.total == 20
    assert len(s) == 2


def test_add_merges_overlap_and_adjacency():
    s = IntervalSet()
    s.add(0, 10)
    s.add(5, 15)
    assert list(s) == [(0, 15)]
    s.add(15, 20)  # adjacent
    assert list(s) == [(0, 20)]


def test_remove_splits():
    s = IntervalSet()
    s.add(0, 100)
    removed = s.remove(40, 60)
    assert removed == 20
    assert list(s) == [(0, 40), (60, 100)]


def test_remove_disjoint_is_noop():
    s = IntervalSet()
    s.add(0, 10)
    assert s.remove(50, 60) == 0
    assert s.total == 10


def test_overlap_and_contains():
    s = IntervalSet()
    s.add(10, 20)
    s.add(30, 40)
    assert s.overlap(0, 100) == 20
    assert s.overlap(15, 35) == 10
    assert s.contains(10)
    assert not s.contains(20)


def test_empty_ranges_ignored():
    s = IntervalSet()
    s.add(5, 5)
    assert s.total == 0
    assert s.remove(3, 3) == 0


interval = st.tuples(st.integers(0, 100), st.integers(0, 100)).map(
    lambda t: (min(t), max(t)))


@settings(max_examples=80, deadline=None)
@given(st.lists(st.tuples(st.booleans(), interval), max_size=120))
def test_property_matches_set_model(ops):
    s = IntervalSet()
    model = set()
    for add, (lo, hi) in ops:
        if add:
            s.add(lo, hi)
            model.update(range(lo, hi))
        else:
            removed = s.remove(lo, hi)
            gone = {x for x in model if lo <= x < hi}
            assert removed == len(gone)
            model -= gone
        s.check_invariants()
    assert s.total == len(model)
    for lo in range(0, 100, 7):
        assert s.overlap(lo, lo + 13) == len(
            {x for x in model if lo <= x < lo + 13})
