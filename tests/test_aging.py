"""Aging tests: churn ager, synthetic ager, determinism, caching."""

from repro.fs.aging import (
    AgingProfile,
    age_filesystem,
    aged_device,
    synthesize_aged_state,
)
from repro.fs.block import BlockDevice


def test_churn_ager_reaches_utilization():
    device = BlockDevice(64 << 20)
    profile = AgingProfile(utilization=0.6, churn_multiple=0.5,
                           synthetic=False, max_file_bytes=1 << 20)
    live = age_filesystem(device, profile)
    assert live
    util = device.utilization
    assert 0.45 <= util <= 0.75
    device.check_invariants()


def test_churn_ager_fragments_free_space():
    device = BlockDevice(64 << 20)
    profile = AgingProfile(utilization=0.7, churn_multiple=1.0,
                           synthetic=False, max_file_bytes=1 << 20)
    age_filesystem(device, profile)
    assert device.free_extent_count() > 10


def test_synthetic_ager_matches_utilization_and_fragments():
    device = BlockDevice(256 << 20)
    synthesize_aged_state(device, AgingProfile(utilization=0.7))
    assert 0.55 <= device.utilization <= 0.85
    assert device.free_extent_count() > 100
    assert device.huge_coverage_potential() < 0.9
    device.check_invariants()


def test_aging_is_deterministic():
    def build():
        device = BlockDevice(64 << 20)
        synthesize_aged_state(device, AgingProfile(seed=5))
        return [(e.start, e.length) for e in device._free]

    assert build() == build()


def test_seed_changes_layout():
    def build(seed):
        device = BlockDevice(64 << 20)
        synthesize_aged_state(device, AgingProfile(seed=seed))
        return [(e.start, e.length) for e in device._free]

    assert build(1) != build(2)


def test_aged_device_cache_returns_independent_clones():
    a = aged_device(32 << 20)
    b = aged_device(32 << 20)
    assert a is not b
    before = b.free_blocks
    a.alloc(16)
    assert b.free_blocks == before  # clone isolation
    assert [(e.start, e.length) for e in b._free] != []


def test_aged_device_base_frame_propagates():
    device = aged_device(32 << 20, base_frame=777_000)
    assert device.frame_of(0) == 777_000
