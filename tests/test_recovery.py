"""Crash consistency and reboot recovery tests (paper §IV-A1)."""

from repro.core.recovery import (
    RecoveryLog,
    simulate_crash,
    verify_table_consistency,
)
from repro.mem.physmem import Medium
from repro.vm.vma import Protection


def run(system, gen):
    thread = system.spawn(gen, core=0)
    system.run()
    return thread.result


def make_files(system, specs):
    def flow():
        inodes = []
        for path, size in specs:
            f = yield from system.fs.open(path, create=True)
            yield from system.fs.write(f, 0, size)
            yield from system.fs.close(f)
            inodes.append(f.inode)
        return inodes

    return run(system, flow())


def test_persistent_tables_survive_clean_power_cycle(system):
    manager = system.filetables
    (big,) = make_files(system, [("/big", 2 << 20)])
    small, = make_files(system, [("/small", 16 << 10)])
    assert big.persistent_file_table is not None
    assert small.volatile_file_table is not None

    report = system.power_cycle()
    # Volatile tables died with DRAM; persistent ones survive intact.
    assert small.volatile_file_table is None
    assert big.persistent_file_table is not None
    assert report.tables_intact >= 1
    assert report.tables_repaired == 0
    assert verify_table_consistency(big)


def test_crash_tears_and_recovery_replays(system):
    manager = system.filetables
    system.fs.allow_huge = False  # PTE-level tables, tearable tails
    inodes = make_files(system, [(f"/f{i}", 1 << 20) for i in range(6)])

    lost = simulate_crash(system.vfs, seed=3)
    assert lost > 0
    torn = [i for i in inodes
            if i.persistent_file_table.filled_pages
            != i.extents.block_count]
    assert torn, "the crash should have torn at least one table"

    report = RecoveryLog(system.vfs, manager).recover_all()
    assert report.tables_repaired == len(torn)
    assert report.ptes_replayed == lost
    for inode in inodes:
        assert inode.persistent_file_table.filled_pages == \
            inode.extents.block_count
        assert verify_table_consistency(inode)


def test_crash_recovery_via_power_cycle(system):
    manager = system.filetables
    system.fs.allow_huge = False
    make_files(system, [("/a", 512 << 10), ("/b", 512 << 10)])
    report = system.power_cycle(crash=True, seed=1)
    assert report is not None
    assert report.inodes_scanned == 2
    assert report.tables_intact + report.tables_repaired == 2


def test_recovered_tables_are_mappable(system):
    manager = system.filetables
    system.fs.allow_huge = False
    (inode,) = make_files(system, [("/x", 1 << 20)])
    system.power_cycle(crash=True, seed=7)

    proc = system.new_process()
    dax = system.daxvm_for(proc)

    def flow():
        vma = yield from dax.mmap(inode, 0, 1 << 20, Protection.READ)
        yield from proc.mm.access(vma, vma.user_addr - vma.start,
                                  1 << 20)
        return vma

    vma = run(system, flow())
    assert vma.leaf_medium is Medium.PMEM
    # Every page of the recovered mapping translates correctly.
    tr = proc.mm.page_table.translate(vma.user_addr + 100 * 4096)
    assert tr.frame == system.device.frame_of(
        inode.extents.physical_block(100))


def test_leading_table_truncated_back(system):
    """A table that *leads* the extent map (torn after table flush)
    is truncated back to the metadata's truth."""
    manager = system.filetables
    system.fs.allow_huge = False
    (inode,) = make_files(system, [("/lead", 256 << 10)])
    table = inode.persistent_file_table
    # Fake a lead: pretend the extents lost their last block.
    freed = inode.extents.truncate_to(inode.extents.block_count - 4)
    assert table.filled_pages > inode.extents.block_count

    report_holder = []
    log = RecoveryLog(system.vfs, manager)
    report = log.recover_all()
    assert report.tables_repaired == 1
    assert table.filled_pages == inode.extents.block_count
