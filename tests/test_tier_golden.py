"""The DRAM+PMem bit-identicality gate of the memory-tier refactor.

DESIGN.md §13 promises that moving every ``if medium is Medium.DRAM``
branch behind the :class:`~repro.mem.tiers.MediumSpec` registry changed
no simulated number on a DRAM+PMem-only machine: the specs carry the
exact constants the branches read, combined in the exact expression
order.  The golden file was captured on the commit before the registry
landed; this test replays the same pinned points — ephemeral
read/mmap/DaxVM, aged Apache, radix4 syncbench/kvstore on clean and
aged images, and the two-socket placement trio — and compares the
complete observable state (cycles, counters, ledger attribution, lock
reports) byte for byte.

If this fails, the spec indirection leaked a cost or reordered a float
expression.  Recapture (``python -m repro.tiering.golden``) only when
a PR intentionally changes simulated numbers, and say so in the PR.
"""

import json

import pytest

from repro.tiering.golden import GOLDEN_PATH, golden_json


def _compare(current: str, golden: str) -> None:
    if current != golden:  # pragma: no cover - failure diagnostics
        cur, ref = json.loads(current), json.loads(golden)
        assert sorted(cur) == sorted(ref)
        for name in ref:
            assert sorted(cur[name]) == sorted(ref[name])
            for label in ref[name]:
                for field in ("run", "stats", "ledger", "locks"):
                    assert cur[name][label][field] \
                        == ref[name][label][field], (
                            f"{name}/{label}.{field} drifted from the "
                            f"pre-refactor golden run")
    assert current == golden


@pytest.fixture(scope="module")
def golden_text() -> str:
    assert GOLDEN_PATH.exists(), (
        "golden file missing; capture it on a known-good commit with "
        "`python -m repro.tiering.golden`")
    return GOLDEN_PATH.read_text()


def test_spec_dispatch_reproduces_pre_refactor_numbers(golden_text):
    _compare(golden_json(), golden_text)
