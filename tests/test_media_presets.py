"""Media preset tests (§VI: DaxVM beyond Optane)."""

import pytest

from repro.config import (
    DEFAULT_COSTS,
    MEDIA_PRESETS,
    cxl_flash_costs,
    fast_nvm_costs,
    optane_costs,
)
from repro.system import System
from repro.workloads import EphemeralConfig, Interface, run_ephemeral


def test_registry_complete():
    assert set(MEDIA_PRESETS) == {"optane", "cxl-flash", "fast-nvm"}
    for factory in MEDIA_PRESETS.values():
        costs = factory()
        assert costs.machine.freq_hz == 2.7e9


def test_optane_is_the_default():
    assert optane_costs() == DEFAULT_COSTS


def test_latency_ordering_across_media():
    cxl = cxl_flash_costs()
    nvm = fast_nvm_costs()
    optane = optane_costs()
    assert cxl.pmem_load_latency > optane.pmem_load_latency \
        > nvm.pmem_load_latency
    # Software costs are medium-independent.
    assert cxl.syscall_crossing == optane.syscall_crossing
    assert nvm.fault_entry == optane.fault_entry


@pytest.mark.parametrize("media", sorted(MEDIA_PRESETS))
def test_systems_run_on_every_medium(media):
    system = System(costs=MEDIA_PRESETS[media](), device_bytes=1 << 30)
    cfg = EphemeralConfig(file_size=16 << 10, num_files=20,
                          interface=Interface.DAXVM)
    result = run_ephemeral(system, cfg)
    assert result.operations == 20


def test_daxvm_advantage_grows_as_media_approach_dram():
    def rel(media):
        read = run_ephemeral(
            System(costs=MEDIA_PRESETS[media](), device_bytes=1 << 30),
            EphemeralConfig(file_size=32 << 10, num_files=120,
                            interface=Interface.READ))
        daxvm = run_ephemeral(
            System(costs=MEDIA_PRESETS[media](), device_bytes=1 << 30),
            EphemeralConfig(file_size=32 << 10, num_files=120,
                            interface=Interface.DAXVM))
        return daxvm.mb_per_second / read.mb_per_second

    assert rel("fast-nvm") > rel("optane")
