"""Config/cost-model and error-hierarchy tests."""

import dataclasses

import pytest

from repro import errors
from repro.config import DEFAULT_COSTS, CostModel, MachineConfig


def test_cost_model_is_frozen():
    with pytest.raises(dataclasses.FrozenInstanceError):
        DEFAULT_COSTS.syscall_crossing = 0  # type: ignore[misc]


def test_replace_creates_modified_copy():
    tuned = DEFAULT_COSTS.replace(syscall_crossing=123.0)
    assert tuned.syscall_crossing == 123.0
    assert DEFAULT_COSTS.syscall_crossing != 123.0
    assert tuned.vma_alloc == DEFAULT_COSTS.vma_alloc


def test_cycles_per_byte_and_copy_cycles():
    cm = CostModel()
    cpb = cm.cycles_per_byte(2.7e9)
    assert cpb == pytest.approx(1.0)
    assert cm.copy_cycles(1000, 2.7e9, startup=90) == pytest.approx(1090)


def test_machine_time_conversions():
    m = MachineConfig()
    assert m.cycles_from_seconds(1.0) == pytest.approx(2.7e9)
    assert m.seconds_from_cycles(2.7e9) == pytest.approx(1.0)


def test_fast20_bandwidth_ordering():
    """The calibration must preserve the qualitative Optane facts."""
    c = DEFAULT_COSTS
    assert c.pmem_load_latency > c.dram_load_latency > \
        c.cache_load_latency
    assert c.dram_read_bw > c.pmem_read_bw > c.pmem_ntstore_bw \
        > c.pmem_clwb_bw
    assert c.pmem_ntstore_bw == pytest.approx(2 * c.pmem_clwb_bw,
                                              rel=0.2)
    assert c.pmem_total_read_bw > c.pmem_read_bw


def test_daxvm_policy_constants_match_paper():
    c = DEFAULT_COSTS
    assert c.filetable_volatile_max == 32 << 10
    assert c.monitor_walk_cycles == 200.0
    assert c.monitor_mmu_overhead == 0.05
    assert c.full_flush_threshold == 33
    assert c.async_unmap_batch_pages == 33
    assert c.machine.num_cores == 16
    assert c.machine.freq_hz == 2.7e9


def test_error_hierarchy_and_errnos():
    assert issubclass(errors.NoSuchFileError, errors.FileSystemError)
    assert issubclass(errors.FileSystemError, errors.ReproError)
    assert issubclass(errors.DeadlockError, errors.SimulationError)
    assert errors.NoSuchFileError.errno_name == "ENOENT"
    assert errors.NotSupportedError.errno_name == "ENOTSUP"
    assert errors.PermissionFault.errno_name == "EACCES"
