"""The radix4 bit-identicality gate of the scheme refactor.

DESIGN.md §11 promises that moving the 4-level radix behind the
:class:`~repro.paging.schemes.TranslationScheme` interface changed no
simulated number: the ``radix4`` scheme *is* the pre-refactor paging
code.  The golden file was captured on the commit before the interface
landed; this test replays the same pinned points twice — once with the
default ``System`` construction and once with ``scheme="radix4"``
spelled out — and compares the complete observable state (cycles,
counters, ledger attribution, lock reports) byte for byte.

If this fails, the scheme indirection leaked a cost or reordered a
frame allocation.  Recapture (``python -m repro.paging.golden``) only
when a PR intentionally changes simulated numbers, and say so in the
PR.
"""

import json

import pytest

from repro.paging.golden import GOLDEN_PATH, golden_json


def _compare(current: str, golden: str) -> None:
    if current != golden:  # pragma: no cover - failure diagnostics
        cur, ref = json.loads(current), json.loads(golden)
        assert sorted(cur) == sorted(ref)
        for name in ref:
            assert sorted(cur[name]) == sorted(ref[name])
            for label in ref[name]:
                for field in ("run", "stats", "ledger", "locks"):
                    assert cur[name][label][field] \
                        == ref[name][label][field], (
                            f"{name}/{label}.{field} drifted from the "
                            f"pre-refactor golden run")
    assert current == golden


@pytest.fixture(scope="module")
def golden_text() -> str:
    assert GOLDEN_PATH.exists(), (
        "golden file missing; capture it on a known-good commit with "
        "`python -m repro.paging.golden`")
    return GOLDEN_PATH.read_text()


def test_default_scheme_reproduces_pre_refactor_numbers(golden_text):
    _compare(golden_json(), golden_text)


def test_explicit_radix4_is_the_default_machine(golden_text):
    _compare(golden_json("radix4"), golden_text)
