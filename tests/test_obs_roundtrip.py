"""Observability state fidelity under per-tenant namespaces.

The consolidate sweep ships Stats/Ledger state across the process
boundary and merges per-point results; tenancy multiplies the key
space (``tenant.<name>.*`` counters and histograms, per-thread ledger
rows, ``tenancy/*`` events).  These tests pin the contract the cache
and the pool depend on: ``to_state``/``from_state`` are lossless
inverses and ``merge`` is plain addition — including for tenant names
that are prefixes of each other (``t1`` vs ``t10``), which must never
alias.
"""

import json
import random

import pytest

from repro.obs import CostDomain, Counter, Histogram, Ledger
from repro.sim.stats import Stats

TENANTS = ("t1", "t10", "t2", "t21", "hog")


def _tenant_stats(offset: float) -> Stats:
    stats = Stats()
    stats.add(Counter.TENANCY_REQUESTS, 10 + offset)
    for i, name in enumerate(TENANTS):
        stats.add(f"tenant.{name}.requests", 5 + i + offset)
        stats.add(f"tenant.{name}.soft_breaches", i)
        stats.sample(f"tenant.{name}.memory_bytes", 100.0 + i, 4096.0 * i)
        rng = random.Random(17 * i + int(offset))
        for _ in range(40):
            stats.observe(f"tenant.{name}.request",
                          1000.0 + 5000.0 * rng.random())
    return stats


def test_stats_roundtrip_is_lossless():
    stats = _tenant_stats(0.0)
    wire = json.loads(json.dumps(stats.to_state()))
    back = Stats.from_state(wire)
    assert back.counters == stats.counters
    assert back.samples == stats.samples
    assert back.to_state() == stats.to_state()
    # Histograms survive with their exact buckets, not just summaries.
    for key, hist in stats.timings.items():
        assert back.timings[key].to_state() == hist.to_state()
        assert back.timings[key].percentile(99) == hist.percentile(99)


def test_stats_merge_adds_and_never_aliases_prefixes():
    merged = _tenant_stats(0.0).merge(_tenant_stats(7.0))
    # t1 and t10 accumulate independently even though "tenant.t1." is
    # a prefix of "tenant.t10.".
    assert merged.get("tenant.t1.requests") == 5 + (5 + 7)
    assert merged.get("tenant.t10.requests") == 6 + (6 + 7)
    assert merged.get(Counter.TENANCY_REQUESTS) == 27
    for name in TENANTS:
        assert merged.timings[f"tenant.{name}.request"].count == 80
        assert len(merged.samples[f"tenant.{name}.memory_bytes"]) == 2
    # Merge of round-tripped copies == round-trip of the merge.
    a, b = _tenant_stats(0.0), _tenant_stats(7.0)
    via_wire = Stats.from_state(a.to_state()).merge(
        Stats.from_state(b.to_state()))
    assert via_wire.to_state() == merged.to_state()


def test_histogram_merge_matches_pooled_observations():
    rng = random.Random(42)
    values = [rng.expovariate(1e-4) for _ in range(500)]
    pooled, left, right = Histogram(), Histogram(), Histogram()
    for i, value in enumerate(values):
        pooled.record(value)
        (left if i % 2 else right).record(value)
    left.merge(right)
    merged_state, pooled_state = left.to_state(), pooled.to_state()
    # Bucket counts are integers and must match exactly; the running
    # totals are float sums accumulated in a different order.
    assert merged_state["buckets"] == pooled_state["buckets"]
    for field in ("total", "min", "max", "count"):
        assert merged_state[field] == pytest.approx(pooled_state[field])
    for key, value in pooled.summary().items():
        assert left.summary()[key] == pytest.approx(value)
    wire = Histogram.from_state(json.loads(json.dumps(pooled.to_state())))
    assert wire.summary() == pooled.summary()
    assert wire.count == 500
    assert wire.percentile(50) <= wire.percentile(99)


def _tenant_ledger(scale: float) -> Ledger:
    ledger = Ledger()
    for i, name in enumerate(TENANTS):
        ledger.record(f"{name}.worker", CostDomain.USERSPACE,
                      "uncharged", scale * (1000.0 + i))
        ledger.record(f"{name}.worker", CostDomain.TENANCY,
                      "cpu-throttle", scale * (10.0 + i))
        ledger.record(f"{name}.worker", CostDomain.TENANCY,
                      f"mmap_sem-blocked-by:{TENANTS[(i + 1) % 5]}",
                      scale * 3.0)
    return ledger


def test_ledger_roundtrip_is_lossless():
    ledger = _tenant_ledger(1.0)
    wire = json.loads(json.dumps(ledger.to_state()))
    back = Ledger.from_state(wire)
    assert back.to_state() == ledger.to_state()
    assert back.domain_total(CostDomain.TENANCY) \
        == ledger.domain_total(CostDomain.TENANCY)
    assert back.per_thread() == ledger.per_thread()
    # Attribution events keep the holder labels byte-exact.
    events = {event for domain, event, _ in wire["events"]
              if domain == "tenancy"}
    assert "mmap_sem-blocked-by:t10" in events


def test_ledger_merge_adds_per_thread_rows():
    merged = _tenant_ledger(1.0).merge(_tenant_ledger(2.0))
    per = merged.per_thread()
    # Exact thread keys: t1.worker and t10.worker never pool.
    assert per["t1.worker"]["userspace"] == pytest.approx(3000.0)
    assert per["t10.worker"]["userspace"] == pytest.approx(3003.0)
    assert merged.event_total(CostDomain.TENANCY, "cpu-throttle") \
        == pytest.approx(3 * sum(10.0 + i for i in range(5)))
    via_wire = Ledger.from_state(_tenant_ledger(1.0).to_state()).merge(
        Ledger.from_state(_tenant_ledger(2.0).to_state()))
    assert via_wire.to_state() == merged.to_state()
