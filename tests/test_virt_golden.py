"""The pass-through bit-identicality gate of the virt subsystem.

DESIGN.md §15 promises that virtualizing the machine cost nothing when
nothing is virtualized: a guest under a pass-through hypervisor
(``VirtConfig()`` — no nested pricing, no migration) must execute
*bit-identically* to a bare machine, even though every mmap and every
mapped access now routes through the hypervisor's hooks and
``MMStruct._tlb_cost`` consults the guest.

The golden file was captured from the bare machine (``python -m
repro.virt.golden``); this test replays the same guest workloads both
ways and compares the complete observable state — clock, counters and
the full per-domain ledger.

If this fails, some virt hook (the access intercept, the mmap report,
the nested-walk branch) leaked cost or state into the pass-through
path.  Recapture only when a PR intentionally changes simulated
numbers, and say so in the PR.
"""

import json

import pytest

from repro.virt.golden import GOLDEN_PATH, PINNED, golden_json, run_state


@pytest.fixture(scope="module")
def golden() -> dict:
    assert GOLDEN_PATH.exists(), (
        "golden file missing; capture it on a known-good commit with "
        "`python -m repro.virt.golden`")
    return json.loads(GOLDEN_PATH.read_text())


def test_bare_capture_matches_golden(golden):
    """The capture path itself: guards against cost drift in the
    guest workloads independent of any hypervisor."""
    assert json.loads(golden_json()) == golden


def test_passive_guest_is_bit_identical(golden):
    """Hooks installed, every process enrolled as a guest — and the
    machine still lands on the same floats, to the last digit."""
    for workload in PINNED:
        state = run_state(workload, passive_hypervisor=True)
        reference = golden[workload]
        assert state["now"] == reference["now"], (
            f"{workload}: the pass-through guest shifted the clock")
        assert state["counters"] == reference["counters"], (
            f"{workload}: the pass-through guest bumped a counter")
        assert state["domains"] == reference["domains"], (
            f"{workload}: the pass-through guest leaked ledger cycles")
        assert (json.dumps(state, sort_keys=True)
                == json.dumps(reference, sort_keys=True))
