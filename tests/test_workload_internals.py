"""Deeper workload-internals tests: apache request paths, syncbench
semantics, predis timeline mechanics, ephemeral opts labels."""

from repro.system import System
from repro.workloads import (
    ApacheConfig,
    DaxVMOptions,
    Interface,
    PRedisConfig,
    ServerInterface,
    SyncConfig,
    SyncDiscipline,
    run_apache,
    run_predis,
    run_sync,
)
from repro.workloads.common import Measurement, spread
from repro.workloads.ephemeral import EphemeralConfig, run_ephemeral
from repro.vm.vma import MapFlags


def small_system(**kw):
    return System(device_bytes=1 << 30, **kw)


# ---------------------------------------------------------------------------
# common helpers.
# ---------------------------------------------------------------------------
def test_spread_balances():
    assert spread(10, 3) == [4, 3, 3]
    assert sum(spread(17, 5)) == 17
    assert spread(2, 4) == [1, 1, 0, 0]


def test_daxvm_options_flags():
    full = DaxVMOptions.full()
    flags = full.flags()
    assert flags & MapFlags.EPHEMERAL
    assert flags & MapFlags.UNMAP_ASYNC
    assert not flags & MapFlags.SYNC  # read mapping: no MAP_SYNC
    wflags = full.flags(write=True)
    assert wflags & MapFlags.SYNC
    ns = DaxVMOptions.full_nosync().flags(write=True)
    assert ns & MapFlags.NO_MSYNC
    tables = DaxVMOptions.filetables_only().flags()
    assert not tables & MapFlags.EPHEMERAL
    assert not tables & MapFlags.UNMAP_ASYNC


def test_measurement_captures_deltas_only():
    system = small_system()
    system.stats.add("pre.existing", 100)
    measure = Measurement(system)
    measure.start()
    system.stats.add("pre.existing", 5)
    system.stats.add("new.counter", 7)
    result = measure.finish("x", operations=1)
    assert result.counters["pre.existing"] == 5
    assert result.counters["new.counter"] == 7


# ---------------------------------------------------------------------------
# Apache request paths.
# ---------------------------------------------------------------------------
def test_apache_read_copies_twice_mmap_once():
    def bytes_read(interface):
        system = small_system()
        cfg = ApacheConfig(num_pages=4, num_workers=1, requests=20,
                           interface=interface)
        result = run_apache(system, cfg)
        return result.counters

    read = bytes_read(ServerInterface.READ)
    mmap = bytes_read(ServerInterface.MMAP)
    # read() goes through the FS copy path; mmap through access().
    assert read.get("fs.read_bytes") == 20 * (32 << 10)
    assert "fs.read_bytes" not in mmap
    assert mmap.get("vm.access_bytes") == 20 * (32 << 10)


def test_apache_daxvm_batch_pages_plumbed():
    system = small_system()
    cfg = ApacheConfig(num_pages=4, num_workers=1, requests=30,
                       interface=ServerInterface.DAXVM,
                       daxvm=DaxVMOptions.full(), batch_pages=10_000)
    result = run_apache(system, cfg)
    # Huge batch: nothing reaped during the run.
    assert result.counters.get("daxvm.zombie_reaps", 0) == 0


def test_apache_mmap_async_uses_deferred_unmaps():
    system = small_system()
    cfg = ApacheConfig(num_pages=4, num_workers=2, requests=40,
                       interface=ServerInterface.MMAP_ASYNC)
    result = run_apache(system, cfg)
    assert result.counters.get("daxvm.unmaps_deferred", 0) == 40
    assert result.counters.get("daxvm.zombie_reaps", 0) >= 1


def test_apache_request_overhead_scales_latency():
    def latency(overhead):
        system = small_system()
        cfg = ApacheConfig(num_pages=4, num_workers=1, requests=20,
                           interface=ServerInterface.READ,
                           request_overhead_cycles=overhead)
        return run_apache(system, cfg).latency_us

    assert latency(200_000) > latency(0) + 50


# ---------------------------------------------------------------------------
# Sync bench semantics.
# ---------------------------------------------------------------------------
def test_sync_write_fsync_counts_commits():
    system = small_system()
    cfg = SyncConfig(file_size=8 << 20, op_size=1024, ops_per_sync=4,
                     num_syncs=10, discipline=SyncDiscipline.WRITE_FSYNC)
    result = run_sync(system, cfg)
    assert result.counters.get("fs.fsync_calls") == 10
    assert result.counters.get("journal.sync_commits") == 10


def test_sync_daxvm_flushes_whole_granules():
    system = small_system()
    cfg = SyncConfig(file_size=8 << 20, op_size=1024, ops_per_sync=4,
                     num_syncs=5, discipline=SyncDiscipline.DAXVM_FSYNC)
    result = run_sync(system, cfg)
    # 2 MB dirty granules: way fewer dirty tags than 4 KB tracking.
    assert result.counters.get("vm.dirty_faults", 0) <= 5
    assert result.counters.get("vm.msync_calls") == 5


def test_sync_interval_bytes_property():
    cfg = SyncConfig(op_size=1024, ops_per_sync=16)
    assert cfg.sync_interval_bytes == 16 << 10


# ---------------------------------------------------------------------------
# P-Redis mechanics.
# ---------------------------------------------------------------------------
def test_predis_daxvm_converges_via_monitor():
    system = System(device_bytes=2 << 30, aged=True)
    cfg = PRedisConfig(cache_size=256 << 20, num_gets=20_000,
                       window=2_000, interface=Interface.DAXVM)
    result = run_predis(system, cfg)
    assert result.run.counters.get("daxvm.table_migrations", 0) >= 1
    first = result.timeline.points[0][1]
    last = result.timeline.points[-1][1]
    assert last > first  # migration lifted steady-state throughput


def test_predis_counts_every_get():
    system = small_system()
    cfg = PRedisConfig(cache_size=64 << 20, index_size=4 << 20,
                       num_gets=3000, window=1000,
                       interface=Interface.MMAP)
    result = run_predis(system, cfg)
    assert result.run.operations == 3000
    assert result.run.bytes_processed == 3000 * cfg.value_size


# ---------------------------------------------------------------------------
# Ephemeral labels.
# ---------------------------------------------------------------------------
def test_ephemeral_run_labels_reflect_options():
    system = small_system()
    cfg = EphemeralConfig(file_size=16 << 10, num_files=10,
                          interface=Interface.DAXVM,
                          daxvm=DaxVMOptions.filetables_only())
    result = run_ephemeral(system, cfg)
    assert result.label == "daxvm[tables]"
    cfg2 = EphemeralConfig(file_size=16 << 10, num_files=10,
                           interface=Interface.DAXVM,
                           daxvm=DaxVMOptions.full_nosync())
    result2 = run_ephemeral(system, cfg2)
    assert "eph" in result2.label and "nosync" in result2.label
