"""daxvm_mmap/daxvm_munmap interface semantics (paper §IV-F)."""

import pytest

from repro.errors import InvalidArgumentError, NotSupportedError
from repro.mem.physmem import Medium
from repro.vm.vma import MapFlags, Protection

PAGE = 4096
PMD = 2 << 20


def run(system, gen):
    thread = system.spawn(gen, core=0)
    system.run()
    return thread.result


def make_file(system, size, path="/f"):
    def flow():
        f = yield from system.fs.open(path, create=True)
        yield from system.fs.write(f, 0, size)
        return f.inode

    return run(system, flow())


def setup(system):
    proc = system.new_process()
    dax = system.daxvm_for(proc)
    return proc, dax


def test_mmap_rounds_to_pmd_and_returns_requested_offset(system):
    proc, dax = setup(system)
    inode = make_file(system, 4 << 20)

    def flow():
        vma = yield from dax.mmap(inode, offset=PAGE, length=PAGE,
                                  prot=Protection.READ)
        return vma

    vma = run(system, flow())
    assert vma.start % PMD == 0
    assert vma.length == PMD          # silently maps the whole 2 MB
    assert vma.user_addr == vma.start + PAGE
    assert vma.fully_populated


def test_o1_attachment_count_scales_with_regions_not_pages(system):
    proc, dax = setup(system)
    small = make_file(system, 64 << 10, path="/s")
    big = make_file(system, 8 << 20, path="/b")

    def flow(inode, size):
        vma = yield from dax.mmap(inode, 0, size, Protection.READ)
        return vma

    v_small = run(system, flow(small, 64 << 10))
    v_big = run(system, flow(big, 8 << 20))
    assert len(v_small.attachments) == 1
    assert len(v_big.attachments) == 4  # one per 2 MB, not per page
    # No faults are ever taken on DaxVM mappings.
    assert system.stats.get("vm.faults") == 0


def test_mmap_latency_near_constant_in_file_size(system):
    """The headline O(1) property: mapping 16 MB costs about the same
    as mapping 64 KB (far less than proportionally more)."""
    proc, dax = setup(system)
    small = make_file(system, 64 << 10, path="/s")
    big = make_file(system, 16 << 20, path="/b")

    def timed(inode, size):
        def flow():
            t0 = system.engine.now
            vma = yield from dax.mmap(inode, 0, size, Protection.READ)
            return system.engine.now - t0
        return run(system, flow())

    t_small = timed(small, 64 << 10)
    t_big = timed(big, 16 << 20)
    assert t_big < t_small * 8  # 256x the size, < 8x the cost


def test_pud_level_attachment_for_gb_files(system):
    proc, dax = setup(system)
    # Use a sparse trick: fallocate > 1 GB needs a big device; instead
    # check the granule selection logic on a ~1.5 GB request backed by
    # a smaller filled table (attachments only cover filled regions).
    inode = make_file(system, 64 << 20, path="/big")

    def flow():
        vma = yield from dax.mmap(inode, 0, (1 << 30) + (512 << 20),
                                  Protection.READ)
        return vma

    vma = run(system, flow())
    assert vma.start % (1 << 30) == 0
    # PUD-level: one attachment per GB-level PMD node present.
    assert len(vma.attachments) == 1


def test_per_process_permissions_on_shared_tables(system):
    """Two processes share file tables with different rights (§IV-A2)."""
    proc1 = system.new_process("p1")
    proc2 = system.new_process("p2")
    dax1 = system.daxvm_for(proc1)
    dax2 = system.daxvm_for(proc2)
    inode = make_file(system, 1 << 20)
    system.fs.allow_huge = False  # force shared PTE fragments

    def flow():
        ro = yield from dax1.mmap(inode, 0, 1 << 20, Protection.READ)
        rw = yield from dax2.mmap(
            inode, 0, 1 << 20, Protection.rw(),
            MapFlags.SHARED | MapFlags.SYNC | MapFlags.NO_MSYNC)
        return ro, rw

    ro, rw = run(system, flow())
    assert not proc1.mm.page_table.translate(ro.user_addr).flags.writable
    assert proc2.mm.page_table.translate(rw.user_addr).flags.writable
    # Same shared fragment object underneath.
    assert ro.attachments[0][2] is rw.attachments[0][2]


def test_daxvm_leaf_medium_reflects_table_placement(system):
    proc, dax = setup(system)
    system.fs.allow_huge = False
    small = make_file(system, 16 << 10, path="/v")
    big = make_file(system, 1 << 20, path="/p")

    def flow(inode, size):
        return (yield from dax.mmap(inode, 0, size, Protection.READ))

    v = run(system, flow(small, 16 << 10))
    p = run(system, flow(big, 1 << 20))
    assert v.leaf_medium is Medium.DRAM
    assert p.leaf_medium is Medium.PMEM


def test_private_mappings_rejected(system):
    proc, dax = setup(system)
    inode = make_file(system, PAGE)

    def flow():
        yield from dax.mmap(inode, 0, PAGE, Protection.READ,
                            MapFlags.PRIVATE)

    with pytest.raises(NotSupportedError):
        run(system, flow())


def test_no_msync_requires_sync(system):
    proc, dax = setup(system)
    inode = make_file(system, PAGE)

    def flow():
        yield from dax.mmap(inode, 0, PAGE, Protection.rw(),
                            MapFlags.SHARED | MapFlags.NO_MSYNC)

    with pytest.raises(InvalidArgumentError):
        run(system, flow())


def test_partial_mprotect_fails_whole_mapping_works(system):
    proc, dax = setup(system)
    inode = make_file(system, 4 << 20)

    def flow():
        vma = yield from dax.mmap(inode, 0, 4 << 20, Protection.rw(),
                                  MapFlags.SHARED | MapFlags.SYNC
                                  | MapFlags.NO_MSYNC)
        with pytest.raises(NotSupportedError):
            yield from dax.mprotect(vma, PMD, PMD, Protection.READ)
        yield from dax.mprotect(vma, 0, vma.length, Protection.READ)
        return vma

    vma = run(system, flow())
    assert vma.prot == Protection.READ


def test_madvise_unsupported(system):
    proc, dax = setup(system)
    inode = make_file(system, PAGE)

    def flow():
        vma = yield from dax.mmap(inode, 0, PAGE, Protection.READ)
        return vma

    vma = run(system, flow())
    with pytest.raises(NotSupportedError):
        dax.madvise(vma, "dontneed")


def test_msync_noop_under_no_msync(system):
    proc, dax = setup(system)
    inode = make_file(system, 1 << 20)

    def flow():
        vma = yield from dax.mmap(
            inode, 0, 1 << 20, Protection.rw(),
            MapFlags.SHARED | MapFlags.SYNC | MapFlags.NO_MSYNC)
        yield from proc.mm.access(vma, vma.user_addr - vma.start,
                                  1 << 20, write=True)
        yield from dax.msync(vma)

    run(system, flow())
    assert system.stats.get("vm.msync_noop") == 1
    assert system.stats.get("vm.dirty_faults") == 0


def test_dirty_tracking_at_2mb_granularity(system):
    """§IV-D: one permission fault per 2 MB, not per 4 KB."""
    proc, dax = setup(system)
    inode = make_file(system, 4 << 20)

    def flow():
        vma = yield from dax.mmap(inode, 0, 4 << 20, Protection.rw(),
                                  MapFlags.SHARED | MapFlags.SYNC)
        yield from proc.mm.access(vma, vma.user_addr - vma.start,
                                  4 << 20, write=True)
        return vma

    vma = run(system, flow())
    assert system.stats.get("vm.dirty_faults") == 2  # 4 MB / 2 MB
    assert proc.mm.page_cache.dirty_count(inode) == 2


def test_user_space_persistence_helper(system):
    proc, dax = setup(system)

    def flow():
        yield from dax.persist_user(1 << 20)

    run(system, flow())
    assert system.stats.get("daxvm.user_flush_bytes") == 1 << 20


def test_sync_unmap_detaches_and_flushes(system):
    proc, dax = setup(system)
    inode = make_file(system, 1 << 20)

    def flow():
        vma = yield from dax.mmap(inode, 0, 1 << 20, Protection.READ)
        yield from dax.munmap(vma)
        return vma

    vma = run(system, flow())
    assert system.stats.get("tlb.shootdowns") >= 1
    assert vma not in inode.i_mmap
    # The file table itself survives the unmap (it is shared state).
    assert system.filetables.table_for(inode).filled_pages == 256
