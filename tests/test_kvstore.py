"""Pmem-RocksDB-like KV store unit tests."""

import pytest

from repro.system import System
from repro.workloads.common import DaxVMOptions, Interface
from repro.workloads.kvstore import KVConfig, PmemKVStore
from repro.workloads.ycsb import WORKLOAD_MIXES, YCSBConfig, _op_stream


def make_store(interface=Interface.MMAP, **kv_kwargs):
    system = System(device_bytes=2 << 30)
    process = system.new_process()
    if interface is Interface.DAXVM:
        system.daxvm_for(process)
    cfg = KVConfig(interface=interface, memtable_limit=256 << 10,
                   wal_size=256 << 10, sstable_size=256 << 10,
                   **kv_kwargs)
    store = PmemKVStore(system, process, cfg)
    return system, store


def drive(system, gen):
    thread = system.spawn(gen, core=0)
    system.run()
    return thread.result


def test_put_appends_to_wal_and_memtable():
    system, store = make_store()

    def flow():
        yield from store.start()
        for _ in range(10):
            yield from store.put()

    drive(system, flow())
    assert store.record_count == 10
    assert store.wal_offset == 10 * 4096
    assert store.memtable_bytes == 10 * 4096
    assert store.flushes == 0


def test_memtable_flush_creates_mapped_sstable():
    system, store = make_store()

    def flow():
        yield from store.start()
        for _ in range(64):  # 256 KB memtable limit / 4 KB records
            yield from store.put()

    drive(system, flow())
    assert store.flushes == 1
    assert len(store.sstables) == 1
    assert store.memtable_bytes == 0
    _f, vma = store.sstables[0]
    assert vma.inode.block_count == 64


def test_wal_rolls_and_recycles():
    system, store = make_store()

    def flow():
        yield from store.start()
        for _ in range(200):  # > 3 WAL generations
            yield from store.put()

    drive(system, flow())
    assert store.wal_rolls >= 2
    # Recycling: far fewer files created than WAL generations+1 would
    # suggest without the pool... the pool holds returned files.
    assert store._wal_pool or store.wal_rolls >= 2


def test_wal_recycling_avoids_new_allocation():
    system, store = make_store()
    blocks_per_wal = store.cfg.wal_size // 4096

    def flow():
        yield from store.start()
        for _ in range(200):
            yield from store.put()

    drive(system, flow())
    # WAL blocks allocated only for the distinct WAL files, not per
    # generation.
    wal_files = {f.inode.path for f in store._wal_pool}
    if store.wal is not None:
        wal_files.add(store.wal[0].inode.path)
    wal_blocks = system.stats.get("fs.blocks_allocated")
    # Sanity: total allocations bounded (recycling caps WAL growth).
    assert wal_blocks < 10 * blocks_per_wal + store.flushes * 64 + 64


def test_get_reads_from_sstable_or_memtable():
    system, store = make_store()

    def flow():
        yield from store.start()
        for _ in range(100):
            yield from store.put()
        before = system.stats.get("vm.access_bytes")
        for _ in range(50):
            yield from store.get()
        return before

    before = drive(system, flow())
    assert system.stats.get("vm.access_bytes") > before


def test_scan_touches_multiple_records():
    system, store = make_store()

    def flow():
        yield from store.start()
        for _ in range(100):
            yield from store.put()
        before = system.stats.get("vm.access_bytes")
        yield from store.scan(records=8)
        return system.stats.get("vm.access_bytes") - before

    delta = drive(system, flow())
    assert delta >= 8 * 4096


def test_mapsync_commits_under_mmap_but_not_nosync_daxvm():
    def commits(interface, opts=None):
        system = System(device_bytes=2 << 30)
        process = system.new_process()
        if interface is Interface.DAXVM:
            system.daxvm_for(process)
        kv = KVConfig(interface=interface, memtable_limit=256 << 10,
                      wal_size=256 << 10, sstable_size=256 << 10)
        if opts:
            kv.daxvm = opts
        store = PmemKVStore(system, process, kv)

        def flow():
            yield from store.start()
            for _ in range(64):
                yield from store.put()

        drive(system, flow())
        return system.stats.get("journal.sync_commits")

    assert commits(Interface.MMAP) > 0
    assert commits(Interface.DAXVM,
                   DaxVMOptions(ephemeral=False, unmap_async=False,
                                nosync=True)) == 0


# ---------------------------------------------------------------------------
# YCSB mixes.
# ---------------------------------------------------------------------------
def test_mixes_sum_to_one():
    for name, mix in WORKLOAD_MIXES.items():
        assert sum(mix) == pytest.approx(1.0), name


def test_op_stream_follows_mix():
    cfg = YCSBConfig(workload="run_b", num_ops=4000)
    ops = list(_op_stream(cfg))
    assert len(ops) == 4000
    reads = ops.count("read")
    assert 0.9 < reads / 4000 / 0.95 < 1.1


def test_op_stream_deterministic_by_seed():
    a = list(_op_stream(YCSBConfig(workload="run_a", num_ops=500)))
    b = list(_op_stream(YCSBConfig(workload="run_a", num_ops=500)))
    c = list(_op_stream(YCSBConfig(workload="run_a", num_ops=500,
                                   seed=99)))
    assert a == b
    assert a != c
