"""File-table tests: construction, policy, lifecycle, migration."""

from repro.fs.block import BLOCK_SIZE
from repro.mem.physmem import Medium

PAGE = 4096


def run(system, gen):
    thread = system.spawn(gen, core=0)
    system.run()
    return thread.result


def make_file(system, size, path="/f"):
    def flow():
        f = yield from system.fs.open(path, create=True)
        yield from system.fs.write(f, 0, size)
        yield from system.fs.close(f)
        return f.inode

    return run(system, flow())


def test_small_files_get_volatile_tables(system):
    manager = system.filetables  # registers hooks
    inode = make_file(system, 16 << 10)
    table = manager.table_for(inode)
    assert table is not None
    assert table.medium is Medium.DRAM
    assert inode.persistent_file_table is None
    assert table.filled_pages == 4


def test_large_files_get_persistent_tables(system):
    manager = system.filetables
    inode = make_file(system, 1 << 20)
    table = manager.table_for(inode)
    assert table.medium is Medium.PMEM
    assert inode.volatile_file_table is None
    assert table.filled_pages == 256


def test_growth_across_policy_line_upgrades(system):
    manager = system.filetables

    def flow():
        f = yield from system.fs.open("/grow", create=True)
        yield from system.fs.write(f, 0, 16 << 10)   # volatile
        assert f.inode.volatile_file_table is not None
        yield from system.fs.write(f, 16 << 10, 48 << 10)  # crosses 32K
        return f.inode

    inode = run(system, flow())
    assert inode.volatile_file_table is None
    assert inode.persistent_file_table is not None
    assert inode.persistent_file_table.filled_pages == 16


def test_volatile_table_destroyed_on_eviction_and_rebuilt(system):
    manager = system.filetables
    inode = make_file(system, 16 << 10)
    system.vfs.inode_cache.evict_all()
    assert inode.volatile_file_table is None

    def reopen():
        f = yield from system.fs.open("/f")
        yield from system.fs.close(f)

    run(system, reopen())
    assert inode.volatile_file_table is not None
    assert system.stats.get("daxvm.volatile_rebuilds") == 1


def test_persistent_table_survives_eviction(system):
    manager = system.filetables
    inode = make_file(system, 1 << 20)
    system.vfs.inode_cache.evict_all()
    assert inode.persistent_file_table is not None
    assert manager.table_for(inode).filled_pages == 256


def test_persistent_tables_consume_pmem_metadata_blocks(system):
    manager = system.filetables
    before = system.device.free_blocks
    inode = make_file(system, 2 << 20)
    used = before - system.device.free_blocks
    # 512 data blocks + at least one table node (huge-capable regions
    # may collapse the PTE level, but PMD nodes still exist).
    assert used >= 512 + 1
    assert inode.persistent_file_table.storage_bytes >= BLOCK_SIZE


def test_huge_capable_regions_use_pmd_leaves(system):
    manager = system.filetables
    inode = make_file(system, 4 << 20)
    table = manager.table_for(inode)
    assert len(table.huge_frames) == 2
    assert not table.pte_nodes  # fully huge on a fresh image
    assert table.region_entry(0)[0] == "huge"


def test_fragmented_file_mixes_huge_and_pte_regions(aged_system):
    manager = aged_system.filetables

    def flow():
        f = yield from aged_system.fs.open("/big", create=True)
        yield from aged_system.fs.write(f, 0, 32 << 20)
        return f.inode

    inode = run(aged_system, flow())
    table = manager.table_for(inode)
    assert table.pte_nodes  # some regions are 4K-mapped
    assert table.filled_pages == 32 << 20 >> 12


def test_truncate_shrinks_table(system):
    manager = system.filetables
    inode = make_file(system, 1 << 20)

    def flow():
        f = yield from system.fs.open("/f")
        yield from system.fs.truncate(f, 16 << 10)

    run(system, flow())
    table = manager.table_for(inode)
    assert table.filled_pages == 4


def test_unlink_drops_table_nodes(system):
    manager = system.filetables
    make_file(system, 1 << 20)
    before = system.device.free_blocks

    def flow():
        yield from system.fs.unlink("/f")

    run(system, flow())
    # Data blocks and table metadata blocks all return.
    assert system.device.free_blocks > before


def test_migration_builds_volatile_copy(system):
    manager = system.filetables
    inode = make_file(system, 1 << 20)
    cycles = manager.migrate_to_dram(inode)
    assert cycles > 0
    assert inode.volatile_file_table is not None
    assert inode.volatile_file_table.medium is Medium.DRAM
    # Both tables are maintained after migration (§IV-A1).
    assert inode.persistent_file_table is not None
    # mmap prefers the volatile copy.
    assert manager.table_for(inode).medium is Medium.DRAM
    # Idempotent.
    assert manager.migrate_to_dram(inode) == 0.0


def test_persistent_build_costs_more_than_volatile(system):
    """§V-B: persistent tables pay cache-line flushes on construction."""
    manager = system.filetables
    system.fs.allow_huge = False
    small = make_file(system, 16 << 10, path="/v")   # volatile
    big = make_file(system, 1 << 20, path="/p")       # persistent
    vol = manager.table_for(small)
    per = manager.table_for(big)
    assert vol.medium is Medium.DRAM
    assert per.medium is Medium.PMEM
    # Persistent construction pays clwb per line on top of PTE fills.
    assert per.costs.filetable_clwb_line > vol.costs.filetable_pte_fill


def test_storage_report(system):
    manager = system.filetables
    a = make_file(system, 16 << 10, path="/a")
    b = make_file(system, 1 << 20, path="/b")
    report = manager.storage_report([a, b])
    assert report["dram_bytes"] >= BLOCK_SIZE
    assert report["pmem_bytes"] >= BLOCK_SIZE
