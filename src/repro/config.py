"""Machine and cost-model configuration for the DaxVM reproduction.

Everything the simulator charges for — memory latencies, bandwidths,
syscall crossings, fault handling, TLB shootdowns, journal commits — is
declared here as one calibrated, documented constant.  Keeping every
number in a single frozen dataclass makes calibration auditable: the
benchmarks under ``benchmarks/`` only check *shapes* (who wins and by
roughly what factor), and any retuning happens in this file alone.

Units: time is measured in CPU cycles on a fixed-frequency clock
(:attr:`MachineConfig.freq_hz`, 2.7 GHz as in the paper's Cascade Lake
testbed); sizes are bytes.  Bandwidths are stated in bytes/second and
converted to cycles/byte via :meth:`CostModel.cycles_per_byte`.

Sources for the constants:

* The paper itself (Section V): 2.7 GHz, 16 cores/socket, Table II
  page-walk cycles, the 33-page full-flush threshold, the 32 KB
  volatile/persistent file-table threshold, the 200-cycle / 5 % monitor
  rule, the 64 MB/s pre-zeroing throttle.
* Yang et al., "An Empirical Guide to the Behavior and Use of Scalable
  Persistent Memory" (FAST'20), which the paper cites for Optane DCPMM
  latency/bandwidth and for nt-stores doubling the bandwidth of
  cache-line write-back flushes.
* Amit et al. (EuroSys'20) for IPI/TLB-shootdown costs (the paper cites
  "up to thousands of cycles").
"""

from __future__ import annotations

import dataclasses
import json
from dataclasses import dataclass


@dataclass(frozen=True)
class MachineConfig:
    """Static description of the simulated machine (one socket)."""

    num_cores: int = 16
    freq_hz: float = 2.7e9
    dram_bytes: int = 94 << 30
    pmem_bytes: int = 384 << 30
    #: Capacity a CXL-expander node carries when ``--node-kinds``
    #: configures one (zero capacity exists nowhere by default).
    cxl_bytes: int = 256 << 30
    #: Capacity an NT-interleave/far-memory node carries when
    #: configured.
    far_bytes: int = 96 << 30

    #: Base (4 KB) page and the x86-64 huge page sizes.
    page_size: int = 4096
    pmd_size: int = 2 << 20
    pud_size: int = 1 << 30

    #: Data TLB capacity, entries (typical Cascade Lake L2 STLB).
    tlb_entries_4k: int = 1536
    tlb_entries_2m: int = 1536

    def cycles_from_seconds(self, seconds: float) -> float:
        return seconds * self.freq_hz

    def seconds_from_cycles(self, cycles: float) -> float:
        return cycles / self.freq_hz


@dataclass(frozen=True)
class CostModel:
    """Calibrated per-operation costs, in cycles unless stated otherwise."""

    machine: MachineConfig = dataclasses.field(default_factory=MachineConfig)

    # ------------------------------------------------------------------
    # Raw memory access latencies (idle, per cache line / element).
    # ------------------------------------------------------------------
    #: Random-access load latency from DRAM (~81 ns, FAST'20).
    dram_load_latency: float = 220.0
    #: Random-access load latency from Optane PMem (~305 ns, FAST'20).
    pmem_load_latency: float = 825.0
    #: Latency of an L1/L2-resident load (data recently copied/touched).
    cache_load_latency: float = 10.0

    # ------------------------------------------------------------------
    # Streaming bandwidths (single thread), bytes/second.
    # ------------------------------------------------------------------
    #: Sequential AVX-512 read bandwidth out of PMem (user space;
    #: FAST'20 measures ~6.5 GB/s single-threaded sequential).
    pmem_read_bw: float = 6.5e9
    #: Sequential read bandwidth out of DRAM.
    dram_read_bw: float = 12.0e9
    #: nt-store (streaming write) bandwidth into PMem.
    pmem_ntstore_bw: float = 2.2e9
    #: Write bandwidth into PMem via regular stores + clwb/sfence
    #: flushes.  FAST'20: nt-stores roughly double flush bandwidth.
    pmem_clwb_bw: float = 1.1e9
    #: Store bandwidth into DRAM.
    dram_write_bw: float = 9.0e9
    #: Aggregate PMem device read bandwidth (3 DCPMM DIMMs ~6.6 GB/s
    #: each, FAST'20) — the shared ceiling multithreaded runs hit.
    pmem_total_read_bw: float = 19.8e9
    #: Aggregate PMem device write bandwidth.
    pmem_total_write_bw: float = 7.5e9
    #: Kernel copy bandwidth (rep-mov style copy, no AVX-512: the
    #: kernel avoids vector registers across the syscall boundary —
    #: §III-C, Vectorization).
    kernel_copy_ratio: float = 0.70

    # ------------------------------------------------------------------
    # The CXL-expander and far-memory tiers (ROADMAP item 3).  Fed into
    # the MediumSpec registry (repro.mem.tiers); never read by the
    # DRAM/PMem paths, so DRAM+PMem-only configs are untouched.
    # ------------------------------------------------------------------
    #: Random load from a CXL 2.0 memory expander (~2.5x local DRAM,
    #: ~205 ns — the latency band CXLRAMSim v1.0 calibrates against).
    cxl_load_latency: float = 560.0
    #: Single-thread sequential read over the x8 CXL link.
    cxl_read_bw: float = 9.0e9
    #: nt-store streaming bandwidth into the expander.
    cxl_ntstore_bw: float = 5.0e9
    #: Leaf PTE line read from CXL-resident tables on a page walk.
    walk_leaf_cxl: float = 530.0
    #: Random load from an NT-interleave/far-memory node: remote-socket
    #: DRAM over UPI, ~1.8x local ("Emulating Hybrid Memory on NUMA
    #: Hardware").
    far_load_latency: float = 400.0
    #: Sequential read from the far node (~60 % of local DRAM).
    far_read_bw: float = 7.2e9
    #: Streaming store bandwidth into the far node.
    far_write_bw: float = 5.4e9
    #: Leaf PTE line read from far-memory tables.
    walk_leaf_far: float = 145.0
    #: Tiering daemon: scan cost per tracked 2 MB granule (hotness
    #: list walk + counter reset), charged to the tiering domain.
    tiering_scan_granule: float = 130.0

    # ------------------------------------------------------------------
    # Kernel crossing / syscall / VFS costs.
    # ------------------------------------------------------------------
    #: User->kernel->user crossing for one syscall.
    syscall_crossing: float = 700.0
    #: Path lookup + fd setup for open() with a warm dentry cache.
    vfs_open_warm: float = 900.0
    #: Extra cost of a cold open: allocate VFS inode, read FS metadata.
    vfs_open_cold_extra: float = 2600.0
    #: close() teardown.
    vfs_close: float = 450.0
    #: Per-extent lookup in the file system extent tree (read path).
    extent_lookup: float = 180.0
    #: Extent-tree lookup cost inside a DAX fault, per log2(extents):
    #: big (especially aged) files have deep, cache-cold extent trees,
    #: so their faults are several times dearer than a small file's —
    #: the file-indexing overhead §VII's related work (ctFS, HashFS)
    #: targets, and the reason Fig. 5's mmap trails read/write while
    #: Fig. 4's small-file mmap is only ~20-30 % behind.
    fault_extent_lookup: float = 500.0

    # ------------------------------------------------------------------
    # Virtual-memory operation costs (outside lock waiting, which the
    # DES simulates explicitly).
    # ------------------------------------------------------------------
    #: Find a free virtual range + allocate/insert a VMA (rb-tree work).
    vma_alloc: float = 950.0
    #: Remove a VMA and free its bookkeeping.
    vma_free: float = 500.0
    #: Fixed cost of taking a page fault: trap, walk VMA tree, return.
    fault_entry: float = 750.0
    #: DAX fault body: FS block lookup + PTE install for one 4 KB page.
    fault_dax_pte: float = 450.0
    #: DAX fault body for one 2 MB PMD huge page.
    fault_dax_pmd: float = 900.0
    #: Extra work when a write fault must mark a page dirty in the page
    #: cache radix tree (software dirty tracking).
    dirty_track_per_page: float = 500.0
    #: Per-PTE teardown cost during munmap (clear + accounting).
    pte_teardown: float = 55.0
    #: Per-PMD attach/detach cost for DaxVM file-table splicing.
    pmd_attach: float = 260.0
    #: Building one PTE in a file table (volatile).
    filetable_pte_fill: float = 28.0
    #: Extra cost per cache line of persistent file-table PTEs
    #: (clwb + ordering amortised over 8 PTEs per line).
    filetable_clwb_line: float = 360.0
    #: Issue cost of one clwb instruction on a clean line (a sync of a
    #: coarse granule must sweep every line in it, but only actually
    #: dirty lines generate write-back traffic).
    clwb_issue_per_line: float = 4.0

    # ------------------------------------------------------------------
    # TLB / shootdown costs.
    # ------------------------------------------------------------------
    #: Local single-page invlpg.
    tlb_invlpg: float = 220.0
    #: Local full TLB flush (write to CR3).
    tlb_full_flush: float = 600.0
    #: Initiator fixed cost to send one IPI round and wait for acks.
    ipi_base: float = 1800.0
    #: Additional initiator cost per responding core (APIC broadcast
    #: keeps the per-target increment modest).
    ipi_per_core: float = 250.0
    #: Cycles stolen from each responding core's running thread.
    ipi_responder: float = 700.0
    #: Linux batches per-page invalidations up to this many pages, then
    #: prefers one full flush (x86 tlb_single_page_flush_ceiling).
    full_flush_threshold: int = 33
    #: Average TLB refill penalty per entry discarded by a full flush,
    #: charged lazily to subsequent execution.
    tlb_refill_penalty: float = 40.0
    #: Live (hot) entries a full flush realistically costs refills for.
    full_flush_hot_entries: int = 64

    # ------------------------------------------------------------------
    # Page-walk model (calibrated against Table II of the paper:
    # seq/rand 4 KB access, average walk = 28/111 cycles with DRAM
    # tables and 103/821 cycles with PMem tables).
    # ------------------------------------------------------------------
    #: Expected cost of the three upper walk levels under sequential
    #: access (paging-structure caches absorb almost everything).
    walk_upper_seq: float = 18.0
    #: ... and under random access over a large footprint.
    walk_upper_rand: float = 31.0
    #: Reading the leaf (PTE) cache line from DRAM on a walk.
    walk_leaf_dram: float = 80.0
    #: Reading the leaf cache line from PMem (persistent file tables).
    walk_leaf_pmem: float = 790.0
    #: Probability the leaf line misses the caches under sequential
    #: access: one miss per cache line of 8 consecutive PTEs.
    walk_leaf_miss_seq: float = 0.125
    #: ... and under random access (every walk reads the leaf).
    walk_leaf_miss_rand: float = 1.0
    #: Average walk cost when the leaf is a huge (PMD) entry in the
    #: process's private DRAM tables.
    walk_huge: float = 16.0

    # ------------------------------------------------------------------
    # Alternative translation architectures (repro.paging.schemes).
    # ``radix4`` uses only the Table II parameters above; the three
    # alternative MMUs add their own knobs so `sweep mmu` can price
    # each design honestly and cache keys change when they do.
    # ------------------------------------------------------------------
    #: radix5/LA57: expected cost of the 5th (extra upper) walk level
    #: under sequential access (paging-structure caches absorb most)...
    walk5_upper_extra_seq: float = 6.0
    #: ... and under random access over a large footprint.
    walk5_upper_extra_rand: float = 10.0
    #: hashed/inverted: hash + tag-compare chain per lookup (the walk
    #: is the same for sequential and random access — no leaf
    #: locality in an inverted table).
    hashed_walk_compute: float = 24.0
    #: hashed: average probes per lookup at the steady-state load
    #: factor; each probe reads one bucket line from DRAM.
    hashed_probe_avg: float = 1.25
    #: hashed: insert one translation (probe chain + entry write).
    #: DaxVM attach pays this *per page* — no shareable fragments.
    hashed_insert: float = 180.0
    #: range/segment: fixed lookup overhead (segment registers, range
    #: TLB probe) ...
    range_walk_base: float = 14.0
    #: ... plus this per binary-search step over the range table.
    range_walk_step: float = 9.0
    #: range: insert one range entry (sorted-table surgery + possible
    #: neighbour merge).  DaxVM attach pays this per contiguous run.
    range_insert: float = 420.0

    # ------------------------------------------------------------------
    # File system costs.
    # ------------------------------------------------------------------
    #: Allocate one extent in the block allocator (ext4 mballoc-like).
    block_alloc: float = 1900.0
    #: Free one extent.
    block_free: float = 900.0
    #: Journal transaction begin/commit pair for a metadata update.
    journal_commit: float = 9000.0
    #: NOVA log append (inode log entry + flush).
    nova_log_append: float = 2300.0
    #: memset-zero bandwidth into PMem with nt-stores.
    pmem_zero_bw: float = 2.4e9
    #: Default DaxVM pre-zeroing throttle, bytes/second (paper: 64 MB/s
    #: is the evaluated throttle; the kthread is rate limited).
    prezero_throttle_bw: float = 64.0e6

    # ------------------------------------------------------------------
    # Media-error handling costs (repro.faults; charged only when a
    # fault plan is armed on the machine).
    # ------------------------------------------------------------------
    #: Kernel handling of one uncorrectable error report: MCE/ARS
    #: notification plus the pmem badblocks-list update.
    media_error_handle: float = 25000.0
    #: Remap one bad block inside an extent: replacement allocation,
    #: extent-tree surgery and bitmap/metadata updates.
    media_remap_per_block: float = 6000.0
    #: ``memory_failure()`` base cost: rmap walk setup, page poison
    #: bookkeeping and the hwpoison entry swap (per-PTE teardown is
    #: charged on top via ``pte_teardown``).
    memory_failure_base: float = 180000.0
    #: Driver clear-poison path per block: the ioctl/ARS round plus the
    #: fenced nt-store overwrite that scrubs the line.
    clear_poison_per_block: float = 40000.0

    # ------------------------------------------------------------------
    # Guest VMs and post-copy live migration (repro.virt; charged only
    # when a hypervisor is attached).  The link numbers model a
    # dedicated inter-machine migration channel (RDMA-class NIC or a
    # cross-socket interconnect lane); nested-walk pricing reuses the
    # Table II walk constants through TranslationScheme.nested_walk_cost.
    # ------------------------------------------------------------------
    #: Hypervisor exit + world-switch overhead charged per guest
    #: access window that traps into the host (post-copy pulls,
    #: degraded remote access).
    vmexit_cost: float = 1200.0
    #: One-way propagation latency of the migration link, cycles
    #: (~1.5 us: an RDMA round between adjacent racks).
    migrate_link_latency: float = 4000.0
    #: Streaming bandwidth of the migration link, bytes/second.
    migrate_link_bw: float = 3.0e9
    #: Minimal device state shipped during the pause (vCPU registers,
    #: device model, the guest-physical map — not the pages).
    migrate_handover_bytes: int = 256 << 10
    #: Downtime budget for the pause phase, cycles; the audit flags a
    #: migration whose booked downtime exceeds this (~2 ms).
    migrate_downtime_budget: float = 5.4e6
    #: A demand pull that stalls longer than this is timed out and
    #: retried (seeded in-sim backoff).
    migrate_pull_timeout: float = 300000.0
    #: Retry ladder: base backoff for attempt ``n`` is
    #: ``migrate_retry_backoff * 2**n`` cycles, jittered by the seed.
    migrate_retry_backoff: float = 20000.0
    #: Pulls that still stall after this many retries flip the job
    #: into degraded mode (then abort-and-rollback).
    migrate_max_pull_retries: int = 3
    #: Degraded mode prices unpulled-page accesses as remote accesses
    #: across the link at this latency multiplier over a local PMem
    #: load (the guest limps, it does not lose data).
    migrate_degraded_factor: float = 4.0
    #: Degraded accesses tolerated before the job aborts and rolls
    #: back to the source.
    migrate_degraded_budget: int = 64
    #: Pages the background prefetch kthread pulls per batch.
    migrate_prefetch_batch: int = 16
    #: Idle cycles the prefetch kthread sleeps between batches.
    migrate_prefetch_interval: float = 150000.0

    # ------------------------------------------------------------------
    # DaxVM policies (paper Sections IV-A..IV-E).
    # ------------------------------------------------------------------
    #: Files up to this size keep volatile (DRAM) file tables.
    filetable_volatile_max: int = 32 << 10
    #: Monitor rule (Table III): migrate persistent tables to DRAM when
    #: the average walk exceeds this many cycles ...
    monitor_walk_cycles: float = 200.0
    #: ... and page walks consume more than this fraction of runtime.
    monitor_mmu_overhead: float = 0.05
    #: Zombie-page threshold for asynchronous munmap batching.
    async_unmap_batch_pages: int = 33
    #: Ephemeral heap region granularity.
    ephemeral_region_bytes: int = 1 << 30

    # ------------------------------------------------------------------
    # Synchronisation primitive costs (uncontended; contention is
    # simulated by the DES, not modelled as a constant).
    # ------------------------------------------------------------------
    lock_uncontended: float = 60.0
    atomic_rmw: float = 45.0
    #: Cache-line bounce when a contended lock word moves between cores.
    lock_bounce: float = 320.0

    # ------------------------------------------------------------------
    # Derived helpers.
    # ------------------------------------------------------------------
    def cycles_per_byte(self, bandwidth_bytes_per_s: float) -> float:
        """Convert a bandwidth into a per-byte cycle cost."""
        return self.machine.freq_hz / bandwidth_bytes_per_s

    def copy_cycles(self, nbytes: int, bandwidth_bytes_per_s: float,
                    startup: float = 90.0) -> float:
        """Cycles to move ``nbytes`` at the given bandwidth."""
        return startup + nbytes * self.cycles_per_byte(bandwidth_bytes_per_s)

    def replace(self, **changes) -> "CostModel":
        """Return a copy with the given fields overridden."""
        return dataclasses.replace(self, **changes)

    def to_stable_dict(self) -> dict:
        """Every calibrated constant (machine included) as plain data."""
        return dataclasses.asdict(self)

    def stable_json(self) -> str:
        """Canonical serialisation for content hashing.

        Sorted keys and plain ``repr``-based floats make the string a
        pure function of the constants' *values*: two cost models hash
        equal iff every calibrated number is equal, so sweep-cache keys
        survive field reordering but not retuning.
        """
        return json.dumps(self.to_stable_dict(), sort_keys=True)


#: Default, paper-calibrated cost model used throughout the package.
DEFAULT_COSTS = CostModel()
DEFAULT_MACHINE = DEFAULT_COSTS.machine


# ---------------------------------------------------------------------------
# NUMA cross-socket penalties (defaults for repro.topology).
#
# Sources: Yang et al. (FAST'20) measure remote-socket Optane loads at
# ~2-3x local latency and remote streaming bandwidth at roughly half
# of local (reads) to a third (stores); "Emulating Hybrid Memory on
# NUMA Hardware" builds its emulation on the same DRAM asymmetries
# (~1.6-1.8x latency over UPI).  Cross-socket IPIs add the UPI hop to
# the APIC round trip (Amit et al., EuroSys'20 report thousands of
# cycles end to end).
# ---------------------------------------------------------------------------
#: Remote / local DRAM load-latency ratio across the UPI link.
NUMA_REMOTE_DRAM_LATENCY = 1.7
#: Remote / local Optane load-latency ratio.
NUMA_REMOTE_PMEM_LATENCY = 2.3
#: Remote / local DRAM streaming-bandwidth ratio.
NUMA_REMOTE_DRAM_BW = 0.60
#: Remote / local Optane streaming-bandwidth ratio.
NUMA_REMOTE_PMEM_BW = 0.45
#: Remote / local CXL-expander load-latency ratio (an extra switch
#: hop; the link itself already dominates).
NUMA_REMOTE_CXL_LATENCY = 1.4
#: Remote / local CXL-expander streaming-bandwidth ratio.
NUMA_REMOTE_CXL_BW = 0.70
#: Remote / local far-memory load-latency ratio (a second UPI hop).
NUMA_REMOTE_FAR_LATENCY = 1.3
#: Remote / local far-memory streaming-bandwidth ratio.
NUMA_REMOTE_FAR_BW = 0.70
#: Extra initiator cycles per cross-socket IPI target.
NUMA_IPI_CROSS_SOCKET_EXTRA = 900.0


# ---------------------------------------------------------------------------
# Media presets beyond Optane (paper §VI: DaxVM is relevant for any
# byte-addressable storage — CXL memory-semantic SSDs, future NVM).
# ---------------------------------------------------------------------------
def optane_costs() -> CostModel:
    """The paper's testbed: Intel Optane DCPMM (the default)."""
    return CostModel()


def cxl_flash_costs() -> CostModel:
    """A CXL memory-semantic SSD (§VI: e.g. Samsung's announcement).

    Flash-backed load latency is several microseconds uncached, with a
    large on-device DRAM cache absorbing most hits; streaming
    bandwidths ride the CXL link.  Software costs (faults, locks,
    shootdowns) are unchanged — which is the paper's §VI point: the
    *relative* weight of VM overheads only grows as media get nearer.
    """
    return CostModel(
        pmem_load_latency=4200.0,      # ~1.5 us effective random load
        pmem_read_bw=8.0e9,            # CXL x8 link-ish streaming
        pmem_ntstore_bw=3.0e9,
        pmem_clwb_bw=1.5e9,
        pmem_total_read_bw=24.0e9,
        pmem_total_write_bw=9.0e9,
        pmem_zero_bw=3.0e9,
        walk_leaf_pmem=2400.0,         # table walks into the device
    )


def fast_nvm_costs() -> CostModel:
    """A hypothetical near-DRAM persistent memory (future NVM).

    With media latency approaching DRAM, the software stack becomes
    essentially the whole cost of file access — DaxVM's elimination of
    paging and VM serialisation matters *more*, not less.
    """
    return CostModel(
        pmem_load_latency=300.0,
        pmem_read_bw=11.0e9,
        pmem_ntstore_bw=8.0e9,
        pmem_clwb_bw=4.0e9,
        pmem_total_read_bw=40.0e9,
        pmem_total_write_bw=25.0e9,
        pmem_zero_bw=8.0e9,
        walk_leaf_pmem=160.0,
    )


MEDIA_PRESETS = {
    "optane": optane_costs,
    "cxl-flash": cxl_flash_costs,
    "fast-nvm": fast_nvm_costs,
}
