"""Per-file extent maps: logical block -> physical block runs.

The extent tree is the file system's index from file offsets to device
blocks.  It is also where huge-page eligibility is decided: a 2 MB
region of a file can be mapped with a PMD leaf only when a single
extent covers it with matching 2 MB alignment on both the logical and
physical side — exactly the property fragmentation destroys on an aged
image (§III-C, §V-B of the paper).
"""

from __future__ import annotations

import bisect
from typing import Iterator, List, Optional, Tuple

from repro.errors import InvalidArgumentError
from repro.fs.block import BLOCKS_PER_PMD


class Extent:
    """A contiguous mapping of file blocks onto device blocks."""

    __slots__ = ("logical", "physical", "length")

    def __init__(self, logical: int, physical: int, length: int):
        if length <= 0:
            raise InvalidArgumentError("extent length must be positive")
        self.logical = logical
        self.physical = physical
        self.length = length

    @property
    def logical_end(self) -> int:
        return self.logical + self.length

    def physical_for(self, logical_block: int) -> int:
        if not self.logical <= logical_block < self.logical_end:
            raise InvalidArgumentError(
                f"block {logical_block} outside extent")
        return self.physical + (logical_block - self.logical)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<Extent L{self.logical}->P{self.physical} x{self.length}>"


class ExtentTree:
    """Sorted extent list with append/truncate/lookup operations."""

    def __init__(self) -> None:
        self._extents: List[Extent] = []
        self._logical_starts: List[int] = []

    def __len__(self) -> int:
        return len(self._extents)

    def __iter__(self) -> Iterator[Extent]:
        return iter(self._extents)

    @property
    def block_count(self) -> int:
        return sum(e.length for e in self._extents)

    # -- mutation -----------------------------------------------------------
    def append(self, physical: int, length: int) -> Extent:
        """Map the next ``length`` file blocks onto ``physical``.

        Merges with the tail extent when physically contiguous (files
        grow densely at the end — the property DaxVM's bottom-up file
        tables exploit, §IV-A1).
        """
        logical = self.block_count
        if self._extents:
            tail = self._extents[-1]
            if tail.physical + tail.length == physical:
                tail.length += length
                return tail
        extent = Extent(logical, physical, length)
        self._extents.append(extent)
        self._logical_starts.append(logical)
        return extent

    def replace_block(self, logical_block: int, new_physical: int) -> int:
        """Point one file block at a replacement device block.

        The media-error remap path: the extent covering the block is
        split (up to three ways) so the single bad block can be
        re-pointed without disturbing its neighbours.  Returns the old
        physical block.  The logical layout stays dense, so huge-page
        geometry elsewhere in the file is untouched — only the split
        region loses PMD eligibility, exactly as a remapped extent
        does on ext4/NOVA.
        """
        idx = bisect.bisect_right(self._logical_starts, logical_block) - 1
        if idx < 0 or logical_block >= self._extents[idx].logical_end:
            raise InvalidArgumentError(
                f"replace_block: block {logical_block} is a hole")
        extent = self._extents[idx]
        old_physical = extent.physical_for(logical_block)
        before = logical_block - extent.logical
        after = extent.logical_end - (logical_block + 1)
        pieces: List[Extent] = []
        if before > 0:
            pieces.append(Extent(extent.logical, extent.physical, before))
        pieces.append(Extent(logical_block, new_physical, 1))
        if after > 0:
            pieces.append(Extent(logical_block + 1,
                                 extent.physical + before + 1, after))
        self._extents[idx:idx + 1] = pieces
        self._logical_starts[idx:idx + 1] = [e.logical for e in pieces]
        return old_physical

    def truncate_to(self, nblocks: int) -> List[Tuple[int, int]]:
        """Shrink the file to ``nblocks``; returns freed (phys, len) runs."""
        freed: List[Tuple[int, int]] = []
        while self._extents and self.block_count > nblocks:
            tail = self._extents[-1]
            excess = self.block_count - nblocks
            if tail.length <= excess:
                freed.append((tail.physical, tail.length))
                self._extents.pop()
                self._logical_starts.pop()
            else:
                keep = tail.length - excess
                freed.append((tail.physical + keep, excess))
                tail.length = keep
        return freed

    # -- lookup ---------------------------------------------------------------
    def find(self, logical_block: int) -> Optional[Extent]:
        idx = bisect.bisect_right(self._logical_starts, logical_block) - 1
        if idx < 0:
            return None
        extent = self._extents[idx]
        if logical_block < extent.logical_end:
            return extent
        return None

    def physical_block(self, logical_block: int) -> Optional[int]:
        extent = self.find(logical_block)
        return None if extent is None else extent.physical_for(logical_block)

    # -- huge-page geometry ---------------------------------------------------
    def pmd_capable(self, logical_block: int) -> bool:
        """Can the 2 MB region containing this block use a PMD leaf?

        Requires one extent to cover the whole aligned 512-block run
        with logical and physical alignment in agreement.
        """
        region_start = (logical_block // BLOCKS_PER_PMD) * BLOCKS_PER_PMD
        extent = self.find(region_start)
        if extent is None:
            return False
        if extent.logical_end < region_start + BLOCKS_PER_PMD:
            return False
        physical_start = extent.physical_for(region_start)
        return physical_start % BLOCKS_PER_PMD == 0

    def huge_coverage(self) -> float:
        """Fraction of the file's blocks in PMD-capable 2 MB regions."""
        total = self.block_count
        if total == 0:
            return 0.0
        covered = 0
        regions = -(-total // BLOCKS_PER_PMD)
        for region in range(regions):
            start = region * BLOCKS_PER_PMD
            if (start + BLOCKS_PER_PMD <= total
                    and self.pmd_capable(start)):
                covered += BLOCKS_PER_PMD
        return covered / total

    def check_invariants(self) -> None:
        """Extents must be sorted, non-overlapping and dense."""
        expected_logical = 0
        for extent in self._extents:
            assert extent.logical == expected_logical, "logical gap"
            assert extent.length > 0
            expected_logical = extent.logical_end
        assert self._logical_starts == [e.logical for e in self._extents]
