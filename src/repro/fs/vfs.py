"""The VFS layer: inodes, the inode cache, files, and the namespace.

This is the part of the kernel that open/close/unlink flow through.
It matters to DaxVM in one specific way (§IV-A1): *volatile* file
tables live exactly as long as the VFS inode stays cached — a cold open
must rebuild them, and eviction destroys them — while *persistent* file
tables hang off the on-media inode and survive reboot.  The inode cache
therefore exposes lifecycle hooks that DaxVM's file-table manager
subscribes to.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Callable, Dict, List, Optional, Tuple

from repro.errors import (
    BadFileDescriptorError,
    FileExistsError_,
    NoSuchFileError,
)
from repro.fs.extent import ExtentTree

#: Hook signature: called with the inode on cache load / evict; may
#: return cycles for the triggering operation to charge (e.g. DaxVM
#: volatile file-table rebuilds on cold opens).
InodeHook = Callable[["Inode"], Optional[float]]


class Inode:
    """An on-media inode plus its in-core (VFS) state."""

    _next_number = 1

    def __init__(self, path: str, number: Optional[int] = None):
        if number is None:
            number = Inode._next_number
            Inode._next_number += 1
        self.number = number
        self.path = path
        self.size = 0
        self.extents = ExtentTree()
        self.nlink = 1
        #: VMAs currently mapping this file (address_space->i_mmap).
        self.i_mmap: List[object] = []
        #: Root of the persistent DaxVM file table (survives reboot);
        #: opaque to the VFS, owned by repro.core.filetable.
        self.persistent_file_table: Optional[object] = None
        #: Root of the volatile DaxVM file table (dies with the cache).
        self.volatile_file_table: Optional[object] = None
        #: Set by PMem-aware stores that recycle files (Pmem-RocksDB).
        self.recycled = False

    @property
    def block_count(self) -> int:
        return self.extents.block_count

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<Inode #{self.number} {self.path} {self.size}B>"


class InodeCache:
    """LRU cache of in-core inodes with load/evict hooks."""

    def __init__(self, capacity: int = 1 << 16):
        self.capacity = capacity
        self._cached: "OrderedDict[int, Inode]" = OrderedDict()
        self.load_hooks: List[InodeHook] = []
        self.evict_hooks: List[InodeHook] = []
        self.hits = 0
        self.misses = 0

    def lookup(self, inode: Inode) -> Tuple[bool, float]:
        """Touch the cache; returns (hit, hook cycles to charge)."""
        if inode.number in self._cached:
            self._cached.move_to_end(inode.number)
            self.hits += 1
            return True, 0.0
        self.misses += 1
        self._cached[inode.number] = inode
        cycles = 0.0
        for hook in self.load_hooks:
            cycles += hook(inode) or 0.0
        while len(self._cached) > self.capacity:
            _num, evicted = self._cached.popitem(last=False)
            for hook in self.evict_hooks:
                hook(evicted)
        return False, cycles

    def evict(self, inode: Inode) -> None:
        """Drop one inode (e.g. on unlink)."""
        if self._cached.pop(inode.number, None) is not None:
            for hook in self.evict_hooks:
                hook(inode)

    def evict_all(self) -> None:
        """Drop everything (simulates reboot / cold caches)."""
        while self._cached:
            _num, inode = self._cached.popitem(last=False)
            for hook in self.evict_hooks:
                hook(inode)

    def __contains__(self, inode: Inode) -> bool:
        return inode.number in self._cached

    def __len__(self) -> int:
        return len(self._cached)


class DaxFile:
    """An open file description (the result of ``open()``)."""

    def __init__(self, inode: Inode, fs: "object", writable: bool = True):
        self.inode = inode
        self.fs = fs
        self.writable = writable
        self.pos = 0
        self.closed = False

    def _check_open(self) -> None:
        if self.closed:
            raise BadFileDescriptorError(f"{self.inode.path}: closed fd")

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<DaxFile {self.inode.path}>"


class VFS:
    """A single-mount namespace mapping paths to inodes."""

    def __init__(self, inode_cache: Optional[InodeCache] = None):
        self.inode_cache = inode_cache or InodeCache()
        self._namespace: Dict[str, Inode] = {}
        # Inode numbers are per-mount, like a real file system's, so
        # two simulated machines built from the same workload assign
        # identical numbers — crash-point replicas depend on this.
        self._next_ino = 1

    # -- namespace -----------------------------------------------------------
    def create(self, path: str) -> Inode:
        if path in self._namespace:
            raise FileExistsError_(path)
        inode = Inode(path, number=self._next_ino)
        self._next_ino += 1
        self._namespace[path] = inode
        return inode

    def lookup(self, path: str) -> Inode:
        inode = self._namespace.get(path)
        if inode is None:
            raise NoSuchFileError(path)
        return inode

    def remove(self, path: str) -> Inode:
        inode = self._namespace.pop(path, None)
        if inode is None:
            raise NoSuchFileError(path)
        self.inode_cache.evict(inode)
        return inode

    def forget(self, path: str) -> Optional[Inode]:
        """Drop a namespace entry without raising (crash rollback)."""
        inode = self._namespace.pop(path, None)
        if inode is not None:
            self.inode_cache.evict(inode)
        return inode

    def restore(self, path: str, inode: Inode) -> None:
        """Re-link an inode under its path (crash rollback of unlink)."""
        self._namespace.setdefault(path, inode)

    def paths(self) -> List[str]:
        return sorted(self._namespace)

    def inodes(self) -> List[Inode]:
        """Every live inode in deterministic inode-number order."""
        return sorted(self._namespace.values(), key=lambda ino: ino.number)

    def __contains__(self, path: str) -> bool:
        return path in self._namespace

    def __len__(self) -> int:
        return len(self._namespace)
