"""Geriatrix-style file system aging (Kadekodi et al., ATC'18).

The paper ages its ext4 image with Geriatrix under the Agrawal profile
(FAST'07 file-size distribution) and 100 TB of write churn at 70 %
utilisation, then runs every experiment on the resulting *fragmented*
image.  We reproduce the mechanism rather than the tool: deterministic
create/delete churn against the extent allocator until the free-space
distribution stops changing, which leaves the device with the property
every aged-image result depends on — **few 2 MB-aligned free runs**, so
newly created files get patchy huge-page coverage.

The Agrawal profile is approximated by a lognormal body (median ~4 KB)
with a heavy tail, capped at 64 MB.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass
from typing import List, Tuple

from repro.fs.block import BLOCK_SIZE, BlockDevice


@dataclass(frozen=True)
class AgingProfile:
    """Parameters of an aging run."""

    seed: int = 1234
    #: Target live-data fraction of the device (paper: 70 %).
    utilization: float = 0.70
    #: Churn, as a multiple of device capacity (paper: 100 TB on
    #: 384 GB, i.e. ~260x; a few passes already reach steady state in
    #: this allocator, so the default keeps setup fast).
    churn_multiple: float = 3.0
    #: Lognormal body: median file size in bytes and shape parameter.
    median_file_bytes: int = 4096
    sigma: float = 2.1
    max_file_bytes: int = 64 << 20
    #: Build the aged free-space state directly from the dead-file
    #: hole distribution instead of replaying churn.  The churn ager
    #: is exact but needs device-scale×time the benchmarks don't have;
    #: the synthetic builder reproduces its *steady state* — a free
    #: list whose hole sizes follow the dead-file size distribution —
    #: in milliseconds.  See DESIGN.md (aging substitution).
    synthetic: bool = True
    #: Hole-size distribution of the synthetic builder (median/sigma):
    #: calibrated so roughly 30 % of free bytes sit in >=2 MB holes,
    #: giving new large files the partial, non-deterministic huge-page
    #: coverage the paper reports for its aged image.
    hole_median_bytes: int = 32 << 10
    hole_sigma: float = 1.8


def _sample_file_blocks(rng: random.Random, profile: AgingProfile) -> int:
    """Draw a file size (in blocks) from the Agrawal-like distribution."""
    mu = math.log(profile.median_file_bytes)
    size = int(rng.lognormvariate(mu, profile.sigma))
    size = max(1, min(size, profile.max_file_bytes))
    return -(-size // BLOCK_SIZE)


def age_filesystem(device: BlockDevice,
                   profile: AgingProfile = AgingProfile()
                   ) -> List[List[Tuple[int, int]]]:
    """Churn the allocator until aged; returns the surviving files' runs.

    The surviving allocations are left in place (they are the aged
    image's resident data); callers typically ignore the return value
    and simply create their workload files on the now-fragmented
    device.
    """
    rng = random.Random(profile.seed)
    live: List[List[Tuple[int, int]]] = []
    live_blocks = 0
    target_blocks = int(device.total_blocks * profile.utilization)

    def create_one() -> bool:
        nonlocal live_blocks
        nblocks = _sample_file_blocks(rng, profile)
        if nblocks > device.free_blocks:
            return False
        # Chunked allocation, mirroring FileSystem._allocate.
        runs: List[Tuple[int, int]] = []
        remaining = nblocks
        while remaining > 0:
            chunk = min(remaining, 512)
            align = 512 if chunk == 512 else 1
            runs.extend(device.alloc(chunk, align=align))
            remaining -= chunk
        live.append(runs)
        live_blocks += nblocks
        return True

    # Phase 1: fill to target utilisation.
    while live_blocks < target_blocks:
        if not create_one():
            break

    # Phase 2: steady-state churn — delete a random file, create a new
    # one, holding utilisation roughly constant.
    churn_budget = int(device.total_blocks * profile.churn_multiple)
    churned = 0
    while churned > -1 and churned < churn_budget and live:
        victim_idx = rng.randrange(len(live))
        victim = live[victim_idx]
        last = live.pop()
        if victim_idx < len(live):
            live[victim_idx] = last
        for start, length in victim:
            device.free(start, length)
            live_blocks -= length
        while live_blocks < target_blocks:
            before = live_blocks
            if not create_one():
                break
            churned += live_blocks - before
    return live


def synthesize_aged_state(device: BlockDevice,
                          profile: AgingProfile = AgingProfile()) -> None:
    """Impose an aged steady-state free list on a fresh device.

    Walks the device linearly, alternating live runs and free holes;
    hole sizes follow the dead-file distribution (lognormal, median
    ``hole_median_bytes``), and live-run sizes are scaled so overall
    utilisation hits the profile target.  This reproduces the property
    every aged-image experiment depends on: most free bytes live in
    holes too small or misaligned for 2 MB huge pages.
    """
    rng = random.Random(profile.seed)
    util = profile.utilization
    live_per_free = util / (1.0 - util)
    mu = math.log(profile.hole_median_bytes)

    def _hole_blocks() -> int:
        size = int(rng.lognormvariate(mu, profile.hole_sigma))
        size = max(BLOCK_SIZE, min(size, profile.max_file_bytes))
        return -(-size // BLOCK_SIZE)

    # Mark everything used, then punch holes.
    device.alloc(device.total_blocks, prefer_contiguous=True)
    cursor = 0
    while cursor < device.total_blocks:
        hole = _hole_blocks()
        live = max(1, int(hole * live_per_free
                          * rng.uniform(0.5, 1.5)))
        cursor += live
        if cursor >= device.total_blocks:
            break
        hole = min(hole, device.total_blocks - cursor)
        device.free(cursor, hole)
        cursor += hole


# ---------------------------------------------------------------------------
# Cached aged images: aging is deterministic, so each (size, profile)
# pair is aged once per process and cloned for every experiment.
# ---------------------------------------------------------------------------
_AGED_CACHE: dict = {}


def _clone_device(device: BlockDevice) -> BlockDevice:
    from repro.fs.block import FreeExtent

    clone = BlockDevice(device.total_blocks * BLOCK_SIZE,
                        base_frame=device.base_frame)
    clone._free = [FreeExtent(e.start, e.length) for e in device._free]
    clone._starts = list(device._starts)
    clone.free_blocks = device.free_blocks
    return clone


def aged_device(size_bytes: int, profile: AgingProfile = AgingProfile(),
                base_frame: int = 1 << 30,
                frame_map=None) -> BlockDevice:
    """An aged block device (memoised per (size, profile, base)).

    Aging operates purely on block numbers, so the NUMA ``frame_map``
    (if any) is attached to the clone after the fact — the same aged
    image serves every placement.
    """
    key = (size_bytes, profile, base_frame)
    if key not in _AGED_CACHE:
        device = BlockDevice(size_bytes, base_frame=base_frame)
        if profile.synthetic:
            synthesize_aged_state(device, profile)
        else:
            age_filesystem(device, profile)
        _AGED_CACHE[key] = device
    clone = _clone_device(_AGED_CACHE[key])
    clone.frame_map = frame_map
    return clone
