"""PMem file systems: block allocation, journaling, VFS, ext4-DAX, NOVA."""

from repro.fs.aging import AgingProfile, age_filesystem
from repro.fs.block import BlockDevice, FreeExtent
from repro.fs.extent import Extent, ExtentTree
from repro.fs.journal import Journal
from repro.fs.vfs import VFS, DaxFile, Inode, InodeCache
from repro.fs.ext4 import Ext4Dax
from repro.fs.nova import Nova
from repro.fs.xfs import XfsDax

__all__ = [
    "AgingProfile",
    "BlockDevice",
    "DaxFile",
    "Ext4Dax",
    "Extent",
    "ExtentTree",
    "FreeExtent",
    "Inode",
    "InodeCache",
    "Journal",
    "Nova",
    "VFS",
    "XfsDax",
    "age_filesystem",
]
