"""Shared file-system machinery: allocation, zeroing, syscall paths.

Concrete file systems (:class:`~repro.fs.ext4.Ext4Dax`,
:class:`~repro.fs.nova.Nova`) differ in exactly the dimensions the
paper exploits (§III-B, §V-B Appends):

* whether the **write syscall path zeroes** newly allocated blocks
  (ext4-DAX does, conservatively; NOVA does not),
* whether **fallocate zeroes** (both must, for secure DAX mmap),
* the **metadata update discipline** (journal vs per-inode log), and
* whether a **MAP_SYNC write fault** must commit metadata synchronously
  (ext4: yes — the Fig. 9c bottleneck; NOVA: no-op).

The base class also owns the two hook points DaxVM plugs into: block
(de)allocation hooks for file-table maintenance, and a free
interceptor for asynchronous pre-zeroing.
"""

from __future__ import annotations

import math
from typing import Callable, List, Optional, Tuple

from repro.config import CostModel
from repro.errors import InvalidArgumentError
from repro.fs.block import BLOCK_SIZE, BLOCKS_PER_PMD, BlockDevice
from repro.fs.intervals import IntervalSet
from repro.fs.vfs import VFS, DaxFile, Inode
from repro.mem.latency import MemoryModel
from repro.mem.physmem import Medium
from repro.obs import Counter, CostDomain, charge
from repro.sim.stats import Stats

#: (inode, [(phys_block, length), ...]) — fired after (de)allocation.
#: A hook may return cycles for the file system to charge to the
#: operation (DaxVM file-table maintenance is paid by the FS op that
#: triggered it — the §V-B "latency overheads" accounting).
BlockHook = Callable[[Inode, List[Tuple[int, int]]], Optional[float]]
#: Intercepts frees: receives runs, returns True if it took ownership.
FreeInterceptor = Callable[[List[Tuple[int, int]]], bool]


class FileSystem:
    """Base PMem file system with DAX syscall paths."""

    name = "fs"
    #: Does the write() syscall zero freshly allocated blocks?
    zeroes_on_write_path = True
    #: Does fallocate() zero (required for secure DAX mmap appends)?
    zeroes_on_fallocate = True
    #: Does a MAP_SYNC write fault need a synchronous metadata commit?
    mapsync_needs_commit = True

    def __init__(self, device: BlockDevice, vfs: VFS, costs: CostModel,
                 mem: MemoryModel, stats: Stats):
        self.device = device
        self.vfs = vfs
        self.costs = costs
        self.mem = mem
        self.stats = stats
        #: Free blocks known to already contain zeroes.
        self.zeroed = IntervalSet()
        self.alloc_hooks: List[BlockHook] = []
        self.free_hooks: List[BlockHook] = []
        self.free_interceptor: Optional[FreeInterceptor] = None
        #: Generators run (``yield from``) before an inode's blocks are
        #: reclaimed — DaxVM forces deferred unmaps synchronously here
        #: (the file-system race guard of §IV-C).
        self.free_barriers: List[Callable[[Inode], object]] = []
        #: Wired by System; used for device bandwidth contention.
        self.engine = None
        #: Huge-page (PMD) mappings allowed?  Fig. 6 turns them off.
        self.allow_huge = True
        #: Optional :class:`repro.crash.PersistenceDomain`; when attached
        #: every metadata mutation and data store is shadowed with its
        #: durability state (volatile/flushed/fenced) for crash-point
        #: exploration.  ``None`` in ordinary performance runs.
        self.persistence = None
        #: Optional :class:`repro.faults.MediaFaults`; when attached the
        #: read/append paths advance its fault clock and consult the
        #: device badblocks list (remapping or clearing on error).
        #: ``None`` in ordinary performance runs — the paths then skip
        #: the scan entirely and charge nothing.
        self.faults = None

    def _device_wait(self, read_bytes: float, write_bytes: float) -> float:
        """Extra cycles from aggregate PMem bandwidth contention."""
        if self.engine is None:
            return 0.0
        return self.mem.device_delay(read_bytes, write_bytes,
                                     self.engine.now)

    def _data_medium(self, inode: Inode, offset: int, nbytes: int,
                     write: bool) -> Medium:
        """Where this file range's data lives.  Without a tier overlay
        that is the device medium (PMem — the pre-tiering model, bit
        for bit); with one, the overlay decides and the access is
        tagged for the tiering daemon's hotness scan.  A range spanning
        tiers is priced at its first page's placement (the granule is
        2 MB, far above the syscall sizes the sweeps use)."""
        tiers = self.mem.tiers
        if tiers is None:
            return Medium.PMEM
        first = offset // BLOCK_SIZE
        last = (offset + max(nbytes, 1) - 1) // BLOCK_SIZE
        tiers.note_touch(inode, first, last, write=write)
        return tiers.medium_for(inode, first)

    # ------------------------------------------------------------------
    # open/close.
    # ------------------------------------------------------------------
    def open(self, path: str, create: bool = False):
        """Open (optionally creating) a file; returns a DaxFile."""
        yield charge(CostDomain.SYSCALL, "open",
                     self.costs.syscall_crossing)
        if create and path not in self.vfs:
            self._persist_create(path)
            inode = self.vfs.create(path)
            yield from self._metadata_update()
        else:
            inode = self.vfs.lookup(path)
        warm, hook_cycles = self.vfs.inode_cache.lookup(inode)
        cost = self.costs.vfs_open_warm + hook_cycles
        if not warm:
            cost += self.costs.vfs_open_cold_extra
            self.stats.add(Counter.VFS_COLD_OPENS)
        else:
            self.stats.add(Counter.VFS_WARM_OPENS)
        yield charge(CostDomain.SYSCALL, "vfs-open", cost)
        return DaxFile(inode, self)

    def close(self, file: DaxFile):
        file._check_open()
        file.closed = True
        yield charge(CostDomain.SYSCALL, "close",
                     self.costs.syscall_crossing + self.costs.vfs_close)

    # ------------------------------------------------------------------
    # Data syscalls.
    # ------------------------------------------------------------------
    def read(self, file: DaxFile, offset: int, nbytes: int,
             random_access: bool = False):
        """read() into a DRAM user buffer: kernel copy from PMem.

        ``random_access`` charges the PMem first-access latency a
        non-sequential read pays before the copy streams.
        """
        file._check_open()
        if offset + nbytes > file.inode.size:
            nbytes = max(0, file.inode.size - offset)
        yield charge(CostDomain.SYSCALL, "read",
                     self.costs.syscall_crossing)
        if nbytes == 0:
            return 0
        if self.faults is not None:
            yield from self._media_scan(file.inode, offset, nbytes,
                                        write=False)
        extents = self._extents_touched(file.inode, offset, nbytes)
        lookup = self.costs.extent_lookup * extents
        src = self._data_medium(file.inode, offset, nbytes, write=False)
        copy = self.mem.memcpy(nbytes, src, Medium.DRAM, kernel=True)
        if random_access:
            copy += self.mem.load_latency(src)
        copy = max(copy, self._device_wait(nbytes, 0))
        yield charge(CostDomain.SYSCALL, "extent-lookup", lookup)
        yield charge(CostDomain.COPY, "read-copy", copy)
        self.stats.add(Counter.FS_READ_BYTES, nbytes)
        return nbytes

    def write(self, file: DaxFile, offset: int, nbytes: int):
        """write() from a DRAM user buffer: nt-store copy to PMem.

        Extends the file (allocating blocks) when the write passes EOF.
        """
        file._check_open()
        if nbytes <= 0:
            raise InvalidArgumentError("write size must be positive")
        yield charge(CostDomain.SYSCALL, "write",
                     self.costs.syscall_crossing)
        new_end = offset + nbytes
        if new_end > file.inode.block_count * BLOCK_SIZE:
            needed = -(-new_end // BLOCK_SIZE) - file.inode.block_count
            yield from self._allocate(file.inode, needed,
                                      zero=self.zeroes_on_write_path)
        if self.faults is not None:
            yield from self._media_scan(file.inode, offset, nbytes,
                                        write=True)
        extents = self._extents_touched(file.inode, offset, nbytes)
        lookup = self.costs.extent_lookup * extents
        dst = self._data_medium(file.inode, offset, nbytes, write=True)
        copy = self.mem.memcpy(nbytes, Medium.DRAM, dst,
                               kernel=True, ntstore=True)
        copy = max(copy, self._device_wait(0, nbytes))
        yield charge(CostDomain.SYSCALL, "extent-lookup", lookup)
        yield charge(CostDomain.COPY, "write-copy", copy)
        if self.persistence is not None:
            self.persistence.data_store(file.inode.number, nbytes, nt=True)
        if new_end > file.inode.size:
            self._persist_size(file.inode, new_end)
        file.inode.size = max(file.inode.size, new_end)
        yield from self._metadata_update()
        self.stats.add(Counter.FS_WRITE_BYTES, nbytes)
        return nbytes

    def fallocate(self, file: DaxFile, new_size: int):
        """Reserve blocks up to ``new_size`` (zeroing per FS policy)."""
        file._check_open()
        yield charge(CostDomain.SYSCALL, "fallocate",
                     self.costs.syscall_crossing)
        needed = -(-new_size // BLOCK_SIZE) - file.inode.block_count
        if needed > 0:
            yield from self._allocate(file.inode, needed,
                                      zero=self.zeroes_on_fallocate)
            yield from self._metadata_update()
        if new_size > file.inode.size:
            self._persist_size(file.inode, new_size)
        file.inode.size = max(file.inode.size, new_size)

    def fsync(self, file: DaxFile):
        """fsync after write() syscalls: the data is already durable
        (nt-stores), so only metadata needs committing."""
        file._check_open()
        yield charge(CostDomain.SYSCALL, "fsync",
                     self.costs.syscall_crossing)
        upto = (self.persistence.cursor()
                if self.persistence is not None else None)
        yield from self._commit_sync()
        if upto is not None:
            self.persistence.sync_data(file.inode.number, upto)
        self.stats.add(Counter.FS_FSYNC_CALLS)

    def truncate(self, file: DaxFile, new_size: int):
        file._check_open()
        yield charge(CostDomain.SYSCALL, "truncate",
                     self.costs.syscall_crossing)
        yield from self._truncate_inode(file.inode, new_size)

    def unlink(self, path: str):
        yield charge(CostDomain.SYSCALL, "unlink",
                     self.costs.syscall_crossing)
        inode = self.vfs.lookup(path)
        yield from self._truncate_inode(inode, 0)
        self._persist_unlink(path, inode)
        self.vfs.remove(path)
        yield from self._metadata_update()

    # ------------------------------------------------------------------
    # Mapping support (used by the VM layer and DaxVM).
    # ------------------------------------------------------------------
    def frame_for_page(self, inode: Inode, page_index: int) -> Optional[int]:
        """Physical frame backing file page ``page_index`` (or None)."""
        block = inode.extents.physical_block(page_index)
        if block is None:
            return None
        return self.device.frame_of(block)

    def pmd_capable(self, inode: Inode, page_index: int) -> bool:
        """May the 2 MB region holding this page map as a huge page?"""
        return self.allow_huge and inode.extents.pmd_capable(page_index)

    def fault_lookup_cost(self, inode: Inode) -> float:
        """Extent-tree lookup cycles a DAX fault pays for this file."""
        n = len(inode.extents)
        return self.costs.fault_extent_lookup * (1.0 + math.log2(n + 1))

    def mapsync_fault(self):
        """Metadata work a MAP_SYNC write fault must perform."""
        if self.mapsync_needs_commit:
            yield from self._commit_sync()
        else:
            yield charge(CostDomain.JOURNAL, "mapsync-noop", 0.0)

    # ------------------------------------------------------------------
    # Internals shared by subclasses.
    # ------------------------------------------------------------------
    def _allocate(self, inode: Inode, nblocks: int, zero: bool):
        """Allocate blocks, charge zeroing, fire DaxVM hooks.

        Allocation proceeds in 2 MB chunks, each attempting an aligned
        contiguous extent first (mballoc-style goal allocation), so a
        file's huge-page coverage degrades *gradually* with free-space
        fragmentation instead of all-or-nothing.
        """
        runs: List[Tuple[int, int]] = []
        remaining = nblocks
        while remaining > 0:
            chunk = min(remaining, BLOCKS_PER_PMD)
            align = BLOCKS_PER_PMD if chunk == BLOCKS_PER_PMD else 1
            runs.extend(self.device.alloc(chunk, align=align))
            remaining -= chunk
        self._persist_extent_append(inode, runs)
        for start, length in runs:
            inode.extents.append(start, length)
        yield charge(CostDomain.SYSCALL, "block-alloc",
                     self.costs.block_alloc * len(runs))
        self.stats.add(Counter.FS_BLOCKS_ALLOCATED, nblocks)
        if zero:
            dirty = 0
            for start, length in runs:
                pre = self.zeroed.remove(start, start + length)
                dirty += length - pre
            if dirty:
                cost = self.mem.zero(dirty * BLOCK_SIZE)
                cost = max(cost, self._device_wait(0, dirty * BLOCK_SIZE))
                self.stats.add(Counter.FS_ZEROING_CYCLES, cost)
                self.stats.add(Counter.FS_BLOCKS_ZEROED_SYNC, dirty)
                yield charge(CostDomain.ZEROING, "sync-zero", cost)
        else:
            for start, length in runs:
                self.zeroed.remove(start, start + length)
        hook_cycles = 0.0
        for hook in self.alloc_hooks:
            hook_cycles += hook(inode, runs) or 0.0
        if hook_cycles:
            self.stats.add(Counter.FS_FILETABLE_MAINTENANCE_CYCLES,
                           hook_cycles)
            yield charge(CostDomain.FILETABLE, "alloc-hooks", hook_cycles)

    def _truncate_inode(self, inode: Inode, new_size: int):
        for barrier in self.free_barriers:
            yield from barrier(inode)
        new_blocks = -(-new_size // BLOCK_SIZE)
        deferred = self._persist_truncate(inode, new_blocks, new_size)
        freed = inode.extents.truncate_to(new_blocks)
        inode.size = min(inode.size, new_size)
        if not freed:
            return
        yield charge(CostDomain.SYSCALL, "block-free",
                     self.costs.block_free * len(freed))
        self.stats.add(Counter.FS_BLOCKS_FREED, sum(l for _s, l in freed))
        hook_cycles = 0.0
        for hook in self.free_hooks:
            hook_cycles += hook(inode, freed) or 0.0
        if hook_cycles:
            self.stats.add(Counter.FS_FILETABLE_MAINTENANCE_CYCLES,
                           hook_cycles)
            yield charge(CostDomain.FILETABLE, "free-hooks", hook_cycles)
        if deferred is not None:
            # Freed blocks must stay allocated until the truncate record
            # is durable (jbd2 defers frees to transaction commit, else
            # a crash could hand live data to another file).
            deferred.extend(freed)
        elif self.free_interceptor is not None and self.free_interceptor(freed):
            self.stats.add(Counter.FS_FREES_INTERCEPTED, len(freed))
        else:
            for start, length in freed:
                self.device.free(start, length)
        yield from self._metadata_update()

    # ------------------------------------------------------------------
    # Persistence-domain shadowing (crash-point exploration).
    #
    # Each helper is a no-op without an attached domain.  Records are
    # created *before* the in-memory mutation they shadow, so a crash at
    # the record's own transition observes the pre-mutation state.  The
    # ``undo`` closures implement logical rollback of uncommitted
    # transactions; ``on_durable`` defers block frees to commit.
    # ------------------------------------------------------------------
    def _persist_create(self, path: str) -> None:
        if self.persistence is None:
            return
        vfs = self.vfs
        self.persistence.meta_store(
            "create", None, 256, undo=lambda: vfs.forget(path))

    def _persist_unlink(self, path: str, inode: Inode) -> None:
        if self.persistence is None:
            return
        vfs = self.vfs
        self.persistence.meta_store(
            "unlink", inode.number, 256,
            undo=lambda: vfs.restore(path, inode))

    def _persist_size(self, inode: Inode, new_size: int) -> None:
        if self.persistence is None:
            return
        old = inode.size

        def undo():
            inode.size = old
        self.persistence.meta_store("inode-size", inode.number, 16,
                                    undo=undo)

    def _persist_extent_append(self, inode: Inode,
                               runs: List[Tuple[int, int]]) -> None:
        if self.persistence is None or not runs:
            return
        domain = self.persistence
        domain.note_block_alloc(runs)
        device = self.device
        before = inode.extents.block_count

        def undo():
            # Rolled-back allocation: the bitmap update was in the same
            # transaction, so the blocks come back as free space.
            for start, length in inode.extents.truncate_to(before):
                device.free(start, length)
                domain.note_block_free(start, length)
        total = sum(length for _start, length in runs)
        domain.meta_store("extent-append", inode.number, 8 * total,
                          undo=undo)

    def _persist_truncate(self, inode: Inode, new_blocks: int,
                          new_size: int) -> Optional[List[Tuple[int, int]]]:
        if self.persistence is None:
            return None
        if inode.extents.block_count <= new_blocks and inode.size <= new_size:
            return None
        domain = self.persistence
        device = self.device
        old_size = inode.size
        deferred: List[Tuple[int, int]] = []

        def undo():
            # truncate_to pops extents tail-first; re-append reversed to
            # restore the original logical order.
            for start, length in reversed(deferred):
                inode.extents.append(start, length)
            deferred.clear()
            inode.size = old_size

        def on_durable():
            for start, length in deferred:
                device.free(start, length)
                domain.note_block_free(start, length)
        domain.meta_store("truncate", inode.number, 64, undo=undo,
                          on_durable=on_durable)
        return deferred

    # ------------------------------------------------------------------
    # Media-error handling (repro.faults; every helper is unreachable
    # without an attached MediaFaults, so ordinary runs charge nothing).
    # ------------------------------------------------------------------
    def _media_scan(self, inode: Inode, offset: int, nbytes: int,
                    write: bool):
        """Consult the badblocks list over one read/append window.

        Advances the fault clock by one touch (which may arm a UE on
        the first touched block or inject a stall/bandwidth window),
        then handles every bad block found: a full-block nt-store
        overwrite clears the error in place (the DAX clear-poison
        path); anything else remaps the block to a fresh allocation
        and quarantines the bad one.  Read-path remaps lose the
        block's previous contents — the loss is *accounted*
        (``faults.bytes_lost``), never silent.
        """
        faults = self.faults
        first = offset // BLOCK_SIZE
        last = (offset + max(nbytes, 1) - 1) // BLOCK_SIZE
        touched: List[Tuple[int, int]] = []
        for logical in range(first, last + 1):
            physical = inode.extents.physical_block(logical)
            if physical is not None:
                touched.append((logical, physical))
        stall = faults.block_touch("write" if write else "read", inode,
                                   [phys for _lb, phys in touched])
        if stall:
            # The stall freezes the whole device: every other live
            # thread's core absorbs the window as stolen cycles,
            # attributed to the stall (not the shootdown bucket).
            if self.engine is not None:
                self.engine.broadcast_interrupt(
                    stall, CostDomain.FAULTS, "stall-stolen")
            yield charge(CostDomain.FAULTS, "device-stall", stall)
        if not self.device.badblocks:
            return
        bad = [(lb, phys) for lb, phys in touched
               if self.device.is_bad(phys)]
        if not bad:
            return
        yield charge(CostDomain.FAULTS, "media-error",
                     self.costs.media_error_handle * len(bad))
        for logical, physical in bad:
            covered = (write
                       and offset <= logical * BLOCK_SIZE
                       and offset + nbytes >= (logical + 1) * BLOCK_SIZE)
            if covered:
                # The whole block is being rewritten with nt-stores:
                # the driver's clear-poison path scrubs it in place and
                # drops it from the badblocks list.
                self.device.clear_bad(physical)
                faults.note_cleared(physical)
                yield charge(CostDomain.FAULTS, "clear-poison",
                             self.costs.clear_poison_per_block)
            else:
                yield from self._remap_bad_block(
                    inode, logical, physical, data_lost=not write)

    def _remap_bad_block(self, inode: Inode, logical: int, physical: int,
                         data_lost: bool):
        """Relocate one bad block and permanently retire the old one."""
        runs = self.device.alloc(1, prefer_contiguous=True)
        new_physical = runs[0][0]
        inode.extents.replace_block(logical, new_physical)
        self.device.quarantine(physical)
        self.zeroed.remove(new_physical, new_physical + 1)
        yield charge(CostDomain.FAULTS, "ue-remap",
                     self.costs.media_remap_per_block
                     + self.costs.block_alloc)
        # DaxVM file tables hold direct PTEs to the old frame; rewrite
        # them from the remapped page onward so walks can never reach
        # the quarantined block.
        fixup = 0.0
        for table in (inode.volatile_file_table,
                      inode.persistent_file_table):
            if table is not None:
                fixup += table.truncate(logical)
                fixup += table.extend(self)
        if fixup:
            self.stats.add(Counter.FS_FILETABLE_MAINTENANCE_CYCLES, fixup)
            yield charge(CostDomain.FILETABLE, "remap-fixup", fixup)
        self.faults.note_remapped(physical, new_physical,
                                  BLOCK_SIZE if data_lost else 0)

    def _extents_touched(self, inode: Inode, offset: int,
                         nbytes: int) -> int:
        first = offset // BLOCK_SIZE
        last = (offset + nbytes - 1) // BLOCK_SIZE
        count = 0
        block = first
        while block <= last:
            extent = inode.extents.find(block)
            count += 1
            if extent is None:
                break
            block = extent.logical_end
        return max(1, count)

    # Metadata disciplines, overridden by subclasses. ------------------
    def _metadata_update(self):
        raise NotImplementedError

    def _commit_sync(self):
        raise NotImplementedError
