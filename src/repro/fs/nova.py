"""NOVA: a log-structured, PMem-aware file system model.

NOVA (Xu & Swanson, FAST'16) differs from ext4-DAX in exactly the ways
Fig. 7 (right panel) and the NOVA YCSB results exercise:

* per-inode logs: each metadata update is one log append, synchronous
  and in-place — cheap, and **MAP_SYNC becomes a no-op** (no deferred
  allocation metadata to force out on a write fault);
* the write() syscall path does **not** zero freshly allocated blocks
  (nt-stores overwrite them anyway), so syscall appends are much
  faster than on ext4;
* fallocate still must zero — secure DAX mmap appends depend on it —
  which is why mmap appends trail write() on NOVA until DaxVM's
  asynchronous pre-zeroing closes the gap.
"""

from __future__ import annotations

from repro.config import CostModel
from repro.fs.base import FileSystem
from repro.fs.block import BlockDevice
from repro.fs.vfs import VFS
from repro.mem.latency import MemoryModel
from repro.obs import Counter, CostDomain, charge
from repro.sim.stats import Stats


class Nova(FileSystem):
    """NOVA in relaxed mode (in-place DAX updates allowed)."""

    name = "nova"
    zeroes_on_write_path = False
    zeroes_on_fallocate = True
    mapsync_needs_commit = False

    def __init__(self, device: BlockDevice, vfs: VFS, costs: CostModel,
                 mem: MemoryModel, stats: Stats):
        super().__init__(device, vfs, costs, mem, stats)
        self.log_appends = 0

    def _metadata_update(self):
        self.log_appends += 1
        self.stats.add(Counter.NOVA_LOG_APPENDS)
        yield charge(CostDomain.JOURNAL, "nova-log-append",
                     self.costs.nova_log_append)
        if self.persistence is not None:
            # A NOVA log append is nt-stored and fenced in place: each
            # metadata update is its own committed transaction.
            self.persistence.commit_metadata(acked=True)

    def _commit_sync(self):
        # In-place synchronous metadata: nothing deferred to flush.
        yield charge(CostDomain.JOURNAL, "nova-commit-noop", 0.0)
