"""ext4-DAX: journaling, conservative zeroing, MAP_SYNC commits.

The traits that matter to the paper:

* metadata updates join jbd2 transactions (amortised commits);
* the write() syscall path **zeroes newly allocated blocks even though
  it then overwrites them with nt-stores** — the conservatism DaxVM's
  pre-zeroing turns into a *win* for mmap appends in Fig. 7 (left);
* a MAP_SYNC write fault forces a synchronous journal commit so that
  allocating metadata is durable before user space dirties the page —
  per-4 KB on aged images, which is the Fig. 9c scalability killer.
"""

from __future__ import annotations

from repro.config import CostModel
from repro.fs.base import FileSystem
from repro.fs.block import BlockDevice
from repro.fs.journal import Journal
from repro.fs.vfs import VFS
from repro.mem.latency import MemoryModel
from repro.sim.stats import Stats


class Ext4Dax(FileSystem):
    """ext4 mounted with ``-o dax``."""

    name = "ext4-dax"
    zeroes_on_write_path = True
    zeroes_on_fallocate = True
    mapsync_needs_commit = True

    def __init__(self, device: BlockDevice, vfs: VFS, costs: CostModel,
                 mem: MemoryModel, stats: Stats):
        super().__init__(device, vfs, costs, mem, stats)
        self.journal = Journal(costs, stats, fs=self)

    def _metadata_update(self):
        yield from self.journal.metadata_update()

    def _commit_sync(self):
        yield from self.journal.commit_sync()
