"""The PMem block device and its extent-based free-space allocator.

Blocks are 4 KB and map 1:1 onto PMem frames (block ``b`` is frame
``base_frame + b``), so a file's extent map directly yields the
physical frames that DAX mappings and DaxVM file tables point at.

The allocator is a first-fit extent allocator with address-ordered
coalescing — deliberately simple but *honest about fragmentation*: it
prefers contiguous, 2 MB-aligned carving when asked (the huge-page
friendly path), and after the Geriatrix-style aging of
:mod:`repro.fs.aging` has churned it, large aligned extents become
scarce and the huge-page coverage of new files drops.  That emergent
scarcity is what drives every "aged image" result in the paper.
"""

from __future__ import annotations

import bisect
from typing import List, Optional, Tuple

from repro.errors import NoSpaceError

BLOCK_SIZE = 4096
BLOCKS_PER_PMD = (2 << 20) // BLOCK_SIZE  # 512


class FreeExtent:
    """A contiguous run of free blocks."""

    __slots__ = ("start", "length")

    def __init__(self, start: int, length: int):
        self.start = start
        self.length = length

    @property
    def end(self) -> int:
        return self.start + self.length

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<Free {self.start}+{self.length}>"


class BlockDevice:
    """A PMem-backed block device with extent allocation."""

    def __init__(self, size_bytes: int, base_frame: int = 1 << 30,
                 frame_map=None):
        if size_bytes % BLOCK_SIZE:
            raise ValueError("device size must be block aligned")
        self.total_blocks = size_bytes // BLOCK_SIZE
        self.base_frame = base_frame
        #: Optional non-linear block->frame map (an interleaved NUMA
        #: placement, repro.topology.InterleaveMap).  ``None`` keeps
        #: the historical linear ``base_frame + block`` layout.
        self.frame_map = frame_map
        #: Free extents sorted by start block.
        self._free: List[FreeExtent] = [FreeExtent(0, self.total_blocks)]
        self._starts: List[int] = [0]
        self.free_blocks = self.total_blocks
        self.allocations = 0
        self.frees = 0
        #: (nblocks, align) requests known to have no contiguous fit;
        #: cleared on free.  Keeps repeated chunked allocations cheap.
        self._contig_fail_hint: set = set()
        #: Next-fit goal cursor (index into the free list).
        self._cursor = 0
        #: Blocks with uncorrectable media errors (the pmem badblocks
        #: list).  Consulted by the FS read/append paths; maintained by
        #: repro.faults arming, ``memory_failure()`` poisoning and the
        #: clear-poison path.  Empty in ordinary runs.
        self.badblocks: set = set()
        #: Blocks permanently retired after an error (never returned
        #: to the free pool again).  Capacity lost to media wear.
        self.quarantined: set = set()

    # -- helpers -------------------------------------------------------------
    def frame_of(self, block: int) -> int:
        """The physical frame number backing a block."""
        if self.frame_map is not None:
            return self.frame_map.frame_of(block)
        return self.base_frame + block

    def block_of(self, frame: int) -> int:
        """Inverse of :meth:`frame_of` (needed when metadata blocks
        are freed by frame number)."""
        if self.frame_map is not None:
            return self.frame_map.block_of(frame)
        return frame - self.base_frame

    @property
    def used_blocks(self) -> int:
        return self.total_blocks - self.free_blocks

    @property
    def utilization(self) -> float:
        return self.used_blocks / self.total_blocks

    # -- media errors (badblocks list) --------------------------------------
    def mark_bad(self, block: int) -> None:
        """Record an uncorrectable error against a block."""
        if not 0 <= block < self.total_blocks:
            raise ValueError(f"badblock {block} outside device")
        self.badblocks.add(block)

    def clear_bad(self, block: int) -> None:
        """Clear-poison succeeded: the block is serviceable again."""
        self.badblocks.discard(block)

    def is_bad(self, block: int) -> bool:
        return block in self.badblocks

    def bad_in_run(self, start: int, length: int) -> List[int]:
        """Badblocks inside ``[start, start+length)``, sorted.

        Iterates the badblocks list (not the run): the list is tiny
        while runs can span gigabytes.
        """
        if not self.badblocks:
            return []
        end = start + length
        return sorted(b for b in self.badblocks if start <= b < end)

    def quarantine(self, block: int) -> None:
        """Permanently retire an in-use block after a remap.

        The block leaves the badblocks list (its error has been dealt
        with) and joins the quarantined set; :meth:`free` will never
        return it to the free pool, so the allocator can never hand it
        to another file.
        """
        self.badblocks.discard(block)
        self.quarantined.add(block)

    # -- allocation ---------------------------------------------------------
    #: Extents inspected around the goal cursor when hunting for an
    #: aligned contiguous fit (models ext4 mballoc's goal-local search:
    #: it does not scan the whole disk for alignment).
    GOAL_WINDOW = 32

    def alloc(self, nblocks: int, align: int = 1,
              prefer_contiguous: bool = True,
              window: Optional[int] = None) -> List[Tuple[int, int]]:
        """Allocate ``nblocks``; returns [(start, length), ...] extents.

        Next-fit with a goal cursor: tries one contiguous (optionally
        aligned) extent within a bounded window around the cursor,
        then falls back to stitching together whatever extents follow.
        On a fresh image the cursor sits in one giant aligned extent,
        so large files get full huge-page coverage; on an aged image
        coverage becomes a partial, position-dependent mix — exactly
        the non-determinism the paper reports (§III, Fig. 1a).
        """
        if nblocks <= 0:
            raise ValueError("nblocks must be positive")
        if nblocks > self.free_blocks:
            raise NoSpaceError(
                f"need {nblocks} blocks, {self.free_blocks} free")

        if prefer_contiguous:
            got = self._alloc_contiguous(
                nblocks, align, window or BlockDevice.GOAL_WINDOW)
            if got is not None:
                return [got]

        # Piecewise: consume extents from the cursor onward.
        result: List[Tuple[int, int]] = []
        remaining = nblocks
        while remaining > 0:
            if not self._free:
                for start, length in result:
                    self._insert_free(start, length)
                raise NoSpaceError("allocator inconsistency")
            i = self._cursor % len(self._free)
            extent = self._free[i]
            take = min(remaining, extent.length)
            result.append((extent.start, take))
            self._carve(i, extent.start, take)
            remaining -= take
        self.allocations += 1
        self.free_blocks -= nblocks
        return result

    def _alloc_contiguous(self, nblocks: int, align: int,
                          window: int) -> Optional[Tuple[int, int]]:
        """Next-fit search for one aligned run, bounded by ``window``."""
        count = len(self._free)
        if count == 0:
            return None
        full_scan = window >= count
        if full_scan and (nblocks, align) in self._contig_fail_hint:
            return None
        i = self._cursor % count
        for _ in range(min(window, count)):
            extent = self._free[i]
            aligned_start = -(-extent.start // align) * align
            waste = aligned_start - extent.start
            if extent.length - waste >= nblocks:
                self._carve(i, aligned_start, nblocks)
                self._cursor = i
                self.allocations += 1
                self.free_blocks -= nblocks
                return (aligned_start, nblocks)
            i = (i + 1) % count
        self._cursor = i
        if full_scan:
            self._contig_fail_hint.add((nblocks, align))
        return None

    def _carve(self, index: int, start: int, length: int) -> None:
        """Remove [start, start+length) from the free extent at index."""
        extent = self._free[index]
        before = start - extent.start
        after = extent.end - (start + length)
        del self._free[index]
        del self._starts[index]
        if before > 0:
            self._insert_free(extent.start, before)
        if after > 0:
            self._insert_free(start + length, after)

    # -- freeing ------------------------------------------------------------
    def free(self, start: int, length: int) -> None:
        """Return a run of blocks, coalescing with neighbours.

        Quarantined blocks inside the run stay retired: the run is
        split around them and only the healthy sub-runs come back.
        """
        if length <= 0:
            raise ValueError("length must be positive")
        retired = sorted(b for b in self.quarantined
                         if start <= b < start + length)
        if retired:
            cursor = start
            for block in retired:
                if block > cursor:
                    self._insert_free(cursor, block - cursor,
                                      coalesce=True)
                cursor = block + 1
            if start + length > cursor:
                self._insert_free(cursor, start + length - cursor,
                                  coalesce=True)
            self.free_blocks += length - len(retired)
        else:
            self._insert_free(start, length, coalesce=True)
            self.free_blocks += length
        self.frees += 1
        self._contig_fail_hint.clear()

    def _insert_free(self, start: int, length: int,
                     coalesce: bool = False) -> None:
        idx = bisect.bisect_left(self._starts, start)
        if coalesce:
            # Merge with predecessor?
            if idx > 0 and self._free[idx - 1].end == start:
                prev = self._free[idx - 1]
                prev.length += length
                # Merge with successor too?
                if idx < len(self._free) and self._free[idx].start == prev.end:
                    prev.length += self._free[idx].length
                    del self._free[idx]
                    del self._starts[idx]
                return
            # Merge with successor?
            if idx < len(self._free) and self._free[idx].start == start + length:
                nxt = self._free[idx]
                del self._starts[idx]
                nxt.start = start
                nxt.length += length
                self._starts.insert(idx, start)
                return
        self._free.insert(idx, FreeExtent(start, length))
        self._starts.insert(idx, start)

    def free_overlap(self, start: int, length: int) -> int:
        """How many blocks of ``[start, start+length)`` are free.

        Zero for any run a live extent references — the crash recovery
        checker uses this to assert block bitmaps stay consistent with
        the extent trees.
        """
        end = start + length
        idx = max(bisect.bisect_right(self._starts, start) - 1, 0)
        overlap = 0
        while idx < len(self._free) and self._free[idx].start < end:
            extent = self._free[idx]
            overlap += max(0, min(extent.end, end) - max(extent.start, start))
            idx += 1
        return overlap

    # -- fragmentation metrics ----------------------------------------------
    def free_extent_count(self) -> int:
        return len(self._free)

    def largest_free_extent(self) -> int:
        return max((e.length for e in self._free), default=0)

    def huge_capable_free_blocks(self) -> int:
        """Free blocks inside 2 MB-aligned, 2 MB-sized free runs."""
        total = 0
        for extent in self._free:
            aligned = -(-extent.start // BLOCKS_PER_PMD) * BLOCKS_PER_PMD
            usable = extent.end - aligned
            if usable >= BLOCKS_PER_PMD:
                total += (usable // BLOCKS_PER_PMD) * BLOCKS_PER_PMD
        return total

    def huge_coverage_potential(self) -> float:
        """Fraction of free space allocatable as aligned 2 MB chunks."""
        if self.free_blocks == 0:
            return 0.0
        return self.huge_capable_free_blocks() / self.free_blocks

    def check_invariants(self) -> None:
        """Validate allocator bookkeeping (used by property tests)."""
        total = 0
        prev_end = -1
        for extent, start in zip(self._free, self._starts):
            assert extent.start == start
            assert extent.length > 0
            assert extent.start > prev_end, "overlapping/uncoalesced extents"
            assert extent.end <= self.total_blocks
            prev_end = extent.end - 1
            total += extent.length
        assert total == self.free_blocks
        for block in self.quarantined:
            assert self.free_overlap(block, 1) == 0, \
                f"quarantined block {block} returned to the free pool"
