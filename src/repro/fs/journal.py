"""A jbd2-style journal cost model for ext4-DAX metadata updates.

Two commit flavours matter for the paper's results:

* **Batched (asynchronous) commits** — ordinary metadata updates join
  the running transaction; the commit cost is amortised over every
  operation that joined it, so the per-operation overhead is small.

* **Synchronous commits** — the ext4 ``MAP_SYNC`` write-fault path must
  flush the allocating metadata *before* returning to user space, so
  each such fault pays a full commit.  On an aged image these faults
  are per-4 KB-page and their commit cost is the dominant reason
  default mmap collapses in Fig. 9c; DaxVM's 2 MB-granularity tracking
  divides their frequency by up to 512.

A commit record is a real PMem write, not just latency: synchronous
commits book :data:`COMMIT_RECORD_BYTES` against the device's shared
write-bandwidth pool, so journal traffic is visible to bandwidth
interference like every other store.

When the owning file system has a :class:`~repro.crash.PersistenceDomain`
attached, commits also seal the domain's open metadata transaction —
flush, commit record, fence — which is where crash-point exploration
gets its jbd2 ordering from.
"""

from __future__ import annotations

from typing import Optional

from repro.config import CostModel
from repro.obs import Counter, CostDomain, charge
from repro.sim.stats import Stats

#: One journal block plus descriptor — what a commit physically writes.
COMMIT_RECORD_BYTES = 8 << 10


class Journal:
    """Transaction cost accounting for a journaling file system."""

    #: Metadata updates amortised into one running-transaction commit.
    BATCH_FACTOR = 32

    def __init__(self, costs: CostModel, stats: Stats, fs: Optional[object] = None):
        self.costs = costs
        self.stats = stats
        self.fs = fs
        self.sync_commits = 0
        self.batched_updates = 0
        #: Test-only fault fixture: seal transactions without flushing or
        #: fencing the commit record while acknowledging them anyway —
        #: the ordering bug the crash RecoveryChecker must catch.
        self.skip_commit_fence = False

    @property
    def _domain(self):
        return self.fs.persistence if self.fs is not None else None

    def metadata_update(self):
        """Join the running transaction (amortised commit share)."""
        self.batched_updates += 1
        self.stats.add(Counter.JOURNAL_BATCHED_UPDATES)
        yield charge(CostDomain.JOURNAL, "batched-commit",
                     self.costs.journal_commit / Journal.BATCH_FACTOR)
        domain = self._domain
        if (domain is not None
                and self.batched_updates % Journal.BATCH_FACTOR == 0):
            domain.commit_metadata(acked=False,
                                   skip_fence=self.skip_commit_fence)

    def commit_sync(self):
        """Force the running transaction to commit synchronously."""
        self.sync_commits += 1
        self.stats.add(Counter.JOURNAL_SYNC_COMMITS)
        cost = self.costs.journal_commit
        if self.fs is not None:
            # The commit record contends for device write bandwidth; a
            # saturated pool stretches the commit past its base latency.
            cost = max(cost, self.fs._device_wait(0, COMMIT_RECORD_BYTES))
        yield charge(CostDomain.JOURNAL, "sync-commit", cost)
        domain = self._domain
        if domain is not None:
            domain.commit_metadata(acked=True,
                                   skip_fence=self.skip_commit_fence)
