"""A jbd2-style journal cost model for ext4-DAX metadata updates.

Two commit flavours matter for the paper's results:

* **Batched (asynchronous) commits** — ordinary metadata updates join
  the running transaction; the commit cost is amortised over every
  operation that joined it, so the per-operation overhead is small.

* **Synchronous commits** — the ext4 ``MAP_SYNC`` write-fault path must
  flush the allocating metadata *before* returning to user space, so
  each such fault pays a full commit.  On an aged image these faults
  are per-4 KB-page and their commit cost is the dominant reason
  default mmap collapses in Fig. 9c; DaxVM's 2 MB-granularity tracking
  divides their frequency by up to 512.
"""

from __future__ import annotations

from repro.config import CostModel
from repro.obs import Counter, CostDomain, charge
from repro.sim.stats import Stats


class Journal:
    """Transaction cost accounting for a journaling file system."""

    #: Metadata updates amortised into one running-transaction commit.
    BATCH_FACTOR = 32

    def __init__(self, costs: CostModel, stats: Stats):
        self.costs = costs
        self.stats = stats
        self.sync_commits = 0
        self.batched_updates = 0

    def metadata_update(self):
        """Join the running transaction (amortised commit share)."""
        self.batched_updates += 1
        self.stats.add(Counter.JOURNAL_BATCHED_UPDATES)
        yield charge(CostDomain.JOURNAL, "batched-commit",
                     self.costs.journal_commit / Journal.BATCH_FACTOR)

    def commit_sync(self):
        """Force the running transaction to commit synchronously."""
        self.sync_commits += 1
        self.stats.add(Counter.JOURNAL_SYNC_COMMITS)
        yield charge(CostDomain.JOURNAL, "sync-commit",
                     self.costs.journal_commit)
