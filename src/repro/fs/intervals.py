"""A sorted, coalescing integer interval set.

Used by the block device to track which free blocks are already zeroed
(DaxVM's asynchronous pre-zeroing, §IV-E) and by tests as a reference
structure.  Intervals are half-open ``[start, end)`` over integers.
"""

from __future__ import annotations

import bisect
from typing import Iterator, List, Tuple


class IntervalSet:
    """Non-overlapping, sorted, auto-coalescing intervals."""

    def __init__(self) -> None:
        self._starts: List[int] = []
        self._ends: List[int] = []

    def __len__(self) -> int:
        return len(self._starts)

    def __iter__(self) -> Iterator[Tuple[int, int]]:
        return iter(zip(self._starts, self._ends))

    @property
    def total(self) -> int:
        """Total integers covered."""
        return sum(e - s for s, e in self)

    # -- mutation -----------------------------------------------------------
    def add(self, start: int, end: int) -> None:
        """Insert [start, end), merging any overlapping intervals."""
        if start >= end:
            return
        i = bisect.bisect_left(self._ends, start)
        j = bisect.bisect_right(self._starts, end)
        if i < j:
            start = min(start, self._starts[i])
            end = max(end, self._ends[j - 1])
        del self._starts[i:j]
        del self._ends[i:j]
        self._starts.insert(i, start)
        self._ends.insert(i, end)

    def remove(self, start: int, end: int) -> int:
        """Delete [start, end); returns how many integers were removed."""
        if start >= end:
            return 0
        removed = 0
        i = bisect.bisect_left(self._ends, start + 1)
        new_starts: List[int] = []
        new_ends: List[int] = []
        j = i
        while j < len(self._starts) and self._starts[j] < end:
            s, e = self._starts[j], self._ends[j]
            overlap_start = max(s, start)
            overlap_end = min(e, end)
            if overlap_start < overlap_end:
                removed += overlap_end - overlap_start
                if s < overlap_start:
                    new_starts.append(s)
                    new_ends.append(overlap_start)
                if overlap_end < e:
                    new_starts.append(overlap_end)
                    new_ends.append(e)
            else:
                new_starts.append(s)
                new_ends.append(e)
            j += 1
        self._starts[i:j] = new_starts
        self._ends[i:j] = new_ends
        return removed

    # -- queries -----------------------------------------------------------
    def overlap(self, start: int, end: int) -> int:
        """How many integers of [start, end) are covered."""
        if start >= end:
            return 0
        covered = 0
        i = bisect.bisect_left(self._ends, start + 1)
        while i < len(self._starts) and self._starts[i] < end:
            covered += (min(self._ends[i], end)
                        - max(self._starts[i], start))
            i += 1
        return covered

    def contains(self, point: int) -> bool:
        return self.overlap(point, point + 1) == 1

    def check_invariants(self) -> None:
        prev_end = None
        for s, e in self:
            assert s < e, "empty interval stored"
            if prev_end is not None:
                assert s > prev_end, "overlapping or adjacent intervals"
            prev_end = e
