"""xfs-DAX: the third file system the paper names as a DaxVM target.

§IV: "DaxVM primarily targets DAX-aware file systems that relax data
operation atomicity for performance (e.g., NOVA relaxed, xfs-DAX)".
The traits that matter, between ext4's conservatism and NOVA's
PMem-native design:

* journaling metadata (like ext4), so a MAP_SYNC write fault over
  freshly allocated blocks still forces a synchronous log commit;
* **no zeroing on the write syscall path**: XFS tracks fresh
  allocations as *unwritten extents* — reads of never-written ranges
  return zeros from metadata, so the data path never memsets;
* fallocate for DAX mmap must still zero (an mmap store cannot flip
  the unwritten bit page by page), so MM appends pay the double-write
  DaxVM's pre-zeroing removes.
"""

from __future__ import annotations

from repro.config import CostModel
from repro.fs.base import FileSystem
from repro.fs.block import BlockDevice
from repro.fs.journal import Journal
from repro.fs.vfs import VFS
from repro.mem.latency import MemoryModel
from repro.sim.stats import Stats


class XfsDax(FileSystem):
    """XFS mounted with ``-o dax``."""

    name = "xfs-dax"
    zeroes_on_write_path = False   # unwritten-extent tracking
    zeroes_on_fallocate = True     # required for secure DAX mmap
    mapsync_needs_commit = True    # journaled allocation metadata

    def __init__(self, device: BlockDevice, vfs: VFS, costs: CostModel,
                 mem: MemoryModel, stats: Stats):
        super().__init__(device, vfs, costs, mem, stats)
        self.journal = Journal(costs, stats, fs=self)

    def _metadata_update(self):
        yield from self.journal.metadata_update()

    def _commit_sync(self):
        yield from self.journal.commit_sync()
