"""Repetitive access over one large file (paper Figs. 1c and 5).

The database idiom: map (or open) a big file once, then issue millions
of small reads/overwrites — sequential or random — using ``memcpy``
with AVX-512 loads and nt-stores.  System calls pay a crossing per op;
mappings pay demand faults, dirty-tracking faults and TLB misses, with
the leaf-medium of the page tables (Table II) setting the TLB price.
"""

from __future__ import annotations

import itertools
import random
from dataclasses import dataclass, field

from repro.analysis.results import RunResult
from repro.paging.tlb import AccessPattern
from repro.system import Process, System
from repro.vm.vma import MapFlags, Protection
from repro.workloads.common import DaxVMOptions, Interface, Measurement
from repro.workloads.filegen import create_files

_run_counter = itertools.count()


@dataclass
class RepetitiveConfig:
    """One repetitive-access experiment."""

    #: Scaled stand-in for the paper's 100 GB file.
    file_size: int = 1 << 30
    op_size: int = 4096
    num_ops: int = 20000
    pattern: AccessPattern = AccessPattern.SEQUENTIAL
    write: bool = False
    interface: Interface = Interface.READ
    daxvm: DaxVMOptions = field(default_factory=lambda: DaxVMOptions(
        ephemeral=False, unmap_async=False))
    #: Run the DaxVM MMU monitor every N ops (0 = off); on irregular
    #: access it migrates persistent file tables to DRAM (§IV-A1).
    monitor_every: int = 0
    seed: int = 42


def _offsets(cfg: RepetitiveConfig):
    """The op offset stream (aligned to op size)."""
    slots = max(1, cfg.file_size // cfg.op_size)
    if cfg.pattern is AccessPattern.SEQUENTIAL:
        for i in range(cfg.num_ops):
            yield (i % slots) * cfg.op_size
    else:
        rng = random.Random(cfg.seed)
        for _ in range(cfg.num_ops):
            yield rng.randrange(slots) * cfg.op_size


def _syscall_worker(system: System, cfg: RepetitiveConfig, path: str):
    f = yield from system.fs.open(path)
    rand = cfg.pattern is AccessPattern.RANDOM
    for offset in _offsets(cfg):
        if cfg.write:
            yield from system.fs.write(f, offset, cfg.op_size)
        else:
            yield from system.fs.read(f, offset, cfg.op_size,
                                      random_access=rand)
    yield from system.fs.close(f)


def _mapped_worker(system: System, process: Process, cfg: RepetitiveConfig,
                   path: str):
    f = yield from system.fs.open(path)
    prot = Protection.rw() if cfg.write else Protection.READ
    if cfg.interface is Interface.DAXVM:
        vma = yield from process.daxvm.mmap(
            f.inode, 0, cfg.file_size, prot, cfg.daxvm.flags(cfg.write))
        base = vma.user_addr - vma.start
    else:
        flags = MapFlags.SHARED
        if cfg.interface is Interface.MMAP_POPULATE:
            flags |= MapFlags.POPULATE
        vma = yield from process.mm.mmap(system.fs, f.inode, 0,
                                         cfg.file_size, prot, flags)
        base = 0
    for i, offset in enumerate(_offsets(cfg)):
        yield from process.mm.access(
            vma, base + offset, cfg.op_size, write=cfg.write,
            pattern=cfg.pattern, copy=True, ntstore=True)
        if cfg.monitor_every and (i + 1) % cfg.monitor_every == 0 \
                and process.daxvm is not None:
            yield from process.daxvm.monitor_check([vma])
    if cfg.interface is Interface.DAXVM:
        yield from process.daxvm.munmap(vma)
    else:
        yield from process.mm.munmap(vma)
    yield from system.fs.close(f)


def run_repetitive(system: System, cfg: RepetitiveConfig) -> RunResult:
    """Create the big file, then measure the op phase."""
    run_id = next(_run_counter)
    process = system.new_process(f"rep{run_id}")
    if cfg.interface is Interface.DAXVM and process.daxvm is None:
        system.daxvm_for(process)
    inodes = create_files(system, [cfg.file_size], prefix=f"/rep{run_id}")
    path = inodes[0].path

    measure = Measurement(system)
    measure.start()
    if cfg.interface is Interface.READ:
        system.spawn(_syscall_worker(system, cfg, path), core=0,
                     name="rep-syscall", process=process)
    else:
        system.spawn(_mapped_worker(system, process, cfg, path), core=0,
                     name="rep-mapped", process=process)
    system.run()
    mode = "write" if cfg.write else "read"
    label = f"{cfg.interface.value}-{mode}-{cfg.pattern.value}"
    return measure.finish(label, operations=cfg.num_ops,
                          bytes_processed=cfg.num_ops * cfg.op_size)


__all__ = ["RepetitiveConfig", "run_repetitive"]
