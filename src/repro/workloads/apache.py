"""Apache webserver model (paper Figs. 8a and 8b).

Apache's ``mpm_event`` workers serve a static page per request by
memory-mapping the file, copying its content into the socket, and
unmapping — a mmap/munmap pair per request, which is what flattens its
scaling on default DAX-mmap.  With ``read()`` the page is copied twice
(PMem -> user buffer -> socket) but no VM locks are taken.

The model serves ``requests`` HTTP requests across ``num_workers``
workers — threads of one process by default, or one process per worker
(``multiprocess=True``, the paper's multi-processing discussion) —
from a pool of same-sized webpages, hot in the inode cache as on a
real server.
"""

from __future__ import annotations

import enum
import itertools
from dataclasses import dataclass, field
from typing import List, Optional

from repro.analysis.results import RunResult
from repro.baselines.latr import LatrUnmapper
from repro.mem.physmem import Medium
from repro.obs import CostDomain, charge
from repro.system import Process, System
from repro.vm.vma import MapFlags, Protection
from repro.workloads.common import DaxVMOptions, Measurement, spread
from repro.workloads.filegen import create_file_set

_run_counter = itertools.count()


class ServerInterface(enum.Enum):
    READ = "read"
    MMAP = "mmap"
    MMAP_POPULATE = "populate"
    #: MAP_POPULATE + LATR lazy shootdowns (the Fig. 8a comparison).
    MMAP_LATR = "latr"
    #: MAP_POPULATE + DaxVM's batched asynchronous unmapping alone
    #: (no O(1) mmap) — the configuration the paper reports beating
    #: LATR by ~12 %.
    MMAP_ASYNC = "mmap+async"
    DAXVM = "daxvm"


@dataclass
class ApacheConfig:
    page_size: int = 32 << 10
    #: Distinct webpages served round-robin (the paper uses several to
    #: avoid serving from a hot processor cache).
    num_pages: int = 96
    num_workers: int = 1
    requests: int = 2000
    interface: ServerInterface = ServerInterface.READ
    daxvm: DaxVMOptions = field(default_factory=DaxVMOptions.full)
    #: One process per worker instead of one multithreaded process.
    multiprocess: bool = False
    #: Zombie batch level for DaxVM async unmapping (§V-C ablation).
    batch_pages: Optional[int] = None
    #: Per-request CPU work outside file access: HTTP parsing, socket
    #: syscalls, connection handling (~20 us — the reason a webserver
    #: is CPU-bound rather than PMem-bandwidth-bound at 16 cores).
    request_overhead_cycles: float = 55_000.0
    #: Network-stack per-byte work (skb handling, checksums) paid by
    #: every interface when pushing the page into the socket.
    socket_cycles_per_byte: float = 0.5


def _serve_request(system: System, process: Process, cfg: ApacheConfig,
                   path: str, latr: Optional[LatrUnmapper],
                   async_unmapper=None):
    """One HTTP request: fetch the page, push it to the socket."""
    iface = cfg.interface
    span = system.trace.span("apache.request")
    span.__enter__()
    yield charge(CostDomain.USERSPACE, "http-handling",
                 cfg.request_overhead_cycles
                 + cfg.page_size * cfg.socket_cycles_per_byte)
    f = yield from system.fs.open(path)
    if iface is ServerInterface.READ:
        # Copy 1: PMem -> user buffer (kernel).  Copy 2: buffer ->
        # socket (from the cache).
        yield from system.fs.read(f, 0, cfg.page_size)
        yield charge(CostDomain.USERSPACE, "socket-copy",
                     system.mem.memcpy(cfg.page_size, Medium.DRAM,
                                       Medium.DRAM))
    elif iface is ServerInterface.DAXVM:
        vma = yield from process.daxvm.mmap(
            f.inode, 0, cfg.page_size, Protection.READ,
            cfg.daxvm.flags())
        yield from process.mm.access(vma, vma.user_addr - vma.start,
                                     cfg.page_size, copy=True)
        yield from process.daxvm.munmap(vma)
    else:
        flags = MapFlags.SHARED
        if iface in (ServerInterface.MMAP_POPULATE,
                     ServerInterface.MMAP_LATR,
                     ServerInterface.MMAP_ASYNC):
            flags |= MapFlags.POPULATE
        vma = yield from process.mm.mmap(system.fs, f.inode, 0,
                                         cfg.page_size, Protection.READ,
                                         flags)
        yield from process.mm.access(vma, 0, cfg.page_size, copy=True)
        if iface is ServerInterface.MMAP_LATR:
            yield from latr.munmap(vma)
        elif iface is ServerInterface.MMAP_ASYNC:
            vma.mapped_pages = len(vma.populated) + 512 * len(
                vma.huge_regions)
            yield from async_unmapper.defer(
                vma, _regular_releaser(process))
        else:
            yield from process.mm.munmap(vma)
    yield from system.fs.close(f)
    span.__exit__(None, None, None)


def _regular_releaser(process: Process):
    """Virtual-address release for deferred regular (mm_rb) VMAs."""
    def release(vma):
        yield from process.mm.mmap_sem.acquire_write()
        process.mm.vmas.delete(vma.start)
        process.mm.layout.free(vma.start, vma.length)
        yield from process.mm.mmap_sem.release_write()
    return release


def _worker(system: System, process: Process, cfg: ApacheConfig,
            paths: List[str], worker_id: int, count: int,
            latr: Optional[LatrUnmapper], async_unmapper=None):
    for i in range(count):
        path = paths[(worker_id * 31 + i) % len(paths)]
        yield from _serve_request(system, process, cfg, path, latr,
                                  async_unmapper)


def run_apache(system: System, cfg: ApacheConfig) -> RunResult:
    """Create the page set, warm it, then measure request serving."""
    run_id = next(_run_counter)
    inodes = create_file_set(system, cfg.num_pages, cfg.page_size,
                             prefix=f"/htdocs{run_id}")
    paths = [inode.path for inode in inodes]

    processes: List[Process] = []
    if cfg.multiprocess:
        for w in range(cfg.num_workers):
            processes.append(system.new_process(f"apache{run_id}.{w}"))
    else:
        processes = [system.new_process(f"apache{run_id}")] \
            * cfg.num_workers

    unique = []
    for process in processes:
        if process not in unique:
            unique.append(process)
    for process in unique:
        if cfg.interface is ServerInterface.DAXVM and process.daxvm is None:
            system.daxvm_for(process, batch_pages=cfg.batch_pages)

    latr_by_process = {}
    if cfg.interface is ServerInterface.MMAP_LATR:
        for process in unique:
            latr_by_process[id(process)] = LatrUnmapper(
                system.engine, process.mm, system.costs, system.stats)
    async_by_process = {}
    if cfg.interface is ServerInterface.MMAP_ASYNC:
        from repro.core.async_unmap import AsyncUnmapper
        for process in unique:
            async_by_process[id(process)] = AsyncUnmapper(
                system.engine, process.mm, system.costs, system.stats,
                cfg.batch_pages)

    shard = spread(cfg.requests, cfg.num_workers)
    measure = Measurement(system)
    measure.start()
    for w in range(cfg.num_workers):
        process = processes[w]
        latr = latr_by_process.get(id(process))
        aunmap = async_by_process.get(id(process))
        system.spawn(
            _worker(system, process, cfg, paths, w, shard[w], latr,
                    aunmap),
            core=w, name=f"apache-w{w}", process=process)
    system.run()
    label = (cfg.interface.value if cfg.interface is not ServerInterface.DAXVM
             else f"daxvm[{cfg.daxvm!r}]")
    return measure.finish(label, operations=cfg.requests,
                          bytes_processed=cfg.requests * cfg.page_size)


__all__ = ["ApacheConfig", "ServerInterface", "run_apache"]
