"""A Pmem-RocksDB-like key-value store (paper Fig. 9c substrate).

Intel's Pmem-RocksDB places write-ahead logs and SSTables on PMem,
memory-maps them, and writes with nt-stores, managing durability from
user space (no msync).  The model reproduces the parts that the
paper's evaluation exercises:

* an in-DRAM **memtable** absorbing puts;
* a mapped **WAL**: every put appends one record with nt-stores; full
  WALs are rolled, and files are **recycled** to avoid fresh block
  allocation (and hence zeroing) where possible;
* **SSTables**: memtable flushes allocate (fallocate → zeroing policy
  applies), map and sequentially write a new SSTable, which stays
  mapped to serve reads;
* reads check the memtable, then fetch a random 4 KB record from a
  mapped SSTable.

Interfaces: baseline mmap uses MAP_SYNC (required for safe user-space
durability on ext4 — the source of the per-page synchronous journal
commits that dominate Fig. 9c on an aged image), optionally with
MAP_POPULATE; DaxVM tracks at 2 MB (10x fewer faults) and optionally
drops tracking entirely (nosync).
"""

from __future__ import annotations

import itertools
import random
from dataclasses import dataclass, field
from typing import List, Optional, Tuple

from repro.fs.vfs import DaxFile
from repro.mem.physmem import Medium
from repro.obs import CostDomain, charge
from repro.paging.tlb import AccessPattern
from repro.system import Process, System
from repro.vm.vma import MapFlags, Protection, VMA
from repro.workloads.common import DaxVMOptions, Interface

_store_counter = itertools.count()


@dataclass
class KVConfig:
    record_size: int = 4096
    memtable_limit: int = 8 << 20
    #: One memtable flush fills one SSTable.
    sstable_size: int = 8 << 20
    wal_size: int = 8 << 20
    interface: Interface = Interface.MMAP
    daxvm: DaxVMOptions = field(default_factory=lambda: DaxVMOptions(
        ephemeral=False, unmap_async=False))
    #: Recycle rolled WAL files (Pmem-RocksDB behaviour).
    recycle: bool = True
    seed: int = 5


class PmemKVStore:
    """One store instance bound to a process."""

    def __init__(self, system: System, process: Process, cfg: KVConfig):
        self.system = system
        self.process = process
        self.cfg = cfg
        self.root = f"/kv{next(_store_counter)}"
        self.rng = random.Random(cfg.seed)
        self.memtable_bytes = 0
        self.record_count = 0
        self.sstables: List[Tuple[DaxFile, VMA]] = []
        self.wal: Optional[Tuple[DaxFile, VMA]] = None
        self.wal_offset = 0
        self._wal_pool: List[DaxFile] = []
        self._file_seq = 0
        self.flushes = 0
        self.wal_rolls = 0

    # -- mapping helpers -------------------------------------------------
    def _map(self, f: DaxFile, size: int):
        cfg = self.cfg
        if cfg.interface is Interface.DAXVM:
            vma = yield from self.process.daxvm.mmap(
                f.inode, 0, size, Protection.rw(),
                cfg.daxvm.flags(write=True))
        else:
            flags = MapFlags.SHARED | MapFlags.SYNC
            if cfg.interface is Interface.MMAP_POPULATE:
                flags |= MapFlags.POPULATE
            vma = yield from self.process.mm.mmap(
                self.system.fs, f.inode, 0, size, Protection.rw(), flags)
        return vma

    def _unmap(self, vma: VMA):
        if self.cfg.interface is Interface.DAXVM:
            yield from self.process.daxvm.munmap(vma)
        else:
            yield from self.process.mm.munmap(vma)

    def _base(self, vma: VMA) -> int:
        return getattr(vma, "user_addr", vma.start) - vma.start

    # -- lifecycle -----------------------------------------------------------
    def start(self):
        yield from self._roll_wal()

    def _new_file(self, kind: str, size: int):
        self._file_seq += 1
        path = f"{self.root}/{kind}{self._file_seq:05d}"
        f = yield from self.system.fs.open(path, create=True)
        yield from self.system.fs.fallocate(f, size)
        return f

    def _roll_wal(self):
        if self.wal is not None:
            f, vma = self.wal
            yield from self._unmap(vma)
            if self.cfg.recycle:
                self._wal_pool.append(f)
            self.wal_rolls += 1
        if self._wal_pool:
            f = self._wal_pool.pop()
        else:
            f = yield from self._new_file("wal", self.cfg.wal_size)
        vma = yield from self._map(f, self.cfg.wal_size)
        self.wal = (f, vma)
        self.wal_offset = 0

    # -- operations ---------------------------------------------------------
    def put(self, hot: bool = False):
        """Insert/update one record."""
        cfg = self.cfg
        if self.wal_offset + cfg.record_size > cfg.wal_size:
            yield from self._roll_wal()
        _f, wal_vma = self.wal
        yield from self.process.mm.access(
            wal_vma, self._base(wal_vma) + self.wal_offset,
            cfg.record_size, write=True,
            pattern=AccessPattern.SEQUENTIAL, ntstore=True)
        self.wal_offset += cfg.record_size
        # Memtable insert: skiplist walk + record copy in DRAM.
        yield charge(CostDomain.USERSPACE, "memtable-insert",
                     900.0 + self.system.mem.memcpy(
                         cfg.record_size, Medium.DRAM, Medium.DRAM))
        self.memtable_bytes += cfg.record_size
        self.record_count += 1
        if self.memtable_bytes >= cfg.memtable_limit:
            yield from self.flush_memtable()

    def flush_memtable(self):
        """Write the memtable out as a new mapped SSTable."""
        cfg = self.cfg
        f = yield from self._new_file("sst", cfg.sstable_size)
        vma = yield from self._map(f, cfg.sstable_size)
        yield from self.process.mm.access(
            vma, self._base(vma), self.memtable_bytes, write=True,
            pattern=AccessPattern.SEQUENTIAL, ntstore=True)
        self.sstables.append((f, vma))
        self.memtable_bytes = 0
        self.flushes += 1

    def get(self):
        """Point read of one record."""
        cfg = self.cfg
        # Memtable probe.
        yield charge(CostDomain.USERSPACE, "memtable-probe", 600.0)
        total = max(self.record_count, 1)
        memtable_records = self.memtable_bytes // cfg.record_size
        if self.rng.random() < memtable_records / total or \
                not self.sstables:
            yield charge(CostDomain.USERSPACE, "memtable-copy",
                         self.system.mem.memcpy(
                             cfg.record_size, Medium.DRAM, Medium.DRAM))
            return
        _f, vma = self.rng.choice(self.sstables)
        slots = cfg.sstable_size // cfg.record_size
        offset = self.rng.randrange(slots) * cfg.record_size
        # Index block lookup + record copy out.
        yield charge(CostDomain.USERSPACE, "index-lookup", 1200.0)
        yield from self.process.mm.access(
            vma, self._base(vma) + offset, cfg.record_size,
            pattern=AccessPattern.RANDOM, copy=True)

    def scan(self, records: int = 8):
        """Range scan: sequential records from a random position."""
        cfg = self.cfg
        if not self.sstables:
            yield from self.get()
            return
        _f, vma = self.rng.choice(self.sstables)
        slots = cfg.sstable_size // cfg.record_size
        start = self.rng.randrange(max(1, slots - records))
        yield charge(CostDomain.USERSPACE, "index-lookup", 1200.0)
        yield from self.process.mm.access(
            vma, self._base(vma) + start * cfg.record_size,
            records * cfg.record_size,
            pattern=AccessPattern.SEQUENTIAL, copy=True)

    def read_modify_write(self):
        yield from self.get()
        yield from self.put()


__all__ = ["KVConfig", "PmemKVStore"]
