"""P-Redis boot/availability experiment (paper Fig. 9b).

P-Redis keeps its key-value cache and index hash table in PMem files.
On restart the server maps both and serves gets with loads — but with
baseline lazy mmap the first touch of every page faults, so throughput
climbs slowly through a warm-up period; MAP_POPULATE moves all of that
cost to startup (a multi-second boot stall); DaxVM's O(1) attachment
delivers full throughput instantly.

The run records a throughput timeline (windowed ops/s vs time since
boot), which is the exact shape Fig. 9b plots.
"""

from __future__ import annotations

import itertools
import random
from dataclasses import dataclass, field

from repro.analysis.results import RunResult, Series
from repro.paging.tlb import AccessPattern
from repro.obs import CostDomain, charge
from repro.system import Process, System
from repro.vm.vma import MapFlags, Protection
from repro.workloads.common import DaxVMOptions, Interface, Measurement
from repro.workloads.filegen import create_files

_run_counter = itertools.count()


@dataclass
class PRedisConfig:
    """Scaled from the paper's 60 GB cache of 16 KB values."""

    cache_size: int = 1 << 30
    value_size: int = 16 << 10
    index_size: int = 32 << 20
    num_gets: int = 60000
    #: Gets per throughput sample window.
    window: int = 2000
    interface: Interface = Interface.MMAP
    daxvm: DaxVMOptions = field(default_factory=lambda: DaxVMOptions(
        ephemeral=False, unmap_async=False))
    seed: int = 99


@dataclass
class PRedisResult:
    run: RunResult
    #: (seconds since boot, ops/s in window) samples.
    timeline: Series = field(default_factory=lambda: Series("throughput"))
    boot_seconds: float = 0.0


def _server(system: System, process: Process, cfg: PRedisConfig,
            cache_path: str, index_path: str, result: PRedisResult,
            boot_t0: float):
    rng = random.Random(cfg.seed)
    freq = system.costs.machine.freq_hz

    # ---- boot: open and map the cache and index ----------------------
    cache = yield from system.fs.open(cache_path)
    index = yield from system.fs.open(index_path)
    if cfg.interface is Interface.DAXVM:
        cache_vma = yield from process.daxvm.mmap(
            cache.inode, 0, cfg.cache_size, Protection.rw(),
            cfg.daxvm.flags())
        index_vma = yield from process.daxvm.mmap(
            index.inode, 0, cfg.index_size, Protection.rw(),
            cfg.daxvm.flags())
    else:
        flags = MapFlags.SHARED
        if cfg.interface is Interface.MMAP_POPULATE:
            flags |= MapFlags.POPULATE
        cache_vma = yield from process.mm.mmap(
            system.fs, cache.inode, 0, cfg.cache_size, Protection.rw(),
            flags)
        index_vma = yield from process.mm.mmap(
            system.fs, index.inode, 0, cfg.index_size, Protection.rw(),
            flags)
    result.boot_seconds = (system.engine.now - boot_t0) / freq

    # ---- serve gets ------------------------------------------------------
    slots = cfg.cache_size // cfg.value_size
    index_pages = cfg.index_size // 4096
    window_start = system.engine.now
    served = 0
    cache_base = getattr(cache_vma, "user_addr", cache_vma.start) \
        - cache_vma.start
    index_base = getattr(index_vma, "user_addr", index_vma.start) \
        - index_vma.start
    for i in range(cfg.num_gets):
        # Index probe: one random 64 B bucket read.
        bucket_page = rng.randrange(index_pages)
        yield from process.mm.access(
            index_vma, index_base + bucket_page * 4096, 64,
            pattern=AccessPattern.RANDOM)
        # Value fetch: copy the value out to the client buffer.
        slot = rng.randrange(slots)
        yield from process.mm.access(
            cache_vma, cache_base + slot * cfg.value_size,
            cfg.value_size, pattern=AccessPattern.RANDOM, copy=True)
        # Protocol/response handling.
        yield charge(CostDomain.USERSPACE, "protocol-handling", 3000.0)
        served += 1
        if served % cfg.window == 0:
            now = system.engine.now
            ops_s = cfg.window / ((now - window_start) / freq)
            result.timeline.add((now - boot_t0) / freq, ops_s)
            window_start = now
            if cfg.interface is Interface.DAXVM:
                # The MMU monitor's periodic tick (Table III).
                yield from process.daxvm.monitor_check(
                    [cache_vma, index_vma])


def run_predis(system: System, cfg: PRedisConfig) -> PRedisResult:
    run_id = next(_run_counter)
    process = system.new_process(f"predis{run_id}")
    if cfg.interface is Interface.DAXVM and process.daxvm is None:
        system.daxvm_for(process)
    inodes = create_files(system, [cfg.cache_size, cfg.index_size],
                          prefix=f"/predis{run_id}")
    # Server restart: cold caches.
    system.vfs.inode_cache.evict_all()

    result = PRedisResult(run=None)  # type: ignore[arg-type]
    measure = Measurement(system)
    measure.start()
    boot_t0 = system.engine.now
    system.spawn(_server(system, process, cfg, inodes[0].path,
                         inodes[1].path, result, boot_t0),
                 core=0, name="predis-server", process=process)
    system.run()
    result.run = measure.finish(cfg.interface.value,
                                operations=cfg.num_gets,
                                bytes_processed=cfg.num_gets
                                * cfg.value_size)
    return result


__all__ = ["PRedisConfig", "PRedisResult", "run_predis"]
