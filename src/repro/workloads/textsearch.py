"""Text search over a source tree (paper Fig. 9a — ag / Silver Searcher).

``ag`` maps each file, scans it for a pattern, and unmaps it; with
read() it first copies the file into a private buffer.  The file set
mimics the Linux source tree: ~68 K small files plus a few large git
pack files (scaled down, see :func:`repro.workloads.filegen.
linux_tree_sizes`).  Search compute is a per-byte SIMD scan cost on
top of the data movement.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import List

from repro.analysis.results import RunResult
from repro.fs.vfs import Inode
from repro.mem.physmem import Medium
from repro.obs import CostDomain, charge
from repro.system import Process, System
from repro.vm.vma import MapFlags, Protection
from repro.workloads.common import DaxVMOptions, Interface, Measurement
from repro.workloads.filegen import create_files, drop_caches, linux_tree_sizes

_run_counter = itertools.count()

#: SIMD pattern-scan cost per byte, on top of fetching the data.
SEARCH_CYCLES_PER_BYTE = 0.05


@dataclass
class TextSearchConfig:
    num_files: int = 1500
    total_bytes: int = 192 << 20
    num_threads: int = 1
    interface: Interface = Interface.READ
    daxvm: DaxVMOptions = field(default_factory=DaxVMOptions.full)
    seed: int = 7


def _search_one(system: System, process: Process, cfg: TextSearchConfig,
                inode: Inode):
    size = max(inode.size, 1)
    f = yield from system.fs.open(inode.path)
    if cfg.interface is Interface.READ:
        yield from system.fs.read(f, 0, size)
        yield charge(CostDomain.USERSPACE, "pattern-scan",
                     system.mem.stream_read(size, Medium.DRAM, cached=True)
                     + size * SEARCH_CYCLES_PER_BYTE)
    elif cfg.interface is Interface.DAXVM:
        vma = yield from process.daxvm.mmap(f.inode, 0, size,
                                            Protection.READ,
                                            cfg.daxvm.flags())
        yield from process.mm.access(vma, vma.user_addr - vma.start, size)
        yield charge(CostDomain.USERSPACE, "pattern-scan",
                     size * SEARCH_CYCLES_PER_BYTE)
        yield from process.daxvm.munmap(vma)
    else:
        flags = MapFlags.SHARED
        if cfg.interface is Interface.MMAP_POPULATE:
            flags |= MapFlags.POPULATE
        vma = yield from process.mm.mmap(system.fs, f.inode, 0, size,
                                         Protection.READ, flags)
        yield from process.mm.access(vma, 0, size)
        yield charge(CostDomain.USERSPACE, "pattern-scan",
                     size * SEARCH_CYCLES_PER_BYTE)
        yield from process.mm.munmap(vma)
    yield from system.fs.close(f)


def _worker(system: System, process: Process, cfg: TextSearchConfig,
            inodes: List[Inode]):
    for inode in inodes:
        yield from _search_one(system, process, cfg, inode)


def run_textsearch(system: System, cfg: TextSearchConfig) -> RunResult:
    run_id = next(_run_counter)
    process = system.new_process(f"ag{run_id}")
    if cfg.interface is Interface.DAXVM and process.daxvm is None:
        system.daxvm_for(process)
    sizes = linux_tree_sizes(cfg.num_files, seed=cfg.seed,
                             total_bytes=cfg.total_bytes)
    inodes = create_files(system, sizes, prefix=f"/src{run_id}")
    drop_caches(system)

    # Byte-balanced shards (ag uses a work queue; greedy assignment of
    # largest-first gets the same effect without simulating the queue).
    shards: List[List[Inode]] = [[] for _ in range(cfg.num_threads)]
    loads = [0] * cfg.num_threads
    for inode in sorted(inodes, key=lambda i: i.size, reverse=True):
        t = loads.index(min(loads))
        shards[t].append(inode)
        loads[t] += inode.size
    measure = Measurement(system)
    measure.start()
    for t in range(cfg.num_threads):
        system.spawn(_worker(system, process, cfg, shards[t]), core=t,
                     name=f"ag-w{t}", process=process)
    system.run()
    total = sum(sizes)
    return measure.finish(cfg.interface.value, operations=len(inodes),
                          bytes_processed=total)


__all__ = ["TextSearchConfig", "run_textsearch", "SEARCH_CYCLES_PER_BYTE"]
