"""Workload file-set creation and cache manipulation.

File creation runs through the real FS paths (so extents, file tables
and fragmentation are genuine), inside the simulation engine; callers
measure their own phase with :class:`~repro.workloads.common.Measurement`
so setup time never pollutes results.
"""

from __future__ import annotations

import math
import random
from typing import List, Optional, Sequence

from repro.fs.vfs import Inode
from repro.system import System

#: Writes go through the FS in chunks (a creation-time convenience that
#: also mirrors how real file copies behave).
_CHUNK = 4 << 20


def create_files(system: System, sizes: Sequence[int],
                 prefix: str = "/data") -> List[Inode]:
    """Create one file per size entry; returns their inodes.

    Runs inside the engine so allocation, journaling and (DaxVM)
    file-table construction all happen through the simulated paths.
    """
    inodes: List[Inode] = []

    def creator():
        for i, size in enumerate(sizes):
            f = yield from system.fs.open(f"{prefix}/f{i:06d}", create=True)
            written = 0
            while written < size:
                chunk = min(_CHUNK, size - written)
                yield from system.fs.write(f, written, chunk)
                written += chunk
            yield from system.fs.close(f)
            inodes.append(f.inode)

    system.spawn(creator(), core=0, name="filegen")
    system.run()
    return inodes


def create_file_set(system: System, count: int, size: int,
                    prefix: str = "/data") -> List[Inode]:
    """``count`` files of identical ``size``."""
    return create_files(system, [size] * count, prefix=prefix)


def linux_tree_sizes(count: int = 2000, seed: int = 7,
                     total_bytes: Optional[int] = None) -> List[int]:
    """File sizes resembling the Linux source tree (§V-C text search).

    Mostly small source files (median ~6 KB, lognormal) plus a few
    large git-versioning files, optionally scaled to a byte budget.
    """
    rng = random.Random(seed)
    sizes = [max(512, min(int(rng.lognormvariate(math.log(6144), 1.1)),
                          512 << 10))
             for _ in range(count)]
    # A handful of larger files (git packs) — kept to a modest share
    # of total bytes, as in the real tree.
    for _ in range(max(1, count // 500)):
        sizes.append(rng.randrange(2 << 20, 8 << 20))
    if total_bytes is not None:
        scale = total_bytes / sum(sizes)
        sizes = [max(512, int(s * scale)) for s in sizes]
    return sizes


def drop_caches(system: System) -> None:
    """Evict every cached inode (so the next opens are cold), like
    ``echo 2 > /proc/sys/vm/drop_caches``."""
    system.vfs.inode_cache.evict_all()
