"""YCSB driver over the Pmem-RocksDB-like store (paper Fig. 9c).

Standard YCSB mixes: Load phases are pure inserts; A = 50/50
read/update, B = 95/5, C = read-only, D = 95/5 read/insert (latest),
E = 95/5 scan/insert, F = 50/50 read/read-modify-write.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, Tuple

from repro.analysis.results import RunResult
from repro.system import System
from repro.workloads.common import Interface, Measurement
from repro.workloads.kvstore import KVConfig, PmemKVStore

#: (read, update, insert, scan, rmw) fractions per workload.
WORKLOAD_MIXES: Dict[str, Tuple[float, float, float, float, float]] = {
    "load_a": (0.0, 0.0, 1.0, 0.0, 0.0),
    "load_e": (0.0, 0.0, 1.0, 0.0, 0.0),
    "run_a": (0.5, 0.5, 0.0, 0.0, 0.0),
    "run_b": (0.95, 0.05, 0.0, 0.0, 0.0),
    "run_c": (1.0, 0.0, 0.0, 0.0, 0.0),
    "run_d": (0.95, 0.0, 0.05, 0.0, 0.0),
    "run_e": (0.0, 0.0, 0.05, 0.95, 0.0),
    "run_f": (0.5, 0.0, 0.0, 0.0, 0.5),
}


@dataclass
class YCSBConfig:
    workload: str = "load_a"
    num_ops: int = 20000
    #: Records preloaded before a run_* phase (not measured).
    preload_records: int = 20000
    kv: KVConfig = field(default_factory=KVConfig)
    #: Pre-zero all free space before the measured phase (the Fig. 9c
    #: "pre-zero in advance" DaxVM configuration).
    prezero: bool = False
    #: DaxVM MMU-monitor tick interval in ops (0 = off).
    monitor_every: int = 4000
    seed: int = 11


def _op_stream(cfg: YCSBConfig):
    mix = WORKLOAD_MIXES[cfg.workload]
    rng = random.Random(cfg.seed)
    names = ("read", "update", "insert", "scan", "rmw")
    for _ in range(cfg.num_ops):
        x = rng.random()
        acc = 0.0
        for name, frac in zip(names, mix):
            acc += frac
            if x < acc:
                yield name
                break
        else:
            yield "read"


def _driver(store: PmemKVStore, cfg: YCSBConfig):
    yield from store.start()
    if cfg.workload.startswith("run_") and cfg.preload_records:
        for _ in range(cfg.preload_records):
            yield from store.put()


def _measured(store: PmemKVStore, cfg: YCSBConfig):
    daxvm = store.process.daxvm
    for i, op in enumerate(_op_stream(cfg)):
        if op == "read":
            yield from store.get()
        elif op in ("update", "insert"):
            yield from store.put()
        elif op == "scan":
            yield from store.scan()
        else:
            yield from store.read_modify_write()
        if (daxvm is not None and cfg.monitor_every
                and (i + 1) % cfg.monitor_every == 0):
            vmas = [vma for _f, vma in store.sstables]
            if store.wal is not None:
                vmas.append(store.wal[1])
            yield from daxvm.monitor_check(vmas)


def run_ycsb(system: System, cfg: YCSBConfig) -> RunResult:
    """Preload (unmeasured), then run the workload phase."""
    if cfg.workload not in WORKLOAD_MIXES:
        raise ValueError(f"unknown YCSB workload {cfg.workload!r}")
    process = system.new_process(f"ycsb-{cfg.workload}")
    if cfg.kv.interface is Interface.DAXVM and process.daxvm is None:
        dax = system.daxvm_for(process)
        if cfg.prezero:
            dax.prezero.prezero_all_free()
    store = PmemKVStore(system, process, cfg.kv)
    system.spawn(_driver(store, cfg), core=0, name="ycsb-preload",
                 process=process)
    system.run()

    measure = Measurement(system)
    measure.start()
    system.spawn(_measured(store, cfg), core=0, name="ycsb-run",
                 process=process)
    system.run()
    label = f"{cfg.workload}/{cfg.kv.interface.value}"
    return measure.finish(label, operations=cfg.num_ops,
                          bytes_processed=cfg.num_ops
                          * cfg.kv.record_size)


__all__ = ["WORKLOAD_MIXES", "YCSBConfig", "run_ycsb"]
