"""Append microbenchmark (paper Fig. 7, both ext4-DAX and NOVA).

A memory-mapped append must fallocate new blocks — which the FS has to
zero for security — then map and store into them; a write() append
streams nt-stores directly (zeroing only where the FS is conservative,
i.e. ext4).  DaxVM's asynchronous pre-zeroing removes the zeroing from
the MM path; nosync mode removes the dirty-tracking faults on top.
"""

from __future__ import annotations

import enum
import itertools
from dataclasses import dataclass

from repro.analysis.results import RunResult
from repro.paging.tlb import AccessPattern
from repro.system import Process, System
from repro.vm.vma import MapFlags, Protection
from repro.workloads.common import Measurement

_run_counter = itertools.count()


class AppendVariant(enum.Enum):
    WRITE = "write"
    MMAP = "mmap"
    #: File tables + kernel dirty tracking, no pre-zeroing.
    DAXVM = "daxvm"
    DAXVM_PREZERO = "daxvm+prezero"
    DAXVM_PREZERO_NOSYNC = "daxvm+prezero+nosync"


@dataclass
class AppendConfig:
    append_size: int = 256 << 10
    #: Each append lands on its own fresh empty file (single-op
    #: appends, as in the paper), repeated for averaging.
    num_appends: int = 50
    variant: AppendVariant = AppendVariant.WRITE


def _append_once(system: System, process: Process, cfg: AppendConfig,
                 path: str):
    v = cfg.variant
    span = system.trace.span("append")
    span.__enter__()
    f = yield from system.fs.open(path, create=True)
    if v is AppendVariant.WRITE:
        yield from system.fs.write(f, 0, cfg.append_size)
    else:
        yield from system.fs.fallocate(f, cfg.append_size)
        if v is AppendVariant.MMAP:
            vma = yield from process.mm.mmap(
                system.fs, f.inode, 0, cfg.append_size, Protection.rw(),
                MapFlags.SHARED)
            base = 0
        else:
            flags = MapFlags.SHARED | MapFlags.SYNC
            if v is AppendVariant.DAXVM_PREZERO_NOSYNC:
                flags |= MapFlags.NO_MSYNC
            vma = yield from process.daxvm.mmap(
                f.inode, 0, cfg.append_size, Protection.rw(), flags)
            base = vma.user_addr - vma.start
        yield from process.mm.access(
            vma, base, cfg.append_size, write=True,
            pattern=AccessPattern.SEQUENTIAL, ntstore=True)
        if v is AppendVariant.MMAP:
            yield from process.mm.munmap(vma)
        else:
            yield from process.daxvm.munmap(vma)
    yield from system.fs.close(f)
    span.__exit__(None, None, None)


def run_append(system: System, cfg: AppendConfig) -> RunResult:
    run_id = next(_run_counter)
    process = system.new_process(f"app{run_id}")
    uses_daxvm = cfg.variant not in (AppendVariant.WRITE,
                                     AppendVariant.MMAP)
    if uses_daxvm:
        dax = system.daxvm_for(process)
        if cfg.variant in (AppendVariant.DAXVM_PREZERO,
                           AppendVariant.DAXVM_PREZERO_NOSYNC):
            dax.prezero.prezero_all_free()
        else:
            # File tables without pre-zeroing: disable interception so
            # fallocate zeroes synchronously.
            system.fs.free_interceptor = None
            system.fs.zeroed = type(system.fs.zeroed)()

    def worker():
        for i in range(cfg.num_appends):
            yield from _append_once(system, process, cfg,
                                    f"/app{run_id}/f{i}")

    measure = Measurement(system)
    measure.start()
    system.spawn(worker(), core=0, name="append-worker", process=process)
    system.run()
    return measure.finish(cfg.variant.value, operations=cfg.num_appends,
                          bytes_processed=cfg.num_appends * cfg.append_size)


__all__ = ["AppendConfig", "AppendVariant", "run_append"]
