"""The ephemeral (read-once) file-access microbenchmark.

Paper Figs. 1a, 1b and 4: open many files, read each file's content
once (summing it at 8-byte granularity), close it.  With system calls
the data is copied into a private DRAM buffer and processed from the
cache; with memory mapping it is processed in place from PMem, paying
demand faults, TLB misses and unmap shootdowns — unless DaxVM's file
tables, ephemeral heap and asynchronous unmapping remove those costs.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import List

from repro.analysis.results import RunResult
from repro.mem.physmem import Medium
from repro.obs import CostDomain, charge
from repro.system import Process, System
from repro.vm.vma import MapFlags, Protection
from repro.workloads.common import DaxVMOptions, Interface, Measurement, spread
from repro.workloads.filegen import create_file_set, drop_caches

_run_counter = itertools.count()


@dataclass
class EphemeralConfig:
    """One ephemeral-access experiment."""

    file_size: int = 32 << 10
    num_files: int = 1000
    num_threads: int = 1
    interface: Interface = Interface.READ
    daxvm: DaxVMOptions = field(default_factory=DaxVMOptions.full)
    #: Drop the inode cache before measuring (files are opened once,
    #: so cold opens are the realistic condition).
    cold_caches: bool = True
    #: Pin worker threads to one NUMA socket's cores (``None`` keeps
    #: the historical core-per-thread layout; ignored on one node).
    pin_node: "int | None" = None


def _read_one(system: System, path: str, size: int):
    """open + read + process-from-cache + close."""
    f = yield from system.fs.open(path)
    yield from system.fs.read(f, 0, size)
    yield charge(CostDomain.USERSPACE, "stream-process",
                 system.mem.stream_read(size, Medium.DRAM, cached=True))
    yield from system.fs.close(f)


def _mmap_one(system: System, process: Process, path: str, size: int,
              populate: bool):
    flags = MapFlags.SHARED
    if populate:
        flags |= MapFlags.POPULATE
    f = yield from system.fs.open(path)
    vma = yield from process.mm.mmap(system.fs, f.inode, 0, size,
                                     Protection.READ, flags)
    yield from process.mm.access(vma, 0, size)
    yield from process.mm.munmap(vma)
    yield from system.fs.close(f)


def _daxvm_one(system: System, process: Process, path: str, size: int,
               opts: DaxVMOptions):
    f = yield from system.fs.open(path)
    vma = yield from process.daxvm.mmap(f.inode, 0, size,
                                        Protection.READ, opts.flags())
    delta = vma.user_addr - vma.start
    yield from process.mm.access(vma, delta, size)
    yield from process.daxvm.munmap(vma)
    yield from system.fs.close(f)


def _worker(system: System, process: Process, cfg: EphemeralConfig,
            paths: List[str]):
    for path in paths:
        if cfg.interface is Interface.READ:
            yield from _read_one(system, path, cfg.file_size)
        elif cfg.interface is Interface.MMAP:
            yield from _mmap_one(system, process, path, cfg.file_size,
                                 populate=False)
        elif cfg.interface is Interface.MMAP_POPULATE:
            yield from _mmap_one(system, process, path, cfg.file_size,
                                 populate=True)
        else:
            yield from _daxvm_one(system, process, path, cfg.file_size,
                                  cfg.daxvm)


def run_ephemeral(system: System, cfg: EphemeralConfig) -> RunResult:
    """Create the file set, then measure the read-once phase."""
    run_id = next(_run_counter)
    prefix = f"/eph{run_id}"
    process = system.new_process(f"eph{run_id}")
    if cfg.interface is Interface.DAXVM and process.daxvm is None:
        system.daxvm_for(process)

    inodes = create_file_set(system, cfg.num_files, cfg.file_size,
                             prefix=prefix)
    if cfg.cold_caches:
        drop_caches(system)

    paths = [inode.path for inode in inodes]
    shard_sizes = spread(len(paths), cfg.num_threads)
    pinned = (system.topology.cores_of_node(cfg.pin_node)
              if cfg.pin_node is not None
              and system.topology.num_nodes > 1 else None)
    measure = Measurement(system)
    measure.start()
    offset = 0
    for t in range(cfg.num_threads):
        shard = paths[offset:offset + shard_sizes[t]]
        offset += shard_sizes[t]
        core = pinned[t % len(pinned)] if pinned else t
        system.spawn(_worker(system, process, cfg, shard),
                     core=core, name=f"eph-w{t}", process=process)
    system.run()
    label = (cfg.interface.value if cfg.interface is not Interface.DAXVM
             else f"daxvm[{_opts_label(cfg.daxvm)}]")
    return measure.finish(label, operations=len(paths),
                          bytes_processed=len(paths) * cfg.file_size)


def _opts_label(opts: DaxVMOptions) -> str:
    parts = []
    if opts.ephemeral:
        parts.append("eph")
    if opts.unmap_async:
        parts.append("async")
    if opts.nosync:
        parts.append("nosync")
    return "+".join(parts) or "tables"


__all__ = ["EphemeralConfig", "run_ephemeral"]
