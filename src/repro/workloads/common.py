"""Shared workload vocabulary: interfaces, DaxVM options, measurement.

Every evaluation figure compares some subset of:

* ``READ``/``WRITE`` system-call file access,
* default ``MMAP`` (lazy demand faulting),
* ``MMAP_POPULATE`` (MAP_POPULATE pre-faulting), and
* ``DAXVM`` with a configuration of its optional flags —
  Fig. 8a's incremental bars are just different
  :class:`DaxVMOptions` settings.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Dict

from repro.analysis.results import RunResult
from repro.system import System
from repro.vm.vma import MapFlags


class Interface(enum.Enum):
    """How a workload reaches file data."""

    READ = "read"
    MMAP = "mmap"
    MMAP_POPULATE = "populate"
    DAXVM = "daxvm"


@dataclass(frozen=True)
class DaxVMOptions:
    """Which optional DaxVM mechanisms a mapping uses.

    The defaults are the full paper configuration; Fig. 8a's
    incremental study turns them on one at a time.
    """

    #: MAP_EPHEMERAL: allocate from the ephemeral heap.
    ephemeral: bool = True
    #: MAP_UNMAP_ASYNC: defer and batch unmapping.
    unmap_async: bool = True
    #: MAP_SYNC: synchronous-metadata DAX semantics for writes.
    sync: bool = True
    #: MAP_NO_MSYNC (requires sync): drop kernel dirty tracking.
    nosync: bool = False

    def flags(self, write: bool = False) -> MapFlags:
        flags = MapFlags.SHARED
        if self.ephemeral:
            flags |= MapFlags.EPHEMERAL
        if self.unmap_async:
            flags |= MapFlags.UNMAP_ASYNC
        if write and self.sync:
            flags |= MapFlags.SYNC
        if write and self.nosync:
            flags |= MapFlags.SYNC | MapFlags.NO_MSYNC
        return flags

    @staticmethod
    def filetables_only() -> "DaxVMOptions":
        """O(1) mmap alone (Fig. 8a first DaxVM bar)."""
        return DaxVMOptions(ephemeral=False, unmap_async=False)

    @staticmethod
    def with_ephemeral() -> "DaxVMOptions":
        return DaxVMOptions(ephemeral=True, unmap_async=False)

    @staticmethod
    def full() -> "DaxVMOptions":
        return DaxVMOptions(ephemeral=True, unmap_async=True)

    @staticmethod
    def full_nosync() -> "DaxVMOptions":
        return DaxVMOptions(ephemeral=True, unmap_async=True, nosync=True)


class Measurement:
    """Delta-based measurement of a phase of simulated execution."""

    def __init__(self, system: System):
        self.system = system
        self._t0 = 0.0
        self._snap: Dict[str, float] = {}
        self._domains: Dict[str, float] = {}

    def start(self) -> None:
        self._t0 = self.system.engine.now
        self._snap = self.system.stats.snapshot()
        self._domains = self.system.engine.ledger.domains()

    def finish(self, label: str, operations: float,
               bytes_processed: float = 0.0) -> RunResult:
        now = self.system.engine.now
        counters = {}
        for key, value in self.system.stats.snapshot().items():
            delta = value - self._snap.get(key, 0.0)
            if delta:
                counters[key] = delta
        domains = {}
        for key, value in self.system.engine.ledger.domains().items():
            delta = value - self._domains.get(key, 0.0)
            if delta:
                domains[key] = delta
        percentiles = {key: hist.summary()
                       for key, hist in self.system.stats.timings.items()}
        return RunResult(
            label=label,
            cycles=now - self._t0,
            operations=operations,
            bytes_processed=bytes_processed,
            counters=counters,
            domains=domains,
            percentiles=percentiles,
            freq_hz=self.system.costs.machine.freq_hz,
        )


def spread(total: int, shards: int) -> list:
    """Split ``total`` items into ``shards`` nearly equal counts."""
    base, extra = divmod(total, shards)
    return [base + (1 if i < extra else 0) for i in range(shards)]
