"""Workloads: the paper's microbenchmarks and application models."""

from repro.workloads.appendbench import AppendConfig, AppendVariant, run_append
from repro.workloads.apache import ApacheConfig, ServerInterface, run_apache
from repro.workloads.common import DaxVMOptions, Interface, Measurement
from repro.workloads.ephemeral import EphemeralConfig, run_ephemeral
from repro.workloads.filegen import (
    create_file_set,
    create_files,
    drop_caches,
    linux_tree_sizes,
)
from repro.workloads.kvstore import KVConfig, PmemKVStore
from repro.workloads.predis import PRedisConfig, PRedisResult, run_predis
from repro.workloads.repetitive import RepetitiveConfig, run_repetitive
from repro.workloads.syncbench import SyncConfig, SyncDiscipline, run_sync
from repro.workloads.textsearch import TextSearchConfig, run_textsearch
from repro.workloads.ycsb import WORKLOAD_MIXES, YCSBConfig, run_ycsb

__all__ = [
    "ApacheConfig",
    "AppendConfig",
    "AppendVariant",
    "DaxVMOptions",
    "EphemeralConfig",
    "Interface",
    "KVConfig",
    "Measurement",
    "PRedisConfig",
    "PRedisResult",
    "PmemKVStore",
    "RepetitiveConfig",
    "ServerInterface",
    "SyncConfig",
    "SyncDiscipline",
    "TextSearchConfig",
    "WORKLOAD_MIXES",
    "YCSBConfig",
    "create_file_set",
    "create_files",
    "drop_caches",
    "linux_tree_sizes",
    "run_apache",
    "run_append",
    "run_ephemeral",
    "run_predis",
    "run_repetitive",
    "run_sync",
    "run_textsearch",
    "run_ycsb",
]
