"""Durability/sync microbenchmark (paper Fig. 6).

Sequential writes over a mapped (or open) file with a sync after every
``ops_per_sync`` operations.  Four disciplines:

* ``write+fsync`` — write() syscalls persist data with nt-stores; the
  fsync only commits metadata.
* ``mmap+fsync``  — memcpy with *cached* stores; fsync must flush the
  dirty pages' cache lines (tracked at 4 KB by write-protect faults),
  then re-protect, restarting the fault cycle.
* ``daxvm+fsync`` — same, but dirty tracking at 2 MB granularity:
  fewer faults, coarser (sometimes wasteful) flushes — the trade the
  paper calls out for sub-2 MB sync intervals.
* ``mmap-user`` / ``daxvm-nosync`` — nt-stores, no sync calls; with
  default mmap the kernel still takes dirty-tracking faults it never
  benefits from; DaxVM's nosync mode drops them (§IV-D).
"""

from __future__ import annotations

import enum
import itertools
from dataclasses import dataclass

from repro.analysis.results import RunResult
from repro.paging.tlb import AccessPattern
from repro.system import Process, System
from repro.vm.vma import MapFlags, Protection
from repro.workloads.common import Measurement
from repro.workloads.filegen import create_files

_run_counter = itertools.count()


class SyncDiscipline(enum.Enum):
    WRITE_FSYNC = "write+fsync"
    MMAP_FSYNC = "mmap+fsync"
    DAXVM_FSYNC = "daxvm+fsync"
    MMAP_USER = "mmap-user"
    DAXVM_NOSYNC = "daxvm-nosync"


@dataclass
class SyncConfig:
    """One sync experiment (scaled from the paper's 10 GB file)."""

    file_size: int = 1 << 30
    op_size: int = 1 << 10
    ops_per_sync: int = 16
    num_syncs: int = 250
    discipline: SyncDiscipline = SyncDiscipline.WRITE_FSYNC
    #: The paper turns huge pages off for this experiment, to stress
    #: the comparison with DaxVM's fixed 2 MB flush granularity.
    allow_huge: bool = False

    @property
    def sync_interval_bytes(self) -> int:
        return self.op_size * self.ops_per_sync


def _worker(system: System, process: Process, cfg: SyncConfig, path: str):
    f = yield from system.fs.open(path)
    d = cfg.discipline
    vma = None
    base = 0
    if d in (SyncDiscipline.MMAP_FSYNC, SyncDiscipline.MMAP_USER):
        vma = yield from process.mm.mmap(
            system.fs, f.inode, 0, cfg.file_size, Protection.rw(),
            MapFlags.SHARED)
    elif d is SyncDiscipline.DAXVM_FSYNC:
        vma = yield from process.daxvm.mmap(
            f.inode, 0, cfg.file_size, Protection.rw(),
            MapFlags.SHARED | MapFlags.SYNC)
        base = vma.user_addr - vma.start
    elif d is SyncDiscipline.DAXVM_NOSYNC:
        vma = yield from process.daxvm.mmap(
            f.inode, 0, cfg.file_size, Protection.rw(),
            MapFlags.SHARED | MapFlags.SYNC | MapFlags.NO_MSYNC)
        base = vma.user_addr - vma.start

    offset = 0
    for _sync in range(cfg.num_syncs):
        for _op in range(cfg.ops_per_sync):
            if d is SyncDiscipline.WRITE_FSYNC:
                yield from system.fs.write(f, offset, cfg.op_size)
            else:
                # fsync disciplines buffer in the cache; user-space
                # durability disciplines stream with nt-stores.
                nt = d in (SyncDiscipline.MMAP_USER,
                           SyncDiscipline.DAXVM_NOSYNC)
                yield from process.mm.access(
                    vma, base + offset, cfg.op_size, write=True,
                    pattern=AccessPattern.SEQUENTIAL, copy=True,
                    ntstore=nt)
            offset = (offset + cfg.op_size) % (cfg.file_size - cfg.op_size)
        if d is SyncDiscipline.WRITE_FSYNC:
            yield from system.fs.fsync(f)
        elif d in (SyncDiscipline.MMAP_FSYNC, SyncDiscipline.DAXVM_FSYNC):
            yield from process.mm.msync(vma)
        elif d is SyncDiscipline.DAXVM_NOSYNC:
            yield from process.mm.msync(vma)  # a no-op by contract

    if d is SyncDiscipline.DAXVM_FSYNC or d is SyncDiscipline.DAXVM_NOSYNC:
        yield from process.daxvm.munmap(vma)
    elif vma is not None:
        yield from process.mm.munmap(vma)
    yield from system.fs.close(f)


def run_sync(system: System, cfg: SyncConfig) -> RunResult:
    run_id = next(_run_counter)
    system.fs.allow_huge = cfg.allow_huge
    process = system.new_process(f"sync{run_id}")
    if cfg.discipline in (SyncDiscipline.DAXVM_FSYNC,
                          SyncDiscipline.DAXVM_NOSYNC):
        system.daxvm_for(process)
    inodes = create_files(system, [cfg.file_size], prefix=f"/sync{run_id}")
    path = inodes[0].path

    measure = Measurement(system)
    measure.start()
    system.spawn(_worker(system, process, cfg, path), core=0,
                 name="sync-worker", process=process)
    system.run()
    ops = cfg.num_syncs * cfg.ops_per_sync
    return measure.finish(cfg.discipline.value, operations=ops,
                          bytes_processed=ops * cfg.op_size)


__all__ = ["SyncConfig", "SyncDiscipline", "run_sync"]
