"""repro.obs — the kernel-wide instrumentation layer.

One import surface for everything the simulator can be *asked*:

- :class:`CostDomain` / :func:`charge` — typed cycle charging; every
  layer yields ``charge(domain, event, cycles)`` instead of a bare
  ``Compute``, and the engine accrues the per-thread, per-domain
  :class:`Ledger`.
- :class:`Counter` — the typed counter taxonomy (values are the legacy
  string keys, so external readers are unaffected).
- :class:`Histogram` — mergeable log-linear latency distributions
  (p50/p95/p99) behind ``Stats.observe``.
- :class:`Tracer` — span-scoped tracing with nested attribution and an
  optional ring-buffer event trace.

This package never imports ``repro.sim`` (the engine imports *us*), so
it stays dependency-free and importable from anywhere in the kernel.
"""

from repro.obs.charge import Charge, ChargeSpan, charge, charge_span
from repro.obs.counters import Counter, counter_key
from repro.obs.domains import DOMAIN_ORDER, CostDomain
from repro.obs.histogram import Histogram
from repro.obs.ledger import Ledger
from repro.obs.trace import Tracer

__all__ = [
    "Charge",
    "charge",
    "ChargeSpan",
    "charge_span",
    "Counter",
    "counter_key",
    "CostDomain",
    "DOMAIN_ORDER",
    "Histogram",
    "Ledger",
    "Tracer",
]
