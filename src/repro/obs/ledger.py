"""The per-thread, per-domain cycle ledger the engine accrues.

Every interpreted :class:`~repro.obs.charge.Charge` (and every stolen
interrupt cycle) lands here, keyed three ways: by domain, by
``(domain, event)``, and by ``(thread, domain)``.  Experiments read the
ledger to print the paper's cycle-attribution claims directly — e.g.
the ``zeroing`` share of an ext4 append (§III-B) or the ``walk`` cycles
behind Table II — without differencing configurations by hand.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Dict, Optional, Tuple

from repro.obs.domains import DOMAIN_ORDER, CostDomain


class Ledger:
    """Cycle attribution accumulated by the engine as effects run."""

    def __init__(self) -> None:
        self._domains: Dict[CostDomain, float] = defaultdict(float)
        self._events: Dict[Tuple[CostDomain, str], float] = \
            defaultdict(float)
        self._threads: Dict[str, Dict[CostDomain, float]] = \
            defaultdict(lambda: defaultdict(float))
        self.records = 0

    # -- recording ---------------------------------------------------------
    def record(self, thread: str, domain: CostDomain, event: str,
               cycles: float) -> None:
        """Attribute ``cycles`` of ``thread``'s time to a domain/event."""
        if cycles == 0.0:
            return
        self._domains[domain] += cycles
        self._events[(domain, event)] += cycles
        self._threads[thread][domain] += cycles
        self.records += 1

    def record_many(self, thread: str, entries) -> None:
        """Replay a buffered run of ``(domain, event, cycles)`` entries.

        Semantically ``record`` in a loop — same accumulation order,
        same zero-skip, same ``records`` count — with the dict lookups
        hoisted so the engine's fast-forward drain can flush a whole
        uninterrupted span in one call.  The per-thread dict is only
        materialized once a non-zero entry lands, exactly like
        ``record``'s early return keeps an all-zero thread out of
        :meth:`to_state`.
        """
        domains = self._domains
        events = self._events
        per = self._threads.get(thread)
        fresh = per is None
        recorded = 0
        for domain, event, cycles in entries:
            if cycles == 0.0:
                continue
            if fresh:
                per = self._threads[thread]
                fresh = False
            domains[domain] += cycles
            events[(domain, event)] += cycles
            per[domain] += cycles
            recorded += 1
        self.records += recorded

    # -- queries ----------------------------------------------------------
    def domain_total(self, domain: CostDomain) -> float:
        return self._domains.get(domain, 0.0)

    def event_total(self, domain: CostDomain, event: str) -> float:
        return self._events.get((domain, event), 0.0)

    def thread_total(self, thread: str,
                     domain: Optional[CostDomain] = None) -> float:
        per = self._threads.get(thread)
        if per is None:
            return 0.0
        if domain is None:
            return sum(per.values())
        return per.get(domain, 0.0)

    def total(self) -> float:
        """All cycles attributed so far (across every domain)."""
        return sum(self._domains.values())

    def domains(self) -> Dict[str, float]:
        """Snapshot ``{domain value: cycles}`` in presentation order."""
        out = {}
        for domain in DOMAIN_ORDER:
            value = self._domains.get(domain, 0.0)
            if value:
                out[domain.value] = value
        return out

    def events(self, domain: Optional[CostDomain] = None
               ) -> Dict[str, float]:
        """Snapshot ``{"domain/event": cycles}``, optionally filtered."""
        return {f"{d.value}/{e}": v
                for (d, e), v in sorted(self._events.items(),
                                        key=lambda kv: -kv[1])
                if domain is None or d is domain}

    def per_thread(self) -> Dict[str, Dict[str, float]]:
        return {thread: {d.value: v for d, v in per.items() if v}
                for thread, per in self._threads.items()}

    def share(self, domain: CostDomain) -> float:
        """Fraction of all attributed cycles belonging to ``domain``."""
        total = self.total()
        return self._domains.get(domain, 0.0) / total if total else 0.0

    # -- lifecycle ---------------------------------------------------------
    def merge(self, other: "Ledger") -> "Ledger":
        """Fold another ledger into this one (multi-system benches)."""
        for domain, value in other._domains.items():
            self._domains[domain] += value
        for key, value in other._events.items():
            self._events[key] += value
        for thread, per in other._threads.items():
            mine = self._threads[thread]
            for domain, value in per.items():
                mine[domain] += value
        self.records += other.records
        return self

    def reset(self) -> None:
        self._domains.clear()
        self._events.clear()
        self._threads.clear()
        self.records = 0

    def to_state(self) -> Dict[str, object]:
        """Lossless, JSON-ready state (inverse of :meth:`from_state`).

        Events are shipped as ``[domain, event, cycles]`` triples —
        event names may contain any separator, so no string key is
        safe to join them on."""
        return {
            "domains": {d.value: v for d, v in
                        sorted(self._domains.items(),
                               key=lambda kv: kv[0].value)},
            "events": [[d.value, e, v] for (d, e), v in
                       sorted(self._events.items(),
                              key=lambda kv: (kv[0][0].value, kv[0][1]))],
            "threads": {t: {d.value: v for d, v in
                            sorted(per.items(),
                                   key=lambda kv: kv[0].value)}
                        for t, per in sorted(self._threads.items())},
            "records": self.records,
        }

    @classmethod
    def from_state(cls, state: Dict[str, object]) -> "Ledger":
        ledger = cls()
        for name, value in state.get("domains", {}).items():
            ledger._domains[CostDomain(name)] = float(value)
        for name, event, value in state.get("events", []):
            ledger._events[(CostDomain(name), event)] = float(value)
        for thread, per in state.get("threads", {}).items():
            mine = ledger._threads[thread]
            for name, value in per.items():
                mine[CostDomain(name)] = float(value)
        ledger.records = int(state.get("records", 0))
        return ledger

    def to_json(self) -> Dict[str, object]:
        """JSON-ready attribution snapshot (the ``BENCH_*`` seed)."""
        return {
            "total_cycles": self.total(),
            "domains": self.domains(),
            "events": self.events(),
            "threads": self.per_thread(),
        }

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        top = ", ".join(f"{k}={v:.0f}"
                        for k, v in list(self.domains().items())[:4])
        return f"<Ledger {self.records} records: {top}>"
