"""The kernel-wide cost-domain taxonomy.

Every simulated cycle the kernel charges is attributed to exactly one
:class:`CostDomain`, so the engine can answer the paper's central
questions ("what fraction of an append is block zeroing?", "how much
time went to page walks with PMem-resident tables?") directly from its
ledger instead of each benchmark re-deriving the split by differencing
configurations.

The taxonomy follows the paper's own cycle-attribution axes:

===============  ==========================================================
domain           what it covers
===============  ==========================================================
``syscall``      kernel crossings, VFS paths, VMA bookkeeping, allocator
                 metadata (everything §III-C calls "software overhead")
``fault``        page-fault entry, PTE/PMD installs, dirty-tracking faults
``walk``         hardware page-walk cycles charged on TLB misses (Table II)
``tlb_shootdown``IPI rounds, invalidations, refill penalties, stolen
                 handler cycles on remote cores (§III-A3)
``journal``      jbd2 transaction commits and NOVA log appends (§III-B)
``zeroing``      synchronous block zeroing and the pre-zero kthread (§III-B)
``filetable``    DaxVM file-table builds, attachments and maintenance
``lock_wait``    cycles blocked on or acquiring simulated locks (Fig. 8a)
``copy``         kernel data copies and durability flushes (read/write/msync)
``userspace``    application compute and in-place user data access
===============  ==========================================================
"""

from __future__ import annotations

import enum


class CostDomain(enum.Enum):
    """Where a charged cycle belongs in the kernel-cost taxonomy."""

    SYSCALL = "syscall"
    FAULT = "fault"
    WALK = "walk"
    TLB_SHOOTDOWN = "tlb_shootdown"
    JOURNAL = "journal"
    ZEROING = "zeroing"
    FILETABLE = "filetable"
    LOCK_WAIT = "lock_wait"
    COPY = "copy"
    USERSPACE = "userspace"
    #: Extra cycles paid for crossing the UPI link (remote-socket data
    #: access and leaf walks); zero by construction on one node.
    NUMA = "numa"
    #: Post-crash mount work: journal replay, log scanning, persistent
    #: file-table validation/rebuild and orphan-block reclamation.
    #: Charged only by the repro.crash recovery checker.
    CRASH = "crash"
    #: Media-error handling: MCE/badblock bookkeeping, extent remap,
    #: ``memory_failure()`` rmap teardown, clear-poison overwrites and
    #: injected device stalls.  Zero unless a repro.faults plan is
    #: armed on the machine.
    FAULTS = "faults"
    #: The hot/cold tiering daemon: hotness scans, page migration
    #: copies, remaps and migration shootdown initiation.  Zero unless
    #: a tier overlay is attached (repro.tiering).
    TIERING = "tiering"
    #: Multi-tenant consolidation costs: closed-loop think pauses,
    #: cgroup-style CPU-share throttle stretch, quota-controller scans
    #: and cross-tenant lock-wait attribution.  Zero unless an active
    #: repro.tenancy runtime is attached (a single tenant with no
    #: quotas installs nothing and charges nothing here).
    TENANCY = "tenancy"
    #: Hypervisor and live-migration costs: nested-walk surcharge on
    #: guest translations, migration downtime, demand page-pulls and
    #: prefetch over the migration link, pull-retry backoff and
    #: degraded-mode remote-access surcharge.  Zero unless a
    #: repro.virt hypervisor is attached (and a pass-through guest
    #: with no migration charges nothing here either).
    VIRT = "virt"

    def __str__(self) -> str:  # pragma: no cover - display aid
        return self.value

    # Members are singletons, so identity hashing is exact — and it
    # skips Enum.__hash__'s Python-level indirection, which shows up
    # hard in profiles (every ledger record hashes its domain thrice).
    __hash__ = object.__hash__


#: Stable presentation order for breakdown reports.
DOMAIN_ORDER = [
    CostDomain.USERSPACE,
    CostDomain.COPY,
    CostDomain.ZEROING,
    CostDomain.SYSCALL,
    CostDomain.FAULT,
    CostDomain.WALK,
    CostDomain.TLB_SHOOTDOWN,
    CostDomain.NUMA,
    CostDomain.JOURNAL,
    CostDomain.FILETABLE,
    CostDomain.LOCK_WAIT,
    CostDomain.TIERING,
    CostDomain.TENANCY,
    CostDomain.VIRT,
    CostDomain.CRASH,
    CostDomain.FAULTS,
]
