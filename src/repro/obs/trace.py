"""Span-scoped tracing over simulated time.

``with tracer.span("append"):`` brackets a region of a simulated
thread's execution.  On exit the span's elapsed simulated cycles are
recorded into a per-operation latency histogram on ``Stats``
(``span.<name>``), and nested spans attribute self-time to parents, so
"how long is an append, and how much of it is the msync inside?" falls
out of the trace instead of being re-derived by differencing runs.

The tracer is deliberately decoupled from the engine: it is constructed
with *callables* for the clock and the current-thread name, so it works
for any time source and ``repro.obs`` never imports ``repro.sim``.

An optional ring buffer (``Tracer(ring=512)``) keeps the last N span
events for debugging schedules — bounded, so it is safe to leave on.
"""

from __future__ import annotations

from collections import deque
from typing import Callable, Deque, Dict, List, Optional, Tuple


class _Span:
    """One open span on a thread's span stack (context manager)."""

    __slots__ = ("tracer", "name", "thread", "start", "child_cycles")

    def __init__(self, tracer: "Tracer", name: str):
        self.tracer = tracer
        self.name = name
        self.thread = ""
        self.start = 0.0
        self.child_cycles = 0.0

    def __enter__(self) -> "_Span":
        self.thread = self.tracer._current()
        self.start = self.tracer._clock()
        self.tracer._stacks.setdefault(self.thread, []).append(self)
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.tracer._close(self, self.tracer._clock())


class Tracer:
    """Collects span timings against an injected simulated clock."""

    def __init__(self, clock: Callable[[], float],
                 current: Callable[[], str],
                 stats: Optional[object] = None,
                 ring: int = 0) -> None:
        self._clock = clock
        self._current = current
        self._stats = stats
        self._stacks: Dict[str, List[_Span]] = {}
        #: (thread, name, start, elapsed, self_cycles) for the last N spans.
        self.ring: Optional[Deque[Tuple[str, str, float, float, float]]] = \
            deque(maxlen=ring) if ring else None
        #: Aggregate {span name: (count, total cycles, total self cycles)}.
        self.totals: Dict[str, Tuple[int, float, float]] = {}

    def span(self, name: str) -> _Span:
        """Open a named span: ``with tracer.span("append"): ...``"""
        return _Span(self, name)

    def _close(self, span: _Span, end: float) -> None:
        stack = self._stacks.get(span.thread, [])
        if not stack or stack[-1] is not span:
            raise RuntimeError(
                f"span {span.name!r} closed out of order on "
                f"thread {span.thread!r}")
        stack.pop()
        elapsed = end - span.start
        self_cycles = elapsed - span.child_cycles
        if stack:
            stack[-1].child_cycles += elapsed
        count, total, self_total = self.totals.get(span.name,
                                                   (0, 0.0, 0.0))
        self.totals[span.name] = (count + 1, total + elapsed,
                                  self_total + self_cycles)
        if self.ring is not None:
            self.ring.append((span.thread, span.name, span.start,
                              elapsed, self_cycles))
        if self._stats is not None:
            self._stats.observe(f"span.{span.name}", elapsed)

    # -- queries ----------------------------------------------------------
    def active_depth(self, thread: Optional[str] = None) -> int:
        if thread is None:
            thread = self._current()
        return len(self._stacks.get(thread, []))

    def summary(self) -> Dict[str, Dict[str, float]]:
        """{name: {count, total_cycles, self_cycles, mean_cycles}}."""
        return {
            name: {
                "count": count,
                "total_cycles": total,
                "self_cycles": self_total,
                "mean_cycles": total / count if count else 0.0,
            }
            for name, (count, total, self_total)
            in sorted(self.totals.items())
        }

    def reset(self) -> None:
        self._stacks.clear()
        self.totals.clear()
        if self.ring is not None:
            self.ring.clear()
