"""Typed counter names replacing the untyped string-counter style.

Every counter the kernel bumps is declared here once; ``Stats`` accepts
either a :class:`Counter` member or a plain string (external consumers —
benches, JSON readers — keep using the string values, which are the
enum values verbatim, so ``r.counters["vm.faults"]`` still works).

Declaring a counter buys three things: typos become ``AttributeError``
at import time instead of silently-zero counters at read time, grep
finds every producer and consumer of a metric through one symbol, and
the taxonomy below documents what the simulator can be asked.
"""

from __future__ import annotations

import enum


class Counter(enum.Enum):
    """Every event counter the kernel layers may bump."""

    # -- TLB / shootdowns (paging/tlb.py) ---------------------------------
    TLB_FULL_FLUSHES = "tlb.full_flushes"
    TLB_RANGE_FLUSHES = "tlb.range_flushes"
    TLB_PAGES_INVALIDATED = "tlb.pages_invalidated"
    TLB_IPIS = "tlb.ipis"
    TLB_SHOOTDOWNS = "tlb.shootdowns"

    # -- VFS / file systems (fs/) -----------------------------------------
    VFS_COLD_OPENS = "vfs.cold_opens"
    VFS_WARM_OPENS = "vfs.warm_opens"
    FS_READ_BYTES = "fs.read_bytes"
    FS_WRITE_BYTES = "fs.write_bytes"
    FS_FSYNC_CALLS = "fs.fsync_calls"
    FS_BLOCKS_ALLOCATED = "fs.blocks_allocated"
    FS_ZEROING_CYCLES = "fs.zeroing_cycles"
    FS_BLOCKS_ZEROED_SYNC = "fs.blocks_zeroed_sync"
    FS_FILETABLE_MAINTENANCE_CYCLES = "fs.filetable_maintenance_cycles"
    FS_BLOCKS_FREED = "fs.blocks_freed"
    FS_FREES_INTERCEPTED = "fs.frees_intercepted"
    NOVA_LOG_APPENDS = "nova.log_appends"
    JOURNAL_BATCHED_UPDATES = "journal.batched_updates"
    JOURNAL_SYNC_COMMITS = "journal.sync_commits"

    # -- Virtual memory (vm/mm.py, vm/dirty.py) ---------------------------
    VM_MMAP_CALLS = "vm.mmap_calls"
    VM_MUNMAP_CALLS = "vm.munmap_calls"
    VM_MPROTECT_CALLS = "vm.mprotect_calls"
    VM_MREMAP_CALLS = "vm.mremap_calls"
    VM_MSYNC_CALLS = "vm.msync_calls"
    VM_MSYNC_FLUSHED = "vm.msync_flushed"
    VM_MSYNC_NOOP = "vm.msync_noop"
    VM_FAULTS = "vm.faults"
    VM_PTE_FAULTS = "vm.pte_faults"
    VM_HUGE_FAULTS = "vm.huge_faults"
    VM_DIRTY_FAULTS = "vm.dirty_faults"
    VM_UNTRACKED_WRITES = "vm.untracked_writes"
    VM_ACCESS_BYTES = "vm.access_bytes"
    VM_TLB_MISSES = "vm.tlb_misses"
    VM_WALK_CYCLES = "vm.walk_cycles"
    VM_FORKS = "vm.forks"

    # -- DaxVM core (core/) ------------------------------------------------
    DAXVM_MMAP_CALLS = "daxvm.mmap_calls"
    DAXVM_MUNMAP_CALLS = "daxvm.munmap_calls"
    DAXVM_ATTACHMENTS = "daxvm.attachments"
    DAXVM_USER_FLUSH_BYTES = "daxvm.user_flush_bytes"
    DAXVM_VOLATILE_REBUILDS = "daxvm.volatile_rebuilds"
    DAXVM_VOLATILE_EVICTIONS = "daxvm.volatile_evictions"
    DAXVM_TABLE_MIGRATIONS = "daxvm.table_migrations"
    DAXVM_EPHEMERAL_ALLOCS = "daxvm.ephemeral_allocs"
    DAXVM_EPHEMERAL_REGION_RECYCLES = "daxvm.ephemeral_region_recycles"
    DAXVM_PREZERO_QUEUED_BLOCKS = "daxvm.prezero_queued_blocks"
    DAXVM_BLOCKS_PREZEROED = "daxvm.blocks_prezeroed"
    DAXVM_UNMAPS_DEFERRED = "daxvm.unmaps_deferred"
    DAXVM_ZOMBIE_REAPS = "daxvm.zombie_reaps"
    DAXVM_ZOMBIE_PAGES_REAPED = "daxvm.zombie_pages_reaped"
    DAXVM_FORCED_SYNC_UNMAPS = "daxvm.forced_sync_unmaps"
    DAXVM_RECOVERY_PTES = "daxvm.recovery_ptes"

    # -- NUMA (topology-aware runs only; never bumped on one node) --------
    NUMA_LOCAL_ACCESSES = "numa.local_accesses"
    NUMA_REMOTE_ACCESSES = "numa.remote_accesses"
    NUMA_LOCAL_BYTES = "numa.local_bytes"
    NUMA_REMOTE_BYTES = "numa.remote_bytes"
    NUMA_CROSS_IPIS = "numa.cross_socket_ipis"
    NUMA_CROSS_IPI_CYCLES = "numa.cross_socket_ipi_cycles"

    # -- Crash exploration (crash/) ---------------------------------------
    CRASH_POINTS_EXPLORED = "crash.points_explored"
    CRASH_RECOVERY_CYCLES = "crash.recovery_cycles"
    CRASH_INVARIANT_VIOLATIONS = "crash.invariant_violations"
    CRASH_STORES_TRACKED = "crash.stores_tracked"
    CRASH_STORES_LOST = "crash.stores_lost"
    CRASH_RECORDS_REPLAYED = "crash.records_replayed"
    CRASH_TXNS_ROLLED_BACK = "crash.txns_rolled_back"
    CRASH_ORPHAN_BLOCKS_RECLAIMED = "crash.orphan_blocks_reclaimed"

    # -- Media-fault injection (faults/) ----------------------------------
    FAULTS_UE_ARMED = "faults.ue_armed"
    FAULTS_UE_REMAPPED = "faults.ue_remapped"
    FAULTS_UE_CLEARED = "faults.ue_cleared"
    FAULTS_SIGBUS_DELIVERED = "faults.sigbus_delivered"
    FAULTS_MEMORY_FAILURES = "faults.memory_failures"
    FAULTS_PTES_UNMAPPED = "faults.ptes_unmapped"
    FAULTS_BLOCKS_QUARANTINED = "faults.blocks_quarantined"
    FAULTS_BYTES_LOST = "faults.bytes_lost"
    FAULTS_BW_WINDOWS = "faults.bw_windows"
    FAULTS_STALL_EPISODES = "faults.stall_episodes"
    FAULTS_CLEAR_POISON_CALLS = "faults.clear_poison_calls"

    # -- Hot/cold tiering daemon (tiering/) -------------------------------
    TIERING_SCANS = "tiering.scans"
    TIERING_PROMOTED_PAGES = "tiering.promoted_pages"
    TIERING_DEMOTED_PAGES = "tiering.demoted_pages"
    TIERING_MIGRATED_BYTES = "tiering.migrated_bytes"
    TIERING_WRITEBACK_BYTES = "tiering.writeback_bytes"
    TIERING_SHOOTDOWNS = "tiering.shootdowns"
    TIERING_RATE_DEFERRED = "tiering.rate_limited_granules"

    # -- Multi-tenant consolidation (tenancy/) ----------------------------
    # Machine-wide totals; the per-tenant split uses namespaced string
    # counters (``tenant.<name>.requests`` …) on the same Stats object.
    TENANCY_REQUESTS = "tenancy.requests"
    TENANCY_THINK_CYCLES = "tenancy.think_cycles"
    TENANCY_THROTTLE_CYCLES = "tenancy.cpu_throttle_cycles"
    TENANCY_QUOTA_SCANS = "tenancy.quota_scans"
    TENANCY_SOFT_BREACHES = "tenancy.soft_limit_breaches"
    TENANCY_HARD_FAILURES = "tenancy.hard_limit_failures"
    TENANCY_RECLAIMED_FRAMES = "tenancy.reclaimed_frames"
    TENANCY_BW_THROTTLE_CYCLES = "tenancy.bw_throttle_cycles"
    TENANCY_ANTAGONIST_PAGES = "tenancy.antagonist_pages_dirtied"

    # -- Guest VMs and live migration (virt/) -----------------------------
    VIRT_GUEST_ACCESSES = "virt.guest_accesses"
    VIRT_NESTED_WALK_CYCLES = "virt.nested_walk_cycles"
    VIRT_MIGRATIONS_STARTED = "virt.migrations_started"
    VIRT_MIGRATIONS_COMPLETED = "virt.migrations_completed"
    VIRT_MIGRATIONS_ABORTED = "virt.migrations_aborted"
    VIRT_DOWNTIME_CYCLES = "virt.downtime_cycles"
    VIRT_PAGES_PULLED = "virt.pages_pulled"
    VIRT_PREFETCHED_PAGES = "virt.prefetched_pages"
    VIRT_PULL_RETRIES = "virt.pull_retries"
    VIRT_PULL_POISONED = "virt.pull_poisoned"
    VIRT_DEGRADED_ACCESSES = "virt.degraded_accesses"

    # -- Baselines ---------------------------------------------------------
    LATR_LAZY_INVALIDATIONS = "latr.lazy_invalidations"

    def __str__(self) -> str:  # pragma: no cover - display aid
        return self.value

    # Members are singletons; identity hashing skips Enum.__hash__'s
    # Python-level indirection on every Stats.add.
    __hash__ = object.__hash__


#: Member → string key, precomputed: ``Counter.X.value`` goes through
#: enum's DynamicClassAttribute descriptor, too slow for Stats.add.
_COUNTER_KEYS = {member: member.value for member in Counter}


def counter_key(name: object) -> str:
    """Normalize a Counter member or raw string to the string key."""
    return _COUNTER_KEYS.get(name, name)  # type: ignore[arg-type,return-value]
