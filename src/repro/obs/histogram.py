"""Log-bucketed latency histograms (p50/p95/p99 without raw samples).

HDR-style: values land in power-of-two buckets subdivided into
``2**SUB_BITS`` linear sub-buckets, bounding relative quantile error to
~``1/2**SUB_BITS`` while keeping memory O(log(range)).  Histograms are
mergeable, which multi-process benches need (a per-shard histogram per
worker folds into one distribution at the end).
"""

from __future__ import annotations

import math
from typing import Dict, Iterable


class Histogram:
    """A mergeable log-linear histogram of non-negative values."""

    #: Sub-bucket resolution: 2**4 = 16 linear steps per octave (~6 %
    #: worst-case relative error on reported quantiles).
    SUB_BITS = 4

    def __init__(self) -> None:
        self._buckets: Dict[int, int] = {}
        self.count = 0
        self.total = 0.0
        self.min_value = math.inf
        self.max_value = 0.0

    # -- recording ---------------------------------------------------------
    def _index(self, value: float) -> int:
        if value < 1.0:
            return 0
        exponent = int(math.log2(value))
        sub = int((value / (1 << exponent) - 1.0) * (1 << self.SUB_BITS))
        sub = min(sub, (1 << self.SUB_BITS) - 1)
        return 1 + (exponent << self.SUB_BITS) + sub

    def _midpoint(self, index: int) -> float:
        if index == 0:
            return 0.5
        index -= 1
        exponent = index >> self.SUB_BITS
        sub = index & ((1 << self.SUB_BITS) - 1)
        base = 1 << exponent
        return base * (1.0 + (sub + 0.5) / (1 << self.SUB_BITS))

    def record(self, value: float, count: int = 1) -> None:
        if value < 0:
            raise ValueError(f"histogram value must be >= 0: {value}")
        index = self._index(value)
        self._buckets[index] = self._buckets.get(index, 0) + count
        self.count += count
        self.total += value * count
        self.min_value = min(self.min_value, value)
        self.max_value = max(self.max_value, value)

    # -- queries ----------------------------------------------------------
    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def percentile(self, q: float) -> float:
        """Value at quantile ``q`` in [0, 100] (bucket midpoint)."""
        if not 0 <= q <= 100:
            raise ValueError(f"quantile out of range: {q}")
        if not self.count:
            return 0.0
        target = q / 100.0 * self.count
        seen = 0
        for index in sorted(self._buckets):
            seen += self._buckets[index]
            if seen >= target:
                if index == self._index(self.max_value):
                    return min(self._midpoint(index), self.max_value)
                return self._midpoint(index)
        return self.max_value

    def percentiles(self, qs: Iterable[float] = (50, 95, 99)
                    ) -> Dict[str, float]:
        return {f"p{q:g}": self.percentile(q) for q in qs}

    # -- lifecycle ---------------------------------------------------------
    def merge(self, other: "Histogram") -> "Histogram":
        for index, count in other._buckets.items():
            self._buckets[index] = self._buckets.get(index, 0) + count
        self.count += other.count
        self.total += other.total
        self.min_value = min(self.min_value, other.min_value)
        self.max_value = max(self.max_value, other.max_value)
        return self

    def to_state(self) -> Dict[str, object]:
        """Lossless, JSON-ready state (inverse of :meth:`from_state`).

        Unlike :meth:`summary`, this carries the raw buckets, so a
        histogram shipped across a process boundary (or through the
        sweep-result cache) merges bit-identically to the original.
        """
        return {
            "buckets": {str(i): c for i, c in sorted(self._buckets.items())},
            "count": self.count,
            "total": self.total,
            "min": self.min_value if self.count else None,
            "max": self.max_value,
        }

    @classmethod
    def from_state(cls, state: Dict[str, object]) -> "Histogram":
        hist = cls()
        hist._buckets = {int(i): int(c)
                         for i, c in state["buckets"].items()}
        hist.count = int(state["count"])
        hist.total = float(state["total"])
        hist.min_value = (math.inf if state["min"] is None
                          else float(state["min"]))
        hist.max_value = float(state["max"])
        return hist

    def summary(self) -> Dict[str, float]:
        """JSON-ready summary: count/mean/min/max plus p50/p95/p99."""
        out = {
            "count": self.count,
            "mean": self.mean,
            "min": self.min_value if self.count else 0.0,
            "max": self.max_value,
        }
        out.update(self.percentiles())
        return out

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (f"<Histogram n={self.count} mean={self.mean:.1f} "
                f"p99={self.percentile(99):.1f}>")
