"""The typed cost-charging effect: ``yield charge(domain, event, cycles)``.

:class:`Charge` is the instrumented counterpart of the engine's bare
``Compute`` effect.  It burns the same simulated time but carries a
:class:`~repro.obs.domains.CostDomain` and a short event name, which the
engine records into its per-thread, per-domain
:class:`~repro.obs.ledger.Ledger` as the effect is interpreted.

Kernel layers outside ``repro/sim`` and ``repro/obs`` must charge time
through this API — bare ``Compute`` yields are reserved for the engine
itself, its tests, and truly unattributable compute (which the engine
books under ``userspace/uncharged`` so nothing escapes the ledger).
"""

from __future__ import annotations

from repro.errors import SimulationError
from repro.obs.domains import CostDomain


class Charge:
    """Effect: consume ``cycles`` of CPU time, attributed to a domain."""

    __slots__ = ("cycles", "domain", "event")

    def __init__(self, domain: CostDomain, event: str, cycles: float):
        if not isinstance(domain, CostDomain):
            raise SimulationError(f"charge needs a CostDomain, "
                                  f"got {domain!r}")
        if cycles < 0:
            raise SimulationError(
                f"negative charge for {domain.value}/{event}: {cycles}")
        self.domain = domain
        self.event = event
        self.cycles = cycles

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (f"Charge({self.domain.value}/{self.event}, "
                f"{self.cycles:.0f})")


def charge(domain: CostDomain, event: str, cycles: float) -> Charge:
    """Build a :class:`Charge` effect (the ergonomic yield helper)."""
    return Charge(domain, event, cycles)
