"""The typed cost-charging effect: ``yield charge(domain, event, cycles)``.

:class:`Charge` is the instrumented counterpart of the engine's bare
``Compute`` effect.  It burns the same simulated time but carries a
:class:`~repro.obs.domains.CostDomain` and a short event name, which the
engine records into its per-thread, per-domain
:class:`~repro.obs.ledger.Ledger` as the effect is interpreted.

Kernel layers outside ``repro/sim`` and ``repro/obs`` must charge time
through this API — bare ``Compute`` yields are reserved for the engine
itself, its tests, and truly unattributable compute (which the engine
books under ``userspace/uncharged`` so nothing escapes the ledger).
"""

from __future__ import annotations

from repro.errors import SimulationError
from repro.obs.domains import CostDomain


class Charge:
    """Effect: consume ``cycles`` of CPU time, attributed to a domain."""

    __slots__ = ("cycles", "domain", "event")

    def __init__(self, domain: CostDomain, event: str, cycles: float):
        if not isinstance(domain, CostDomain):
            raise SimulationError(f"charge needs a CostDomain, "
                                  f"got {domain!r}")
        if cycles < 0:
            raise SimulationError(
                f"negative charge for {domain.value}/{event}: {cycles}")
        self.domain = domain
        self.event = event
        self.cycles = cycles

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (f"Charge({self.domain.value}/{self.event}, "
                f"{self.cycles:.0f})")


# The ergonomic yield helper: ``yield charge(domain, event, cycles)``.
# Bound straight to the class — building a Charge is the simulator's
# hottest allocation, and a forwarding frame would double its cost.
charge = Charge


class ChargeSpan:
    """Effect: several consecutive charges at one yield point.

    The engine interprets the entries one by one with exactly the
    arithmetic of separate :class:`Charge` yields — per-entry clock
    advance, per-entry interrupt-debt drain, per-entry ledger record —
    so merging is bit-identical *provided* the merged yields had no
    side-effecting kernel code between them (they form one atomic run
    on the thread).  Hot paths use this to collapse their charge
    bursts, cutting scheduler round-trips without moving a cycle.
    """

    __slots__ = ("entries",)

    def __init__(self, entries):
        checked = []
        for domain, event, cycles in entries:
            if not isinstance(domain, CostDomain):
                raise SimulationError(f"charge_span needs CostDomains, "
                                      f"got {domain!r}")
            if cycles < 0:
                raise SimulationError(
                    f"negative charge for {domain.value}/{event}: "
                    f"{cycles}")
            checked.append((domain, event, cycles))
        self.entries = tuple(checked)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        inner = ", ".join(f"{d.value}/{e}:{c:.0f}"
                          for d, e, c in self.entries)
        return f"ChargeSpan({inner})"


def charge_span(entries) -> ChargeSpan:
    """Build a :class:`ChargeSpan` from ``(domain, event, cycles)``
    triples (the ergonomic yield helper for merged charge bursts)."""
    return ChargeSpan(entries)
