"""repro.crash — persistence-domain model, crash injection, recovery audit.

The subsystem that checks the paper's *durability* claims the way the
rest of the simulator checks its *performance* claims:

* :class:`PersistenceDomain` (``domain``) — shadows every simulated
  store through volatile → flushed → fence-ordered (ADR) states;
* :class:`CrashInjector` (``injector``) — deterministically crashes a
  machine replica at every persistence-state transition;
* :class:`RecoveryChecker` (``checker``) — replays the journal,
  re-syncs persistent file tables, reclaims orphans and asserts the
  no-acked-data-lost invariants;
* ``workloads`` — small durability-heavy drivers registered in
  :data:`CRASH_WORKLOADS`.

Entry points: ``python -m repro crash ...`` and ``sweep crash``.
"""

from repro.crash.checker import CrashPointOutcome, RecoveryChecker
from repro.crash.domain import (COMMIT_RECORD_BYTES, CrashState,
                                CrashTriggered, PersistenceDomain,
                                PersistRecord, StoreState)
from repro.crash.injector import CrashInjector, CrashSummary, run_crash
from repro.crash.workloads import CRASH_WORKLOADS, crash_workload

__all__ = [
    "COMMIT_RECORD_BYTES",
    "CRASH_WORKLOADS",
    "CrashInjector",
    "CrashPointOutcome",
    "CrashState",
    "CrashSummary",
    "CrashTriggered",
    "PersistRecord",
    "PersistenceDomain",
    "RecoveryChecker",
    "StoreState",
    "crash_workload",
    "run_crash",
]
