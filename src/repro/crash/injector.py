"""Deterministic crash-point enumeration and injection.

The injector turns "does this persistence discipline actually work?"
into an exhaustive sweep: every persistence-state transition the
workload performs (store, flush, fence, commit) is a candidate crash
point.  For each selected point it rebuilds an identical machine from
a factory, arms a fresh :class:`PersistenceDomain` with ``crash_at=k``
and runs the workload until the domain raises
:class:`CrashTriggered` out of the event loop — the simulated power
failure.  It then applies the crash (seeded per-point RNG decides
whether unfenced flushes drained), reboots the machine and hands it to
the :class:`RecoveryChecker`.

Replica determinism is load-bearing: the factory plus the naming-
counter reset guarantee crash point *k* always interrupts the same
transition of the same operation, so summaries are reproducible and
golden-file-able.  ``break_commit_fence=True`` installs the test-only
ordering-bug fixture (``Journal.skip_commit_fence``) that the checker
is required to catch.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Union

from repro.analysis.results import RunResult
from repro.crash.checker import CrashPointOutcome, RecoveryChecker
from repro.crash.domain import CrashTriggered, PersistenceDomain
from repro.crash.workloads import CRASH_WORKLOADS
from repro.errors import InvalidArgumentError, MediaError
from repro.faults.model import MediaFaults
from repro.faults.plan import FaultPlan
from repro.obs import Counter
from repro.runner.worker import _reset_naming_counters
from repro.system import System


@dataclass
class CrashSummary:
    """Aggregate of one crash sweep (one workload, one seed)."""

    workload: str
    seed: int
    max_points: int
    total_transitions: int
    outcomes: List[CrashPointOutcome] = field(default_factory=list)
    freq_hz: float = 2.7e9

    @property
    def points_explored(self) -> int:
        return len(self.outcomes)

    @property
    def violations(self) -> List[str]:
        found = []
        for outcome in self.outcomes:
            found.extend(f"point {outcome.point}: {v}"
                         for v in outcome.violations)
        return found

    @property
    def invariant_violations(self) -> int:
        return sum(len(o.violations) for o in self.outcomes)

    @property
    def recovery_cycles(self) -> float:
        return sum(o.recovery_cycles for o in self.outcomes)

    def to_state(self) -> Dict[str, object]:
        """Integer-exact summary for golden files and sweep caching."""
        return {
            "workload": self.workload,
            "seed": self.seed,
            "total_transitions": self.total_transitions,
            "points_explored": self.points_explored,
            "invariant_violations": self.invariant_violations,
            "lost_records": sum(o.lost_records for o in self.outcomes),
            "replayed_records": sum(o.replayed_records
                                    for o in self.outcomes),
            "rolled_back_txns": sum(o.rolled_back_txns
                                    for o in self.outcomes),
            "orphan_blocks": sum(o.orphan_blocks for o in self.outcomes),
            "tables_repaired": sum(o.tables_repaired
                                   for o in self.outcomes),
            "ptes_replayed": sum(o.ptes_replayed for o in self.outcomes),
        }

    def to_result(self) -> RunResult:
        """Shape the sweep like any other workload run: operations are
        explored crash points, cycles are mount-time recovery work."""
        state = self.to_state()
        counters = {f"crash.{key}": float(value)
                    for key, value in state.items()
                    if isinstance(value, (int, float))}
        return RunResult(
            label=f"crash:{self.workload}/seed{self.seed}",
            cycles=self.recovery_cycles,
            operations=float(self.points_explored),
            counters=counters,
            domains={"crash": self.recovery_cycles},
            freq_hz=self.freq_hz,
        )


class CrashInjector:
    """Enumerates, injects and verifies crash points for one workload."""

    def __init__(self, factory: Callable[[], System],
                 workload: Union[str, Callable[[System], None]],
                 *, seed: int = 0, max_points: int = 64,
                 break_commit_fence: bool = False,
                 fault_plan: "FaultPlan | None" = None):
        self.factory = factory
        if callable(workload):
            self.workload = workload
            self.workload_name = getattr(workload, "__name__", "custom")
        else:
            fn = CRASH_WORKLOADS.get(workload)
            if fn is None:
                raise InvalidArgumentError(
                    f"unknown crash workload {workload!r}; known: "
                    f"{sorted(CRASH_WORKLOADS)}")
            self.workload = fn
            self.workload_name = workload
        self.seed = seed
        self.max_points = max_points
        self.break_commit_fence = break_commit_fence
        #: Optional armed media-fault plan attached to *every* replica
        #: (probe included, so transition counts line up): crash points
        #: then compose with live UEs/stalls, and recovery must satisfy
        #: both the crash audit and the fault accounting.
        self.fault_plan = fault_plan
        self._freq = 2.7e9

    # -- machine construction ----------------------------------------------
    def _build(self, domain: PersistenceDomain) -> System:
        _reset_naming_counters()
        system = self.factory()
        system.attach_persistence(domain)
        if self.fault_plan is not None:
            system.attach_faults(MediaFaults(self.fault_plan))
        if self.break_commit_fence:
            journal = getattr(system.fs, "journal", None)
            if journal is not None:
                journal.skip_commit_fence = True
        self._freq = system.costs.machine.freq_hz
        return system

    # -- exploration -------------------------------------------------------
    def probe(self) -> int:
        """Run once unarmed; returns the number of crash candidates."""
        domain = PersistenceDomain()
        system = self._build(domain)
        try:
            self.workload(system)
        except MediaError:
            # An armed UE killed the workload early; the transitions
            # performed up to that point are still the crash candidates.
            system.engine.reap_crashed()
        return domain.transitions

    def run_point(self, point: int) -> CrashPointOutcome:
        """Crash one machine replica at transition ``point``, recover
        it and audit the result."""
        domain = PersistenceDomain(crash_at=point)
        system = self._build(domain)
        try:
            self.workload(system)
        except CrashTriggered:
            pass
        except MediaError:
            # A fault fired before the crash point: the thread died at
            # the poisoned access and power fails wherever the domain
            # got to.  Both disciplines must still recover.
            system.engine.reap_crashed()
        # Per-point RNG: decides (deterministically, independently per
        # point) which unfenced flushes drained before power was lost.
        rng = random.Random((self.seed << 24) ^ (point * 0x9E3779B1))
        state = domain.apply_crash(rng)
        # Power-fail reboot: volatile caches, processes and engines die.
        system.vfs.inode_cache.evict_all()
        system._reboot()
        outcome = RecoveryChecker(system, domain, state).run(point=point)
        system.stats.add(Counter.CRASH_POINTS_EXPLORED, 1)
        system.stats.add(Counter.CRASH_STORES_TRACKED, len(domain.records))
        return outcome

    def select_points(self, total: int) -> List[int]:
        """All points when they fit the budget, else a seeded sample."""
        if total <= self.max_points:
            return list(range(total))
        return sorted(random.Random(self.seed).sample(range(total),
                                                      self.max_points))

    def run(self) -> CrashSummary:
        total = self.probe()
        summary = CrashSummary(workload=self.workload_name,
                               seed=self.seed,
                               max_points=self.max_points,
                               total_transitions=total,
                               freq_hz=self._freq)
        for point in self.select_points(total):
            summary.outcomes.append(self.run_point(point))
        return summary


def run_crash(factory: Callable[[], System],
              workload: Union[str, Callable[[System], None]],
              *, seed: int = 0, max_points: int = 64,
              break_commit_fence: bool = False,
              fault_plan: "FaultPlan | None" = None) -> CrashSummary:
    """One-call crash sweep: enumerate, inject, recover, audit."""
    injector = CrashInjector(factory, workload, seed=seed,
                             max_points=max_points,
                             break_commit_fence=break_commit_fence,
                             fault_plan=fault_plan)
    return injector.run()


__all__ = ["CrashInjector", "CrashSummary", "run_crash"]
