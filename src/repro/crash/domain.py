"""The ADR persistence domain: durability state for every simulated store.

On a real PMem machine a store is *not* durable when it retires.  It
sits in the cache hierarchy (volatile) until a ``clwb`` or nt-store
pushes it to the memory controller's write-pending queue, and only a
subsequent fence orders it into the ADR (asynchronous DRAM refresh)
domain where the platform guarantees flush-on-power-fail.  The paper's
durability story (§3) — journaled metadata, persistent per-extent page
tables, ``MAP_SYNC`` semantics — is entirely about sequencing those
three states correctly.

:class:`PersistenceDomain` shadows the simulator's stores with exactly
that three-state machine:

``VOLATILE``
    the store happened but lives in cache; always lost at a crash.
``FLUSHED``
    a ``clwb``/nt-store pushed it toward the DIMM but no fence ordered
    it; at a crash it *may* have drained — survival is decided per
    crash point by a seeded coin flip, which is what makes unfenced
    flushes a bug the injector can actually expose.
``DURABLE``
    fence-ordered into ADR; always survives.

Every state *transition* (store, flush, fence) is a deterministic crash
candidate: the domain counts transitions, and when armed with
``crash_at=k`` raises :class:`CrashTriggered` at the *k*-th boundary —
before the transition applies, so the crash observes the machine
mid-operation.  Metadata stores carry an ``undo`` closure (logical
rollback when their journal transaction did not commit) and an optional
``on_durable`` action (e.g. a block free that must not happen until the
truncate record is durable).  Data stores are tracked per inode so an
acknowledged ``msync``/``fsync`` can be checked against what physically
survived.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Callable, Iterable, List, Optional, Tuple

from repro.fs.intervals import IntervalSet

#: Size of a jbd2-style commit record (one journal block + descriptor).
COMMIT_RECORD_BYTES = 8 << 10


class StoreState(enum.Enum):
    """Where a tracked store sits relative to the ADR domain."""

    VOLATILE = "volatile"
    FLUSHED = "flushed"
    DURABLE = "durable"


class CrashTriggered(Exception):
    """Raised inside the simulation when the armed crash point fires.

    Propagates out of the running thread generator, through the engine
    and the workload driver, back to the :class:`CrashInjector` — the
    simulated machine simply stops mid-transition.
    """

    def __init__(self, point: int):
        super().__init__(f"injected crash at persistence transition {point}")
        self.point = point


@dataclass
class PersistRecord:
    """One tracked store and its durability lifecycle."""

    seq: int
    label: str
    #: ``"meta"`` (journaled, transactional), ``"data"`` (file contents,
    #: acked by msync/fsync) or ``"commit"`` (a journal commit record).
    kind: str
    ino: Optional[int]
    nbytes: int
    state: StoreState
    #: Durability was promised to the caller (fsync/msync returned, or a
    #: MAP_SYNC fault completed).  A crash that loses an acked record is
    #: an invariant violation, not bad luck.
    acked: bool = False
    #: Journal transaction this metadata record was sealed into; ``None``
    #: while the transaction is still open.
    txn_id: Optional[int] = None
    #: Logical rollback applied when the record is lost at a crash.
    undo: Optional[Callable[[], None]] = None
    #: Deferred side effect (block frees) applied once durable.
    on_durable: Optional[Callable[[], None]] = None
    durable_applied: bool = False
    #: Filled in by :meth:`PersistenceDomain.apply_crash`.
    survived: bool = False
    lost: bool = False


@dataclass
class CrashState:
    """What :meth:`PersistenceDomain.apply_crash` did to the machine."""

    lost_records: int = 0
    lost_bytes: float = 0.0
    acked_lost: int = 0
    rolled_back_txns: int = 0
    #: Committed metadata records whose blocks physically tore but which
    #: journal replay restores at mount (write-ahead logging at work).
    replayed_records: int = 0
    violations: List[str] = field(default_factory=list)


class PersistenceDomain:
    """Tracks simulated stores through volatile → flushed → durable.

    Construct unarmed (``crash_at=None``) to *probe*: the workload runs
    to completion and ``transitions`` counts the crash candidates.
    Construct with ``crash_at=k`` to crash deterministically at the
    *k*-th transition boundary.
    """

    def __init__(self, crash_at: Optional[int] = None):
        self.crash_at = crash_at
        self.crashed = False
        self.transitions = 0
        self.records: List[PersistRecord] = []
        self._unfenced: List[PersistRecord] = []
        self._open_txn: List[PersistRecord] = []
        self._txn_seq = 0
        #: Device blocks allocated by the tracked run (extent data and
        #: persistent file-table nodes); the recovery checker reconciles
        #: this against the extent trees to find orphaned blocks.
        self.allocated = IntervalSet()
        # Passive byte/frame accounting fed by mem.latency / mem.physmem.
        self.bytes_stored = 0.0
        self.bytes_flushed = 0.0
        self.pmem_frames = 0

    # -- crash-point clock -------------------------------------------------
    def _tick(self) -> None:
        if self.crashed:
            return
        if self.crash_at is not None and self.transitions == self.crash_at:
            self.crashed = True
            raise CrashTriggered(self.crash_at)
        self.transitions += 1

    def cursor(self) -> int:
        """Sequence number marking 'every record issued so far'."""
        return len(self.records)

    # -- store tracking ----------------------------------------------------
    def _store(self, label: str, kind: str, ino: Optional[int], nbytes: int,
               *, flushed: bool = False,
               undo: Optional[Callable[[], None]] = None,
               on_durable: Optional[Callable[[], None]] = None,
               ) -> PersistRecord:
        self._tick()
        rec = PersistRecord(
            seq=len(self.records), label=label, kind=kind, ino=ino,
            nbytes=nbytes,
            state=StoreState.FLUSHED if flushed else StoreState.VOLATILE,
            undo=undo, on_durable=on_durable)
        self.records.append(rec)
        if flushed:
            self._unfenced.append(rec)
        if kind == "meta":
            self._open_txn.append(rec)
        return rec

    def meta_store(self, label: str, ino: Optional[int], nbytes: int, *,
                   undo: Optional[Callable[[], None]] = None,
                   on_durable: Optional[Callable[[], None]] = None,
                   flushed: bool = False) -> PersistRecord:
        """A journaled metadata mutation joining the open transaction.

        Callers create the record *before* applying the in-memory
        mutation, so a crash at the record's own tick observes the
        pre-mutation state and needs no rollback.
        """
        return self._store(label, "meta", ino, nbytes, flushed=flushed,
                           undo=undo, on_durable=on_durable)

    def data_store(self, ino: int, nbytes: int, *,
                   nt: bool = False) -> PersistRecord:
        """File-contents store; nt-stores start life already flushed."""
        return self._store("data", "data", ino, nbytes, flushed=nt)

    def flush(self, rec: PersistRecord) -> None:
        """``clwb`` the record's cache lines toward the DIMM."""
        if rec.state is StoreState.VOLATILE:
            self._tick()
            rec.state = StoreState.FLUSHED
            self._unfenced.append(rec)

    def fence(self) -> None:
        """``sfence``: order every flushed store into the ADR domain."""
        self._tick()
        pending, self._unfenced = self._unfenced, []
        for rec in pending:
            rec.state = StoreState.DURABLE
            self._run_durable(rec)

    def _run_durable(self, rec: PersistRecord) -> None:
        if rec.on_durable is not None and not rec.durable_applied:
            rec.durable_applied = True
            rec.on_durable()

    # -- journal transactions ---------------------------------------------
    def commit_metadata(self, *, acked: bool,
                        skip_fence: bool = False) -> None:
        """Seal the open transaction jbd2-style.

        Flush every member record, write the commit record (nt-store),
        fence, and — for synchronous commits — acknowledge durability to
        the caller.  ``skip_fence`` is the test-only ordering-bug
        fixture: the commit record stays volatile and unfenced while the
        transaction is acknowledged anyway, exactly the bug the
        RecoveryChecker must catch.
        """
        txn = self._open_txn
        if not txn:
            if acked and not skip_fence:
                self.fence()
            return
        self._open_txn = []
        self._txn_seq += 1
        txn_id = self._txn_seq
        for rec in txn:
            rec.txn_id = txn_id
            self.flush(rec)
        commit = self._store("journal-commit", "commit", None,
                             COMMIT_RECORD_BYTES, flushed=not skip_fence)
        commit.txn_id = txn_id
        if not skip_fence:
            self.fence()
        if acked:
            for rec in txn:
                rec.acked = True
            commit.acked = True

    def sync_data(self, ino: int, upto: int) -> None:
        """msync/fsync durability contract for one file's data.

        Flush every still-volatile data store issued before ``upto``,
        fence, then acknowledge: the caller promised the application
        those bytes are durable.
        """
        for rec in self.records[:upto]:
            if rec.kind == "data" and rec.ino == ino:
                self.flush(rec)
        self.fence()
        for rec in self.records[:upto]:
            if rec.kind == "data" and rec.ino == ino:
                rec.acked = True

    # -- device-block accounting (bitmap shadow) ---------------------------
    def note_block_alloc(self, runs: Iterable[Tuple[int, int]]) -> None:
        for start, length in runs:
            self.allocated.add(start, start + length)

    def note_block_free(self, start: int, length: int) -> None:
        self.allocated.remove(start, start + length)

    # -- passive byte/frame accounting from the memory model ---------------
    def note_stream(self, nbytes: float, ntstore: bool) -> None:
        self.bytes_stored += nbytes
        if ntstore:
            self.bytes_flushed += nbytes

    def note_flush(self, nbytes: float) -> None:
        self.bytes_flushed += nbytes

    def note_pmem_frame(self, delta: int) -> None:
        self.pmem_frames += delta

    # -- crash application -------------------------------------------------
    def apply_crash(self, rng) -> CrashState:
        """Discard everything not durable; roll back torn transactions.

        Physical survival first: durable records always survive,
        volatile never, flushed by ``rng`` coin flip.  Then the logical
        layer: a metadata record is *kept* iff its transaction's commit
        record survived **and** every earlier commit survived too (the
        journal is sequential — replay stops at the first torn commit).
        Kept-but-torn records count as replayed (write-ahead logging
        restores them at mount).  Lost records are undone in reverse
        sequence order; losing an *acknowledged* record is recorded as
        an invariant violation.
        """
        state = CrashState()
        for rec in self.records:
            if rec.state is StoreState.DURABLE:
                rec.survived = True
            elif rec.state is StoreState.FLUSHED:
                rec.survived = rng.random() < 0.5
            else:
                rec.survived = False

        # Journal replay is sequential: commits are only honoured up to
        # the first one that tore.
        committed = set()
        for rec in self.records:
            if rec.kind != "commit":
                continue
            if not rec.survived:
                break
            committed.add(rec.txn_id)

        rolled: set = set()
        open_rolled = False
        for rec in reversed(self.records):
            if rec.kind == "commit":
                keep = rec.txn_id in committed
            elif rec.kind == "meta":
                keep = rec.txn_id is not None and rec.txn_id in committed
                if not keep:
                    if rec.txn_id is None:
                        open_rolled = True
                    else:
                        rolled.add(rec.txn_id)
            else:
                keep = rec.survived
            if keep:
                if not rec.survived:
                    state.replayed_records += 1
                # Deferred side effects of committed records run even if
                # the crash beat the fence that would have run them.
                self._run_durable(rec)
                continue
            rec.lost = True
            state.lost_records += 1
            state.lost_bytes += rec.nbytes
            if rec.acked:
                state.acked_lost += 1
                state.violations.append(
                    f"acked {rec.kind} store lost at crash: "
                    f"{rec.label} (ino={rec.ino}, seq={rec.seq})")
            if rec.undo is not None:
                rec.undo()
        state.rolled_back_txns = len(rolled) + (1 if open_rolled else 0)
        self.crashed = True
        return state
