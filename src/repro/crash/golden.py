"""Pinned crash sweeps for the zero-violation golden gate.

Two fixed crash configurations — one per workload — whose integer-
exact :meth:`CrashSummary.to_state` is serialised to canonical JSON.
The golden file pins two promises at once:

* **zero invariant violations** at every explored crash point (the
  durability property itself), and
* **replica determinism** — the same transitions are enumerated, the
  same points sampled and the same state lost, run after run, machine
  after machine.

``python -m repro.crash.golden`` (re)captures the file;
``tests/test_crash_golden.py`` replays the configs and fails on any
drift.  Recapture only when a PR intentionally changes what the
tracked workloads persist — and say so in the PR.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Dict

GOLDEN_PATH = (Path(__file__).resolve().parents[3]
               / "tests" / "golden" / "crash_smoke.json")

#: (workload, seed, max_points) — small enough for CI, big enough to
#: cross every phase of both workloads.
PINNED = (("syncbench", 0, 12), ("kvstore", 0, 8))


def golden_states() -> Dict[str, Dict[str, object]]:
    """Execute the pinned crash sweeps on fresh machines."""
    from repro.crash.injector import run_crash
    from repro.system import System

    out: Dict[str, Dict[str, object]] = {}
    for workload, seed, max_points in PINNED:
        summary = run_crash(lambda: System(device_bytes=1 << 30),
                            workload, seed=seed, max_points=max_points)
        out[f"{workload}/seed{seed}"] = summary.to_state()
    return out


def golden_json() -> str:
    return json.dumps(golden_states(), indent=2, sort_keys=True) + "\n"


def main() -> None:
    GOLDEN_PATH.parent.mkdir(parents=True, exist_ok=True)
    GOLDEN_PATH.write_text(golden_json())
    print(f"captured {GOLDEN_PATH}")


if __name__ == "__main__":
    main()
