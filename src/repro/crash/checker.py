"""Post-crash recovery and invariant verification.

After :meth:`PersistenceDomain.apply_crash` has discarded every
not-yet-durable store and rolled torn journal transactions back, the
machine is rebooted and :class:`RecoveryChecker` plays the part of the
mount path:

1. **Journal replay already happened** — write-ahead logging means a
   committed-but-torn metadata record was restored by ``apply_crash``
   (counted as replayed); the checker charges mount-time cycles for it.
2. **Persistent file tables** are re-synced with their extent maps via
   :class:`repro.core.recovery.RecoveryLog` (truncate a leading table,
   replay missing PTEs) and then validated entry-by-entry.
3. **Invariants** are asserted: no acknowledged ``msync``/``fsync``
   data lost, extent trees well-formed, sizes within mapped blocks, no
   two files sharing a physical block, no mapped block simultaneously
   free in the allocator bitmap.
4. **Orphaned blocks** — allocated on the device but reachable from no
   extent tree or table (the crash hit between bitmap update and
   extent-record creation) — are reclaimed, exactly like ext4's orphan
   list processing.  Orphans are *expected* occasionally; losing acked
   data never is.

The result is a :class:`CrashPointOutcome`; zero ``violations`` is the
acceptance bar for every enumerated crash point.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Set, Tuple

from repro.core.recovery import (RecoveryLog, RecoveryReport,
                                 verify_table_consistency)
from repro.crash.domain import CrashState, PersistenceDomain
from repro.fs.block import BLOCK_SIZE
from repro.fs.journal import Journal
from repro.obs import Counter, CostDomain, charge
from repro.system import System


@dataclass
class CrashPointOutcome:
    """Everything one explored crash point produced."""

    point: int
    violations: List[str] = field(default_factory=list)
    lost_records: int = 0
    lost_bytes: float = 0.0
    rolled_back_txns: int = 0
    replayed_records: int = 0
    orphan_blocks: int = 0
    tables_repaired: int = 0
    ptes_replayed: int = 0
    recovery_cycles: float = 0.0

    @property
    def ok(self) -> bool:
        return not self.violations


class RecoveryChecker:
    """Mount-time recovery + invariant audit for one crashed machine."""

    def __init__(self, system: System, domain: PersistenceDomain,
                 crash_state: CrashState):
        self.system = system
        self.domain = domain
        self.crash_state = crash_state

    # -- entry point -------------------------------------------------------
    def run(self, point: int) -> CrashPointOutcome:
        out = CrashPointOutcome(
            point=point,
            violations=list(self.crash_state.violations),
            lost_records=self.crash_state.lost_records,
            lost_bytes=self.crash_state.lost_bytes,
            rolled_back_txns=self.crash_state.rolled_back_txns,
            replayed_records=self.crash_state.replayed_records)
        report = self._replay_tables()
        if report is not None:
            out.tables_repaired = report.tables_repaired
            out.ptes_replayed = report.ptes_replayed
        out.violations.extend(self._check_extents())
        out.violations.extend(self._check_tables())
        out.violations.extend(self._check_device())
        out.orphan_blocks = self._reclaim_orphans()
        out.recovery_cycles = self._charge_recovery(out)

        stats = self.system.stats
        stats.add(Counter.CRASH_RECOVERY_CYCLES, out.recovery_cycles)
        stats.add(Counter.CRASH_INVARIANT_VIOLATIONS, len(out.violations))
        stats.add(Counter.CRASH_STORES_LOST, out.lost_records)
        stats.add(Counter.CRASH_RECORDS_REPLAYED, out.replayed_records)
        stats.add(Counter.CRASH_TXNS_ROLLED_BACK, out.rolled_back_txns)
        stats.add(Counter.CRASH_ORPHAN_BLOCKS_RECLAIMED, out.orphan_blocks)
        return out

    # -- persistent-table replay -------------------------------------------
    def _replay_tables(self) -> Optional[RecoveryReport]:
        manager = self.system._filetables
        if manager is None:
            return None
        return RecoveryLog(self.system.vfs, manager).recover_all()

    # -- invariants --------------------------------------------------------
    def _check_extents(self) -> List[str]:
        violations = []
        for inode in self.system.vfs.inodes():
            try:
                inode.extents.check_invariants()
            except AssertionError as exc:
                violations.append(
                    f"{inode.path}: torn extent tree: {exc}")
            mapped = inode.extents.block_count * BLOCK_SIZE
            if inode.size > mapped:
                violations.append(
                    f"{inode.path}: size {inode.size} exceeds mapped "
                    f"bytes {mapped}")
        return violations

    def _check_tables(self) -> List[str]:
        violations = []
        for inode in self.system.vfs.inodes():
            if inode.persistent_file_table is None:
                continue
            if not verify_table_consistency(inode):
                violations.append(
                    f"{inode.path}: persistent file table inconsistent "
                    f"with extent map after replay")
        return violations

    def _check_device(self) -> List[str]:
        violations = []
        device = self.system.device
        try:
            device.check_invariants()
        except AssertionError as exc:
            violations.append(f"device free-list corrupt: {exc}")
            return violations
        runs: List[Tuple[int, int, str]] = []
        for inode in self.system.vfs.inodes():
            for extent in inode.extents:
                runs.append((extent.physical,
                             extent.physical + extent.length, inode.path))
                if device.free_overlap(extent.physical, extent.length):
                    violations.append(
                        f"{inode.path}: mapped blocks "
                        f"[{extent.physical}, "
                        f"{extent.physical + extent.length}) marked free "
                        f"in the allocator bitmap")
            for block in self._table_node_blocks(inode):
                runs.append((block, block + 1, f"{inode.path}#table"))
                if device.free_overlap(block, 1):
                    violations.append(
                        f"{inode.path}: file-table node block {block} "
                        f"marked free in the allocator bitmap")
        runs.sort()
        for (s1, e1, p1), (s2, e2, p2) in zip(runs, runs[1:]):
            if s2 < e1:
                violations.append(
                    f"physical overlap: {p1} [{s1}, {e1}) vs "
                    f"{p2} [{s2}, {e2})")
        return violations

    def _table_node_blocks(self, inode) -> List[int]:
        table = inode.persistent_file_table
        if table is None:
            return []
        device = self.system.device
        nodes = list(table.pte_nodes.values()) + list(
            table.pmd_nodes.values())
        return [device.block_of(node.frame) for node in nodes]

    # -- orphan reclamation ------------------------------------------------
    def _reclaim_orphans(self) -> int:
        """Free device blocks reachable from no extent tree or table.

        The crash can land between the bitmap update and the creation
        of the extent record (the record's own tick fires first), which
        leaks allocated-but-unreferenced blocks — the moral equivalent
        of ext4's orphan inode list.  Mount reclaims them.
        """
        device = self.system.device
        known: Set[int] = set()
        for inode in self.system.vfs.inodes():
            for extent in inode.extents:
                known.update(range(extent.physical,
                                   extent.physical + extent.length))
            known.update(self._table_node_blocks(inode))
        orphan_runs: List[Tuple[int, int]] = []
        for start, end in list(self.domain.allocated):
            run_start = None
            for block in range(start, end):
                if block in known:
                    if run_start is not None:
                        orphan_runs.append((run_start, block - run_start))
                        run_start = None
                elif run_start is None:
                    run_start = block
            if run_start is not None:
                orphan_runs.append((run_start, end - run_start))
        total = 0
        for start, length in orphan_runs:
            device.free(start, length)
            self.domain.note_block_free(start, length)
            total += length
        return total

    # -- mount-time cost ---------------------------------------------------
    def _charge_recovery(self, out: CrashPointOutcome) -> float:
        """Charge mount-time recovery work to the ``crash`` domain.

        Scan every inode (cold VFS walk), apply each replayed journal
        record, refill replayed PTEs and return reclaimed orphans —
        the same unit costs the live paths pay.
        """
        costs = self.system.costs
        cycles = (len(list(self.system.vfs.inodes()))
                  * costs.vfs_open_cold_extra
                  + out.replayed_records
                  * costs.journal_commit / Journal.BATCH_FACTOR
                  + out.ptes_replayed * costs.filetable_pte_fill
                  + out.orphan_blocks * costs.block_free)

        def mount():
            yield charge(CostDomain.CRASH, "mount-recovery", cycles)

        self.system.engine.spawn(mount(), core=0, name="mount-recovery")
        self.system.run()
        return cycles


__all__ = ["CrashPointOutcome", "RecoveryChecker"]
