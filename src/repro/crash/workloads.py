"""Crash workloads: small, deterministic drivers for crash-point sweeps.

A crash workload is a plain callable ``fn(system)`` that runs a short
mix of durability-relevant operations to completion.  The injector runs
it many times — once unarmed to count persistence-state transitions,
then once per crash point with the domain armed — so the workloads here
are deliberately tiny compared to the performance workloads in
``repro.workloads``: a few hundred transitions each, covering every
durability path the checker knows how to verify:

* extending ``write()`` + ``fsync()`` — extent appends, size updates
  and acked journal commits (the surface the skip-fence bug fixture
  attacks);
* ``mmap()`` + stores + ``msync()`` — acked data flushes through the
  dirty-tracking sync epoch;
* DaxVM ``mmap`` of a large-enough file — persistent per-extent page
  tables, i.e. the RecoveryLog replay path;
* the KV store — MAP_SYNC acked commits, WAL rolls (unlink+create)
  and memtable flushes to fresh SSTables.

Register new workloads with :func:`crash_workload`; the CLI and the
``sweep crash`` experiment both look them up in :data:`CRASH_WORKLOADS`.
"""

from __future__ import annotations

from typing import Callable, Dict

from repro.system import System
from repro.workloads.kvstore import Interface, KVConfig, PmemKVStore
from repro.workloads.syncbench import SyncConfig, SyncDiscipline, run_sync

CRASH_WORKLOADS: Dict[str, Callable[[System], None]] = {}


def crash_workload(name: str):
    """Decorator: register a crash workload under ``name``."""
    def register(fn: Callable[[System], None]):
        CRASH_WORKLOADS[name] = fn
        return fn
    return register


def _append_fsync_phase(system: System, writes: int = 24,
                        write_bytes: int = 16 << 10,
                        syncs_every: int = 4) -> None:
    """Extending writes with periodic fsync: every write appends an
    extent run and bumps the inode size inside a journal transaction;
    every fsync seals and commits it with an application ack."""
    fs = system.fs

    def appender():
        f = yield from fs.open("/crash-append", create=True)
        for i in range(writes):
            yield from fs.write(f, i * write_bytes, write_bytes)
            if i % syncs_every == syncs_every - 1:
                yield from fs.fsync(f)
        yield from fs.close(f)

    system.spawn(appender(), core=0, name="crash-append")
    system.run()


@crash_workload("syncbench")
def syncbench_crash(system: System) -> None:
    """Three durability phases over one mounted image.

    Later phases run against the files (and journal state) the earlier
    ones left behind, so a crash in phase 3 still exercises recovery of
    phase-1 metadata.
    """
    _append_fsync_phase(system)
    # mmap + cached stores + msync: acked data through the sync epoch.
    run_sync(system, SyncConfig(
        file_size=1 << 20, op_size=1 << 10, ops_per_sync=4,
        num_syncs=16, discipline=SyncDiscipline.MMAP_FSYNC))
    # DaxVM + msync over a >=32 KB file: persistent per-extent page
    # tables are built and their PTE fills ride journal commits.
    run_sync(system, SyncConfig(
        file_size=1 << 20, op_size=1 << 12, ops_per_sync=2,
        num_syncs=6, discipline=SyncDiscipline.DAXVM_FSYNC))


@crash_workload("kvstore")
def kvstore_crash(system: System) -> None:
    """The paper's pmem KV store, shrunk until every structural event
    (WAL roll, memtable flush, SSTable map) happens within ~50 puts.

    MAP_SYNC write faults ack a journal commit per faulted page, so
    nearly every put is a durability point the checker must honour.
    """
    cfg = KVConfig(record_size=4 << 10,
                   memtable_limit=64 << 10,
                   sstable_size=256 << 10,
                   wal_size=128 << 10,
                   interface=Interface.MMAP,
                   recycle=True,
                   seed=11)
    process = system.new_process("kvcrash")
    store = PmemKVStore(system, process, cfg)

    def worker():
        yield from store.start()
        for i in range(48):
            yield from store.put()
            if i % 8 == 5:
                yield from store.get()
        yield from store.scan(4)

    system.spawn(worker(), core=0, name="kv-crash", process=process)
    system.run()


__all__ = ["CRASH_WORKLOADS", "crash_workload", "syncbench_crash",
           "kvstore_crash"]
