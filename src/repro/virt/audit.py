"""Crash/fault hardening audit for post-copy live migration.

The robustness claim this module earns: with a migration in flight,
you can cut power at any persistence transition, arm uncorrectable
errors on not-yet-pulled pages, and stall or throttle the migration
link — and the machine still never loses an acked guest write, never
lets poison into the destination image silently, always lands every
migration in COMPLETED or ABORTED (rolled back to a consistent
source), and keeps downtime under the budget.

Three attacks, all replica-deterministic (factory + naming-counter
reset, the PR-4/PR-5 discipline):

* **Crash attack** — the crash injector's point enumeration, with a
  hypervisor attached so points land mid-migration.  A power failure
  with pulls in flight rolls the job back (the destination's volatile
  state died); the standard recovery audit then checks the source.
* **Fault attack** — the fault injector's site sweep over the same
  guests, with extra sites steered onto the *migration link* touches
  (stalls exercise the pull-timeout → retry ladder; bandwidth windows
  throttle transfers) and UE sites landing on pages migration still
  has to pull.
* **Composed attack** — crash points taken on replicas that *also*
  carry an armed fault plan; recovery must satisfy both audits.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.analysis.results import RunResult
from repro.config import MEDIA_PRESETS
from repro.crash.checker import RecoveryChecker
from repro.crash.domain import CrashTriggered, PersistenceDomain
from repro.crash.injector import CrashInjector, CrashSummary
from repro.errors import MediaError, PoisonedPageError
from repro.faults.injector import FaultInjector, FaultSummary
from repro.faults.model import MediaFaults, SiteOutcome
from repro.faults.plan import FaultKind, FaultPlan, FaultSite, TouchRecord
from repro.obs import CostDomain, Counter
from repro.system import System
from repro.virt.hypervisor import VirtConfig

#: Guest workloads the audit sweeps (the crash workloads: they cover
#: appends+fsync, mmap stores+msync and DaxVM attachments).
AUDIT_WORKLOADS = ("syncbench", "kvstore")

#: Link stalls planted by the audit exceed ``migrate_pull_timeout``
#: so they time the pull out and enter the retry ladder.
_LINK_STALL_CYCLES = 400_000.0


def migrate_factory(*, media: str = "optane", device_gib: int = 1,
                    migrate_after: int = 24, seed: int = 0,
                    prefetch: bool = True):
    """A replica factory whose machines carry an armed hypervisor."""
    costs_factory = MEDIA_PRESETS[media]

    def factory() -> System:
        system = System(costs=costs_factory(),
                        device_bytes=device_gib << 30, aged=False)
        system.attach_hypervisor(VirtConfig(
            nested=True, migrate=True, migrate_after=migrate_after,
            prefetch=prefetch, seed=seed))
        return system

    return factory


def _settle_for_crash(system: System) -> List[str]:
    """Power failed: in-flight jobs roll back (destination volatile
    state died); return the virt invariant breaches seen so far."""
    hv = system.hypervisor
    if hv is None:
        return []
    for job in hv.jobs:
        if job.in_flight:
            job._rollback_now("power failed mid-migration")
    return hv.violations()


def _settle_for_faults(system: System) -> List[str]:
    """Run ended: settle jobs and collect virt invariant breaches."""
    hv = system.hypervisor
    if hv is None:
        return []
    hv.finalize()
    found = hv.violations()
    for i, job in enumerate(hv.jobs):
        if job.in_flight:
            found.append(f"job {i} neither completed nor rolled back "
                         f"({job.state})")
        if job.absorbed:
            found.append(f"job {i} absorbed poisoned pages: "
                         f"{job.absorbed}")
    return found


class MigrateCrashInjector(CrashInjector):
    """Crash points taken mid-migration: the parent's enumeration and
    recovery audit, plus rollback semantics and virt invariants."""

    def run_point(self, point: int):
        domain = PersistenceDomain(crash_at=point)
        system = self._build(domain)
        try:
            self.workload(system)
        except CrashTriggered:
            pass
        except MediaError:
            system.engine.reap_crashed()
        virt_violations = _settle_for_crash(system)
        rng = random.Random((self.seed << 24) ^ (point * 0x9E3779B1))
        state = domain.apply_crash(rng)
        system.vfs.inode_cache.evict_all()
        system._reboot()
        outcome = RecoveryChecker(system, domain, state).run(point=point)
        outcome.violations.extend(virt_violations)
        system.stats.add(Counter.CRASH_POINTS_EXPLORED, 1)
        system.stats.add(Counter.CRASH_STORES_TRACKED,
                         len(domain.records))
        return outcome


class MigrateFaultInjector(FaultInjector):
    """Fault sites armed mid-migration: the parent's handling audit,
    plus migration settlement checks per replica."""

    def run_site(self, site: FaultSite) -> SiteOutcome:
        faults = MediaFaults(FaultPlan((site,)))
        system = self._build(faults)
        violations: List[str] = []
        sigbus: Optional[PoisonedPageError] = None
        try:
            self.workload(system)
        except PoisonedPageError as err:
            sigbus = err
            system.engine.reap_crashed()
            self._repair(system, err, violations)
        violations.extend(_settle_for_faults(system))
        outcome = self._classify(site, faults, sigbus, violations)
        handling = system.engine.ledger.domain_total(CostDomain.FAULTS)
        return SiteOutcome(touch=site.touch, kind=site.kind,
                           outcome=outcome, violations=violations,
                           bytes_lost=faults.bytes_lost,
                           handling_cycles=handling)


def link_targeted_plan(records: Sequence[TouchRecord], *, seed: int,
                       max_sites: int, link_sites: int = 6) -> FaultPlan:
    """The generated plan plus sites steered onto migration-link
    touches: alternating stalls (pull timeout -> retry ladder) and
    bandwidth windows (throttled transfers)."""
    base = FaultPlan.generate(records, seed=seed, max_sites=max_sites)
    sites = {site.touch: site for site in base.ordered()}
    link = [r.index for r in records
            if r.category.startswith("migrate-")]
    rng = random.Random(seed ^ 0x11F4)
    rng.shuffle(link)
    added = 0
    for i, touch in enumerate(link):
        if added >= link_sites:
            break
        if touch in sites:
            continue
        if i % 2 == 0:
            sites[touch] = FaultSite(touch=touch, kind=FaultKind.STALL,
                                     stall_cycles=_LINK_STALL_CYCLES)
        else:
            sites[touch] = FaultSite(touch=touch,
                                     kind=FaultKind.BW_WINDOW,
                                     factor=3.0, duration=8)
        added += 1
    return FaultPlan(sites.values())


@dataclass
class MigrateAuditSummary:
    """Aggregate of one full migration-hardening audit."""

    seeds: List[int]
    migrate_after: int
    crash: List[CrashSummary] = field(default_factory=list)
    faults: List[FaultSummary] = field(default_factory=list)
    composed: List[CrashSummary] = field(default_factory=list)
    freq_hz: float = 2.7e9

    @property
    def points_explored(self) -> int:
        return (sum(s.points_explored for s in self.crash)
                + sum(s.sites_explored for s in self.faults)
                + sum(s.points_explored for s in self.composed))

    @property
    def violations(self) -> List[str]:
        found: List[str] = []
        for s in self.crash:
            found.extend(f"crash/{s.workload}/seed{s.seed}: {v}"
                         for v in s.violations)
        for s in self.faults:
            found.extend(f"faults/{s.workload}/seed{s.seed}: {v}"
                         for v in s.violations)
        for s in self.composed:
            found.extend(f"composed/{s.workload}/seed{s.seed}: {v}"
                         for v in s.violations)
        return found

    def to_state(self) -> Dict[str, object]:
        return {
            "seeds": list(self.seeds),
            "migrate_after": self.migrate_after,
            "crash_points": sum(s.points_explored for s in self.crash),
            "fault_sites": sum(s.sites_explored for s in self.faults),
            "composed_points": sum(s.points_explored
                                   for s in self.composed),
            "points_explored": self.points_explored,
            "violations": len(self.violations),
            "crash": [s.to_state() for s in self.crash],
            "faults": [s.to_state() for s in self.faults],
            "composed": [s.to_state() for s in self.composed],
        }

    def to_result(self) -> RunResult:
        cycles = (sum(s.recovery_cycles for s in self.crash)
                  + sum(s.handling_cycles for s in self.faults)
                  + sum(s.recovery_cycles for s in self.composed))
        return RunResult(
            label=f"migrate-audit/after{self.migrate_after}",
            cycles=cycles,
            operations=float(self.points_explored),
            counters={
                "audit.points_explored": float(self.points_explored),
                "audit.violations": float(len(self.violations)),
            },
            domains={"virt": cycles},
            freq_hz=self.freq_hz,
        )


def run_migrate_audit(*, workloads: Sequence[str] = AUDIT_WORKLOADS,
                      seeds: Sequence[int] = (0, 1),
                      max_points: int = 18, max_sites: int = 12,
                      composed_points: int = 6,
                      media: str = "optane", device_gib: int = 1,
                      migrate_after: int = 24) -> MigrateAuditSummary:
    """The full audit: crash, fault and composed attacks over every
    guest workload and seed.  Zero violations is the acceptance bar."""
    summary = MigrateAuditSummary(seeds=list(seeds),
                                  migrate_after=migrate_after)
    for workload in workloads:
        for seed in seeds:
            factory = migrate_factory(media=media,
                                      device_gib=device_gib,
                                      migrate_after=migrate_after,
                                      seed=seed)
            crash_inj = MigrateCrashInjector(
                factory, workload, seed=seed, max_points=max_points)
            crash_summary = crash_inj.run()
            summary.freq_hz = crash_inj._freq
            summary.crash.append(crash_summary)

            fault_inj = MigrateFaultInjector(
                factory, workload, seed=seed, max_sites=max_sites)
            records = fault_inj.probe()
            fault_inj.plan = link_targeted_plan(
                records, seed=seed, max_sites=max_sites)
            summary.faults.append(fault_inj.run())
        if composed_points > 0:
            # Crash x faults composition: replicas carry both an armed
            # fault plan and a crash point (satellite of PR 10).
            factory = migrate_factory(media=media,
                                      device_gib=device_gib,
                                      migrate_after=migrate_after,
                                      seed=seeds[0])
            probe_inj = MigrateFaultInjector(
                factory, workload, seed=seeds[0], max_sites=4)
            plan = FaultPlan.generate(probe_inj.probe(), seed=seeds[0],
                                      max_sites=4, bw_windows=1,
                                      stalls=1)
            composed = MigrateCrashInjector(
                factory, workload, seed=seeds[0],
                max_points=composed_points, fault_plan=plan)
            summary.composed.append(composed.run())
    return summary


__all__ = ["AUDIT_WORKLOADS", "MigrateAuditSummary",
           "MigrateCrashInjector", "MigrateFaultInjector",
           "link_targeted_plan", "migrate_factory", "run_migrate_audit"]
