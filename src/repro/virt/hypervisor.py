"""Guest VMs nested over DaxVM-backed files.

A :class:`Hypervisor` attached to a :class:`repro.system.System`
(``system.attach_hypervisor``) enrolls every process created after it
as a **guest**: the process's :class:`~repro.vm.mm.MMStruct` gets a
:class:`GuestAddressSpace` installed as ``mm.guest``, and the VM
layer's hooks route through it:

* ``mm.mmap`` / ``daxvm_mmap`` report new mappings via
  :meth:`GuestAddressSpace.note_mapping` (the migration residency
  snapshot is taken over these);
* every mapped access runs :meth:`GuestAddressSpace.on_access` before
  translation — the post-copy intercept point;
* ``mm._tlb_cost`` prices TLB misses through the scheme's
  *two-dimensional* walk (``nested_walk_cost``) when the guest is
  nested.

The design is deliberately two-speed.  A **pass-through** guest
(``VirtConfig()`` — no nested pricing, no migration) installs all the
hooks but yields nothing, charges nothing and bumps no counter: the
machine stays bit-identical to a bare one, pinned by the
``virt_equivalence`` golden gate.  Arming ``nested`` and/or
``migrate`` turns the same hooks into the real hypervisor.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.errors import InvalidArgumentError
from repro.obs import Counter


@dataclass
class VirtConfig:
    """Hypervisor knobs (part of sweep cache keys via ``to_state``)."""

    #: Price guest translations through the scheme's two-dimensional
    #: walk (EPT-style ``n*m + n + m`` references).
    nested: bool = False
    #: Arm a post-copy live migration: after ``migrate_after`` guest
    #: accesses the guest pauses, hands over minimal state and resumes
    #: on the destination, pulling pages on demand.
    migrate: bool = False
    #: Guest accesses before the migration pause triggers.
    migrate_after: int = 32
    #: Run the background prefetch kthread after resume.
    prefetch: bool = True
    #: Allow the degraded-mode fallback (remote-access pricing) when
    #: the pull retry ladder is exhausted; ``False`` aborts instead.
    degraded_ok: bool = True
    #: Diagnostic: enter degraded mode on the first pull (exercises
    #: the fallback path deterministically without a fault plan).
    force_degraded: bool = False
    #: Seeds the retry-backoff jitter.
    seed: int = 0

    def __post_init__(self) -> None:
        if self.migrate_after < 1:
            raise InvalidArgumentError("migrate_after must be >= 1")

    @property
    def passive(self) -> bool:
        """True when every hook is a guaranteed no-op."""
        return not (self.nested or self.migrate)

    def to_state(self) -> Dict[str, object]:
        return {
            "nested": self.nested,
            "migrate": self.migrate,
            "migrate_after": self.migrate_after,
            "prefetch": self.prefetch,
            "degraded_ok": self.degraded_ok,
            "force_degraded": self.force_degraded,
            "seed": self.seed,
        }

    @classmethod
    def from_state(cls, state: Dict[str, object]) -> "VirtConfig":
        return cls(
            nested=bool(state.get("nested", False)),
            migrate=bool(state.get("migrate", False)),
            migrate_after=int(state.get("migrate_after", 32)),
            prefetch=bool(state.get("prefetch", True)),
            degraded_ok=bool(state.get("degraded_ok", True)),
            force_degraded=bool(state.get("force_degraded", False)),
            seed=int(state.get("seed", 0)),
        )


class GuestAddressSpace:
    """One guest: the nested view over a process's mm_struct."""

    def __init__(self, hypervisor: "Hypervisor", process,
                 config: VirtConfig):
        self.hypervisor = hypervisor
        self.process = process
        self.mm = process.mm
        self.config = config
        #: Mappings reported by mmap paths (migration snapshots these).
        self.vmas: List = []
        self.accesses = 0
        #: The guest's (single) migration job, once triggered.
        self.job = None

    @property
    def nested(self) -> bool:
        """Consulted by ``MMStruct._tlb_cost`` for 2D walk pricing."""
        return self.config.nested

    def note_mapping(self, vma) -> None:
        self.vmas.append(vma)

    def on_access(self, vma, first_page: int, last_page: int, *,
                  write: bool = False):
        """Hypervisor intercept on every mapped access (generator).

        Pass-through guests return before the first yield *and* before
        the first counter bump — the golden gate depends on both.
        """
        cfg = self.config
        if not (cfg.nested or cfg.migrate):
            return
        self.accesses += 1
        self.mm.stats.add(Counter.VIRT_GUEST_ACCESSES)
        if not cfg.migrate:
            return
        if self.job is None and self.accesses >= cfg.migrate_after:
            self.job = self.hypervisor.start_migration(self)
            yield from self.job.pause_and_handover()
        if self.job is not None and self.job.in_flight:
            yield from self.job.on_guest_access(vma, first_page,
                                                last_page, write=write)


class Hypervisor:
    """Per-machine hypervisor: guest registry + migration jobs."""

    def __init__(self, system, config: Optional[VirtConfig] = None):
        self.system = system
        self.config = config or VirtConfig()
        self.guests: List[GuestAddressSpace] = []
        self.jobs: List = []

    def enroll(self, process) -> GuestAddressSpace:
        """Make ``process`` a guest (``System.new_process`` calls this
        for every process created while a hypervisor is attached)."""
        guest = GuestAddressSpace(self, process, self.config)
        process.mm.guest = guest
        self.guests.append(guest)
        return guest

    def start_migration(self, guest: GuestAddressSpace):
        from repro.virt.migration import MigrationJob

        job = MigrationJob(self, guest)
        self.jobs.append(job)
        return job

    def finalize(self) -> None:
        """Post-run settlement: every in-flight migration must end
        completed or rolled back (call after ``system.run()``)."""
        for job in self.jobs:
            job.finalize()

    def violations(self) -> List[str]:
        found: List[str] = []
        for i, job in enumerate(self.jobs):
            found.extend(f"job {i}: {v}" for v in job.violations)
        return found

    def to_state(self) -> Dict[str, object]:
        return {
            "config": self.config.to_state(),
            "guests": len(self.guests),
            "jobs": [job.to_state() for job in self.jobs],
        }


__all__ = ["GuestAddressSpace", "Hypervisor", "VirtConfig"]
