"""Guest VMs over DAX files with post-copy live migration.

See :mod:`repro.virt.hypervisor` for the guest/hypervisor layer,
:mod:`repro.virt.migration` for the migration state machine,
:mod:`repro.virt.audit` for the crash/fault hardening audit and
:mod:`repro.virt.golden` for the pass-through equivalence gate.
"""

from repro.virt.audit import (
    AUDIT_WORKLOADS,
    MigrateAuditSummary,
    MigrateCrashInjector,
    MigrateFaultInjector,
    link_targeted_plan,
    migrate_factory,
    run_migrate_audit,
)
from repro.virt.hypervisor import GuestAddressSpace, Hypervisor, VirtConfig
from repro.virt.migration import MigrationJob, MigrationState
from repro.virt.runner import MIGRATE_WORKLOADS, run_migrate

__all__ = [
    "AUDIT_WORKLOADS",
    "GuestAddressSpace",
    "Hypervisor",
    "MIGRATE_WORKLOADS",
    "MigrateAuditSummary",
    "MigrateCrashInjector",
    "MigrateFaultInjector",
    "MigrationJob",
    "MigrationState",
    "VirtConfig",
    "link_targeted_plan",
    "migrate_factory",
    "run_migrate",
    "run_migrate_audit",
]
