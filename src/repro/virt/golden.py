"""The virt-equivalence golden: bare machine vs pass-through guest.

The hypervisor hangs hooks on the hottest paths in the repo — every
``mmap`` and every mapped access — and ``MMStruct._tlb_cost`` consults
the guest for nested pricing.  The promise that buys them in: a guest
with **no migration** under a **pass-through** hypervisor
(``VirtConfig()``) is *bit-identical* to a bare machine — same clock,
same counters, same ledger, to the last float.

The golden file is captured from the **bare** machine — no hypervisor
attached, the guest workloads run exactly as they did before this
subsystem existed.  ``tests/test_virt_golden.py`` replays the same
workloads with a pass-through hypervisor attached (hooks installed,
every process enrolled) and byte-compares the states.

``python -m repro.virt.golden`` recaptures the file; do that only
when a PR intentionally changes simulated costs, and say so in the PR.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Dict

GOLDEN_PATH = (Path(__file__).resolve().parents[3]
               / "tests" / "golden" / "virt_equivalence.json")

#: Pinned guest workloads (the migration guests; see repro.virt.runner).
PINNED = ("syncbench", "kvstore")

#: Machine shape for the pinned runs (match the CI smoke).
MEDIA = "optane"
DEVICE_GIB = 1


def _build_system(passive_hypervisor: bool):
    from repro.config import MEDIA_PRESETS
    from repro.runner.worker import _reset_naming_counters
    from repro.system import System
    from repro.virt.hypervisor import VirtConfig

    _reset_naming_counters()
    system = System(costs=MEDIA_PRESETS[MEDIA](),
                    device_bytes=DEVICE_GIB << 30, aged=False)
    if passive_hypervisor:
        hv = system.attach_hypervisor(VirtConfig())
        assert hv.config.passive
    return system


def machine_state(system) -> Dict[str, object]:
    """Everything observable: clock, counters, per-domain ledger."""
    from repro.obs import CostDomain

    return {
        "now": system.engine.now,
        "counters": dict(sorted(system.stats.counters.items())),
        "domains": {d.value: system.engine.ledger.domain_total(d)
                    for d in CostDomain},
    }


def run_state(workload: str, *,
              passive_hypervisor: bool) -> Dict[str, object]:
    """Run one pinned guest workload and snapshot the machine."""
    from repro.crash.workloads import CRASH_WORKLOADS

    system = _build_system(passive_hypervisor)
    CRASH_WORKLOADS[workload](system)
    if system.hypervisor is not None:
        system.hypervisor.finalize()
        assert not system.hypervisor.jobs, \
            "a passive hypervisor must never start a migration"
    return machine_state(system)


def golden_states() -> Dict[str, object]:
    """The bare-machine states (no hypervisor attached at all)."""
    return {workload: run_state(workload, passive_hypervisor=False)
            for workload in PINNED}


def golden_json() -> str:
    return json.dumps(golden_states(), indent=2, sort_keys=True) + "\n"


def main() -> None:
    GOLDEN_PATH.parent.mkdir(parents=True, exist_ok=True)
    GOLDEN_PATH.write_text(golden_json())
    print(f"captured {GOLDEN_PATH}")


if __name__ == "__main__":
    main()
