"""Run one guest workload under the hypervisor and report it.

``run_migrate`` drives a guest workload (the short, deterministic
crash workloads double as guest drivers — they exercise mmap stores,
msync epochs and DaxVM attachments, exactly the surfaces migration
intercepts) on a system with a hypervisor attached, settles every
migration job and shapes the outcome as a
:class:`~repro.analysis.results.RunResult` whose counters carry the
whole ``virt.*`` namespace plus per-job downtime.  The ``migrate``
sweep points and the ``perf migrate`` target both go through here.
"""

from __future__ import annotations

from repro.analysis.results import RunResult
from repro.crash.workloads import CRASH_WORKLOADS
from repro.errors import InvalidArgumentError
from repro.obs import CostDomain, Counter

#: Guest workloads runnable under migration (name -> fn(system)).
MIGRATE_WORKLOADS = dict(CRASH_WORKLOADS)

#: The virt counter namespace reported by every migrate run.
VIRT_COUNTERS = (
    Counter.VIRT_GUEST_ACCESSES,
    Counter.VIRT_NESTED_WALK_CYCLES,
    Counter.VIRT_MIGRATIONS_STARTED,
    Counter.VIRT_MIGRATIONS_COMPLETED,
    Counter.VIRT_MIGRATIONS_ABORTED,
    Counter.VIRT_DOWNTIME_CYCLES,
    Counter.VIRT_PAGES_PULLED,
    Counter.VIRT_PREFETCHED_PAGES,
    Counter.VIRT_PULL_RETRIES,
    Counter.VIRT_PULL_POISONED,
    Counter.VIRT_DEGRADED_ACCESSES,
)


def run_migrate(system, workload: str = "syncbench") -> RunResult:
    """Run ``workload`` as a guest on ``system`` (hypervisor attached
    via ``system.attach_hypervisor``), settle migrations, report."""
    hv = system.hypervisor
    if hv is None:
        raise InvalidArgumentError(
            "run_migrate needs a hypervisor: call "
            "system.attach_hypervisor(VirtConfig(...)) first")
    fn = MIGRATE_WORKLOADS.get(workload)
    if fn is None:
        raise InvalidArgumentError(
            f"unknown migrate workload {workload!r}; known: "
            f"{sorted(MIGRATE_WORKLOADS)}")
    fn(system)
    hv.finalize()
    stats = system.stats
    ledger = system.engine.ledger
    counters = {c.value: stats.get(c) for c in VIRT_COUNTERS}
    counters["virt.jobs"] = float(len(hv.jobs))
    counters["virt.violations"] = float(len(hv.violations()))
    operations = stats.get(Counter.VIRT_GUEST_ACCESSES) or 1.0
    return RunResult(
        label=f"migrate:{workload}",
        cycles=system.engine.now,
        operations=operations,
        counters=counters,
        domains={CostDomain.VIRT.value:
                 ledger.domain_total(CostDomain.VIRT)},
        freq_hz=system.costs.machine.freq_hz,
    )


__all__ = ["MIGRATE_WORKLOADS", "run_migrate"]
