"""Post-copy live migration over a priced inter-machine link.

The state machine (one :class:`MigrationJob` per guest):

``PULLING`` ← pause → minimal-state handover → resume-on-destination.
    The triggering access pays the **downtime**: two VM exits, one
    link round trip and the handover transfer (vCPU registers, device
    state, the dirty bitmap — ``migrate_handover_bytes``).  Every
    other guest vCPU is frozen for the same window
    (``broadcast_interrupt`` restricted to the guest's cores).  After
    resume, accesses to not-yet-pulled pages VM-exit and **demand
    pull** them over the link; a background prefetch kthread streams
    the rest in batches.

``DEGRADED``
    A pull that times out (a device stall on the link raises
    :class:`~repro.errors.DeviceStallError`) walks a seeded, bounded
    retry ladder — exponential in-sim backoff, ``virt.pull_retries``
    — and, exhausted, falls back to remote-access pricing: unpulled
    pages are served from the source at ``migrate_degraded_factor``
    cost, without ever migrating.  A budget of such accesses bounds
    the agony.

``COMPLETED`` / ``ABORTED``
    Completed when the pulled set covers the residency snapshot.
    Aborted — rollback to a consistent source — when retries and the
    degraded budget are both spent, or when poisoned source pages can
    never transfer.  Rollback discards the destination's pulled pages
    and pays one reverse handover; the guest keeps running on the
    source, whose DAX files never stopped being authoritative.

Faults compose: the migration link is a :meth:`MediaFaults.link_touch`
client (bandwidth windows slow transfers, stalls trigger the retry
ladder), and a UE armed on a not-yet-pulled source page surfaces to
the guest as ``memory_failure()`` + SIGBUS at pull time — never
silently absorbed into the destination image.  All migration costs
are booked to the ``virt`` ledger domain.
"""

from __future__ import annotations

import enum
import random
from typing import Dict, List, Set, Tuple

from repro.errors import DeviceStallError
from repro.obs import CostDomain, Counter, charge
from repro.vm.vma import PAGE_SIZE

#: Residency-snapshot cap per mapping (pages).  Guests in this repo
#: map a few MB; the cap only guards against a pathological mapping
#: turning the snapshot set into the simulation's working set.
_SNAPSHOT_CAP = 1 << 15


class MigrationState(enum.Enum):
    PULLING = "pulling"
    DEGRADED = "degraded"
    COMPLETED = "completed"
    ABORTED = "aborted"

    def __str__(self) -> str:  # pragma: no cover - display aid
        return self.value


class MigrationJob:
    """One guest's post-copy migration, pause to settlement."""

    def __init__(self, hypervisor, guest):
        self.hypervisor = hypervisor
        self.guest = guest
        self.system = hypervisor.system
        self.engine = self.system.engine
        self.costs = self.system.costs
        self.stats = self.system.stats
        self.config = hypervisor.config
        self.rng = random.Random(self.config.seed ^ 0x5EED)
        self.state = MigrationState.PULLING
        #: (inode number, file page) resident on the source at pause.
        self.resident: Set[Tuple[int, int]] = set()
        #: Pages transferred to the destination so far.
        self.pulled: Set[Tuple[int, int]] = set()
        self._inodes: Dict[int, object] = {}
        self.downtime_cycles = 0.0
        self.demand_pulls = 0
        self.retries = 0
        self.degraded_count = 0
        self.final_sweep_pages = 0
        self.abort_reason = ""
        self.degraded_reason = ""
        #: Poisoned pages that would have entered the destination image
        #: (must stay empty; the audit asserts on it).
        self.absorbed: List[Tuple[int, int]] = []
        #: Invariant breaches observed live (downtime bound, absorption).
        self.violations: List[str] = []

    # -- state queries ---------------------------------------------------
    @property
    def in_flight(self) -> bool:
        return self.state in (MigrationState.PULLING,
                              MigrationState.DEGRADED)

    # -- pause -> handover -> resume ------------------------------------
    def pause_and_handover(self):
        """Stop-the-world handover; runs on the triggering vCPU."""
        costs = self.costs
        self.stats.add(Counter.VIRT_MIGRATIONS_STARTED)
        self._snapshot_residency()
        self._set_defer()
        downtime = (2 * costs.vmexit_cost
                    + costs.migrate_link_latency
                    + costs.copy_cycles(costs.migrate_handover_bytes,
                                        costs.migrate_link_bw))
        self.downtime_cycles = downtime
        self.stats.add(Counter.VIRT_DOWNTIME_CYCLES, downtime)
        if downtime > costs.migrate_downtime_budget:
            self.violations.append(
                f"downtime {downtime:.0f} cycles exceeds budget "
                f"{costs.migrate_downtime_budget:.0f}")
        self.engine.broadcast_interrupt(downtime, CostDomain.VIRT,
                                        "migration-pause",
                                        only=self._guest_threads())
        yield charge(CostDomain.VIRT, "downtime", downtime)
        if not self.resident:
            self._finish()
            return
        if self.config.prefetch:
            self.system.spawn(self._prefetcher(),
                              core=self.engine.cores[-1].index,
                              name="migrate-prefetchd", daemon=True)

    def _snapshot_residency(self) -> None:
        for vma in self.guest.vmas:
            inode = vma.inode
            if inode is None or vma not in getattr(inode, "i_mmap", ()):
                continue
            first_fp = vma.file_offset // PAGE_SIZE
            npages = min(max(1, vma.length // PAGE_SIZE), _SNAPSHOT_CAP)
            self._inodes[inode.number] = inode
            for fp in range(first_fp, first_fp + npages):
                self.resident.add((inode.number, fp))

    def _guest_threads(self):
        cores = self.guest.mm.active_cores
        return [thread for thread in self.engine.threads
                if thread.core.index in cores]

    # -- monitor quiescence ---------------------------------------------
    def _set_defer(self) -> None:
        """Quiesce table migration for files under the pull: the MMU
        monitor re-pointing attachments mid-pull would race the
        pulled-page bookkeeping."""
        dax = getattr(self.guest.process, "daxvm", None)
        if dax is None:
            return
        numbers = set(self._inodes)

        def defer(inode) -> bool:
            return self.in_flight and inode.number in numbers

        dax.monitor.defer = defer

    def _clear_defer(self) -> None:
        dax = getattr(self.guest.process, "daxvm", None)
        if dax is not None:
            dax.monitor.defer = None

    # -- the demand path -------------------------------------------------
    def on_guest_access(self, vma, first_page: int, last_page: int, *,
                        write: bool = False):
        inode = vma.inode
        if inode is None or inode.number not in self._inodes:
            return
        ino = inode.number
        need = [fp for fp in (vma.file_page(p)
                              for p in range(first_page, last_page + 1))
                if (ino, fp) in self.resident
                and (ino, fp) not in self.pulled]
        if not need:
            return
        if self.state is MigrationState.DEGRADED:
            yield from self._degraded_access(len(need))
            return
        # EPT violation on a not-yet-pulled page: exit to the VMM.
        yield charge(CostDomain.VIRT, "vmexit", self.costs.vmexit_cost)
        yield from self._pull(inode, need, demand=True)

    # -- pulling ----------------------------------------------------------
    def _pull(self, inode, fps: List[int], *, demand: bool):
        """Transfer ``fps`` of ``inode`` over the link (generator)."""
        faults = self.system.faults
        if faults is not None:
            clean = []
            for fp in fps:
                hit = faults.find_poisoned(inode, fp, fp)
                if hit is None:
                    clean.append(fp)
                    continue
                frame, page = hit
                self.stats.add(Counter.VIRT_PULL_POISONED)
                if demand:
                    # The source read machine-checks: surface it to the
                    # guest (unmap everywhere + SIGBUS), never copy it.
                    yield from self.guest.mm.memory_failure(inode, page,
                                                            frame)
                    self.guest.mm._raise_sigbus(inode, frame, page)
                # Prefetch skips the page; a demand access will surface
                # the poison with a guest-visible fault.
            fps = clean
        if not fps:
            return
        if self.config.force_degraded and \
                self.state is MigrationState.PULLING:
            self._enter_degraded("forced by config")
            if demand:
                yield from self._degraded_access(len(fps))
            return
        nbytes = len(fps) * PAGE_SIZE
        attempt = 0
        while True:
            try:
                yield from self._transfer(nbytes, demand=demand)
                break
            except DeviceStallError:
                if attempt >= self.costs.migrate_max_pull_retries:
                    if (self.config.degraded_ok
                            and self.state is MigrationState.PULLING):
                        self._enter_degraded("pull retries exhausted")
                        if demand:
                            yield from self._degraded_access(len(fps))
                    else:
                        yield from self._abort("pull retries exhausted")
                    return
                backoff = (self.costs.migrate_retry_backoff
                           * (2 ** attempt)
                           * (0.75 + 0.5 * self.rng.random()))
                self.retries += 1
                self.stats.add(Counter.VIRT_PULL_RETRIES)
                yield charge(CostDomain.VIRT, "pull-retry-backoff",
                             backoff)
                attempt += 1
        ino = inode.number
        for fp in fps:
            if faults is not None and \
                    faults.find_poisoned(inode, fp, fp) is not None:
                # A UE armed *during* the transfer (a concurrent thread
                # touched the source page while our link copy was in
                # flight): refuse the page rather than absorb it.  It
                # stays unpulled — a demand access surfaces the SIGBUS,
                # and finalize rolls back if the poison never clears.
                self.stats.add(Counter.VIRT_PULL_POISONED)
                continue
            self.pulled.add((ino, fp))
        self.stats.add(Counter.VIRT_PAGES_PULLED, len(fps))
        if demand:
            self.demand_pulls += 1
        else:
            self.stats.add(Counter.VIRT_PREFETCHED_PAGES, len(fps))
        if self.resident <= self.pulled:
            self._finish()

    def _transfer(self, nbytes: int, *, demand: bool):
        """One link transfer attempt; raises DeviceStallError on a
        timeout (armed link stall)."""
        costs = self.costs
        faults = self.system.faults
        stall, factor = (faults.link_touch(
            "migrate-pull" if demand else "migrate-prefetch", nbytes)
            if faults is not None else (0.0, 1.0))
        if stall > 0.0:
            timeout = min(stall, costs.migrate_pull_timeout)
            yield charge(CostDomain.VIRT, "pull-timeout", timeout)
            raise DeviceStallError(
                f"migration link stalled for {stall:.0f} cycles "
                f"(pull timed out after {timeout:.0f})")
        cost = (costs.migrate_link_latency
                + costs.copy_cycles(nbytes,
                                    costs.migrate_link_bw / factor))
        yield charge(CostDomain.VIRT,
                     "page-pull" if demand else "prefetch-pull", cost)

    # -- the prefetch kthread ---------------------------------------------
    def _prefetcher(self):
        """Background page puller (daemon thread; dies with the run).

        Streams unpulled resident pages in batches every
        ``migrate_prefetch_interval`` cycles, grouped by inode in
        sorted order for determinism.  Bails when the state machine
        leaves PULLING or when an iteration makes no progress (only
        poisoned pages remain — those are the demand path's to
        surface)."""
        costs = self.costs
        while self.state is MigrationState.PULLING:
            yield charge(CostDomain.VIRT, "prefetch-idle",
                         costs.migrate_prefetch_interval)
            if self.state is not MigrationState.PULLING:
                break
            remaining = sorted(self.resident - self.pulled)
            if not remaining:
                break
            batch = remaining[:costs.migrate_prefetch_batch]
            by_ino: Dict[int, List[int]] = {}
            for ino, fp in batch:
                by_ino.setdefault(ino, []).append(fp)
            before = len(self.pulled)
            for ino in sorted(by_ino):
                inode = self._inodes.get(ino)
                if inode is None:
                    continue
                yield from self._pull(inode, by_ino[ino], demand=False)
                if self.state is not MigrationState.PULLING:
                    break
            if len(self.pulled) == before and \
                    self.state is MigrationState.PULLING:
                break

    # -- degraded mode ----------------------------------------------------
    def _enter_degraded(self, reason: str) -> None:
        self.state = MigrationState.DEGRADED
        self.abort_reason = ""
        self.degraded_reason = reason

    def _degraded_access(self, npages: int):
        """Serve an unpulled page remotely from the source: no
        migration progress, remote-access pricing with the degraded
        surcharge; a budget of these bounds the fallback."""
        costs = self.costs
        self.degraded_count += 1
        self.stats.add(Counter.VIRT_DEGRADED_ACCESSES)
        cost = costs.migrate_degraded_factor * (
            costs.migrate_link_latency
            + costs.copy_cycles(npages * PAGE_SIZE,
                                costs.migrate_link_bw))
        yield charge(CostDomain.VIRT, "degraded-access", cost)
        if self.degraded_count > costs.migrate_degraded_budget:
            yield from self._abort("degraded-access budget exceeded")

    # -- settlement -------------------------------------------------------
    def _finish(self) -> None:
        self.state = MigrationState.COMPLETED
        self.stats.add(Counter.VIRT_MIGRATIONS_COMPLETED)
        self._clear_defer()

    def _abort(self, reason: str):
        """Roll back to a consistent source (generator)."""
        if not self.in_flight:
            return
        self.state = MigrationState.ABORTED
        self.abort_reason = reason
        self.stats.add(Counter.VIRT_MIGRATIONS_ABORTED)
        # Destination discards its partial image; the source's DAX
        # files were authoritative throughout, so nothing replays.
        self.pulled.clear()
        self._clear_defer()
        cost = (self.costs.migrate_link_latency
                + self.costs.copy_cycles(self.costs.migrate_handover_bytes,
                                         self.costs.migrate_link_bw))
        yield charge(CostDomain.VIRT, "rollback", cost)

    def _rollback_now(self, reason: str) -> None:
        """Abort outside the engine (post-run settlement)."""
        self.state = MigrationState.ABORTED
        self.abort_reason = reason
        self.stats.add(Counter.VIRT_MIGRATIONS_ABORTED)
        self.pulled.clear()
        self._clear_defer()

    def finalize(self) -> None:
        """Post-run settlement: the job must end completed or aborted.

        Runs after ``system.run()``, outside the engine.  A still-
        pulling job streams its remaining clean pages in a final
        background sweep (the source is quiescent; no guest impact); a
        degraded job never converges and rolls back; remaining
        poisoned pages also force a rollback — they can never be
        copied.
        """
        if not self.in_flight:
            return
        if self.state is MigrationState.DEGRADED:
            self._rollback_now("finalized while degraded")
            return
        remaining = self.resident - self.pulled
        poisoned_left = {key for key in remaining
                         if self._poisoned_key(key)}
        sweep = remaining - poisoned_left
        if poisoned_left:
            self._rollback_now(
                f"{len(poisoned_left)} poisoned source pages cannot "
                f"transfer")
            return
        self.pulled |= sweep
        self.final_sweep_pages = len(sweep)
        if sweep:
            self.stats.add(Counter.VIRT_PAGES_PULLED, len(sweep))
        self._finish()

    def _poisoned_key(self, key: Tuple[int, int]) -> bool:
        faults = self.system.faults
        if faults is None:
            return False
        inode = self._inodes.get(key[0])
        return (inode is not None
                and faults.find_poisoned(inode, key[1], key[1])
                is not None)

    # -- reporting --------------------------------------------------------
    def to_state(self) -> Dict[str, object]:
        return {
            "state": self.state.value,
            "downtime_cycles": self.downtime_cycles,
            "resident_pages": len(self.resident),
            "pulled_pages": len(self.pulled),
            "demand_pulls": self.demand_pulls,
            "retries": self.retries,
            "degraded_accesses": self.degraded_count,
            "final_sweep_pages": self.final_sweep_pages,
            "abort_reason": self.abort_reason,
            "violations": list(self.violations),
        }


__all__ = ["MigrationJob", "MigrationState"]
