"""Baselines beyond plain Linux mmap/read: LATR lazy shootdowns."""

from repro.baselines.latr import LatrUnmapper

__all__ = ["LatrUnmapper"]
