"""LATR (Kumar et al., ASPLOS'18): lazy TLB coherence via messages.

LATR replaces synchronous shootdown IPIs with per-core message queues:
the unmapping core posts an invalidation record for every other core,
and each core applies pending invalidations at its next context
switch/tick.  The paper compares DaxVM's asynchronous unmapping
against LATR (Fig. 8a discussion) and finds LATR helps by ~10 % at 8
cores but stops scaling because:

* shootdowns are not the only bottleneck (paging and ``mmap_sem``
  remain), and
* LATR's own state tracking is protected by locks that become the new
  contention point.

Both properties are reproduced here: the unmapper still takes
``mmap_sem`` as a writer (it replaces only the TLB-coherence step) and
serialises on a global LATR state lock, while remote cores are charged
a small deferred apply cost instead of an IPI.
"""

from __future__ import annotations

from repro.config import CostModel
from repro.obs import Counter, CostDomain, charge
from repro.sim.engine import Engine
from repro.sim.locks import Spinlock
from repro.sim.stats import Stats
from repro.vm.mm import MMStruct
from repro.vm.vma import VMA

#: Posting one invalidation record to a remote core's queue.
LATR_MSG_POST = 160.0
#: Deferred apply cost charged to each remote core (sweep at tick).
LATR_APPLY = 300.0


class LatrUnmapper:
    """munmap with LATR lazy invalidation instead of IPIs."""

    def __init__(self, engine: Engine, mm: MMStruct, costs: CostModel,
                 stats: Stats):
        self.engine = engine
        self.mm = mm
        self.costs = costs
        self.stats = stats
        #: LATR's global state lock — its documented scalability wart.
        self.state_lock = Spinlock(engine, costs, "latr.state")
        self.lazy_invalidations = 0

    def munmap(self, vma: VMA):
        """Unmap with lazy TLB coherence.  Generator."""
        yield charge(CostDomain.SYSCALL, "latr-munmap",
                     self.costs.syscall_crossing)
        yield from self.mm.mmap_sem.acquire_write()
        pages = self.mm.page_table.clear_range(vma.start, vma.length)
        yield charge(CostDomain.SYSCALL, "pte-teardown",
                     pages * self.costs.pte_teardown
                     + self.costs.vma_free)
        # Post invalidation records instead of sending IPIs.
        yield from self.state_lock.acquire()
        remote = [c for c in self.mm.active_cores
                  if c != self.mm._initiator_core()]
        yield charge(CostDomain.TLB_SHOOTDOWN, "latr-msg-post",
                     LATR_MSG_POST * len(remote)
                     + self.costs.tlb_invlpg * min(
                         pages, self.costs.full_flush_threshold))
        self.engine.interrupt_cores(remote, LATR_APPLY)
        self.lazy_invalidations += len(remote)
        self.stats.add(Counter.LATR_LAZY_INVALIDATIONS, len(remote))
        yield from self.state_lock.release()
        self.mm._drop_vma(vma)
        yield from self.mm.mmap_sem.release_write()
        self.stats.add(Counter.VM_MUNMAP_CALLS)
