"""x86-64 four-level radix page tables, built as real data structures.

Process page tables and DaxVM *file tables* are both made of
:class:`PageTableNode` objects.  A file table is a fragment (a PTE- or
PMD-level subtree) owned by the file system and marked ``shared``;
DaxVM splices such fragments into process trees at interior entries
(:meth:`PageTable.attach_fragment`), which is precisely the paper's
O(1) mmap: the attach touches one interior entry per 2 MB/1 GB of
mapping instead of one PTE per 4 KB page.

Every node occupies one physical frame (from DRAM or PMem), so walking
a table can report which medium each level was read from — that is what
the page-walk cost model consumes to reproduce Table II — and the
storage tax of persistent file tables (§V-B) falls out of frame
accounting.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Optional, Tuple

from repro.errors import AddressSpaceError, SegmentationFault
from repro.mem.physmem import AllocPolicy, Medium, PhysicalMemory
from repro.paging.flags import PageFlags

#: Radix-tree levels, leaf to root.
PTE_LEVEL = 0
PMD_LEVEL = 1
PUD_LEVEL = 2
PGD_LEVEL = 3
Level = int

PAGE_SHIFT = 12
ENTRIES_PER_NODE = 512
PAGE_SIZE = 1 << PAGE_SHIFT


def level_shift(level: Level) -> int:
    """Bit shift of the given level's index field within an address."""
    return PAGE_SHIFT + 9 * level


def level_size(level: Level) -> int:
    """Bytes mapped by one entry at ``level`` (4 KB / 2 MB / 1 GB...)."""
    return 1 << level_shift(level)


def level_index(vaddr: int, level: Level) -> int:
    return (vaddr >> level_shift(level)) & (ENTRIES_PER_NODE - 1)


class Entry:
    """One slot in a page-table node: a leaf mapping or a child pointer."""

    __slots__ = ("frame", "flags", "child")

    def __init__(self, frame: Optional[int] = None,
                 flags: PageFlags = PageFlags.NONE,
                 child: Optional["PageTableNode"] = None):
        self.frame = frame
        self.flags = flags
        self.child = child

    @property
    def is_leaf(self) -> bool:
        return self.child is None

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        kind = "leaf" if self.is_leaf else "table"
        return f"<Entry {kind} frame={self.frame} {self.flags}>"


class PageTableNode:
    """One 4 KB page of 512 entries at a given level."""

    __slots__ = ("level", "entries", "frame", "medium", "shared")

    def __init__(self, level: Level, frame: int, medium: Medium,
                 shared: bool = False):
        self.level = level
        self.entries: Dict[int, Entry] = {}
        self.frame = frame
        self.medium = medium
        #: Shared nodes belong to a file table; process-tree teardown
        #: must detach them, never free or clear them.
        self.shared = shared

    @property
    def population(self) -> int:
        return len(self.entries)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (f"<PTNode L{self.level} {self.medium.value} "
                f"pop={self.population} shared={self.shared}>")


class Translation:
    """Result of a simulated page walk."""

    __slots__ = ("frame", "flags", "leaf_level", "level_media")

    def __init__(self, frame: int, flags: PageFlags, leaf_level: Level,
                 level_media: List[Medium]):
        self.frame = frame
        self.flags = flags
        self.leaf_level = leaf_level
        #: Media of the nodes visited, root first — the walker model
        #: charges PMem latency for levels resident in PMem.
        self.level_media = level_media

    @property
    def page_size(self) -> int:
        return level_size(self.leaf_level)


class PageTable:
    """A page-table radix tree rooted at a PGD (or a file-table fragment).

    ``root_level`` below PGD builds a *fragment*: DaxVM file tables are
    fragments rooted at PTE or PMD level.
    """

    def __init__(self, physmem: PhysicalMemory, medium: Medium = Medium.DRAM,
                 root_level: Level = PGD_LEVEL, shared: bool = False,
                 node: Optional[int] = None,
                 policy: AllocPolicy = AllocPolicy.PREFERRED):
        self.physmem = physmem
        self.medium = medium
        self.shared = shared
        #: NUMA placement of table frames: a process's tables live on
        #: its home node, a persistent file table on the file's node.
        #: ``None`` keeps the legacy node-0 allocation.
        self.node = node
        self.policy = policy
        self.root = self._new_node(root_level)
        self.nodes_allocated = 1
        # Last PTE-level node a 4 KB map landed in, keyed by the
        # address bits above the node (its 2 MB "tag").  Sequential
        # fault streams install hundreds of PTEs into one node; the
        # cache skips the interior walk for every repeat.  Anything
        # that can detach a subtree (prune/free, shared-fragment
        # detach, a huge leaf overwriting an interior slot) resets it.
        self._leaf_cache_tag = -1
        self._leaf_cache_node: Optional[PageTableNode] = None

    # -- node lifecycle -----------------------------------------------------
    def _new_node(self, level: Level) -> PageTableNode:
        frame = self.physmem.alloc_frame(self.medium, node=self.node,
                                         policy=self.policy)
        return PageTableNode(level, frame, self.medium, shared=self.shared)

    def _free_node(self, node: PageTableNode) -> None:
        if node is self._leaf_cache_node:
            self._leaf_cache_tag = -1
            self._leaf_cache_node = None
        self.physmem.free_frame(node.frame)
        self.nodes_allocated -= 1

    # -- mapping -----------------------------------------------------------
    def map_page(self, vaddr: int, frame: int, flags: PageFlags,
                 leaf_level: Level = PTE_LEVEL) -> int:
        """Install a leaf at ``leaf_level``; returns nodes created.

        ``leaf_level`` = PTE_LEVEL maps a 4 KB page, PMD_LEVEL a 2 MB
        huge page (flags gain HUGE), PUD_LEVEL a 1 GB huge page.
        """
        if vaddr % level_size(leaf_level):
            raise AddressSpaceError(
                f"vaddr {vaddr:#x} unaligned for level {leaf_level}")
        if leaf_level == PTE_LEVEL:
            if vaddr >> (PAGE_SHIFT + 9) == self._leaf_cache_tag:
                idx = (vaddr >> PAGE_SHIFT) & (ENTRIES_PER_NODE - 1)
                self._leaf_cache_node.entries[idx] = Entry(frame=frame,
                                                           flags=flags)
                return 0
        else:
            flags |= PageFlags.HUGE
            # The huge leaf overwrites an interior slot: any PTE node
            # beneath it is orphaned, so the cache cannot be trusted.
            self._leaf_cache_tag = -1
            self._leaf_cache_node = None
        node = self.root
        created = 0
        rw = PageFlags.rw()
        # level_index/level_size inlined: this walk runs once per fault.
        while node.level > leaf_level:
            idx = (vaddr >> (PAGE_SHIFT + 9 * node.level)) \
                & (ENTRIES_PER_NODE - 1)
            entry = node.entries.get(idx)
            if entry is None or entry.child is None:
                if entry is not None:
                    raise AddressSpaceError(
                        f"hugepage already maps {vaddr:#x}")
                child = self._new_node(node.level - 1)
                self.nodes_allocated += 1
                created += 1
                node.entries[idx] = Entry(frame=child.frame,
                                          flags=rw, child=child)
                node = child
            else:
                node = entry.child
        idx = (vaddr >> (PAGE_SHIFT + 9 * node.level)) \
            & (ENTRIES_PER_NODE - 1)
        node.entries[idx] = Entry(frame=frame, flags=flags)
        if leaf_level == PTE_LEVEL:
            self._leaf_cache_tag = vaddr >> (PAGE_SHIFT + 9)
            self._leaf_cache_node = node
        return created

    def unmap_page(self, vaddr: int, leaf_level: Level = PTE_LEVEL) -> bool:
        """Clear the leaf mapping ``vaddr``; returns True if present."""
        path = self._path_to(vaddr, leaf_level)
        if path is None:
            return False
        node, idx = path[-1]
        if idx in node.entries:
            del node.entries[idx]
            self._prune(path[:-1])
            return True
        return False

    def _path_to(self, vaddr: int, leaf_level: Level
                 ) -> Optional[List[Tuple[PageTableNode, int]]]:
        node = self.root
        path: List[Tuple[PageTableNode, int]] = []
        while node.level > leaf_level:
            idx = level_index(vaddr, node.level)
            path.append((node, idx))
            entry = node.entries.get(idx)
            if entry is None or entry.is_leaf or entry.child.shared:
                return None
            node = entry.child
        path.append((node, level_index(vaddr, node.level)))
        return path

    def _prune(self, path: List[Tuple[PageTableNode, int]]) -> None:
        """Free interior nodes that became empty, bottom-up."""
        for node, idx in reversed(path):
            entry = node.entries.get(idx)
            if entry is None or entry.child is None:
                continue
            child = entry.child
            if child.population == 0 and not child.shared:
                self._free_node(child)
                del node.entries[idx]

    # -- fragment attachment (DaxVM O(1) mmap) -----------------------------
    def attach_fragment(self, vaddr: int, fragment: PageTableNode,
                        flags: PageFlags) -> int:
        """Splice a shared subtree in at ``fragment.level + 1``.

        ``flags`` are the *attachment-level* permissions: the per-
        process rights of §IV-A2.  Returns interior nodes created.
        """
        attach_level = fragment.level + 1
        if vaddr % level_size(attach_level):
            raise AddressSpaceError(
                f"attach vaddr {vaddr:#x} unaligned to "
                f"{level_size(attach_level):#x}")
        node = self.root
        created = 0
        while node.level > attach_level:
            idx = level_index(vaddr, node.level)
            entry = node.entries.get(idx)
            if entry is None:
                child = self._new_node(node.level - 1)
                self.nodes_allocated += 1
                created += 1
                node.entries[idx] = Entry(frame=child.frame,
                                          flags=PageFlags.rw(), child=child)
                node = child
            elif entry.is_leaf:
                raise AddressSpaceError(f"hugepage blocks attach {vaddr:#x}")
            else:
                node = entry.child
        idx = level_index(vaddr, node.level)
        if idx in node.entries:
            raise AddressSpaceError(
                f"attach slot busy at {vaddr:#x} level {attach_level}")
        node.entries[idx] = Entry(frame=fragment.frame, flags=flags,
                                  child=fragment)
        return created

    def detach_fragment(self, vaddr: int, attach_level: Level) -> bool:
        """Remove a previously attached shared fragment (not freed)."""
        node = self.root
        while node.level > attach_level:
            idx = level_index(vaddr, node.level)
            entry = node.entries.get(idx)
            if entry is None or entry.is_leaf:
                return False
            node = entry.child
        idx = level_index(vaddr, node.level)
        entry = node.entries.get(idx)
        if entry is None or entry.is_leaf or not entry.child.shared:
            return False
        del node.entries[idx]
        return True

    # -- translation ---------------------------------------------------------
    def translate(self, vaddr: int) -> Translation:
        """Walk the tree; raises SegmentationFault on a hole."""
        node = self.root
        flags = PageFlags.rw() | PageFlags.NX
        media: List[Medium] = []
        while True:
            media.append(node.medium)
            idx = level_index(vaddr, node.level)
            entry = node.entries.get(idx)
            if entry is None:
                raise SegmentationFault(
                    f"no translation for {vaddr:#x} at level {node.level}")
            flags = flags.combine(entry.flags)
            if entry.is_leaf:
                base = entry.frame
                # Offset within a huge leaf resolves to a 4 KB frame.
                sub = (vaddr >> PAGE_SHIFT) & ((1 << (9 * node.level)) - 1)
                return Translation(base + sub, flags, node.level, media)
            node = entry.child

    def protect_range(self, vaddr: int, size: int,
                      flags: PageFlags) -> int:
        """Rewrite leaf permission bits over [vaddr, vaddr+size)."""
        changed = 0
        for leaf_vaddr, node, idx in self._leaves(vaddr, size):
            entry = node.entries[idx]
            status = entry.flags & (PageFlags.ACCESSED | PageFlags.DIRTY
                                    | PageFlags.HUGE)
            node.entries[idx] = Entry(entry.frame, flags | status,
                                      entry.child)
            changed += 1
        return changed

    def _leaves(self, vaddr: int, size: int
                ) -> Iterator[Tuple[int, PageTableNode, int]]:
        """Yield (vaddr, node, index) for present leaves in a range."""
        addr = vaddr
        end = vaddr + size
        while addr < end:
            node = self.root
            step = PAGE_SIZE
            found = None
            while True:
                idx = level_index(addr, node.level)
                entry = node.entries.get(idx)
                if entry is None:
                    step = level_size(node.level)
                    break
                if entry.is_leaf:
                    found = (addr, node, idx)
                    step = level_size(node.level)
                    break
                node = entry.child
            if found is not None:
                yield found
            addr = (addr // step + 1) * step

    # -- bulk teardown -----------------------------------------------------
    def clear_range(self, vaddr: int, size: int) -> int:
        """Unmap all leaves in a range; returns 4 KB pages cleared.

        Shared (file-table) subtrees encountered inside the range are
        detached whole rather than cleared entry by entry.
        """
        # A shared-fragment detach leaves the cached node owned by the
        # file table but unreachable from this tree — drop the cache
        # wholesale rather than tracking which subtree went away.
        self._leaf_cache_tag = -1
        self._leaf_cache_node = None
        pages = 0
        addr = vaddr
        end = vaddr + size
        while addr < end:
            node = self.root
            parent_chain: List[Tuple[PageTableNode, int]] = []
            step = PAGE_SIZE
            # level_index/level_size inlined: teardown walks every
            # mapped page of the range and dominates munmap profiles.
            while True:
                level = node.level
                if level == PTE_LEVEL:
                    # Leaf node: clear every in-range slot in one
                    # visit instead of re-walking from the root per
                    # 4 KB page — a munmap of N pages inside one PTE
                    # node is N dict deletes and a single prune, with
                    # the frame freed at the same point (when the last
                    # slot empties) as the page-at-a-time walk.
                    first = (addr >> PAGE_SHIFT) & (ENTRIES_PER_NODE - 1)
                    count = min(ENTRIES_PER_NODE - first,
                                (end - addr + PAGE_SIZE - 1)
                                >> PAGE_SHIFT)
                    entries = node.entries
                    removed = 0
                    for idx in range(first, first + count):
                        if idx in entries:
                            del entries[idx]
                            removed += 1
                    if removed:
                        pages += removed
                        self._prune(parent_chain)
                    step = 1 << (PAGE_SHIFT + 9)
                    break
                idx = (addr >> (PAGE_SHIFT + 9 * level)) \
                    & (ENTRIES_PER_NODE - 1)
                entry = node.entries.get(idx)
                if entry is None:
                    step = 1 << (PAGE_SHIFT + 9 * level)
                    break
                child = entry.child
                if child is not None and child.shared:
                    pages += child.population * (
                        level_size(level - 1) // PAGE_SIZE
                        if level - 1 > PTE_LEVEL else 1)
                    del node.entries[idx]
                    step = 1 << (PAGE_SHIFT + 9 * level)
                    break
                if child is None:
                    pages += 1 << (9 * level)
                    del node.entries[idx]
                    self._prune(parent_chain)
                    step = 1 << (PAGE_SHIFT + 9 * level)
                    break
                parent_chain.append((node, idx))
                node = child
            addr = (addr // step + 1) * step
        return pages

    def destroy(self) -> None:
        """Free every non-shared node (process exit)."""
        def _walk(node: PageTableNode) -> None:
            for entry in list(node.entries.values()):
                if not entry.is_leaf and not entry.child.shared:
                    _walk(entry.child)
            if not node.shared:
                self._free_node(node)
        _walk(self.root)
