"""Page table entry permission and status bits (x86-64 subset).

The paper's §IV-A observation drives this module's design: most PTE
status bits (accessed/dirty) exist to serve *volatile* memory
management.  DaxVM file tables therefore carry only permission bits set
to maximum, and per-process permissions are enforced at the attachment
level — the hardware applies the minimum rights found across all the
levels of a walk, which :meth:`PageFlags.combine` models.
"""

from __future__ import annotations

import enum


class PageFlags(enum.Flag):
    """x86-64 page table entry bits the simulator cares about."""

    NONE = 0
    PRESENT = enum.auto()
    WRITE = enum.auto()
    USER = enum.auto()
    ACCESSED = enum.auto()
    DIRTY = enum.auto()
    HUGE = enum.auto()
    #: No-execute; carried for completeness.
    NX = enum.auto()

    @staticmethod
    def rw() -> "PageFlags":
        return _RW

    @staticmethod
    def ro() -> "PageFlags":
        return _RO

    def combine(self, other: "PageFlags") -> "PageFlags":
        """Effective rights across two walk levels (minimum rights).

        PRESENT and WRITE must be granted at *every* level; status bits
        (ACCESSED/DIRTY/HUGE) are properties of the leaf and are
        carried through from whichever side holds them.
        """
        gated = (PageFlags.PRESENT | PageFlags.WRITE | PageFlags.USER)
        status = (self | other) & ~gated
        return (self & other & gated) | status

    @property
    def writable(self) -> bool:
        # PRESENT|WRITE == 0b11; raw-int test skips two Flag.__and__
        # round-trips on the fault hot path.
        return self._value_ & 0b11 == 0b11

    @property
    def present(self) -> bool:
        return bool(self._value_ & 0b1)


#: The two permission combos every mapping uses, built once — Flag
#: composition is Python-level work the fault path shouldn't repeat.
_RW = PageFlags.PRESENT | PageFlags.WRITE | PageFlags.USER
_RO = PageFlags.PRESENT | PageFlags.USER
