"""Pinned mini-sweeps for the MMU-equivalence gate.

The translation-scheme refactor moved the 4-level radix walk behind
the :class:`~repro.paging.schemes.TranslationScheme` interface.  The
``radix4`` scheme must be the pre-refactor simulator *bit for bit*:
every fault, attach, walk and teardown charges exactly the cycles it
charged when ``MMStruct`` called :class:`~repro.paging.pagetable.
PageTable` directly.  This module pins that promise the honest way —
the golden file was captured from the tree **before** the scheme
interface landed, and ``tests/test_mmu_golden.py`` replays the same
points (both with the default scheme and with ``scheme="radix4"``
spelled out) and byte-compares the results.

``python -m repro.paging.golden`` recaptures the file; do that only
when a PR intentionally changes simulated costs, and say so in the PR.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Dict, Optional

GOLDEN_PATH = (Path(__file__).resolve().parents[3]
               / "tests" / "golden" / "mmu_equivalence.json")

#: (sweep name, builder knobs, point filter) — small enough for CI,
#: wide enough to cross every path the scheme interface now sits on:
#: demand faults, DaxVM file-table attach/detach, TLB walk charging,
#: fork/teardown, on clean and aged images.
PINNED = (
    ("scaling", {"ops": 8, "size": 64 << 10, "media": "optane",
                 "device_gib": 1, "aged": False}, (1, 2)),
    ("scaling", {"ops": 6, "size": 64 << 10, "media": "optane",
                 "device_gib": 1, "aged": True}, (2,)),
    ("apache", {"ops": 12, "size": 64 << 10, "media": "optane",
                "device_gib": 1, "aged": True}, (1, 4)),
)


def golden_states(scheme: Optional[str] = None
                  ) -> Dict[str, Dict[str, object]]:
    """Run every pinned point on a fresh machine.

    ``scheme=None`` builds each :class:`~repro.system.System` exactly
    as the pre-refactor code did (default construction); a scheme name
    passes it explicitly, which the gate test uses to prove that
    ``scheme="radix4"`` and the default are the same machine.
    """
    from repro.config import MEDIA_PRESETS
    from repro.runner.manifest import result_state
    from repro.runner.sweeps import POINT_RUNNERS, build_sweep
    from repro.runner.worker import _reset_naming_counters
    from repro.system import System

    out: Dict[str, Dict[str, object]] = {}
    for name, knobs, xs in PINNED:
        sweep = build_sweep(name, **knobs)
        key = f"{name}-aged" if knobs["aged"] else name
        states: Dict[str, object] = out.setdefault(key, {})
        for point in sweep.points:
            if point.x not in xs:
                continue
            # Mirrors repro.runner.worker.run_point for 1-node points.
            _reset_naming_counters()
            costs = MEDIA_PRESETS[point.media]()
            kw = {} if scheme is None else {"scheme": scheme}
            system = System(costs=costs,
                            device_bytes=point.device_gib << 30,
                            aged=point.aged, **kw)
            run = POINT_RUNNERS[point.experiment](system, **point.params)
            locks = [lock.report() for lock in system.engine.locks
                     if lock.acquisitions]
            state = result_state(run, system.stats, system.ledger,
                                 locks, 0.0)
            states[point.label] = {k: v for k, v in state.items()
                                   if k != "wall_seconds"}
    return out


def golden_json(scheme: Optional[str] = None) -> str:
    return json.dumps(golden_states(scheme), indent=2,
                      sort_keys=True) + "\n"


def main() -> None:
    GOLDEN_PATH.parent.mkdir(parents=True, exist_ok=True)
    GOLDEN_PATH.write_text(golden_json())
    print(f"captured {GOLDEN_PATH}")


if __name__ == "__main__":
    main()
