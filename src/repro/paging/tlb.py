"""TLB reach/miss accounting and the IPI shootdown protocol.

Two distinct costs live here:

* **TLB misses** during data access — modelled analytically per
  workload scan (misses × average walk cost, with the walk cost coming
  from :class:`~repro.paging.walker.PageWalker`).  This reproduces the
  paper's observations that small-page mappings pay far more TLB misses
  than syscall access (the kernel maps all of PMem with huge pages) and
  that persistent file tables make each miss dearer (Table II).

* **TLB shootdowns** during unmap — simulated as real cross-core
  events: the initiator pays an IPI round and every other core running
  the process loses cycles to the interrupt handler.  Linux's policy of
  switching from per-page invalidations to one full flush beyond 33
  pages is implemented, as is the full-flush refill penalty that makes
  over-aggressive flushing visible.
"""

from __future__ import annotations

import enum
from typing import Iterable, Set

from repro.config import CostModel, MachineConfig
from repro.obs import Counter, CostDomain, charge
from repro.sim.engine import Engine
from repro.sim.stats import Stats


class AccessPattern(enum.Enum):
    """Spatial pattern of data access, as the walk model sees it."""

    SEQUENTIAL = "seq"
    RANDOM = "rand"


class TLBModel:
    """Analytic TLB miss counts for bulk scans and random op streams."""

    def __init__(self, costs: CostModel, machine: MachineConfig):
        self.costs = costs
        self.machine = machine

    def reach(self, page_size: int) -> int:
        """Bytes covered by a full TLB of ``page_size`` entries."""
        if page_size >= self.machine.pmd_size:
            return self.machine.tlb_entries_2m * page_size
        return self.machine.tlb_entries_4k * page_size

    def scan_misses(self, nbytes: int, page_size: int) -> int:
        """Misses for one sequential pass over ``nbytes``."""
        return max(0, -(-nbytes // page_size))

    def random_op_misses(self, num_ops: int, op_bytes: int, page_size: int,
                         footprint: int) -> float:
        """Misses for ``num_ops`` random ops over ``footprint`` bytes.

        When the footprint exceeds TLB reach, essentially every op
        misses (plus page-crossing misses for multi-page ops); within
        reach, misses decay to the cold-start fill.
        """
        pages_per_op = max(1, -(-op_bytes // page_size))
        if footprint > self.reach(page_size):
            return num_ops * pages_per_op
        resident = footprint // page_size
        return min(num_ops * pages_per_op, resident)


class ShootdownController:
    """IPI-based TLB invalidation across the cores running a process."""

    def __init__(self, engine: Engine, costs: CostModel,
                 stats: Stats, topology=None):
        self.engine = engine
        self.costs = costs
        self.stats = stats
        #: Optional repro.topology.MachineTopology (duck-typed): when
        #: present with >1 node, cross-socket IPIs cost extra cycles.
        self.topology = topology

    def wants_full_flush(self, npages: int) -> bool:
        """Linux's x86 policy: full flush beyond the per-page ceiling."""
        return npages > self.costs.full_flush_threshold

    def flush(self, initiator_core: int, active_cores: Iterable[int],
              npages: int, force_full: bool = False):
        """Invalidate ``npages`` on all cores; generator (yield from).

        ``active_cores`` is the process's cpumask — only those cores
        receive IPIs.  Charges the initiator the send+wait cost, steals
        handler cycles from every remote core, and (for full flushes)
        charges a refill penalty to each affected core.
        """
        full = force_full or self.wants_full_flush(npages)
        remote: Set[int] = {c for c in active_cores if c != initiator_core}

        if full:
            local_cost = self.costs.tlb_full_flush
            handler_cost = self.costs.tlb_full_flush
            # Refill penalty: the flush also discards translations of
            # the *live* working set, which later misses re-walk.  The
            # dead (unmapped) entries would never be touched again, so
            # the penalty is capped by a typical hot-set size rather
            # than the unmapped page count.
            refill = self.costs.tlb_refill_penalty * min(
                npages, self.costs.full_flush_hot_entries)
            self.stats.add(Counter.TLB_FULL_FLUSHES)
        else:
            local_cost = self.costs.tlb_invlpg * npages
            handler_cost = self.costs.tlb_invlpg * npages
            refill = 0.0
            self.stats.add(Counter.TLB_RANGE_FLUSHES)
            self.stats.add(Counter.TLB_PAGES_INVALIDATED, npages)

        initiator_cost = local_cost + refill
        if remote:
            initiator_cost += (self.costs.ipi_base
                               + self.costs.ipi_per_core * len(remote))
            self.engine.interrupt_cores(
                remote, self.costs.ipi_responder + handler_cost)
            self.stats.add(Counter.TLB_IPIS, len(remote))
            # Cross-socket IPIs traverse the UPI link: the initiator
            # waits longer for those acks.  Priced (and counted) only
            # on >1-node topologies so single-socket runs are
            # bit-identical to the pre-topology model.
            if self.topology is not None and self.topology.num_nodes > 1:
                my_node = self.topology.node_of_core(initiator_core)
                cross = sum(1 for c in remote
                            if self.topology.node_of_core(c) != my_node)
                if cross:
                    extra = self.topology.ipi_cross_socket_extra * cross
                    initiator_cost += extra
                    self.stats.add(Counter.NUMA_CROSS_IPIS, cross)
                    self.stats.add(Counter.NUMA_CROSS_IPI_CYCLES, extra)
        self.stats.add(Counter.TLB_SHOOTDOWNS)
        yield charge(CostDomain.TLB_SHOOTDOWN, "initiate-flush",
                     initiator_cost)
