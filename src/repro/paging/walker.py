"""The hardware page-walker cost model (Table II calibration).

A TLB miss triggers a radix walk.  Its cost depends on the access
pattern (how well the paging-structure caches and the data caches hold
the intermediate entries) and, crucially for DaxVM, on the **medium**
holding the leaf level: persistent file tables put PTEs in PMem, where
a leaf read costs ~10x a DRAM read.  The model reproduces the paper's
Table II (28/111 cycles DRAM, 103/821 cycles PMem for seq/rand access)
and feeds both the workload cost accounting and the DaxVM MMU
performance monitor (Table III).
"""

from __future__ import annotations

from repro.config import CostModel
from repro.mem.physmem import Medium
from repro.mem.tiers import medium_specs, spec_for
from repro.paging.pagetable import PMD_LEVEL, PTE_LEVEL, Translation
from repro.paging.tlb import AccessPattern


class PageWalker:
    """Average walk-cost model parameterised by pattern and leaf medium."""

    def __init__(self, costs: CostModel):
        self.costs = costs
        #: Per-medium leaf-read cycles via the tier registry (DRAM and
        #: PMem specs carry walk_leaf_dram/walk_leaf_pmem verbatim).
        self._specs = medium_specs(costs)

    def walk_cost(self, pattern: AccessPattern, leaf_medium: Medium,
                  leaf_level: int = PTE_LEVEL,
                  leaf_factor: float = 1.0) -> float:
        """Average cycles per TLB miss.

        ``leaf_factor`` is the NUMA latency multiplier on the leaf
        read: persistent file tables live on the *file's* socket, so a
        remote mapping pays the remote-PMem penalty on every leaf walk
        (exactly 1.0 — bit-identical — on uniform machines).
        """
        if leaf_level >= PMD_LEVEL:
            # Huge leaf: one fewer level and the PMD entry lives in the
            # process's private DRAM tables with high locality.
            return self.costs.walk_huge
        if pattern is AccessPattern.SEQUENTIAL:
            upper = self.costs.walk_upper_seq
            miss = self.costs.walk_leaf_miss_seq
        else:
            upper = self.costs.walk_upper_rand
            miss = self.costs.walk_leaf_miss_rand
        leaf = spec_for(self._specs, leaf_medium).walk_leaf
        return upper + miss * leaf * leaf_factor

    def walk_cost_for(self, translation: Translation,
                      pattern: AccessPattern,
                      leaf_factor: float = 1.0) -> float:
        """Walk cost using the media actually recorded by a tree walk.

        ``leaf_factor`` carries the same NUMA leaf multiplier as
        :meth:`walk_cost`; it used to be dropped here, so costs derived
        from an actual tree walk never charged the remote-leaf penalty
        that ``walk_cost`` callers pay.
        """
        leaf_medium = translation.level_media[-1]
        return self.walk_cost(pattern, leaf_medium, translation.leaf_level,
                              leaf_factor=leaf_factor)

    def mmu_overhead(self, misses: float, walk_cost: float,
                     total_cycles: float) -> float:
        """Fraction of execution spent in page walks (monitor input)."""
        if total_cycles <= 0:
            return 0.0
        return (misses * walk_cost) / total_cycles
