"""Pluggable translation architectures (``TranslationScheme``).

The paper's O(1) mmap — pre-populated file tables spliced into the
process tree — leans on one property of x86-64 paging: translations
live in a *radix* tree whose subtrees are position-independent, so a
shared fragment can appear in many address spaces at once.  To ask
whether DaxVM's conclusion survives a different MMU, this module puts
the whole translation structure behind one interface and provides four
architectures:

``radix4``
    The pre-refactor 4-level x86-64 radix tree, bit for bit: it *is*
    :class:`~repro.paging.pagetable.PageTable`, with the scheme hooks
    layered on top.  ``tests/golden/mmu_equivalence.json`` (captured
    before this module existed) gates that equivalence.
``radix5``
    x86-64 5-level paging (LA57): same fragments, same attach cost,
    one extra upper level on every walk and one more interior node per
    tree.
``hashed``
    An open-addressed inverted page table.  Translations are hash
    entries, not subtrees — there is nothing shareable to splice, so a
    DaxVM attach degrades to one insert *per page* of the region
    (``hashed_insert`` each): the stress test of the O(1) claim.  In
    exchange a walk is one probe chain with no leaf-locality
    distinction, and the table lives in process-private DRAM even when
    the file table is persistent.
``range``
    Segment/range translation (direct segments / RMM style): sorted
    ``[start, end) -> base frame`` entries with contiguity merging.  A
    DaxVM attach inserts one range per *contiguous run* of the region
    — O(1) on clean images without needing radix fragments, but an
    aged image shatters regions into many runs and every walk pays a
    ``log2(ranges)`` binary search.

Scheme instances own their structure frames (allocated per-node via
:class:`~repro.mem.physmem.PhysicalMemory`, honouring NUMA placement)
and serialise losslessly with ``to_state``/``from_state`` so sweep
workers can prove parity with the parallel runner's Stats/Ledger
round-trips.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.config import CostModel
from repro.errors import (
    AddressSpaceError,
    NotSupportedError,
    SegmentationFault,
)
from repro.mem.physmem import AllocPolicy, Medium, PhysicalMemory
from repro.paging.flags import PageFlags
from repro.paging.pagetable import (
    PAGE_SHIFT,
    PAGE_SIZE,
    PGD_LEVEL,
    PMD_LEVEL,
    PTE_LEVEL,
    Level,
    PageTable,
    PageTableNode,
    Translation,
    level_shift,
    level_size,
)
from repro.paging.tlb import AccessPattern
from repro.paging.walker import PageWalker

PMD_SIZE = 2 << 20

#: Flag bits a protect pass must preserve (hardware/status bits).
_STATUS = PageFlags.ACCESSED | PageFlags.DIRTY | PageFlags.HUGE


class TranslationScheme:
    """The contract every MMU architecture implements.

    Mapping primitives mirror :class:`PageTable` (``map_page`` /
    ``unmap_page`` / ``translate`` / ``protect_range`` /
    ``clear_range`` / ``destroy``), so the radix schemes satisfy them
    by inheritance.  On top sit the DaxVM capability hooks
    (``attach_region`` / ``attach_gb`` / ``detach_cost``), the
    walk-cost hooks the TLB model charges through, structure-frame
    accounting with medium + NUMA node, and lossless state snapshots.

    Restored (``from_state``) instances are *detached*: they carry no
    allocator, so they translate and re-serialise but must not map.
    """

    #: Registry key and per-scheme capability flag.
    name: str = "abstract"
    #: Can shared file-table fragments be spliced in directly?
    supports_fragments: bool = False

    # -- mapping primitives (PageTable-shaped) -------------------------
    def map_page(self, vaddr: int, frame: int, flags: PageFlags,
                 leaf_level: Level = PTE_LEVEL) -> int:
        raise NotImplementedError

    def unmap_page(self, vaddr: int, leaf_level: Level = PTE_LEVEL) -> bool:
        raise NotImplementedError

    def translate(self, vaddr: int) -> Translation:
        raise NotImplementedError

    def protect_range(self, vaddr: int, size: int,
                      flags: PageFlags) -> int:
        raise NotImplementedError

    def clear_range(self, vaddr: int, size: int) -> int:
        raise NotImplementedError

    def destroy(self) -> None:
        raise NotImplementedError

    def attach_fragment(self, vaddr: int, fragment: PageTableNode,
                        flags: PageFlags) -> int:
        raise NotSupportedError(
            f"{self.name}: no shareable fragments to attach")

    def detach_fragment(self, vaddr: int, attach_level: Level) -> bool:
        raise NotSupportedError(
            f"{self.name}: no shareable fragments to detach")

    # -- DaxVM capability hooks ----------------------------------------
    def attach_region(self, vaddr: int, table, region: int,
                      flags: PageFlags
                      ) -> Tuple[float, Optional[tuple]]:
        """Make one 2 MB file-table region visible at ``vaddr``.

        Returns ``(cycles, attachment)`` where ``attachment`` is the
        ``(vaddr, level, payload)`` record for ``vma.attachments`` (or
        ``None`` when the region holds no translations).  Schemes
        without fragments fall back to populate-on-attach with honest
        per-insert cost.
        """
        raise NotImplementedError

    def attach_gb(self, vaddr: int, table, gb: int, flags: PageFlags
                  ) -> Tuple[float, Optional[tuple]]:
        """PUD-granularity attach of one GB of a file table."""
        raise NotImplementedError

    def detach_cost(self, num_attachments: int) -> float:
        """Cycles to detach a mapping's attachments.

        Called immediately after :meth:`clear_range` over the mapping,
        so populate-on-attach schemes may price the entries that clear
        actually removed.
        """
        raise NotImplementedError

    # -- walk-cost hooks (consumed by MMStruct._tlb_cost) ---------------
    def walk_cost(self, walker: PageWalker, pattern: AccessPattern,
                  leaf_medium: Medium, leaf_factor: float = 1.0) -> float:
        """Average cycles per base-page TLB miss under this MMU."""
        raise NotImplementedError

    def huge_walk_cost(self, walker: PageWalker) -> float:
        """Average cycles per huge-page TLB miss under this MMU."""
        raise NotImplementedError

    #: Two-dimensional walk blowup for nested (guest) translation.
    #: For an n-level guest tree over an m-level host tree, a full 2D
    #: walk references n·m + n + m structure entries against n for a
    #: native walk (Intel SDM vol. 3, EPT): 24/4 = 6x for radix4 on
    #: radix4, 35/5 = 7x for radix5.  Non-radix schemes default to 2x —
    #: each guest lookup needs exactly one host lookup (two probe
    #: chains for hashed, two binary searches for range).
    NESTED_WALK_FACTOR: float = 2.0

    def nested_walk_cost(self, walker: PageWalker, pattern: AccessPattern,
                         leaf_medium: Medium,
                         leaf_factor: float = 1.0) -> float:
        """Average cycles per base-page TLB miss for a *guest*
        translation nested over this MMU (guest-virtual →
        guest-physical → host-physical).  Only consulted when a
        hypervisor marks the address space nested; bare machines never
        call it.
        """
        return self.NESTED_WALK_FACTOR * self.walk_cost(
            walker, pattern, leaf_medium, leaf_factor=leaf_factor)

    def nested_huge_walk_cost(self, walker: PageWalker) -> float:
        """Huge-page analogue of :meth:`nested_walk_cost`."""
        return self.NESTED_WALK_FACTOR * self.huge_walk_cost(walker)

    def effective_leaf_medium(self, table_medium: Medium) -> Medium:
        """Medium a walk's last load hits for a file-table mapping.

        Radix walks end in the shared table itself; schemes that copy
        entries into process-private structures stay in their own
        medium regardless of where the file table lives.
        """
        raise NotImplementedError

    def coalesce_tlb_misses(self, misses: float, vaddr: int,
                            npages: int) -> float:
        """Cap an access window's base-page TLB misses.

        Radix and hashed MMUs cache one translation per page, so the
        per-page miss estimate stands (returned unchanged — the default
        is bit-identical by construction).  Schemes whose TLB entries
        cover more than one page override this: the range MMU holds one
        entry per contiguous run, so a window spanning K runs can miss
        at most K times no matter how many pages it touches.
        """
        return misses

    # -- structure-frame accounting ------------------------------------
    def structure_frames(self) -> List[int]:
        """Frames owned by this scheme (shared fragments excluded)."""
        raise NotImplementedError

    def structure_report(self) -> Dict[str, object]:
        """Frames/bytes by NUMA node — the §V-B storage-tax view."""
        frames = self.structure_frames()
        by_node: Dict[str, int] = {}
        for frame in frames:
            node = (self.physmem.node_of(frame)
                    if getattr(self, "physmem", None) is not None else -1)
            by_node[str(node)] = by_node.get(str(node), 0) + 1
        return {"scheme": self.name, "frames": len(frames),
                "bytes": len(frames) * PAGE_SIZE, "by_node": by_node}

    # -- state ----------------------------------------------------------
    def to_state(self) -> Dict[str, object]:
        raise NotImplementedError

    @classmethod
    def from_state(cls, state: Dict[str, object]) -> "TranslationScheme":
        raise NotImplementedError


# ---------------------------------------------------------------------------
# radix4 / radix5 — the tree schemes.
# ---------------------------------------------------------------------------
class Radix4Scheme(PageTable, TranslationScheme):
    """The x86-64 4-level radix MMU — *the* pre-refactor simulator.

    Subclasses :class:`PageTable` directly (same ``__init__`` chain,
    same allocation order, same walk bookkeeping), so every frame
    number, every charged cycle and every serialised byte matches the
    tree before the scheme interface existed.  The golden gate
    (``tests/golden/mmu_equivalence.json``) holds it to that.
    """

    name = "radix4"
    supports_fragments = True
    ROOT_LEVEL = PGD_LEVEL
    #: (4·4 + 4 + 4) / 4 — the EPT-style 2D walk over two 4-level trees.
    NESTED_WALK_FACTOR = 6.0

    def __init__(self, physmem: PhysicalMemory, costs: CostModel,
                 medium: Medium = Medium.DRAM,
                 node: Optional[int] = None,
                 policy: AllocPolicy = AllocPolicy.PREFERRED):
        super().__init__(physmem, medium, root_level=type(self).ROOT_LEVEL,
                         shared=False, node=node, policy=policy)
        self.costs = costs

    # -- DaxVM hooks: replicate the historical DaxVM._attach body ------
    def attach_region(self, vaddr, table, region, flags):
        entry = table.region_entry(region)
        if entry is None:
            return 0.0, None
        kind, payload = entry
        if kind == "huge":
            self.map_page(vaddr, payload, flags | PageFlags.HUGE,
                          PMD_LEVEL)
        else:
            self.attach_fragment(vaddr, payload, flags)
        return self.costs.pmd_attach, (vaddr, PMD_LEVEL, payload)

    def attach_gb(self, vaddr, table, gb, flags):
        node = table.pmd_nodes.get(gb)
        if node is None:
            return 0.0, None
        self.attach_fragment(vaddr, node, flags)
        return self.costs.pmd_attach, (vaddr, PMD_LEVEL + 1, node)

    def detach_cost(self, num_attachments: int) -> float:
        return num_attachments * self.costs.pmd_attach

    # -- walk hooks ------------------------------------------------------
    def walk_cost(self, walker, pattern, leaf_medium, leaf_factor=1.0):
        return walker.walk_cost(pattern, leaf_medium,
                                leaf_factor=leaf_factor)

    def huge_walk_cost(self, walker):
        return walker.costs.walk_huge

    def effective_leaf_medium(self, table_medium: Medium) -> Medium:
        return table_medium

    # -- accounting ------------------------------------------------------
    def structure_frames(self) -> List[int]:
        frames: List[int] = []

        def _walk(node: PageTableNode) -> None:
            if node.shared:
                return
            frames.append(node.frame)
            for entry in node.entries.values():
                if not entry.is_leaf:
                    _walk(entry.child)

        _walk(self.root)
        return frames

    # -- state ----------------------------------------------------------
    def to_state(self) -> Dict[str, object]:
        return {
            "name": self.name,
            "medium": self.medium.value,
            "node": self.node,
            "nodes_allocated": self.nodes_allocated,
            "root": _node_state(self.root),
        }

    @classmethod
    def from_state(cls, state: Dict[str, object]) -> "Radix4Scheme":
        scheme = cls.__new__(cls)
        scheme.physmem = None
        scheme.costs = None
        scheme.medium = Medium(state["medium"])
        scheme.shared = False
        scheme.node = state["node"]
        scheme.policy = AllocPolicy.PREFERRED
        scheme.root = _node_from_state(state["root"], scheme.medium)
        scheme.nodes_allocated = int(state["nodes_allocated"])
        return scheme


class Radix5Scheme(Radix4Scheme):
    """5-level paging (LA57): one extra upper level on every walk.

    Structure and attach semantics are identical to ``radix4`` — the
    same shared fragments splice in at the same levels — but the tree
    is one node taller, and each walk pays one more upper-level step
    (cheap sequentially, where the paging-structure caches absorb it;
    dearer under random access).
    """

    name = "radix5"
    ROOT_LEVEL = PGD_LEVEL + 1
    #: (5·5 + 5 + 5) / 5 — two 5-level trees.
    NESTED_WALK_FACTOR = 7.0

    def walk_cost(self, walker, pattern, leaf_medium, leaf_factor=1.0):
        base = walker.walk_cost(pattern, leaf_medium,
                                leaf_factor=leaf_factor)
        extra = (self.costs.walk5_upper_extra_seq
                 if pattern is AccessPattern.SEQUENTIAL
                 else self.costs.walk5_upper_extra_rand)
        return base + extra

    def huge_walk_cost(self, walker):
        return walker.costs.walk_huge + self.costs.walk5_upper_extra_seq


def _node_state(node: PageTableNode) -> Dict[str, object]:
    """Serialise one owned node; shared children become stubs.

    Shared fragments belong to the file system, not the scheme, so the
    snapshot records only the splice (frame/level) — restoring yields
    a detached stub marked ``shared`` with no entries.
    """
    if node.shared:
        return {"level": node.level, "frame": node.frame, "shared": True}
    return {
        "level": node.level,
        "frame": node.frame,
        "shared": False,
        "entries": {
            str(idx): {
                "frame": entry.frame,
                "flags": int(entry.flags.value),
                "child": (_node_state(entry.child)
                          if entry.child is not None else None),
            }
            for idx, entry in sorted(node.entries.items())
        },
    }


def _node_from_state(state: Dict[str, object],
                     medium: Medium) -> PageTableNode:
    from repro.paging.pagetable import Entry

    node = PageTableNode(int(state["level"]), state["frame"], medium,
                         shared=bool(state["shared"]))
    if state["shared"]:
        return node
    for idx, ent in state["entries"].items():
        child = (None if ent["child"] is None
                 else _node_from_state(ent["child"], medium))
        node.entries[int(idx)] = Entry(frame=ent["frame"],
                                       flags=PageFlags(ent["flags"]),
                                       child=child)
    return node


# ---------------------------------------------------------------------------
# hashed — open-addressed inverted page table.
# ---------------------------------------------------------------------------
class HashedScheme(TranslationScheme):
    """Inverted page table: one flat open-addressed hash per process.

    Entries are ``(VPN -> frame, flags)`` at each leaf size.  The
    walk is a probe chain — the same cost sequential or random, since
    neighbouring VPNs hash apart and there is no leaf-locality to
    exploit — and the table lives in process-private DRAM, so a
    persistent (PMem) file table never slows the walk.  The price is
    the attach path: nothing is shareable, so DaxVM's O(1) splice
    becomes one ``hashed_insert`` per page.
    """

    name = "hashed"
    supports_fragments = False
    ENTRY_BYTES = 16
    INITIAL_CAPACITY = 1024
    LOAD_FACTOR = 0.7

    def __init__(self, physmem: PhysicalMemory, costs: CostModel,
                 medium: Medium = Medium.DRAM,
                 node: Optional[int] = None,
                 policy: AllocPolicy = AllocPolicy.PREFERRED):
        self.physmem = physmem
        self.costs = costs
        self.medium = medium
        self.node = node
        self.policy = policy
        #: leaf level -> {vpn-at-that-level -> [frame, flags]}.
        self.tables: Dict[int, Dict[int, List]] = {}
        self.capacity = self.INITIAL_CAPACITY
        self.frames: List[int] = []
        self._grow_to(self.capacity)
        self.inserts = 0
        self.resizes = 0
        self.attach_page_inserts = 0
        self.last_clear_entries = 0

    # -- bucket-array frames ---------------------------------------------
    def _frames_for(self, capacity: int) -> int:
        return -(-capacity * self.ENTRY_BYTES // PAGE_SIZE)

    def _grow_to(self, capacity: int) -> int:
        added = 0
        while len(self.frames) < self._frames_for(capacity):
            self.frames.append(self.physmem.alloc_frame(
                self.medium, node=self.node, policy=self.policy))
            added += 1
        return added

    @property
    def population(self) -> int:
        return sum(len(tbl) for tbl in self.tables.values())

    def _ensure_capacity(self) -> int:
        added = 0
        while self.population > self.LOAD_FACTOR * self.capacity:
            self.capacity *= 2
            added += self._grow_to(self.capacity)
            self.resizes += 1
        return added

    # -- mapping primitives ---------------------------------------------
    def map_page(self, vaddr, frame, flags, leaf_level=PTE_LEVEL):
        if vaddr % level_size(leaf_level):
            raise AddressSpaceError(
                f"vaddr {vaddr:#x} unaligned for level {leaf_level}")
        if leaf_level > PTE_LEVEL:
            flags |= PageFlags.HUGE
        for level in self.tables:
            if level > leaf_level and \
                    (vaddr >> level_shift(level)) in self.tables[level]:
                raise AddressSpaceError(
                    f"hugepage already maps {vaddr:#x}")
        tbl = self.tables.setdefault(leaf_level, {})
        tbl[vaddr >> level_shift(leaf_level)] = [frame, flags]
        self.inserts += 1
        return self._ensure_capacity()

    def unmap_page(self, vaddr, leaf_level=PTE_LEVEL):
        tbl = self.tables.get(leaf_level)
        if tbl is None:
            return False
        return tbl.pop(vaddr >> level_shift(leaf_level), None) is not None

    def translate(self, vaddr):
        for level in sorted(self.tables):
            entry = self.tables[level].get(vaddr >> level_shift(level))
            if entry is None:
                continue
            frame, flags = entry
            sub = (vaddr >> PAGE_SHIFT) & ((1 << (9 * level)) - 1)
            effective = (PageFlags.rw() | PageFlags.NX).combine(flags)
            return Translation(frame + sub, effective, level,
                               [self.medium])
        raise SegmentationFault(f"no translation for {vaddr:#x}")

    def _indices_in(self, tbl: Dict[int, List], level: int,
                    vaddr: int, size: int) -> List[int]:
        lo = vaddr >> level_shift(level)
        hi = (vaddr + size - 1) >> level_shift(level)
        if len(tbl) < hi - lo + 1:
            return [idx for idx in tbl if lo <= idx <= hi]
        return [idx for idx in range(lo, hi + 1) if idx in tbl]

    def protect_range(self, vaddr, size, flags):
        changed = 0
        for level, tbl in self.tables.items():
            for idx in self._indices_in(tbl, level, vaddr, size):
                frame, old = tbl[idx]
                tbl[idx] = [frame, flags | (old & _STATUS)]
                changed += 1
        return changed

    def clear_range(self, vaddr, size):
        pages = 0
        removed = 0
        for level, tbl in self.tables.items():
            for idx in self._indices_in(tbl, level, vaddr, size):
                del tbl[idx]
                removed += 1
                pages += level_size(level) // PAGE_SIZE
        self.last_clear_entries = removed
        return pages

    def destroy(self):
        for frame in self.frames:
            self.physmem.free_frame(frame)
        self.frames.clear()
        self.tables.clear()

    # -- DaxVM hooks: populate-on-attach ---------------------------------
    def _populate_region(self, vaddr: int, table, region: int,
                         flags: PageFlags) -> int:
        """Insert one file-table region entry by entry; returns inserts."""
        inserted = 0
        huge = region in table.huge_frames
        for page_idx, base_frame, npages in table.region_runs(region):
            if huge:
                self.map_page(vaddr, base_frame,
                              flags | PageFlags.HUGE, PMD_LEVEL)
                inserted += 1
                continue
            for k in range(npages):
                self.map_page(vaddr + (page_idx + k) * PAGE_SIZE,
                              base_frame + k, flags)
                inserted += 1
        self.attach_page_inserts += inserted
        return inserted

    def attach_region(self, vaddr, table, region, flags):
        inserted = self._populate_region(vaddr, table, region, flags)
        if not inserted:
            return 0.0, None
        return (inserted * self.costs.hashed_insert,
                (vaddr, PMD_LEVEL, None))

    def attach_gb(self, vaddr, table, gb, flags):
        node = table.pmd_nodes.get(gb)
        if node is None:
            return 0.0, None
        inserted = 0
        for ridx in sorted(node.entries):
            inserted += self._populate_region(
                vaddr + ridx * PMD_SIZE, table,
                gb * 512 + ridx, flags)
        if not inserted:
            return 0.0, None
        return (inserted * self.costs.hashed_insert,
                (vaddr, PMD_LEVEL + 1, None))

    def detach_cost(self, num_attachments: int) -> float:
        # Every entry the preceding clear removed was its own probe;
        # plain (attachment-free) mappings already paid pte_teardown.
        if not num_attachments:
            return 0.0
        return self.last_clear_entries * self.costs.hashed_insert

    # -- walk hooks -------------------------------------------------------
    def walk_cost(self, walker, pattern, leaf_medium, leaf_factor=1.0):
        # One probe chain into the process-private table: pattern and
        # file-table medium are irrelevant (neighbouring VPNs hash
        # apart; the inverted table itself is DRAM).
        return (self.costs.hashed_walk_compute
                + self.costs.hashed_probe_avg * self.costs.walk_leaf_dram)

    def huge_walk_cost(self, walker):
        return self.walk_cost(walker, AccessPattern.SEQUENTIAL,
                              Medium.DRAM)

    def effective_leaf_medium(self, table_medium: Medium) -> Medium:
        return self.medium

    # -- accounting -------------------------------------------------------
    def structure_frames(self) -> List[int]:
        return list(self.frames)

    # -- state -------------------------------------------------------------
    def to_state(self) -> Dict[str, object]:
        return {
            "name": self.name,
            "medium": self.medium.value,
            "node": self.node,
            "capacity": self.capacity,
            "frames": list(self.frames),
            "tables": {str(level): {str(idx): [frame, int(flags.value)]
                                    for idx, (frame, flags)
                                    in sorted(tbl.items())}
                       for level, tbl in sorted(self.tables.items())},
            "inserts": self.inserts,
            "resizes": self.resizes,
            "attach_page_inserts": self.attach_page_inserts,
            "last_clear_entries": self.last_clear_entries,
        }

    @classmethod
    def from_state(cls, state: Dict[str, object]) -> "HashedScheme":
        scheme = cls.__new__(cls)
        scheme.physmem = None
        scheme.costs = None
        scheme.medium = Medium(state["medium"])
        scheme.node = state["node"]
        scheme.policy = AllocPolicy.PREFERRED
        scheme.capacity = int(state["capacity"])
        scheme.frames = list(state["frames"])
        scheme.tables = {
            int(level): {int(idx): [frame, PageFlags(flags)]
                         for idx, (frame, flags) in tbl.items()}
            for level, tbl in state["tables"].items()}
        scheme.inserts = int(state["inserts"])
        scheme.resizes = int(state["resizes"])
        scheme.attach_page_inserts = int(state["attach_page_inserts"])
        scheme.last_clear_entries = int(state["last_clear_entries"])
        return scheme


# ---------------------------------------------------------------------------
# range — segment/range translation.
# ---------------------------------------------------------------------------
class RangeScheme(TranslationScheme):
    """Range translation: sorted ``[start, end) -> base frame`` entries.

    Contiguous virtual runs mapping contiguous frames collapse into
    one entry — exactly the shape of DaxVM's 2 MB extents on a clean
    image, making attach O(runs) without any shared structures.  Aged
    images fragment regions into many runs (one ``range_insert``
    each), and every walk binary-searches the table, so the walk cost
    grows with ``log2(ranges)``.
    """

    name = "range"
    supports_fragments = False
    RANGES_PER_FRAME = 128

    def __init__(self, physmem: PhysicalMemory, costs: CostModel,
                 medium: Medium = Medium.DRAM,
                 node: Optional[int] = None,
                 policy: AllocPolicy = AllocPolicy.PREFERRED):
        self.physmem = physmem
        self.costs = costs
        self.medium = medium
        self.node = node
        self.policy = policy
        #: Sorted, non-overlapping [start, end, base_frame, flags].
        self.ranges: List[List] = []
        self.frames: List[int] = []
        self._adjust_frames()
        self.range_inserts = 0
        self.range_merges = 0
        self.attach_run_inserts = 0
        self.last_clear_segments = 0

    # -- structure frames (high-water, never shrunk until destroy) -------
    def _adjust_frames(self) -> int:
        needed = max(1, -(-len(self.ranges) // self.RANGES_PER_FRAME))
        added = 0
        while len(self.frames) < needed:
            self.frames.append(self.physmem.alloc_frame(
                self.medium, node=self.node, policy=self.policy))
            added += 1
        return added

    # -- search / surgery -------------------------------------------------
    def _find(self, vaddr: int) -> int:
        """Index of the last range with ``start <= vaddr`` (or -1)."""
        lo, hi = 0, len(self.ranges)
        while lo < hi:
            mid = (lo + hi) // 2
            if self.ranges[mid][0] <= vaddr:
                lo = mid + 1
            else:
                hi = mid
        return lo - 1

    def _remove(self, start: int, size: int) -> Tuple[int, int]:
        """Drop [start, start+size); returns (pages, segments) removed.

        Partially covered ranges are trimmed or split, preserving the
        frame arithmetic of the surviving pieces.
        """
        end = start + size
        pages = 0
        segments = 0
        out: List[List] = []
        for rng in self.ranges:
            r_start, r_end, base, flags = rng
            if r_end <= start or r_start >= end:
                out.append(rng)
                continue
            cut_lo = max(r_start, start)
            cut_hi = min(r_end, end)
            pages += (cut_hi - cut_lo) // PAGE_SIZE
            segments += 1
            if r_start < cut_lo:
                out.append([r_start, cut_lo, base, flags])
            if cut_hi < r_end:
                out.append([cut_hi, r_end,
                            base + (cut_hi - r_start) // PAGE_SIZE, flags])
        self.ranges = out
        return pages, segments

    def _insert(self, start: int, end: int, base_frame: int,
                flags: PageFlags) -> None:
        """Insert one run, merging with frame-contiguous neighbours."""
        self._remove(start, end - start)
        i = self._find(start) + 1
        merged = False
        if i > 0:
            pred = self.ranges[i - 1]
            if (pred[1] == start and pred[3] == flags
                    and pred[2] + (pred[1] - pred[0]) // PAGE_SIZE
                    == base_frame):
                pred[1] = end
                self.range_merges += 1
                merged = True
                i -= 1
        if not merged:
            self.ranges.insert(i, [start, end, base_frame, flags])
        rng = self.ranges[i]
        if i + 1 < len(self.ranges):
            succ = self.ranges[i + 1]
            if (rng[1] == succ[0] and rng[3] == succ[3]
                    and rng[2] + (rng[1] - rng[0]) // PAGE_SIZE
                    == succ[2]):
                rng[1] = succ[1]
                del self.ranges[i + 1]
                self.range_merges += 1
        self.range_inserts += 1
        self._adjust_frames()

    # -- mapping primitives ------------------------------------------------
    def map_page(self, vaddr, frame, flags, leaf_level=PTE_LEVEL):
        span = level_size(leaf_level)
        if vaddr % span:
            raise AddressSpaceError(
                f"vaddr {vaddr:#x} unaligned for level {leaf_level}")
        if leaf_level > PTE_LEVEL:
            flags |= PageFlags.HUGE
        self._insert(vaddr, vaddr + span, frame, flags)
        return 0

    def unmap_page(self, vaddr, leaf_level=PTE_LEVEL):
        pages, _segments = self._remove(vaddr, level_size(leaf_level))
        return pages > 0

    def translate(self, vaddr):
        i = self._find(vaddr)
        if i >= 0:
            start, end, base, flags = self.ranges[i]
            if vaddr < end:
                frame = base + (vaddr - start) // PAGE_SIZE
                effective = (PageFlags.rw() | PageFlags.NX).combine(flags)
                level = (PMD_LEVEL if flags & PageFlags.HUGE
                         else PTE_LEVEL)
                return Translation(frame, effective, level, [self.medium])
        raise SegmentationFault(f"no translation for {vaddr:#x}")

    def protect_range(self, vaddr, size, flags):
        end = vaddr + size
        changed = 0
        out: List[List] = []
        for rng in self.ranges:
            r_start, r_end, base, old = rng
            if r_end <= vaddr or r_start >= end:
                out.append(rng)
                continue
            cut_lo = max(r_start, vaddr)
            cut_hi = min(r_end, end)
            if r_start < cut_lo:
                out.append([r_start, cut_lo, base, old])
            out.append([cut_lo, cut_hi,
                        base + (cut_lo - r_start) // PAGE_SIZE,
                        flags | (old & _STATUS)])
            if cut_hi < r_end:
                out.append([cut_hi, r_end,
                            base + (cut_hi - r_start) // PAGE_SIZE, old])
            changed += 1
        self.ranges = out
        self._adjust_frames()
        return changed

    def clear_range(self, vaddr, size):
        pages, segments = self._remove(vaddr, size)
        self.last_clear_segments = segments
        return pages

    def destroy(self):
        for frame in self.frames:
            self.physmem.free_frame(frame)
        self.frames.clear()
        self.ranges.clear()

    # -- DaxVM hooks: one insert per contiguous run -----------------------
    def _attach_runs(self, vaddr: int, table, region: int,
                     flags: PageFlags) -> int:
        runs = 0
        huge = region in table.huge_frames
        for page_idx, base_frame, npages in table.region_runs(region):
            run_flags = flags | PageFlags.HUGE if huge else flags
            self._insert(vaddr + page_idx * PAGE_SIZE,
                         vaddr + (page_idx + npages) * PAGE_SIZE,
                         base_frame, run_flags)
            runs += 1
        self.attach_run_inserts += runs
        return runs

    def attach_region(self, vaddr, table, region, flags):
        runs = self._attach_runs(vaddr, table, region, flags)
        if not runs:
            return 0.0, None
        return runs * self.costs.range_insert, (vaddr, PMD_LEVEL, None)

    def attach_gb(self, vaddr, table, gb, flags):
        node = table.pmd_nodes.get(gb)
        if node is None:
            return 0.0, None
        runs = 0
        for ridx in sorted(node.entries):
            runs += self._attach_runs(vaddr + ridx * PMD_SIZE, table,
                                      gb * 512 + ridx, flags)
        if not runs:
            return 0.0, None
        return runs * self.costs.range_insert, (vaddr, PMD_LEVEL + 1, None)

    def detach_cost(self, num_attachments: int) -> float:
        if not num_attachments:
            return 0.0
        return self.last_clear_segments * self.costs.range_insert

    # -- walk hooks ---------------------------------------------------------
    def walk_depth(self) -> int:
        return max(1, len(self.ranges)).bit_length()

    def walk_cost(self, walker, pattern, leaf_medium, leaf_factor=1.0):
        # Binary search over the (DRAM-resident, process-private)
        # range table; depth grows with fragmentation.
        return (self.costs.range_walk_base
                + self.walk_depth() * self.costs.range_walk_step)

    def huge_walk_cost(self, walker):
        return self.walk_cost(walker, AccessPattern.SEQUENTIAL,
                              Medium.DRAM)

    def effective_leaf_medium(self, table_medium: Medium) -> Medium:
        return self.medium

    def coalesce_tlb_misses(self, misses: float, vaddr: int,
                            npages: int) -> float:
        """One range-TLB entry covers a whole contiguous run, so the
        window's misses are capped by the number of runs it overlaps —
        a clean image maps one run per attachment and pays ~1 miss
        where the radix MMU pays one per page; an aged image's
        fragmented runs erode exactly that advantage."""
        end = vaddr + npages * PAGE_SIZE
        index = max(0, self._find(vaddr))
        runs = 0
        while index < len(self.ranges) and self.ranges[index][0] < end:
            if self.ranges[index][1] > vaddr:
                runs += 1
            index += 1
        if runs == 0:
            # Window not yet mapped (misses estimated pre-fault):
            # treat it as one run per future attachment — at worst the
            # per-page estimate.
            return min(misses, 1.0) if misses else misses
        return min(misses, float(runs))

    # -- accounting ---------------------------------------------------------
    def structure_frames(self) -> List[int]:
        return list(self.frames)

    # -- state ---------------------------------------------------------------
    def to_state(self) -> Dict[str, object]:
        return {
            "name": self.name,
            "medium": self.medium.value,
            "node": self.node,
            "frames": list(self.frames),
            "ranges": [[start, end, base, int(flags.value)]
                       for start, end, base, flags in self.ranges],
            "range_inserts": self.range_inserts,
            "range_merges": self.range_merges,
            "attach_run_inserts": self.attach_run_inserts,
            "last_clear_segments": self.last_clear_segments,
        }

    @classmethod
    def from_state(cls, state: Dict[str, object]) -> "RangeScheme":
        scheme = cls.__new__(cls)
        scheme.physmem = None
        scheme.costs = None
        scheme.medium = Medium(state["medium"])
        scheme.node = state["node"]
        scheme.policy = AllocPolicy.PREFERRED
        scheme.frames = list(state["frames"])
        scheme.ranges = [[start, end, base, PageFlags(flags)]
                         for start, end, base, flags in state["ranges"]]
        scheme.range_inserts = int(state["range_inserts"])
        scheme.range_merges = int(state["range_merges"])
        scheme.attach_run_inserts = int(state["attach_run_inserts"])
        scheme.last_clear_segments = int(state["last_clear_segments"])
        return scheme


# ---------------------------------------------------------------------------
# Registry.
# ---------------------------------------------------------------------------
SCHEMES: Dict[str, type] = {
    "radix4": Radix4Scheme,
    "radix5": Radix5Scheme,
    "hashed": HashedScheme,
    "range": RangeScheme,
}
SCHEME_NAMES: Tuple[str, ...] = tuple(SCHEMES)


def make_scheme(name: str, physmem: PhysicalMemory, costs: CostModel,
                medium: Medium = Medium.DRAM,
                node: Optional[int] = None,
                policy: AllocPolicy = AllocPolicy.PREFERRED
                ) -> TranslationScheme:
    cls = SCHEMES.get(name)
    if cls is None:
        raise KeyError(
            f"unknown translation scheme {name!r}; known: {SCHEME_NAMES}")
    return cls(physmem, costs, medium, node=node, policy=policy)


def restore_scheme(state: Dict[str, object]) -> TranslationScheme:
    """Rebuild a detached scheme from its ``to_state`` snapshot."""
    cls = SCHEMES.get(state.get("name"))
    if cls is None:
        raise KeyError(f"unknown scheme state {state.get('name')!r}")
    return cls.from_state(state)


__all__ = [
    "SCHEMES",
    "SCHEME_NAMES",
    "HashedScheme",
    "Radix4Scheme",
    "Radix5Scheme",
    "RangeScheme",
    "TranslationScheme",
    "make_scheme",
    "restore_scheme",
]
