"""x86-64 paging substrate: radix page tables, walk costs, TLBs."""

from repro.paging.flags import PageFlags
from repro.paging.pagetable import (
    PAGE_SHIFT,
    PGD_LEVEL,
    PMD_LEVEL,
    PTE_LEVEL,
    PUD_LEVEL,
    Level,
    PageTable,
    PageTableNode,
    Translation,
    level_shift,
    level_size,
)
from repro.paging.tlb import AccessPattern, ShootdownController, TLBModel
from repro.paging.walker import PageWalker

__all__ = [
    "AccessPattern",
    "Level",
    "PAGE_SHIFT",
    "PGD_LEVEL",
    "PMD_LEVEL",
    "PTE_LEVEL",
    "PUD_LEVEL",
    "PageFlags",
    "PageTable",
    "PageTableNode",
    "PageWalker",
    "ShootdownController",
    "TLBModel",
    "Translation",
    "level_shift",
    "level_size",
]
