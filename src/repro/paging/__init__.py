"""x86-64 paging substrate: radix page tables, walk costs, TLBs."""

from repro.paging.flags import PageFlags
from repro.paging.pagetable import (
    PAGE_SHIFT,
    PGD_LEVEL,
    PMD_LEVEL,
    PTE_LEVEL,
    PUD_LEVEL,
    Level,
    PageTable,
    PageTableNode,
    Translation,
    level_shift,
    level_size,
)
from repro.paging.schemes import (
    SCHEME_NAMES,
    SCHEMES,
    HashedScheme,
    Radix4Scheme,
    Radix5Scheme,
    RangeScheme,
    TranslationScheme,
    make_scheme,
    restore_scheme,
)
from repro.paging.tlb import AccessPattern, ShootdownController, TLBModel
from repro.paging.walker import PageWalker

__all__ = [
    "AccessPattern",
    "HashedScheme",
    "Level",
    "PAGE_SHIFT",
    "PGD_LEVEL",
    "PMD_LEVEL",
    "PTE_LEVEL",
    "PUD_LEVEL",
    "PageFlags",
    "PageTable",
    "PageTableNode",
    "PageWalker",
    "Radix4Scheme",
    "Radix5Scheme",
    "RangeScheme",
    "SCHEMES",
    "SCHEME_NAMES",
    "ShootdownController",
    "TLBModel",
    "TranslationScheme",
    "Translation",
    "level_shift",
    "level_size",
    "make_scheme",
    "restore_scheme",
]
