"""The machine topology model: NUMA nodes, core map, distance matrices.

The paper's testbed is a dual-socket Cascade Lake box with Optane
DCPMM attached *per socket*; remote-socket PMem access pays a 2-3x
latency/bandwidth penalty (Yang et al., FAST'20) and cross-socket TLB
shootdown IPIs are dearer than same-socket ones.  Everything NUMA in
the simulator starts from one :class:`MachineTopology`:

* per-node DRAM and PMem sizes (feeding the per-node frame regions of
  :class:`~repro.mem.physmem.PhysicalMemory`);
* a core -> node map (cores are split contiguously across sockets, as
  on the real machine's APIC enumeration);
* same/cross-socket latency, bandwidth and IPI matrices, exposed as
  :meth:`latency_factor` / :meth:`bandwidth_factor` / :meth:`ipi_extra`
  and, in matrix form, :meth:`latency_matrix` / :meth:`ipi_matrix`.

Equivalence contract: a 1-node topology is the pre-topology simulator,
bit for bit.  Every factor degenerates to exactly ``1.0`` (and every
IPI extra to ``0.0``) when source and target node coincide, and every
NUMA-only counter stays silent on one node, so threading the topology
through the cost model cannot perturb single-socket results (IEEE 754
multiplication by 1.0 is exact).  ``tests/test_golden_equivalence.py``
holds the simulator to that promise.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.config import (
    MachineConfig,
    NUMA_IPI_CROSS_SOCKET_EXTRA,
    NUMA_REMOTE_CXL_BW,
    NUMA_REMOTE_CXL_LATENCY,
    NUMA_REMOTE_DRAM_BW,
    NUMA_REMOTE_DRAM_LATENCY,
    NUMA_REMOTE_FAR_BW,
    NUMA_REMOTE_FAR_LATENCY,
    NUMA_REMOTE_PMEM_BW,
    NUMA_REMOTE_PMEM_LATENCY,
)
from repro.errors import InvalidArgumentError
from repro.mem.physmem import AllocPolicy, Medium


#: File/device placements the NUMA experiments compare (§ DESIGN 8.3).
PLACEMENTS = ("local", "remote", "interleave")

#: Node kinds: ``ddr`` is a compute socket with directly-attached
#: DRAM+PMem; ``cxl`` is a memory-only CXL expander; ``far`` is a
#: memory-only NT-interleave/far-memory node.  Expander kinds own no
#: cores — the core map spans compute nodes only.
NODE_KINDS = ("ddr", "cxl", "far")


@dataclass(frozen=True)
class NodeSpec:
    """One NUMA node's directly-attached memory."""

    dram_bytes: int
    pmem_bytes: int
    #: One of :data:`NODE_KINDS`.
    kind: str = "ddr"
    #: CXL-expander capacity (``cxl`` nodes only).
    cxl_bytes: int = 0
    #: Far-memory capacity (``far`` nodes only).
    far_bytes: int = 0

    def __post_init__(self):
        if self.kind not in NODE_KINDS:
            raise InvalidArgumentError(
                f"unknown node kind {self.kind!r}; use one of "
                f"{NODE_KINDS}")
        owned = {"ddr": (self.cxl_bytes, self.far_bytes),
                 "cxl": (self.dram_bytes, self.pmem_bytes,
                         self.far_bytes),
                 "far": (self.dram_bytes, self.pmem_bytes,
                         self.cxl_bytes)}[self.kind]
        if any(owned):
            raise InvalidArgumentError(
                f"a {self.kind!r} node may only carry its own medium")


@dataclass(frozen=True)
class MachineTopology:
    """Static NUMA description of the simulated machine.

    The cross-socket penalty fields default to the calibrated constants
    in :mod:`repro.config`; they describe the *uniform* off-socket
    penalty of a 2-socket UPI machine.  The matrix accessors expand
    them to full node x node form for consumers that want matrices.
    """

    nodes: Tuple[NodeSpec, ...]
    num_cores: int = 16

    #: Remote / local load-latency ratio per medium.
    remote_dram_latency: float = NUMA_REMOTE_DRAM_LATENCY
    remote_pmem_latency: float = NUMA_REMOTE_PMEM_LATENCY
    remote_cxl_latency: float = NUMA_REMOTE_CXL_LATENCY
    remote_far_latency: float = NUMA_REMOTE_FAR_LATENCY
    #: Remote / local streaming-bandwidth ratio per medium (< 1).
    remote_dram_bw: float = NUMA_REMOTE_DRAM_BW
    remote_pmem_bw: float = NUMA_REMOTE_PMEM_BW
    remote_cxl_bw: float = NUMA_REMOTE_CXL_BW
    remote_far_bw: float = NUMA_REMOTE_FAR_BW
    #: Extra initiator cycles per cross-socket IPI target.
    ipi_cross_socket_extra: float = NUMA_IPI_CROSS_SOCKET_EXTRA

    def __post_init__(self):
        if not self.nodes:
            raise InvalidArgumentError("topology needs at least one node")
        compute = [node for node in self.nodes if node.kind == "ddr"]
        if not compute:
            raise InvalidArgumentError(
                "topology needs at least one ddr (compute) node — "
                "expander nodes own no cores")
        if self.num_cores < len(compute):
            raise InvalidArgumentError(
                f"{self.num_cores} cores cannot span "
                f"{len(compute)} compute nodes")

    # ------------------------------------------------------------------
    # Construction helpers.
    # ------------------------------------------------------------------
    @classmethod
    def single_node(cls, machine: MachineConfig) -> "MachineTopology":
        """The pre-topology machine: one socket owning everything."""
        return cls(nodes=(NodeSpec(machine.dram_bytes,
                                   machine.pmem_bytes),),
                   num_cores=machine.num_cores)

    @classmethod
    def split(cls, machine: MachineConfig,
              num_nodes: int) -> "MachineTopology":
        """Split a machine's DRAM/PMem/cores evenly across sockets."""
        if num_nodes < 1:
            raise InvalidArgumentError(
                f"num_nodes must be >= 1, got {num_nodes}")
        dram = machine.dram_bytes // num_nodes
        pmem = machine.pmem_bytes // num_nodes
        # Keep per-node sizes frame-aligned.
        dram -= dram % machine.page_size
        pmem -= pmem % machine.page_size
        return cls(nodes=tuple(NodeSpec(dram, pmem)
                               for _ in range(num_nodes)),
                   num_cores=machine.num_cores)

    @classmethod
    def with_kinds(cls, machine: MachineConfig,
                   kinds) -> "MachineTopology":
        """Build a topology from node-kind names.

        ``["ddr", "ddr", "cxl"]`` is a dual-socket box with one CXL
        memory expander: DRAM/PMem split evenly across the ``ddr``
        sockets, the expander carrying :attr:`MachineConfig.cxl_bytes`
        and no cores.  An all-``ddr`` list is exactly :meth:`split`.
        """
        kinds = tuple(kinds)
        ddr_count = sum(1 for kind in kinds if kind == "ddr")
        if not ddr_count:
            raise InvalidArgumentError(
                f"node kinds {kinds!r} include no ddr (compute) node")
        dram = machine.dram_bytes // ddr_count
        pmem = machine.pmem_bytes // ddr_count
        dram -= dram % machine.page_size
        pmem -= pmem % machine.page_size
        cxl = machine.cxl_bytes - machine.cxl_bytes % machine.page_size
        far = machine.far_bytes - machine.far_bytes % machine.page_size
        nodes = []
        for kind in kinds:
            if kind == "ddr":
                nodes.append(NodeSpec(dram, pmem))
            elif kind == "cxl":
                nodes.append(NodeSpec(0, 0, kind="cxl", cxl_bytes=cxl))
            elif kind == "far":
                nodes.append(NodeSpec(0, 0, kind="far", far_bytes=far))
            else:
                raise InvalidArgumentError(
                    f"unknown node kind {kind!r}; use one of "
                    f"{NODE_KINDS}")
        return cls(nodes=tuple(nodes), num_cores=machine.num_cores)

    # ------------------------------------------------------------------
    # Core map.  Only ddr (compute) nodes own cores; expander nodes
    # are memory-only targets, like real CXL/far-memory NUMA nodes.
    # ------------------------------------------------------------------
    @property
    def num_nodes(self) -> int:
        return len(self.nodes)

    @property
    def compute_nodes(self) -> Tuple[int, ...]:
        return tuple(i for i, node in enumerate(self.nodes)
                     if node.kind == "ddr")

    @property
    def cores_per_node(self) -> int:
        return self.num_cores // len(self.compute_nodes)

    def node_of_core(self, core: int) -> int:
        """Socket owning a core (contiguous blocks, remainder to the
        last socket — matching real APIC enumeration)."""
        compute = self.compute_nodes
        return compute[min(core // self.cores_per_node,
                           len(compute) - 1)]

    def cores_of_node(self, node: int) -> List[int]:
        compute = self.compute_nodes
        if node not in compute:
            return []  # expander nodes own no cores
        pos = compute.index(node)
        first = pos * self.cores_per_node
        last = (self.num_cores if pos == len(compute) - 1
                else first + self.cores_per_node)
        return list(range(first, last))

    # ------------------------------------------------------------------
    # Distance model.
    # ------------------------------------------------------------------
    def _remote_latency(self, medium: Medium) -> float:
        """Per-medium off-socket latency ratio (exhaustive)."""
        if medium is Medium.DRAM:
            return self.remote_dram_latency
        if medium is Medium.PMEM:
            return self.remote_pmem_latency
        if medium is Medium.CXL:
            return self.remote_cxl_latency
        if medium is Medium.FAR:
            return self.remote_far_latency
        raise InvalidArgumentError(
            f"no remote-latency factor for medium {medium!r}")

    def _remote_bw(self, medium: Medium) -> float:
        """Per-medium off-socket bandwidth ratio (exhaustive)."""
        if medium is Medium.DRAM:
            return self.remote_dram_bw
        if medium is Medium.PMEM:
            return self.remote_pmem_bw
        if medium is Medium.CXL:
            return self.remote_cxl_bw
        if medium is Medium.FAR:
            return self.remote_far_bw
        raise InvalidArgumentError(
            f"no remote-bandwidth factor for medium {medium!r}")

    def latency_factor(self, core_node: int, target_node: int,
                       medium: Medium) -> float:
        """Load-latency multiplier for a core touching a frame."""
        if core_node == target_node:
            return 1.0
        return self._remote_latency(medium)

    def bandwidth_factor(self, core_node: int, target_node: int,
                         medium: Medium) -> float:
        """Streaming-bandwidth multiplier (<= 1.0 off-socket)."""
        if core_node == target_node:
            return 1.0
        return self._remote_bw(medium)

    def ipi_extra(self, src_node: int, dst_node: int) -> float:
        """Extra initiator cycles for an IPI crossing sockets."""
        return (0.0 if src_node == dst_node
                else self.ipi_cross_socket_extra)

    def latency_matrix(self, medium: Medium) -> List[List[float]]:
        """Full node x node latency-factor matrix."""
        return [[self.latency_factor(i, j, medium)
                 for j in range(self.num_nodes)]
                for i in range(self.num_nodes)]

    def bandwidth_matrix(self, medium: Medium) -> List[List[float]]:
        return [[self.bandwidth_factor(i, j, medium)
                 for j in range(self.num_nodes)]
                for i in range(self.num_nodes)]

    def ipi_matrix(self) -> List[List[float]]:
        """Extra-initiator-cycle matrix for IPIs between sockets."""
        return [[self.ipi_extra(i, j) for j in range(self.num_nodes)]
                for i in range(self.num_nodes)]

    # ------------------------------------------------------------------
    # Serialisation (sweep cache keys, pool payloads).
    # ------------------------------------------------------------------
    def to_stable_dict(self) -> Dict[str, object]:
        return {
            "nodes": [{"dram_bytes": n.dram_bytes,
                       "pmem_bytes": n.pmem_bytes,
                       "kind": n.kind,
                       "cxl_bytes": n.cxl_bytes,
                       "far_bytes": n.far_bytes} for n in self.nodes],
            "num_cores": self.num_cores,
            "remote_dram_latency": self.remote_dram_latency,
            "remote_pmem_latency": self.remote_pmem_latency,
            "remote_cxl_latency": self.remote_cxl_latency,
            "remote_far_latency": self.remote_far_latency,
            "remote_dram_bw": self.remote_dram_bw,
            "remote_pmem_bw": self.remote_pmem_bw,
            "remote_cxl_bw": self.remote_cxl_bw,
            "remote_far_bw": self.remote_far_bw,
            "ipi_cross_socket_extra": self.ipi_cross_socket_extra,
        }

    @classmethod
    def from_state(cls, state: Dict[str, object]) -> "MachineTopology":
        # .get defaults keep pre-tier payloads (and hand-written
        # states) restorable.
        return cls(
            nodes=tuple(NodeSpec(int(n["dram_bytes"]),
                                 int(n["pmem_bytes"]),
                                 kind=str(n.get("kind", "ddr")),
                                 cxl_bytes=int(n.get("cxl_bytes", 0)),
                                 far_bytes=int(n.get("far_bytes", 0)))
                        for n in state["nodes"]),
            num_cores=int(state["num_cores"]),
            remote_dram_latency=float(state["remote_dram_latency"]),
            remote_pmem_latency=float(state["remote_pmem_latency"]),
            remote_cxl_latency=float(
                state.get("remote_cxl_latency", NUMA_REMOTE_CXL_LATENCY)),
            remote_far_latency=float(
                state.get("remote_far_latency", NUMA_REMOTE_FAR_LATENCY)),
            remote_dram_bw=float(state["remote_dram_bw"]),
            remote_pmem_bw=float(state["remote_pmem_bw"]),
            remote_cxl_bw=float(
                state.get("remote_cxl_bw", NUMA_REMOTE_CXL_BW)),
            remote_far_bw=float(
                state.get("remote_far_bw", NUMA_REMOTE_FAR_BW)),
            ipi_cross_socket_extra=float(
                state["ipi_cross_socket_extra"]),
        )


#: Blocks per 2 MB interleave granule (matches the PMD attach granule,
#: so one DaxVM attachment never straddles sockets).
INTERLEAVE_BLOCKS = (2 << 20) // 4096


@dataclass
class InterleaveMap:
    """Injective device-block -> PMem-frame map striping across nodes.

    Block chunks of :data:`INTERLEAVE_BLOCKS` go round-robin to the
    nodes' PMem regions; within a node, chunks pack densely from the
    region base.  The inverse exists (needed when persistent file-table
    metadata blocks are freed by frame number).
    """

    #: (base_frame, total_frames) of each node's PMem region.
    ranges: List[Tuple[int, int]]
    granule: int = INTERLEAVE_BLOCKS

    def __post_init__(self):
        # The whole NUMA model leans on one alignment fact: a DaxVM
        # attachment (one 2 MB PMD splice) never straddles sockets.
        # That only holds when stripes tile the 2 MB attach granule —
        # anything else would silently mis-stripe, placing parts of an
        # "attached-local" run on a remote node while the cost model
        # charges local rates.  Validate it here instead of trusting
        # every caller.
        if not self.ranges:
            raise InvalidArgumentError(
                "InterleaveMap needs at least one PMem range")
        if self.granule <= 0:
            raise InvalidArgumentError(
                f"interleave granule must be positive, got "
                f"{self.granule}")
        if self.granule % INTERLEAVE_BLOCKS:
            raise InvalidArgumentError(
                f"interleave granule of {self.granule} blocks does not "
                f"tile the 2 MB attach granule ({INTERLEAVE_BLOCKS} "
                f"blocks): a PMD attachment would straddle nodes")

    def frame_of(self, block: int) -> int:
        n = len(self.ranges)
        chunk, offset = divmod(block, self.granule)
        node = chunk % n
        local = (chunk // n) * self.granule + offset
        base, total = self.ranges[node]
        if local >= total:
            raise InvalidArgumentError(
                f"block {block} overflows node {node}'s PMem "
                f"({total} frames)")
        return base + local

    def block_of(self, frame: int) -> int:
        for node, (base, total) in enumerate(self.ranges):
            if base <= frame < base + total:
                local = frame - base
                chunk = (local // self.granule) * len(self.ranges) + node
                return chunk * self.granule + local % self.granule
        raise InvalidArgumentError(
            f"frame {frame} lies in no node's PMem range")


def device_placement(topology: MachineTopology, pmem_bases: List[int],
                     pmem_frames: List[int], placement: str,
                     pin_node: int = 0
                     ) -> Tuple[int, Optional[InterleaveMap]]:
    """Resolve a placement name to (device base frame, frame map).

    ``local`` puts every device block on ``pin_node``'s PMem;
    ``remote`` on the next socket over; ``interleave`` stripes 2 MB
    chunks across all sockets.  On one node all three collapse to the
    single PMem region — placement is then a no-op by construction.
    """
    if placement not in PLACEMENTS:
        raise InvalidArgumentError(
            f"unknown placement {placement!r}; use one of {PLACEMENTS}")
    n = topology.num_nodes
    if placement == "interleave" and n > 1:
        # Stripe only across nodes that actually carry PMem — expander
        # (cxl/far) nodes contribute zero-capacity regions that must
        # not eat round-robin slots.
        ranges = [(base, frames) for base, frames
                  in zip(pmem_bases, pmem_frames) if frames > 0]
        if len(ranges) > 1:
            return ranges[0][0], InterleaveMap(ranges)
    pmem_nodes = [node for node, frames in enumerate(pmem_frames)
                  if frames > 0] or [0]
    node = pmem_nodes[pin_node % len(pmem_nodes)]
    if placement == "remote":
        node = pmem_nodes[(pin_node + 1) % len(pmem_nodes)]
    return pmem_bases[node], None


__all__ = [
    "AllocPolicy",
    "INTERLEAVE_BLOCKS",
    "InterleaveMap",
    "MachineTopology",
    "NODE_KINDS",
    "NodeSpec",
    "PLACEMENTS",
    "device_placement",
]
