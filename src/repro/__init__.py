"""DaxVM reproduction: a simulated Linux/x86-64 VM + PMem FS stack.

Public API highlights:

* :class:`repro.System` — a simulated machine (engine + memory + FS);
* :class:`repro.core.DaxVM` — the paper's interface (daxvm_mmap/munmap);
* :mod:`repro.workloads` — the microbenchmarks and application models
  used by the paper's evaluation;
* :mod:`repro.analysis` — result tables and figure-shaped reports.

See DESIGN.md for the full system inventory and EXPERIMENTS.md for the
paper-vs-measured record of every table and figure.
"""

from repro.config import DEFAULT_COSTS, CostModel, MachineConfig
from repro.system import Process, System
from repro.vm.vma import MapFlags, Protection

__version__ = "1.0.0"

__all__ = [
    "CostModel",
    "DEFAULT_COSTS",
    "MachineConfig",
    "MapFlags",
    "Process",
    "Protection",
    "System",
    "__version__",
]
