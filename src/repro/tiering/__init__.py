"""Memory tiering: the pluggable medium registry's kernel daemon.

The tier model itself (per-medium latency/bandwidth/persistence specs)
lives in :mod:`repro.mem.tiers`; this package holds the pieces that act
on it — the hot/cold migration daemon (:mod:`repro.tiering.daemon`) and
the pre-refactor equivalence gate (:mod:`repro.tiering.golden`).
"""

from repro.tiering.daemon import (GRANULE_BYTES, GRANULE_PAGES, TierMap,
                                  TieringConfig, TieringDaemon)

__all__ = ["GRANULE_BYTES", "GRANULE_PAGES", "TierMap",
           "TieringConfig", "TieringDaemon"]
