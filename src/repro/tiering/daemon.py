"""The hot/cold memory-tiering daemon and its placement overlay.

ROADMAP item 3: once CXL expanders and far-memory nodes join the
hierarchy, file data need not live on the device's native medium — a
kernel daemon (ktierd, modelled on Linux's NUMA-balancing/kpromoted
direction) watches access tags and migrates 2 MB granules between
tiers.  The model splits in two:

* :class:`TierMap` — the *placement overlay*: per inode, which medium
  each 2 MB file granule currently resides on.  The VM access path
  (:meth:`repro.vm.mm.MMStruct.access`) and the FS copy paths consult
  it to price data movement, and report access tags back through
  :meth:`TierMap.note_touch`.  A ``None`` overlay (the default) means
  "everything on the device medium" and reproduces the pre-tiering
  simulator bit for bit.
* :class:`TieringDaemon` — the kthread.  Every scan interval it walks
  the touch tags plus the existing :class:`~repro.vm.dirty.
  DirtyTracker` state, promotes granules touched at least
  ``hot_touches`` times to the hot medium, and demotes granules
  untouched for ``cold_scans`` consecutive scans back to the device
  medium.  Promotion is priced as a kernel ``memcpy`` to the hot tier
  plus a remap (per-page PTE teardown + PMD splice) plus one TLB
  shootdown over the union cpumask of every process mapping the file;
  demotion adds the write-back copy only when the granule was dirtied
  while promoted (clean granules still have their device copy).  All
  of it lands in the ``tiering`` ledger domain and ``tiering.*``
  counters, so a perf breakdown shows exactly what the daemon costs.

Invariants (held by tests/test_tiering.py):

* overlay ``None`` → zero behavioural and cost difference;
* the daemon never migrates more than ``migrate_budget_bytes`` per
  scan, and never touches a granule's placement between scans;
* demotion always restores the device medium — after a quiesce period
  every granule is back on the device, so durability semantics
  (msync flushes to the device) are unchanged by tiering;
* scans iterate in sorted (inode, granule) order and take no wall
  clock, so daemon runs are deterministic and parallel-sweep safe.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Dict, List, Optional, Set, Tuple

from repro.config import CostModel
from repro.errors import InvalidArgumentError
from repro.mem.latency import MemoryModel
from repro.mem.physmem import Medium
from repro.obs import Counter, CostDomain, charge
from repro.sim.engine import Engine
from repro.sim.stats import Stats

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.fs.vfs import Inode

PAGE_SIZE = 4096
#: Pages per migration granule (2 MB — the PMD attach granule, so a
#: migrated granule remaps with one PMD splice).
GRANULE_PAGES = 512
GRANULE_BYTES = GRANULE_PAGES * PAGE_SIZE


class TierMap:
    """Per-inode data-placement overlay: file granule -> medium."""

    def __init__(self, default: Medium = Medium.PMEM):
        #: Medium file data lives on when not migrated (the pricing
        #: default — a "cxl" placement prices the whole device as a
        #: CXL expander).
        self.default = default
        #: inode number -> {granule -> medium}; only granules moved
        #: OFF the default are present, so lookups stay O(1)-sparse.
        self._placement: Dict[int, Dict[int, Medium]] = {}
        #: inode number -> {granule -> [reads, writes]} since the last
        #: daemon scan.
        self._touches: Dict[int, Dict[int, List[int]]] = {}
        #: Live inode objects seen by note_touch, for the daemon's
        #: DirtyTracker consultation and shootdown rmap walks.
        self._inodes: Dict[int, "Inode"] = {}

    # -- consulted by the access paths ---------------------------------
    def medium_for(self, inode: "Inode", file_page: int) -> Medium:
        over = self._placement.get(inode.number)
        if not over:
            return self.default
        return over.get(file_page // GRANULE_PAGES, self.default)

    def note_touch(self, inode: "Inode", first_page: int,
                   last_page: int, write: bool = False) -> None:
        """Tag the granules of one access window (the access tracking
        the daemon's scan consumes)."""
        self._inodes[inode.number] = inode
        tags = self._touches.setdefault(inode.number, {})
        slot = 1 if write else 0
        for granule in range(first_page // GRANULE_PAGES,
                             last_page // GRANULE_PAGES + 1):
            counts = tags.get(granule)
            if counts is None:
                counts = tags[granule] = [0, 0]
            counts[slot] += 1

    # -- daemon-side surgery -------------------------------------------
    def place(self, inode_number: int, granule: int,
              medium: Medium) -> None:
        """Move one granule's residency (back to default = forget)."""
        over = self._placement.setdefault(inode_number, {})
        if medium is self.default:
            over.pop(granule, None)
            if not over:
                self._placement.pop(inode_number, None)
        else:
            over[granule] = medium

    def drain_touches(self) -> Dict[int, Dict[int, List[int]]]:
        """Hand the accumulated tags to the daemon and restart."""
        drained = self._touches
        self._touches = {}
        return drained

    def inode(self, number: int) -> Optional["Inode"]:
        return self._inodes.get(number)

    def placements(self) -> List[Tuple[int, int, Medium]]:
        """Sorted (inode, granule, medium) of every migrated granule."""
        return [(ino, granule, medium)
                for ino in sorted(self._placement)
                for granule, medium in sorted(
                    self._placement[ino].items())]

    def residency(self) -> Dict[str, int]:
        """Granule counts per non-default medium (perf breakdowns)."""
        counts: Dict[str, int] = {}
        for _ino, _granule, medium in self.placements():
            counts[medium.value] = counts.get(medium.value, 0) + 1
        return counts

    # -- state ----------------------------------------------------------
    def to_state(self) -> Dict[str, object]:
        return {
            "default": self.default.value,
            "placement": {str(ino): {str(g): m.value
                                     for g, m in sorted(over.items())}
                          for ino, over in sorted(
                              self._placement.items())},
            "touches": {str(ino): {str(g): list(c)
                                   for g, c in sorted(tags.items())}
                        for ino, tags in sorted(self._touches.items())},
        }

    @classmethod
    def from_state(cls, state: Dict[str, object]) -> "TierMap":
        """Detached restore: placement and tags, no live inode refs
        (they re-register on the next touch)."""
        tiers = cls(default=Medium(state["default"]))
        for ino, over in state["placement"].items():
            for granule, medium in over.items():
                tiers.place(int(ino), int(granule), Medium(medium))
        tiers._touches = {
            int(ino): {int(g): [int(c[0]), int(c[1])]
                       for g, c in tags.items()}
            for ino, tags in state["touches"].items()}
        return tiers


@dataclass(frozen=True)
class TieringConfig:
    """Policy knobs of the tiering daemon (cache-key material)."""

    #: Cycles between hotness scans.
    scan_interval: float = 1.5e6
    #: Touches within one scan period that make a granule hot.
    hot_touches: int = 2
    #: Consecutive untouched scans before a promoted granule demotes.
    cold_scans: int = 2
    #: Where hot granules go.
    hot_medium: Medium = Medium.DRAM
    #: Migration budget per scan (bounds burst interference).
    migrate_budget_bytes: int = 32 << 20
    #: Bandwidth-aware promotion rate limiting: the fraction of the
    #: device pools' *idle* capacity (capacity per scan period minus
    #: the foreground bytes the pools actually moved since the last
    #: scan) migrations may consume.  The per-scan budget becomes
    #: ``min(migrate_budget_bytes, fraction * headroom)`` — a hot-set
    #: storm arriving while foreground traffic saturates the device
    #: defers its promotions instead of stealing bandwidth.  0.0 (the
    #: default) disables the telemetry and reproduces the fixed
    #: budget bit for bit.
    bw_budget_fraction: float = 0.0

    def __post_init__(self):
        if self.scan_interval <= 0:
            raise InvalidArgumentError("scan_interval must be positive")
        if self.hot_touches < 1 or self.cold_scans < 1:
            raise InvalidArgumentError(
                "hot_touches and cold_scans must be >= 1")
        if not 0.0 <= self.bw_budget_fraction <= 1.0:
            raise InvalidArgumentError(
                "bw_budget_fraction must be in [0, 1]")

    def to_state(self) -> Dict[str, object]:
        return {
            "scan_interval": self.scan_interval,
            "hot_touches": self.hot_touches,
            "cold_scans": self.cold_scans,
            "hot_medium": self.hot_medium.value,
            "migrate_budget_bytes": self.migrate_budget_bytes,
            "bw_budget_fraction": self.bw_budget_fraction,
        }

    @classmethod
    def from_state(cls, state: Dict[str, object]) -> "TieringConfig":
        return cls(
            scan_interval=float(state["scan_interval"]),
            hot_touches=int(state["hot_touches"]),
            cold_scans=int(state["cold_scans"]),
            hot_medium=Medium(state["hot_medium"]),
            migrate_budget_bytes=int(state["migrate_budget_bytes"]),
            # Absent in states written before the rate limiter existed.
            bw_budget_fraction=float(state.get("bw_budget_fraction",
                                               0.0)),
        )


class TieringDaemon:
    """The ktierd kthread: scan access tags, migrate 2 MB granules."""

    def __init__(self, engine: Engine, mem: MemoryModel,
                 costs: CostModel, stats: Stats, tiers: TierMap,
                 config: Optional[TieringConfig] = None):
        self.engine = engine
        self.mem = mem
        self.costs = costs
        self.stats = stats
        self.tiers = tiers
        self.config = config or TieringConfig()
        if self.config.hot_medium is tiers.default:
            raise InvalidArgumentError(
                f"hot medium {self.config.hot_medium.value!r} equals "
                f"the device tier; nothing to promote to")
        #: (inode, granule) -> consecutive untouched scans while
        #: promoted.
        self._cold: Dict[Tuple[int, int], int] = {}
        #: Promoted granules written since promotion (need write-back
        #: on demote).
        self._dirty: Set[Tuple[int, int]] = set()
        self.scans = 0
        self._thread = None
        #: Pool byte odometer at the last scan (bandwidth telemetry).
        self._pool_bytes_seen = 0.0

    # -- bandwidth telemetry --------------------------------------------
    def _scan_budget(self) -> float:
        """Migration byte budget for this scan.

        With ``bw_budget_fraction`` armed, reads the device pools'
        byte odometers: whatever the foreground moved since the last
        scan is traffic the device already served, and migrations may
        only claim the configured fraction of what was left idle.
        ktierd's own copies run through ``memcpy`` (not the pools),
        so the odometer delta is foreground traffic, exactly.
        """
        frac = self.config.bw_budget_fraction
        if frac <= 0.0 or self.mem is None:
            return self.config.migrate_budget_bytes
        pools = [pool for pool in self.mem.pools if pool is not None]
        if not pools:
            return self.config.migrate_budget_bytes
        total = sum(pool.bytes_moved() for pool in pools)
        foreground = max(0.0, total - self._pool_bytes_seen)
        self._pool_bytes_seen = total
        capacity = sum((pool.read_bw + pool.write_bw) / pool.freq_hz
                       for pool in pools) * self.config.scan_interval
        headroom = max(0.0, capacity - foreground)
        return min(float(self.config.migrate_budget_bytes),
                   frac * headroom)

    # -- the kthread ----------------------------------------------------
    def start(self, core: int = 0) -> None:
        self._thread = self.engine.spawn(
            self._run(), core=core, name="tiering-kthread", daemon=True)

    def _run(self):
        while True:
            yield charge(CostDomain.TIERING, "tiering-idle",
                         self.config.scan_interval)
            yield from self.scan()

    # -- one scan -------------------------------------------------------
    def scan(self):
        """One hotness scan: promote hot granules, demote cold ones.

        Deterministic by construction: iteration is in sorted
        (inode, granule) order and consumes only simulated state.
        """
        self.scans += 1
        self.stats.add(Counter.TIERING_SCANS)
        touched = self.tiers.drain_touches()
        promoted = {(ino, granule)
                    for ino, granule, _medium in self.tiers.placements()}
        tracked = set(promoted)
        for ino, tags in touched.items():
            tracked.update((ino, granule) for granule in tags)
        if tracked:
            yield charge(CostDomain.TIERING, "tiering-scan",
                         len(tracked) * self.costs.tiering_scan_granule)
        budget = self._scan_budget()
        rate_limited = self.config.bw_budget_fraction > 0.0
        for ino, granule in sorted(tracked):
            counts = touched.get(ino, {}).get(granule)
            touches = (counts[0] + counts[1]) if counts else 0
            is_promoted = (ino, granule) in promoted
            if is_promoted and counts and counts[1]:
                self._dirty.add((ino, granule))
            if not is_promoted and touches >= self.config.hot_touches:
                if budget >= GRANULE_BYTES:
                    budget -= GRANULE_BYTES
                    yield from self._promote(ino, granule)
                elif rate_limited:
                    # Hot but deferred: the bandwidth telemetry left
                    # no headroom this scan.  (Counted only with the
                    # limiter armed — the fixed-budget path predates
                    # the counter and stays bit-identical.)
                    self.stats.add(Counter.TIERING_RATE_DEFERRED)
            elif is_promoted and touches == 0:
                key = (ino, granule)
                self._cold[key] = self._cold.get(key, 0) + 1
                if self._cold[key] >= self.config.cold_scans:
                    yield from self._demote(ino, granule)
            elif is_promoted:
                self._cold.pop((ino, granule), None)

    # -- migration ------------------------------------------------------
    def _needs_writeback(self, ino: int, granule: int) -> bool:
        """Was the granule dirtied while promoted?  Consults both the
        overlay's write tags and the kernel's existing DirtyTracker
        tag tree (writes through unmapped paths still tag there)."""
        if (ino, granule) in self._dirty:
            return True
        inode = self.tiers.inode(ino)
        if inode is None:
            return False
        seen: Set[int] = set()
        for vma in inode.i_mmap:
            mm = vma.mm
            if mm is None or id(mm) in seen:
                continue
            seen.add(id(mm))
            cache = mm.page_cache
            if cache.dirty_count(inode) or cache.written_bytes(inode):
                return True
        return False

    def _shootdown(self, ino: int):
        """Flush stale translations after a migration remap: one IPI
        round over the union cpumask of every process mapping the
        file (the memory_failure pattern)."""
        inode = self.tiers.inode(ino)
        if inode is None:
            return
        cores: Set[int] = set()
        shootdowns = None
        initiator = 0
        for vma in inode.i_mmap:
            mm = vma.mm
            if mm is None:
                continue
            cores |= mm.active_cores
            if shootdowns is None:
                shootdowns = mm.shootdowns
                initiator = mm._initiator_core()
        if shootdowns is None or not cores:
            return
        self.stats.add(Counter.TIERING_SHOOTDOWNS)
        yield from shootdowns.flush(initiator, cores, GRANULE_PAGES)

    def _migrate(self, ino: int, granule: int, src: Medium,
                 dst: Medium, label: str):
        copy = self.mem.memcpy(GRANULE_BYTES, src, dst, kernel=True)
        remap = (GRANULE_PAGES * self.costs.pte_teardown
                 + self.costs.pmd_attach)
        yield charge(CostDomain.TIERING, label, copy + remap)
        self.stats.add(Counter.TIERING_MIGRATED_BYTES, GRANULE_BYTES)
        yield from self._shootdown(ino)

    def _promote(self, ino: int, granule: int):
        yield from self._migrate(ino, granule, self.tiers.default,
                                 self.config.hot_medium,
                                 "tiering-promote")
        self.tiers.place(ino, granule, self.config.hot_medium)
        self._cold.pop((ino, granule), None)
        self._dirty.discard((ino, granule))
        self.stats.add(Counter.TIERING_PROMOTED_PAGES, GRANULE_PAGES)

    def _demote(self, ino: int, granule: int):
        if self._needs_writeback(ino, granule):
            # Dirty while promoted: the device copy is stale, pay the
            # write-back copy to the device tier.
            yield from self._migrate(ino, granule,
                                     self.config.hot_medium,
                                     self.tiers.default,
                                     "tiering-demote")
            self.stats.add(Counter.TIERING_WRITEBACK_BYTES,
                           GRANULE_BYTES)
        else:
            # Clean: the device copy is current — drop the hot copy,
            # pay only the remap and the shootdown.
            remap = (GRANULE_PAGES * self.costs.pte_teardown
                     + self.costs.pmd_attach)
            yield charge(CostDomain.TIERING, "tiering-demote", remap)
            yield from self._shootdown(ino)
        self.tiers.place(ino, granule, self.tiers.default)
        self._cold.pop((ino, granule), None)
        self._dirty.discard((ino, granule))
        self.stats.add(Counter.TIERING_DEMOTED_PAGES, GRANULE_PAGES)

    # -- state ----------------------------------------------------------
    def to_state(self) -> Dict[str, object]:
        return {
            "config": self.config.to_state(),
            "tiers": self.tiers.to_state(),
            "cold": [[ino, granule, count] for (ino, granule), count
                     in sorted(self._cold.items())],
            "dirty": [[ino, granule] for ino, granule
                      in sorted(self._dirty)],
            "scans": self.scans,
        }

    @classmethod
    def from_state(cls, state: Dict[str, object],
                   engine: Optional[Engine] = None,
                   mem: Optional[MemoryModel] = None,
                   costs: Optional[CostModel] = None,
                   stats: Optional[Stats] = None) -> "TieringDaemon":
        """Detached restore (pass the live machine to re-arm)."""
        daemon = cls.__new__(cls)
        daemon.engine = engine
        daemon.mem = mem
        daemon.costs = costs
        daemon.stats = stats
        daemon.tiers = TierMap.from_state(state["tiers"])
        daemon.config = TieringConfig.from_state(state["config"])
        daemon._cold = {(int(i), int(g)): int(c)
                        for i, g, c in state["cold"]}
        daemon._dirty = {(int(i), int(g)) for i, g in state["dirty"]}
        daemon.scans = int(state["scans"])
        daemon._thread = None
        return daemon


__all__ = ["GRANULE_BYTES", "GRANULE_PAGES", "TierMap",
           "TieringConfig", "TieringDaemon"]
