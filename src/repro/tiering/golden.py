"""Pinned mini-sweeps for the tier-equivalence gate.

The memory-tier refactor replaced every ``if medium is Medium.DRAM …
else <PMem>`` branch — pricing in :mod:`repro.mem.latency`, leaf-walk
selection in :mod:`repro.paging.walker`, the topology factor matrices,
the access-charging path in :mod:`repro.vm.mm` and the FS copy paths —
with dispatch through the :class:`~repro.mem.tiers.MediumSpec`
registry.  A DRAM+PMem-only machine must be the pre-refactor simulator
*bit for bit*: the specs carry exactly the constants the branches used
to read, in exactly the expression order they used to be combined.

This module pins that promise the honest way — the golden file was
captured from the tree **before** the registry landed, and
``tests/test_tier_golden.py`` replays the same points and byte-compares
the results.  The pinned set crosses every refactored layer: ephemeral
read/mmap/DaxVM (stream pricing, FS copies, access charging), an aged
Apache run (attach/detach, zeroing, walk media), radix4 syncbench and
kvstore points on clean and aged images (PMem-leaf walks, msync
flushes), and a two-socket placement trio (latency/bandwidth factor
matrices, interleave striping).  Range-scheme points are deliberately
absent: the same PR retunes range-TLB charging (one entry per run).

``python -m repro.tiering.golden`` recaptures the file; do that only
when a PR intentionally changes simulated costs, and say so in the PR.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Dict

GOLDEN_PATH = (Path(__file__).resolve().parents[3]
               / "tests" / "golden" / "tier_equivalence.json")

#: (sweep name, builder knobs, x filter, series filter or None).
PINNED = (
    ("scaling", {"ops": 8, "size": 64 << 10, "media": "optane",
                 "device_gib": 1, "aged": False}, (1, 4), None),
    ("apache", {"ops": 12, "size": 64 << 10, "media": "optane",
                "device_gib": 1, "aged": True}, (4,), None),
    ("mmu", {"ops": 16, "size": 64 << 10, "media": "optane",
             "device_gib": 1, "aged": False}, (0, 1),
     ("syncbench+radix4", "kvstore+radix4")),
    ("numa", {"ops": 6, "size": 64 << 10, "media": "optane",
              "device_gib": 1, "aged": False}, (2,), None),
)


def golden_states() -> Dict[str, Dict[str, object]]:
    """Run every pinned point on a fresh machine.

    Mirrors :func:`repro.runner.worker.run_point` — including the
    two-socket topology build for the ``numa`` points — minus the
    wall-clock field, which varies run to run.
    """
    from repro.config import MEDIA_PRESETS
    from repro.runner.manifest import result_state
    from repro.runner.sweeps import POINT_RUNNERS, build_sweep
    from repro.runner.worker import _reset_naming_counters
    from repro.system import System
    from repro.topology import MachineTopology

    out: Dict[str, Dict[str, object]] = {}
    for name, knobs, xs, series in PINNED:
        sweep = build_sweep(name, **knobs)
        key = f"{name}-aged" if knobs["aged"] else name
        states: Dict[str, object] = out.setdefault(key, {})
        for point in sweep.points:
            if point.x not in xs:
                continue
            if series is not None and point.series not in series:
                continue
            _reset_naming_counters()
            costs = MEDIA_PRESETS[point.media]()
            topology = (MachineTopology.split(costs.machine,
                                              point.num_nodes)
                        if point.num_nodes > 1 else None)
            system = System(costs=costs,
                            device_bytes=point.device_gib << 30,
                            aged=point.aged, topology=topology,
                            placement=point.placement,
                            pin_node=point.pin_node,
                            scheme=point.scheme)
            run = POINT_RUNNERS[point.experiment](system, **point.params)
            locks = [lock.report() for lock in system.engine.locks
                     if lock.acquisitions]
            state = result_state(run, system.stats, system.ledger,
                                 locks, 0.0)
            states[point.label] = {k: v for k, v in state.items()
                                   if k != "wall_seconds"}
    return out


def golden_json() -> str:
    return json.dumps(golden_states(), indent=2, sort_keys=True) + "\n"


def main() -> None:
    GOLDEN_PATH.parent.mkdir(parents=True, exist_ok=True)
    GOLDEN_PATH.write_text(golden_json())
    print(f"captured {GOLDEN_PATH}")


if __name__ == "__main__":
    main()
