"""The discrete-event engine: simulated time, threads, cores, effects.

Simulated threads are Python generators.  A thread yields *effects*;
the engine interprets each effect, advances the global clock, and
resumes the generator with the effect's result.  The effects:

``Compute(cycles)``
    Burn CPU time.  The thread resumes ``cycles`` later.  Any interrupt
    cycles stolen from the thread's core (e.g. by TLB-shootdown IPIs)
    are added on top, which is how remote-core interference appears in
    measured throughput.  Kernel layers should yield the instrumented
    variant, ``repro.obs.charge(domain, event, cycles)``, which burns
    the same time but attributes it in the engine's :class:`Ledger`;
    bare ``Compute`` is reserved for the engine's own tests and books
    under ``userspace/uncharged``.

``ChargeSpan(entries)``
    Several consecutive charges delivered at one yield point (see
    ``repro.obs.charge_span``).  Interpreted entry by entry with the
    exact arithmetic of separate ``Charge`` yields, so hot kernel
    paths can collapse adjacent charges without changing a cycle.

``Block()``
    Suspend until another thread wakes this one via ``Wake``.  Used by
    the lock implementations.

``Wake(thread, delay=0.0, value=None)``
    Schedule ``thread`` (which must be blocked) to resume ``delay``
    cycles from now; its ``Block()`` yield returns ``value``.  The
    target stays blocked until the wake *delivers*, so a second waker
    racing within the delay window queues deterministically instead of
    failing; a wake delivered to a thread that already resumed is
    banked and satisfies its next ``Block()`` immediately.

``Spawn(generator, core=..., name=..., daemon=...)``
    Create and start a new simulated thread; returns the
    :class:`SimThread`.

The engine is deliberately sequential and deterministic: ties are
broken by a monotone sequence number, so a given workload always
produces the same schedule and the same measured cycle counts.

Fast-forward: when the heap empties after a pop, the popped thread is
provably the only runnable entity — nothing can preempt it until it
yields a scheduling effect — so the engine drains its consecutive
``Compute``/``Charge`` effects in a tight loop instead of round-
tripping each one through the heap (see :meth:`Engine._drain` and
DESIGN §12 for the invariants).  The drain's clock and ledger
arithmetic are bit-identical to the heap path; ``fast_forward=False``
(or the module default :data:`FAST_FORWARD_DEFAULT`) forces the
classic path, which the engine-equivalence golden gate compares
byte-for-byte.
"""

from __future__ import annotations

import itertools
from heapq import heappop, heappush
from collections import deque
from typing import Any, Generator, Iterable, Optional

from repro.errors import DeadlockError, SimulationError
from repro.obs import Charge, ChargeSpan, CostDomain, Ledger

KernelGen = Generator[Any, Any, Any]

#: Session-wide default for :class:`Engine`'s fast-forward scheduler.
#: The equivalence golden flips this to prove both paths produce the
#: same bytes; everything else leaves it on.
FAST_FORWARD_DEFAULT = True


class Compute:
    """Effect: consume ``cycles`` of CPU time on the thread's core."""

    __slots__ = ("cycles",)

    def __init__(self, cycles: float):
        if cycles < 0:
            raise SimulationError(f"negative compute time: {cycles}")
        self.cycles = cycles

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"Compute({self.cycles:.0f})"


class Block:
    """Effect: suspend the thread until a matching :class:`Wake`."""

    __slots__ = ()

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return "Block()"


class Wake:
    """Effect: resume a blocked thread ``delay`` cycles from now."""

    __slots__ = ("thread", "delay", "value")

    def __init__(self, thread: "SimThread", delay: float = 0.0,
                 value: Any = None):
        self.thread = thread
        self.delay = delay
        self.value = value

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"Wake({self.thread.name}, delay={self.delay})"


class Spawn:
    """Effect: start a new simulated thread; yields the SimThread."""

    __slots__ = ("gen", "core", "name", "daemon")

    def __init__(self, gen: KernelGen, core: Optional[int] = None,
                 name: str = "", daemon: bool = False):
        self.gen = gen
        self.core = core
        self.name = name
        self.daemon = daemon


class _WakeToken:
    """In-flight wake: heap payload between Wake issue and delivery.

    The target stays BLOCKED while its token is in flight, so a second
    waker inside the delay window queues another token instead of
    tripping the issue-time state check."""

    __slots__ = ("thread", "value")

    def __init__(self, thread: "SimThread", value: Any):
        self.thread = thread
        self.value = value


class Core:
    """A CPU core: tracks its NUMA node and the stolen-cycle debt
    charged by interrupts, attributed per interrupting source."""

    __slots__ = ("index", "node", "stolen_cycles", "total_interrupts",
                 "_debts")

    def __init__(self, index: int, node: int = 0):
        self.index = index
        self.node = node
        self.stolen_cycles = 0.0
        self.total_interrupts = 0
        #: FIFO of ``[cycles, domain, event]`` debts — drained oldest
        #: first, so a drain attributes its cycles to whichever
        #: interrupts actually ran first.
        self._debts: deque = deque()

    def interrupt(self, cycles: float,
                  domain: CostDomain = CostDomain.TLB_SHOOTDOWN,
                  event: str = "ipi-stolen") -> None:
        """Charge an interrupt handler to whatever runs here next,
        attributed to the interrupting ``domain``/``event``."""
        self.stolen_cycles += cycles
        self.total_interrupts += 1
        debts = self._debts
        if debts and debts[-1][1] is domain and debts[-1][2] == event:
            debts[-1][0] += cycles
        else:
            debts.append([cycles, domain, event])

    def drain_attributed(self, compute_cycles: float = float("inf")):
        """Absorb pending interrupt debt, proportionally to the
        computation being charged; returns ``(total, entries)`` where
        ``entries`` is ``[(domain, event, cycles), ...]`` FIFO.

        Interrupts arrive at random points in real time, so a long
        computation absorbs its full share while a short critical
        section is only stretched modestly — without this bound, debt
        would pile onto whatever tiny lock-held compute runs next and
        manufacture convoys that do not exist on real hardware.

        The drained *total* is computed from the scalar running debt
        exactly as it always was (``min(stolen_cycles, limit)``); the
        per-source split only feeds ledger attribution, and a drain
        that touches a single source reports the scalar total verbatim
        so single-source schedules stay bit-identical.
        """
        limit = compute_cycles + 1000.0
        total = min(self.stolen_cycles, limit)
        if total == 0.0:
            return 0.0, ()
        debts = self._debts
        if total == self.stolen_cycles and len(debts) == 1:
            # Common case — one source, fully absorbed: the scalar
            # total is the single bucket, nothing left to split.
            head = debts[0]
            self.stolen_cycles = 0.0
            debts.clear()
            return total, ((head[1], head[2], total),)
        self.stolen_cycles -= total
        entries = []
        remaining = total
        while debts and remaining > 0.0:
            head = debts[0]
            if head[0] <= remaining:
                debts.popleft()
                take, domain, event = head
                remaining -= take
            else:
                take = remaining
                head[0] -= take
                domain, event = head[1], head[2]
                remaining = 0.0
            if entries and entries[-1][0] is domain \
                    and entries[-1][1] == event:
                entries[-1][2] += take
            else:
                entries.append([domain, event, take])
        if self.stolen_cycles == 0.0:
            # Per-source residues can drift from the scalar total by a
            # rounding ulp; a fully-paid core must owe nothing.
            debts.clear()
        if len(entries) == 1:
            # Single attribution bucket: report the scalar total, not
            # the per-source re-summation (identical as reals, not
            # always as floats).
            entries[0][2] = total
        return total, [(d, e, c) for d, e, c in entries]

    def drain_stolen(self, compute_cycles: float = float("inf")) -> float:
        """Back-compat scalar drain (see :meth:`drain_attributed`)."""
        return self.drain_attributed(compute_cycles)[0]


class SimThread:
    """A simulated thread: a generator plus scheduling state."""

    RUNNABLE = "runnable"
    BLOCKED = "blocked"
    FINISHED = "finished"

    def __init__(self, engine: "Engine", gen: KernelGen, core: Core,
                 name: str, daemon: bool):
        self.engine = engine
        self.gen = gen
        self.core = core
        self.name = name
        self.daemon = daemon
        self.state = SimThread.RUNNABLE
        self.started_at = engine.now
        self.finished_at: Optional[float] = None
        self.result: Any = None
        self._wake_value: Any = None
        #: Tenant this thread is accounted to (a name string), set by
        #: the repro.tenancy runtime; ``None`` for un-tenanted threads.
        self.tenant: Optional[str] = None
        #: cgroup-style ``limits.cpu`` enforcement: an object with a
        #: ``stretch(cycles) -> extra`` method and an ``event`` label
        #: (repro.tenancy.CpuThrottle, duck-typed).  Every charge is
        #: stretched by ``extra`` cycles booked to the ``tenancy``
        #: domain; ``None`` (the default) leaves scheduling untouched.
        self.cpu_throttle = None
        #: Wake values that arrived while this thread was not blocked
        #: (racing wakers); each satisfies one future ``Block()``.
        self._pending_wakes: deque = deque()
        #: Remaining :class:`ChargeSpan` entries when the engine is
        #: replaying a span one scheduling point at a time (contended
        #: path); ``None`` outside a span.
        self._span_entries = None
        self._span_index = 0

    @property
    def finished(self) -> bool:
        return self.state == SimThread.FINISHED

    @property
    def runtime(self) -> float:
        """Cycles between start and finish (finish required)."""
        if self.finished_at is None:
            raise SimulationError(f"thread {self.name} still running")
        return self.finished_at - self.started_at

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<SimThread {self.name} {self.state} core={self.core.index}>"


class Engine:
    """Deterministic discrete-event executor for simulated threads."""

    def __init__(self, num_cores: int = 16, topology=None,
                 freq_hz: float = 2.7e9,
                 fast_forward: Optional[bool] = None):
        self.now = 0.0
        # ``topology`` (a repro.topology.MachineTopology, duck-typed to
        # avoid an import cycle) pins each core to its socket; without
        # one, every core sits on node 0 as before.
        self.cores = [Core(i, topology.node_of_core(i) if topology
                           else 0) for i in range(num_cores)]
        #: Clock frequency used by :meth:`seconds`; ``System`` passes
        #: its cost model's ``MachineConfig.freq_hz`` through.
        self.freq_hz = freq_hz
        self.fast_forward = (FAST_FORWARD_DEFAULT if fast_forward is None
                             else fast_forward)
        self._heap: list = []
        self._seq = itertools.count()
        self.threads: list[SimThread] = []
        #: The thread currently being stepped (valid inside kernel code).
        self.current: Optional[SimThread] = None
        self._live_foreground = 0
        self._next_core = 0
        self.events_processed = 0
        #: Per-thread, per-domain cycle attribution (see repro.obs).
        self.ledger = Ledger()
        #: Every lock constructed against this engine registers itself
        #: here so contention reports can enumerate them.
        self.locks: list = []
        #: Optional ``thread_name -> tenant_name`` callable installed
        #: by an active repro.tenancy runtime; locks consult it to
        #: attribute cross-tenant waits.  ``None`` = un-tenanted.
        self.tenant_resolver = None

    # -- thread management ------------------------------------------------
    def spawn(self, gen: KernelGen, core: Optional[int] = None,
              name: str = "", daemon: bool = False) -> SimThread:
        """Register a generator as a new runnable thread."""
        if core is None:
            core = self._next_core % len(self.cores)
            self._next_core += 1
        if not 0 <= core < len(self.cores):
            raise SimulationError(f"core {core} out of range")
        thread = SimThread(self, gen, self.cores[core],
                           name or f"thread-{len(self.threads)}", daemon)
        self.threads.append(thread)
        if not daemon:
            self._live_foreground += 1
        self._schedule(thread, 0.0)
        return thread

    def _schedule(self, thread: SimThread, delay: float) -> None:
        heappush(self._heap,
                 (self.now + delay, next(self._seq), thread))

    def _finish(self, thread: SimThread, result: Any) -> None:
        thread.state = SimThread.FINISHED
        thread.finished_at = self.now
        thread.result = result
        if not thread.daemon:
            self._live_foreground -= 1

    # -- effect interpretation --------------------------------------------
    def _charge_one(self, thread: SimThread, domain: CostDomain,
                    event: str, cycles: float) -> None:
        """Record one charge and reschedule: the shared arithmetic of
        ``Charge``/``Compute`` and each :class:`ChargeSpan` entry."""
        core = thread.core
        if core.stolen_cycles:
            stolen, stolen_entries = core.drain_attributed(cycles)
        else:
            stolen, stolen_entries = 0.0, ()
        ledger = self.ledger
        ledger.record(thread.name, domain, event, cycles)
        if stolen:
            # Time stolen by interrupts belongs to the interrupting
            # source (shootdown IPI, media-stall broadcast, ...),
            # whatever the interrupted thread was doing.
            for sdomain, sevent, took in stolen_entries:
                ledger.record(thread.name, sdomain, sevent, took)
        throttle = thread.cpu_throttle
        if throttle is not None:
            extra = throttle.stretch(cycles)
            if extra > 0.0:
                ledger.record(thread.name, CostDomain.TENANCY,
                              throttle.event, extra)
                self._schedule(thread, cycles + stolen + extra)
                return
        self._schedule(thread, cycles + stolen)

    def _step(self, thread: SimThread) -> None:
        """Resume a thread once and interpret the effect it yields.

        A thread mid-span is *not* resumed: its next buffered entry is
        interpreted instead, so on the contended path a ``ChargeSpan``
        occupies one scheduling point per entry — bit-identical to the
        separate ``Charge`` yields it replaced, including how other
        threads' records and interrupts interleave between entries.

        :meth:`run` inlines this body in its hot loop; this method is
        the readable reference (and the entry point for tests that
        drive single steps).  Keep the two in sync.
        """
        span = thread._span_entries
        if span is not None:
            index = thread._span_index
            domain, event, cycles = span[index]
            index += 1
            if index == len(span):
                thread._span_entries = None
            else:
                thread._span_index = index
            self._charge_one(thread, domain, event, cycles)
            return
        self.current = thread
        try:
            effect = thread.gen.send(thread._wake_value)
        except StopIteration as stop:
            self._finish(thread, stop.value)
            return
        thread._wake_value = None

        cls = effect.__class__
        if cls is Charge or cls is Compute:
            # _charge_one's body, inlined — including the ledger's
            # ``record`` (same defaultdict accumulation, same zero
            # skip) and the heap push: this is the contended path's
            # per-event cost and every call frame here is measurable.
            if cls is Charge:
                domain, event = effect.domain, effect.event
            else:
                domain, event = CostDomain.USERSPACE, "uncharged"
            cycles = effect.cycles
            core = thread.core
            if core.stolen_cycles:
                stolen, stolen_entries = core.drain_attributed(cycles)
            else:
                stolen, stolen_entries = 0.0, ()
            ledger = self.ledger
            if cycles != 0.0:
                ledger._domains[domain] += cycles
                ledger._events[(domain, event)] += cycles
                ledger._threads[thread.name][domain] += cycles
                ledger.records += 1
            if stolen:
                for sdomain, sevent, took in stolen_entries:
                    ledger.record(thread.name, sdomain, sevent, took)
            throttle = thread.cpu_throttle
            if throttle is not None:
                extra = throttle.stretch(cycles)
                if extra > 0.0:
                    ledger.record(thread.name, CostDomain.TENANCY,
                                  throttle.event, extra)
                    heappush(self._heap,
                             (self.now + cycles + stolen + extra,
                              next(self._seq), thread))
                    return
            heappush(self._heap,
                     (self.now + cycles + stolen, next(self._seq), thread))
        elif cls is ChargeSpan:
            entries = effect.entries
            if not entries:
                self._schedule(thread, 0.0)
                return
            if len(entries) > 1:
                thread._span_entries = entries
                thread._span_index = 1
            self._charge_one(thread, *entries[0])
        else:
            self._interpret(thread, effect)

    def _apply_span(self, thread: SimThread, entries, append) -> None:
        """Inline a run of span entries inside a fast-forward drain.

        Only legal while the heap is empty (nothing can interleave):
        each entry advances the clock and drains interrupt debt with
        exactly the arithmetic of a separate ``Charge`` yield, and the
        ledger entries land contiguously in the drain's replay buffer
        — the same contiguous order an uncontended heap run produces.
        """
        core = thread.core
        for domain, event, cycles in entries:
            if core.stolen_cycles:
                stolen, stolen_entries = core.drain_attributed(cycles)
                append((domain, event, cycles))
                for entry in stolen_entries:
                    append(entry)
                self.now += cycles + stolen
            else:
                append((domain, event, cycles))
                self.now += cycles

    def _interpret(self, thread: SimThread, effect) -> None:
        """Interpret a scheduling effect (anything but pure compute)."""
        cls = effect.__class__
        if cls is Block:
            if thread._pending_wakes:
                # A racing waker already queued a credit for us: the
                # block is satisfied immediately and deterministically.
                thread._wake_value = thread._pending_wakes.popleft()
                self._schedule(thread, 0.0)
            else:
                thread.state = SimThread.BLOCKED
        elif cls is Wake:
            target = effect.thread
            if target.state != SimThread.BLOCKED:
                raise SimulationError(
                    f"Wake({target.name}): thread is {target.state}")
            # The target stays BLOCKED until the token delivers, so
            # further wakers inside the delay window queue behind it.
            heappush(self._heap,
                     (self.now + effect.delay, next(self._seq),
                      _WakeToken(target, effect.value)))
            thread._wake_value = None
            self._schedule(thread, 0.0)
        elif cls is Spawn:
            child = self.spawn(effect.gen, core=effect.core,
                               name=effect.name, daemon=effect.daemon)
            thread._wake_value = child
            self._schedule(thread, 0.0)
        else:
            raise SimulationError(f"unknown effect {effect!r} "
                                  f"from thread {thread.name}")

    def _drain(self, thread: SimThread, limit: float,
               max_events: Optional[int]) -> None:
        """Fast-forward ``thread`` while it is the sole runnable entity.

        Called with the heap empty after ``thread``'s pop: no other
        thread, daemon or wake token can run until this one yields a
        scheduling effect or its kernel code pushes something into the
        heap.  Consecutive ``Compute``/``Charge``/``ChargeSpan``
        effects are interpreted in a tight loop — same clock floats,
        same ledger record stream (buffered and replayed in order),
        same event accounting — skipping only the heap round-trips.
        """
        self.current = thread
        heap = self._heap
        core = thread.core
        send = thread.gen.send
        name = thread.name
        buf: list = []
        append = buf.append
        value = thread._wake_value
        thread._wake_value = None
        try:
            span = thread._span_entries
            if span is not None:
                # The thread was popped mid-span (the contended path
                # buffered the rest): this pop pays the next entry and
                # the drain inlines the remainder, one event each.
                rest = span[thread._span_index:]
                thread._span_entries = None
                self._apply_span(thread, rest, append)
                self.events_processed += len(rest) - 1
                if self.events_processed >= limit:
                    self._schedule(thread, 0.0)
                    raise SimulationError(
                        f"event budget {max_events} exhausted "
                        f"at t={self.now}")
                self.events_processed += 1
            while True:
                try:
                    effect = send(value)
                except StopIteration as stop:
                    self._finish(thread, stop.value)
                    return
                value = None
                cls = effect.__class__
                if cls is Charge:
                    cycles = effect.cycles
                    if core.stolen_cycles:
                        stolen, stolen_entries = \
                            core.drain_attributed(cycles)
                        append((effect.domain, effect.event, cycles))
                        for entry in stolen_entries:
                            append(entry)
                        self.now += cycles + stolen
                    else:
                        append((effect.domain, effect.event, cycles))
                        self.now += cycles
                elif cls is Compute:
                    cycles = effect.cycles
                    if core.stolen_cycles:
                        stolen, stolen_entries = \
                            core.drain_attributed(cycles)
                        append((CostDomain.USERSPACE, "uncharged", cycles))
                        for entry in stolen_entries:
                            append(entry)
                        self.now += cycles + stolen
                    else:
                        append((CostDomain.USERSPACE, "uncharged", cycles))
                        self.now += cycles
                elif cls is ChargeSpan:
                    entries = effect.entries
                    if entries:
                        self._apply_span(thread, entries, append)
                        # Each entry is one scheduling point on the
                        # contended path; keep the event accounting
                        # identical (the loop bottom counts one).
                        self.events_processed += len(entries) - 1
                else:
                    self._interpret(thread, effect)
                    return
                if heap:
                    # Kernel code scheduled something mid-effect (e.g.
                    # a daemon spawned directly); re-enter the heap so
                    # it can interleave.
                    self._schedule(thread, 0.0)
                    return
                if self.events_processed >= limit:
                    self._schedule(thread, 0.0)
                    raise SimulationError(
                        f"event budget {max_events} exhausted "
                        f"at t={self.now}")
                self.events_processed += 1
        finally:
            if buf:
                self.ledger.record_many(name, buf)

    # -- main loop ---------------------------------------------------------
    def run(self, max_events: Optional[int] = None) -> float:
        """Run until all foreground threads finish; returns final time.

        Daemon threads (e.g. the DaxVM pre-zeroing kthread) do not keep
        the simulation alive: once every foreground thread has
        finished, remaining events are discarded.  ``max_events``
        budgets *this call* — repeated phases (crash recovery, fault
        repair) each get their full budget.
        """
        limit = (self.events_processed + max_events
                 if max_events is not None else float("inf"))
        heap = self._heap
        fast_forward = self.fast_forward
        ledger = self.ledger
        seq = self._seq
        while heap and self._live_foreground > 0:
            if self.events_processed >= limit:
                raise SimulationError(
                    f"event budget {max_events} exhausted at t={self.now}")
            when, _seq, item = heappop(heap)
            if item.__class__ is _WakeToken:
                thread = item.thread
                state = thread.state
                if state == SimThread.BLOCKED:
                    thread.state = SimThread.RUNNABLE
                    thread._wake_value = item.value
                elif state == SimThread.FINISHED:
                    continue
                else:
                    # The target already resumed (racing wakers): bank
                    # the credit for its next Block().
                    thread._pending_wakes.append(item.value)
                    continue
            else:
                thread = item
                if thread.state != SimThread.RUNNABLE:
                    # Stale entry: a finished thread's leftovers, or a
                    # thread that blocked after this event was queued
                    # (the wake token will resume it).
                    continue
            self.now = when
            self.events_processed += 1
            if fast_forward and not heap and thread.cpu_throttle is None:
                # Throttled tenant threads always take the classic
                # path: the drain's tight loop has no stretch hook, and
                # a sole-runnable throttled thread is rare enough that
                # skipping the fast path costs nothing measurable.
                self._drain(thread, limit, max_events)
                continue
            # ``_step``'s body, inlined: this loop interprets every
            # contended-path event and the call frame alone is
            # measurable at tens of thousands of events per point.
            # Keep in sync with ``_step``.
            span = thread._span_entries
            if span is not None:
                index = thread._span_index
                domain, event, cycles = span[index]
                index += 1
                if index == len(span):
                    thread._span_entries = None
                else:
                    thread._span_index = index
                self._charge_one(thread, domain, event, cycles)
                continue
            self.current = thread
            try:
                effect = thread.gen.send(thread._wake_value)
            except StopIteration as stop:
                self._finish(thread, stop.value)
                continue
            thread._wake_value = None
            cls = effect.__class__
            if cls is Charge or cls is Compute:
                if cls is Charge:
                    domain, event = effect.domain, effect.event
                else:
                    domain, event = CostDomain.USERSPACE, "uncharged"
                cycles = effect.cycles
                core = thread.core
                if core.stolen_cycles:
                    stolen, stolen_entries = \
                        core.drain_attributed(cycles)
                else:
                    stolen, stolen_entries = 0.0, ()
                if cycles != 0.0:
                    ledger._domains[domain] += cycles
                    ledger._events[(domain, event)] += cycles
                    ledger._threads[thread.name][domain] += cycles
                    ledger.records += 1
                if stolen:
                    for sdomain, sevent, took in stolen_entries:
                        ledger.record(thread.name, sdomain, sevent, took)
                throttle = thread.cpu_throttle
                if throttle is not None:
                    extra = throttle.stretch(cycles)
                    if extra > 0.0:
                        ledger.record(thread.name, CostDomain.TENANCY,
                                      throttle.event, extra)
                        heappush(heap,
                                 (self.now + cycles + stolen + extra,
                                  next(seq), thread))
                        continue
                heappush(heap,
                         (self.now + cycles + stolen, next(seq), thread))
            elif cls is ChargeSpan:
                entries = effect.entries
                if not entries:
                    self._schedule(thread, 0.0)
                    continue
                if len(entries) > 1:
                    thread._span_entries = entries
                    thread._span_index = 1
                self._charge_one(thread, *entries[0])
            else:
                self._interpret(thread, effect)
        if self._live_foreground > 0:
            blocked = [t.name for t in self.threads
                       if t.state == SimThread.BLOCKED and not t.daemon]
            raise DeadlockError(
                f"{self._live_foreground} foreground thread(s) blocked "
                f"forever: {blocked}")
        return self.now

    def reap_crashed(self, thread: Optional[SimThread] = None) -> None:
        """Retire a thread whose generator raised out of :meth:`run`.

        An exception escaping a kernel path (a simulated SIGBUS, say)
        leaves the raising thread mid-step: still counted as live
        foreground, so a later :meth:`run` would diagnose a deadlock.
        Callers that catch the exception and keep using the simulation
        (the media-fault injector's repair phase) retire the crashed
        thread here first.  Defaults to the thread that was being
        stepped when the exception escaped.
        """
        thread = thread if thread is not None else self.current
        if thread is None or thread.state == SimThread.FINISHED:
            return
        thread.state = SimThread.FINISHED
        thread.finished_at = self.now
        if not thread.daemon:
            self._live_foreground -= 1

    # -- helpers for cross-core interference -------------------------------
    def interrupt_cores(self, core_indices: Iterable[int],
                        cycles: float,
                        domain: CostDomain = CostDomain.TLB_SHOOTDOWN,
                        event: str = "ipi-stolen") -> int:
        """Charge an interrupt handler to each listed core; returns
        count.  ``domain``/``event`` say who the stolen cycles belong
        to when a victim's next compute absorbs them (TLB-shootdown
        IPIs by default; media-stall broadcasts pass their own)."""
        count = 0
        for idx in core_indices:
            self.cores[idx].interrupt(cycles, domain, event)
            count += 1
        return count

    def broadcast_interrupt(self, cycles: float, domain: CostDomain,
                            event: str,
                            only: Optional[Iterable["SimThread"]] = None,
                            ) -> int:
        """Interrupt every core running another live non-daemon
        thread; returns the victim count.

        Device-wide events — a media-stall window freezing the DIMM,
        say — hit everyone touching the device, not just the thread
        that tripped them.  The caller's own core is exempt (it pays
        the cost in-line through its ``Charge``).  ``only`` restricts
        the blast radius to the listed threads' cores — a hypervisor
        pausing one guest freezes that guest's vCPUs, not the host —
        and ``None`` (the default) keeps the device-wide behaviour."""
        current = self.current
        skip = current.core.index if current is not None else -1
        pool = self.threads if only is None else only
        victims = {thread.core.index for thread in pool
                   if not thread.daemon
                   and thread.state != SimThread.FINISHED}
        victims.discard(skip)
        return self.interrupt_cores(sorted(victims), cycles,
                                    domain=domain, event=event)

    def seconds(self, cycles: Optional[float] = None,
                freq_hz: Optional[float] = None) -> float:
        """Convert cycles (default: current time) to seconds at the
        engine's configured clock (default: ``self.freq_hz``)."""
        value = self.now if cycles is None else cycles
        return value / (self.freq_hz if freq_hz is None else freq_hz)
