"""The discrete-event engine: simulated time, threads, cores, effects.

Simulated threads are Python generators.  A thread yields *effects*;
the engine interprets each effect, advances the global clock, and
resumes the generator with the effect's result.  Three effects exist:

``Compute(cycles)``
    Burn CPU time.  The thread resumes ``cycles`` later.  Any interrupt
    cycles stolen from the thread's core (e.g. by TLB-shootdown IPIs)
    are added on top, which is how remote-core interference appears in
    measured throughput.  Kernel layers should yield the instrumented
    variant, ``repro.obs.charge(domain, event, cycles)``, which burns
    the same time but attributes it in the engine's :class:`Ledger`;
    bare ``Compute`` is reserved for the engine's own tests and books
    under ``userspace/uncharged``.

``Block()``
    Suspend until another thread wakes this one via ``Wake``.  Used by
    the lock implementations.

``Wake(thread, delay=0.0, value=None)``
    Schedule ``thread`` (which must be blocked) to resume ``delay``
    cycles from now; its ``Block()`` yield returns ``value``.

``Spawn(generator, core=..., name=..., daemon=...)``
    Create and start a new simulated thread; returns the
    :class:`SimThread`.

The engine is deliberately sequential and deterministic: ties are
broken by a monotone sequence number, so a given workload always
produces the same schedule and the same measured cycle counts.
"""

from __future__ import annotations

import heapq
import itertools
from typing import Any, Generator, Iterable, Optional

from repro.errors import DeadlockError, SimulationError
from repro.obs import Charge, CostDomain, Ledger

KernelGen = Generator[Any, Any, Any]


class Compute:
    """Effect: consume ``cycles`` of CPU time on the thread's core."""

    __slots__ = ("cycles",)

    def __init__(self, cycles: float):
        if cycles < 0:
            raise SimulationError(f"negative compute time: {cycles}")
        self.cycles = cycles

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"Compute({self.cycles:.0f})"


class Block:
    """Effect: suspend the thread until a matching :class:`Wake`."""

    __slots__ = ()

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return "Block()"


class Wake:
    """Effect: resume a blocked thread ``delay`` cycles from now."""

    __slots__ = ("thread", "delay", "value")

    def __init__(self, thread: "SimThread", delay: float = 0.0,
                 value: Any = None):
        self.thread = thread
        self.delay = delay
        self.value = value

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"Wake({self.thread.name}, delay={self.delay})"


class Spawn:
    """Effect: start a new simulated thread; yields the SimThread."""

    __slots__ = ("gen", "core", "name", "daemon")

    def __init__(self, gen: KernelGen, core: Optional[int] = None,
                 name: str = "", daemon: bool = False):
        self.gen = gen
        self.core = core
        self.name = name
        self.daemon = daemon


class Core:
    """A CPU core: tracks its NUMA node and the stolen-cycle debt
    charged by interrupts."""

    __slots__ = ("index", "node", "stolen_cycles", "total_interrupts")

    def __init__(self, index: int, node: int = 0):
        self.index = index
        self.node = node
        self.stolen_cycles = 0.0
        self.total_interrupts = 0

    def interrupt(self, cycles: float) -> None:
        """Charge an interrupt handler to whatever runs here next."""
        self.stolen_cycles += cycles
        self.total_interrupts += 1

    def drain_stolen(self, compute_cycles: float = float("inf")) -> float:
        """Absorb pending interrupt debt, proportionally to the
        computation being charged.

        Interrupts arrive at random points in real time, so a long
        computation absorbs its full share while a short critical
        section is only stretched modestly — without this bound, debt
        would pile onto whatever tiny lock-held compute runs next and
        manufacture convoys that do not exist on real hardware.
        """
        limit = compute_cycles + 1000.0
        cycles = min(self.stolen_cycles, limit)
        self.stolen_cycles -= cycles
        return cycles


class SimThread:
    """A simulated thread: a generator plus scheduling state."""

    RUNNABLE = "runnable"
    BLOCKED = "blocked"
    FINISHED = "finished"

    def __init__(self, engine: "Engine", gen: KernelGen, core: Core,
                 name: str, daemon: bool):
        self.engine = engine
        self.gen = gen
        self.core = core
        self.name = name
        self.daemon = daemon
        self.state = SimThread.RUNNABLE
        self.started_at = engine.now
        self.finished_at: Optional[float] = None
        self.result: Any = None
        self._wake_value: Any = None

    @property
    def finished(self) -> bool:
        return self.state == SimThread.FINISHED

    @property
    def runtime(self) -> float:
        """Cycles between start and finish (finish required)."""
        if self.finished_at is None:
            raise SimulationError(f"thread {self.name} still running")
        return self.finished_at - self.started_at

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<SimThread {self.name} {self.state} core={self.core.index}>"


class Engine:
    """Deterministic discrete-event executor for simulated threads."""

    def __init__(self, num_cores: int = 16, topology=None):
        self.now = 0.0
        # ``topology`` (a repro.topology.MachineTopology, duck-typed to
        # avoid an import cycle) pins each core to its socket; without
        # one, every core sits on node 0 as before.
        self.cores = [Core(i, topology.node_of_core(i) if topology
                           else 0) for i in range(num_cores)]
        self._heap: list = []
        self._seq = itertools.count()
        self.threads: list[SimThread] = []
        #: The thread currently being stepped (valid inside kernel code).
        self.current: Optional[SimThread] = None
        self._live_foreground = 0
        self._next_core = 0
        self.events_processed = 0
        #: Per-thread, per-domain cycle attribution (see repro.obs).
        self.ledger = Ledger()
        #: Every lock constructed against this engine registers itself
        #: here so contention reports can enumerate them.
        self.locks: list = []

    # -- thread management ------------------------------------------------
    def spawn(self, gen: KernelGen, core: Optional[int] = None,
              name: str = "", daemon: bool = False) -> SimThread:
        """Register a generator as a new runnable thread."""
        if core is None:
            core = self._next_core % len(self.cores)
            self._next_core += 1
        if not 0 <= core < len(self.cores):
            raise SimulationError(f"core {core} out of range")
        thread = SimThread(self, gen, self.cores[core],
                           name or f"thread-{len(self.threads)}", daemon)
        self.threads.append(thread)
        if not daemon:
            self._live_foreground += 1
        self._schedule(thread, 0.0)
        return thread

    def _schedule(self, thread: SimThread, delay: float) -> None:
        heapq.heappush(self._heap,
                       (self.now + delay, next(self._seq), thread))

    # -- effect interpretation --------------------------------------------
    def _step(self, thread: SimThread) -> None:
        """Resume a thread once and interpret the effect it yields."""
        self.current = thread
        try:
            effect = thread.gen.send(thread._wake_value)
        except StopIteration as stop:
            thread.state = SimThread.FINISHED
            thread.finished_at = self.now
            thread.result = stop.value
            if not thread.daemon:
                self._live_foreground -= 1
            return
        thread._wake_value = None

        if isinstance(effect, (Compute, Charge)):
            stolen = thread.core.drain_stolen(effect.cycles)
            if isinstance(effect, Charge):
                self.ledger.record(thread.name, effect.domain,
                                   effect.event, effect.cycles)
            else:
                self.ledger.record(thread.name, CostDomain.USERSPACE,
                                   "uncharged", effect.cycles)
            if stolen:
                # Time stolen by remote shootdown IPIs belongs to the
                # shootdown, whatever the interrupted thread was doing.
                self.ledger.record(thread.name, CostDomain.TLB_SHOOTDOWN,
                                   "ipi-stolen", stolen)
            self._schedule(thread, effect.cycles + stolen)
        elif isinstance(effect, Block):
            thread.state = SimThread.BLOCKED
        elif isinstance(effect, Wake):
            target = effect.thread
            if target.state != SimThread.BLOCKED:
                raise SimulationError(
                    f"Wake({target.name}): thread is {target.state}")
            target.state = SimThread.RUNNABLE
            target._wake_value = effect.value
            self._schedule(target, effect.delay)
            thread._wake_value = None
            self._schedule(thread, 0.0)
        elif isinstance(effect, Spawn):
            child = self.spawn(effect.gen, core=effect.core,
                               name=effect.name, daemon=effect.daemon)
            thread._wake_value = child
            self._schedule(thread, 0.0)
        else:
            raise SimulationError(f"unknown effect {effect!r} "
                                  f"from thread {thread.name}")

    # -- main loop ---------------------------------------------------------
    def run(self, max_events: Optional[int] = None) -> float:
        """Run until all foreground threads finish; returns final time.

        Daemon threads (e.g. the DaxVM pre-zeroing kthread) do not keep
        the simulation alive: once every foreground thread has
        finished, remaining events are discarded.
        """
        budget = max_events if max_events is not None else float("inf")
        while self._heap and self._live_foreground > 0:
            if self.events_processed >= budget:
                raise SimulationError(
                    f"event budget {max_events} exhausted at t={self.now}")
            when, _seq, thread = heapq.heappop(self._heap)
            if thread.state == SimThread.FINISHED:
                continue
            if thread.state == SimThread.BLOCKED:
                # A stale event for a thread that blocked after this
                # event was queued; the wake will reschedule it.
                continue
            self.now = when
            self.events_processed += 1
            self._step(thread)
        if self._live_foreground > 0:
            blocked = [t.name for t in self.threads
                       if t.state == SimThread.BLOCKED and not t.daemon]
            raise DeadlockError(
                f"{self._live_foreground} foreground thread(s) blocked "
                f"forever: {blocked}")
        return self.now

    def reap_crashed(self, thread: Optional[SimThread] = None) -> None:
        """Retire a thread whose generator raised out of :meth:`run`.

        An exception escaping a kernel path (a simulated SIGBUS, say)
        leaves the raising thread mid-step: still counted as live
        foreground, so a later :meth:`run` would diagnose a deadlock.
        Callers that catch the exception and keep using the simulation
        (the media-fault injector's repair phase) retire the crashed
        thread here first.  Defaults to the thread that was being
        stepped when the exception escaped.
        """
        thread = thread if thread is not None else self.current
        if thread is None or thread.state == SimThread.FINISHED:
            return
        thread.state = SimThread.FINISHED
        thread.finished_at = self.now
        if not thread.daemon:
            self._live_foreground -= 1

    # -- helpers for cross-core interference -------------------------------
    def interrupt_cores(self, core_indices: Iterable[int],
                        cycles: float) -> int:
        """Charge an interrupt handler to each listed core; returns count."""
        count = 0
        for idx in core_indices:
            self.cores[idx].interrupt(cycles)
            count += 1
        return count

    def seconds(self, cycles: Optional[float] = None,
                freq_hz: float = 2.7e9) -> float:
        """Convert cycles (default: current time) to seconds."""
        value = self.now if cycles is None else cycles
        return value / freq_hz
