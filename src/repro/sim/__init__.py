"""Discrete-event simulation engine.

The engine executes *simulated threads* — Python generators that yield
effect objects (:class:`~repro.sim.engine.Compute`,
:class:`~repro.sim.engine.Block`, ...) — against a global cycle clock.
Kernel code in the rest of the package is written as generator
functions composed with ``yield from``, so a single workload thread
transparently accumulates the cycle costs of every kernel path it
crosses and blocks on every contended lock it hits.
"""

from repro.sim.engine import (
    Block,
    Compute,
    Engine,
    SimThread,
    Spawn,
    Wake,
)
from repro.sim.locks import Mutex, RWSemaphore, Spinlock
from repro.sim.stats import Stats

__all__ = [
    "Block",
    "Compute",
    "Engine",
    "Mutex",
    "RWSemaphore",
    "SimThread",
    "Spawn",
    "Spinlock",
    "Stats",
    "Wake",
]
