"""Counters, samplers and derived metrics for experiments.

A :class:`Stats` object is threaded through the kernel layers; every
subsystem bumps named counters (faults, shootdowns, journal commits,
walk cycles...).  Experiments read them to report the same quantities
the paper reports ("~2.8x more faults", "10x fewer faults", average
page-walk cycles for Table II, ...).
"""

from __future__ import annotations

from collections import defaultdict
from typing import Dict, List, Tuple


class Stats:
    """A registry of counters plus (time, value) throughput samples."""

    def __init__(self) -> None:
        self.counters: Dict[str, float] = defaultdict(float)
        self.samples: Dict[str, List[Tuple[float, float]]] = defaultdict(list)

    # -- counters ----------------------------------------------------------
    def add(self, name: str, amount: float = 1.0) -> None:
        self.counters[name] += amount

    def get(self, name: str) -> float:
        return self.counters.get(name, 0.0)

    def ratio(self, numerator: str, denominator: str) -> float:
        denom = self.get(denominator)
        return self.get(numerator) / denom if denom else 0.0

    # -- time series ---------------------------------------------------------
    def sample(self, series: str, when: float, value: float) -> None:
        self.samples[series].append((when, value))

    def series(self, name: str) -> List[Tuple[float, float]]:
        return list(self.samples.get(name, []))

    # -- convenience -----------------------------------------------------
    def snapshot(self) -> Dict[str, float]:
        return dict(self.counters)

    def reset(self) -> None:
        self.counters.clear()
        self.samples.clear()

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        keys = ", ".join(sorted(self.counters)[:8])
        return f"<Stats {len(self.counters)} counters: {keys}...>"
