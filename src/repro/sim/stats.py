"""Counters, samplers, histograms and derived metrics for experiments.

A :class:`Stats` object is threaded through the kernel layers; every
subsystem bumps named counters (faults, shootdowns, journal commits,
walk cycles...).  Experiments read them to report the same quantities
the paper reports ("~2.8x more faults", "10x fewer faults", average
page-walk cycles for Table II, ...).

Counter names are typed: producers pass :class:`repro.obs.Counter`
members, whose values are the legacy string keys, so external readers
(benches, JSON) are unaffected.  Latency distributions go through
:meth:`observe`, which feeds a mergeable log-linear
:class:`~repro.obs.histogram.Histogram` and replaces the ad-hoc
averaging benches used to do.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Dict, List, Tuple, Union

from repro.errors import MissingCounterError
from repro.obs.counters import _COUNTER_KEYS, Counter, counter_key
from repro.obs.histogram import Histogram

Name = Union[Counter, str]


class Stats:
    """Counters plus (time, value) samples plus latency histograms."""

    def __init__(self) -> None:
        self.counters: Dict[str, float] = defaultdict(float)
        self.samples: Dict[str, List[Tuple[float, float]]] = defaultdict(list)
        self.timings: Dict[str, Histogram] = {}

    # -- counters ----------------------------------------------------------
    def add(self, name: Name, amount: float = 1.0) -> None:
        # ``counter_key`` inlined: ``add`` fires on every fault/walk.
        self.counters[_COUNTER_KEYS.get(name, name)] += amount

    def get(self, name: Name) -> float:
        return self.counters.get(counter_key(name), 0.0)

    def touched(self, name: Name) -> bool:
        """Whether the counter was ever incremented (even by 0.0)."""
        return counter_key(name) in self.counters

    def ratio(self, numerator: Name, denominator: Name) -> float:
        """``numerator / denominator``; 0.0 when the denominator is a
        *touched* zero, :class:`MissingCounterError` when it was never
        incremented at all (which would otherwise silently hide
        instrumentation that never fired)."""
        if not self.touched(denominator):
            raise MissingCounterError(
                f"ratio denominator {counter_key(denominator)!r} was "
                f"never incremented")
        denom = self.get(denominator)
        return self.get(numerator) / denom if denom else 0.0

    # -- time series -------------------------------------------------------
    def sample(self, series: Name, when: float, value: float) -> None:
        self.samples[_COUNTER_KEYS.get(series, series)].append((when, value))

    def series(self, name: Name) -> List[Tuple[float, float]]:
        return list(self.samples.get(counter_key(name), []))

    # -- latency histograms ------------------------------------------------
    def observe(self, name: Name, value: float, count: int = 1) -> None:
        """Record one latency/size observation into a histogram."""
        key = counter_key(name)
        hist = self.timings.get(key)
        if hist is None:
            hist = self.timings[key] = Histogram()
        hist.record(value, count)

    def percentile(self, series: Name, q: float) -> float:
        """Quantile ``q`` (0-100) of a histogram or sampled series."""
        key = counter_key(series)
        hist = self.timings.get(key)
        if hist is not None:
            return hist.percentile(q)
        points = self.samples.get(key)
        if points:
            values = sorted(v for _t, v in points)
            if not 0 <= q <= 100:
                raise ValueError(f"quantile out of range: {q}")
            index = min(len(values) - 1,
                        max(0, round(q / 100.0 * (len(values) - 1))))
            return values[index]
        raise MissingCounterError(f"no histogram or series {key!r}")

    # -- aggregation -------------------------------------------------------
    def merge(self, other: "Stats") -> "Stats":
        """Fold another Stats into this one (multi-process benches)."""
        for key, value in other.counters.items():
            self.counters[key] += value
        for key, points in other.samples.items():
            self.samples[key].extend(points)
        for key, hist in other.timings.items():
            mine = self.timings.get(key)
            if mine is None:
                mine = self.timings[key] = Histogram()
            mine.merge(hist)
        return self

    # -- convenience -------------------------------------------------------
    def snapshot(self) -> Dict[str, float]:
        return dict(self.counters)

    def reset(self) -> None:
        self.counters.clear()
        self.samples.clear()
        self.timings.clear()

    def to_state(self) -> Dict[str, object]:
        """Lossless, JSON-ready state — counters, full sample series
        and raw histogram buckets — so a worker process can return its
        Stats and the parent can :meth:`merge` them bit-identically
        (the sweep runner's contract)."""
        return {
            "counters": dict(self.counters),
            "samples": {key: [[t, v] for t, v in points]
                        for key, points in self.samples.items()},
            "timings": {key: hist.to_state()
                        for key, hist in self.timings.items()},
        }

    @classmethod
    def from_state(cls, state: Dict[str, object]) -> "Stats":
        stats = cls()
        for key, value in state.get("counters", {}).items():
            stats.counters[key] = float(value)
        for key, points in state.get("samples", {}).items():
            stats.samples[key] = [(float(t), float(v))
                                  for t, v in points]
        for key, hist in state.get("timings", {}).items():
            stats.timings[key] = Histogram.from_state(hist)
        return stats

    def to_json(self) -> Dict[str, object]:
        """JSON-ready export: counters + histogram summaries + series
        lengths (full series are omitted; they can be huge)."""
        return {
            "counters": dict(sorted(self.counters.items())),
            "timings": {key: hist.summary()
                        for key, hist in sorted(self.timings.items())},
            "series_points": {key: len(points)
                              for key, points in sorted(self.samples.items())},
        }

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        keys = ", ".join(sorted(self.counters)[:8])
        return f"<Stats {len(self.counters)} counters: {keys}...>"
