"""Pinned mini-sweeps for the fast-forward equivalence gate.

The fast-forward scheduler (:meth:`repro.sim.engine.Engine._drain`)
and the batched ledger flush must not move a single measured cycle:
an engine with ``fast_forward=True`` has to produce byte-for-byte the
results of the classic one-heap-pop-per-event path, on single-threaded
drains and on contended multi-threaded schedules alike.  This module
pins that promise: the golden file is captured with fast-forward OFF
(the classic path), and ``tests/test_engine_golden.py`` replays the
same points with it ON — plus OFF again, to catch drift in the classic
path itself — and byte-compares the complete observable state.

The pinned points deliberately cross every scheduler feature: the
syncbench and kvstore points are long single-runnable stretches (deep
drains, ``ChargeSpan`` bursts), the scaling/apache points are
mmap_sem-contended multi-thread schedules (Block/Wake handoffs,
mid-span preemption, interrupt-debt drains), and the numa point runs
a split topology with remote-access charging.

``python -m repro.sim.golden`` recaptures the file; do that only when
a PR intentionally changes simulated costs, and say so in the PR.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Dict, Optional

GOLDEN_PATH = (Path(__file__).resolve().parents[3]
               / "tests" / "golden" / "engine_equivalence.json")

#: (sweep name, builder knobs, point filter on ``x``) — small enough
#: for CI, wide enough to cross drains, spans, wakes and interrupts.
PINNED = (
    ("mmu", {"ops": 8, "size": 64 << 10, "media": "optane",
             "device_gib": 1, "aged": False}, (0.0,)),
    ("scaling", {"ops": 8, "size": 64 << 10, "media": "optane",
                 "device_gib": 1, "aged": False}, (1, 2)),
    ("apache", {"ops": 12, "size": 64 << 10, "media": "optane",
                "device_gib": 1, "aged": False}, (4,)),
    ("numa", {"ops": 6, "size": 64 << 10, "media": "optane",
              "device_gib": 1, "aged": True}, (1, 2)),
)


def golden_states(fast_forward: Optional[bool] = None
                  ) -> Dict[str, Dict[str, object]]:
    """Run every pinned point on a fresh machine.

    ``fast_forward`` overrides the module-wide default for the run:
    ``False`` is the classic heap path the golden was captured with,
    ``True`` the drain path under test, ``None`` whatever the session
    default is.
    """
    import repro.sim.engine as engine_mod
    from repro.config import MEDIA_PRESETS
    from repro.runner.manifest import result_state
    from repro.runner.sweeps import POINT_RUNNERS, build_sweep
    from repro.runner.worker import _reset_naming_counters
    from repro.system import System
    from repro.topology import MachineTopology

    saved = engine_mod.FAST_FORWARD_DEFAULT
    if fast_forward is not None:
        engine_mod.FAST_FORWARD_DEFAULT = fast_forward
    try:
        out: Dict[str, Dict[str, object]] = {}
        for name, knobs, xs in PINNED:
            sweep = build_sweep(name, **knobs)
            key = f"{name}-aged" if knobs["aged"] else name
            states: Dict[str, object] = out.setdefault(key, {})
            for point in sweep.points:
                if point.x not in xs:
                    continue
                # Mirrors repro.runner.worker.run_point.
                _reset_naming_counters()
                costs = MEDIA_PRESETS[point.media]()
                topology = (MachineTopology.split(costs.machine,
                                                  point.num_nodes)
                            if point.num_nodes > 1 else None)
                system = System(costs=costs,
                                device_bytes=point.device_gib << 30,
                                aged=point.aged, topology=topology,
                                placement=point.placement,
                                pin_node=point.pin_node,
                                scheme=point.scheme)
                run = POINT_RUNNERS[point.experiment](system,
                                                      **point.params)
                locks = [lock.report() for lock in system.engine.locks
                         if lock.acquisitions]
                state = result_state(run, system.stats, system.ledger,
                                     locks, 0.0)
                states[point.label] = {k: v for k, v in state.items()
                                       if k != "wall_seconds"}
        return out
    finally:
        engine_mod.FAST_FORWARD_DEFAULT = saved


def golden_json(fast_forward: Optional[bool] = None) -> str:
    return json.dumps(golden_states(fast_forward), indent=2,
                      sort_keys=True) + "\n"


def main() -> None:
    GOLDEN_PATH.parent.mkdir(parents=True, exist_ok=True)
    # Captured with the classic path: the golden IS the slow engine.
    GOLDEN_PATH.write_text(golden_json(fast_forward=False))
    print(f"captured {GOLDEN_PATH}")


if __name__ == "__main__":
    main()
