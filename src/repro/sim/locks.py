"""Simulated synchronisation primitives.

Contention is not a constant in this simulator: a thread that hits a
held lock genuinely blocks in the event loop and resumes only when the
holder releases, so lock hold times and arrival patterns — not a tuning
knob — determine scalability.  This is essential for reproducing the
paper's headline result that ``mmap_sem`` serialisation prevents DAX
memory-mapped access from scaling beyond a few cores (Figs. 1b, 8a).

All primitives charge a small uncontended cost and an extra cache-line
bounce when the lock word was last touched by a different core,
following the usual cost structure of spinlocks on cache-coherent x86.

Every acquire/release is a generator to be driven with ``yield from``.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Optional, Tuple

from repro.config import CostModel
from repro.errors import SimulationError
from repro.sim.engine import Block, Compute, Engine, SimThread, Wake


class _LockBase:
    """Shared bookkeeping: the engine, costs, and bounce tracking."""

    def __init__(self, engine: Engine, costs: CostModel, name: str = ""):
        self.engine = engine
        self.costs = costs
        self.name = name or self.__class__.__name__
        self._last_core: Optional[int] = None
        self.acquisitions = 0
        self.contended_acquisitions = 0
        self.total_wait_cycles = 0.0

    def _current(self) -> SimThread:
        thread = getattr(self.engine, "current", None)
        if thread is None:
            raise SimulationError(f"{self.name}: no current thread")
        return thread

    def _entry_cost(self, thread: SimThread) -> float:
        cost = self.costs.lock_uncontended
        if self._last_core is not None and self._last_core != thread.core.index:
            cost += self.costs.lock_bounce
        self._last_core = thread.core.index
        return cost

    @property
    def contention_ratio(self) -> float:
        if not self.acquisitions:
            return 0.0
        return self.contended_acquisitions / self.acquisitions


class Spinlock(_LockBase):
    """A FIFO ticket spinlock."""

    def __init__(self, engine: Engine, costs: CostModel, name: str = ""):
        super().__init__(engine, costs, name)
        self._held = False
        self._waiters: Deque[SimThread] = deque()

    def acquire(self):
        thread = self._current()
        yield Compute(self._entry_cost(thread))
        self.acquisitions += 1
        if not self._held:
            self._held = True
            return
        self.contended_acquisitions += 1
        start = self.engine.now
        self._waiters.append(thread)
        yield Block()
        self.total_wait_cycles += self.engine.now - start

    def release(self):
        if not self._held:
            raise SimulationError(f"{self.name}: release while unlocked")
        if self._waiters:
            # Hand the lock directly to the next waiter (ticket order);
            # the handoff pays a cache-line transfer.
            waiter = self._waiters.popleft()
            yield Wake(waiter, delay=self.costs.lock_bounce)
        else:
            self._held = False
        yield Compute(0.0)

    @property
    def held(self) -> bool:
        return self._held


class Mutex(Spinlock):
    """Blocking mutex; same DES behaviour as the spinlock model.

    (In a DES there is no busy-wait cost distinction to capture, so the
    mutex shares the ticket-lock implementation but is kept as its own
    type for intent at call sites.)
    """


class RWSemaphore(_LockBase):
    """A writer-fair reader/writer semaphore (Linux rwsem model).

    Readers share; writers are exclusive.  A waiting writer blocks new
    readers (writer fairness), which matches Linux's rwsem behaviour
    closely enough for the contention patterns in the paper: frequent
    short write-mode acquisitions (mmap/munmap) starve and serialise
    everything else on the semaphore.
    """

    READ = "read"
    WRITE = "write"

    def __init__(self, engine: Engine, costs: CostModel, name: str = ""):
        super().__init__(engine, costs, name)
        self._active_readers = 0
        self._writer_active = False
        self._queue: Deque[Tuple[SimThread, str]] = deque()
        self.read_acquisitions = 0
        self.write_acquisitions = 0

    # -- acquisition -------------------------------------------------------
    def _can_grant(self, kind: str) -> bool:
        if kind == RWSemaphore.WRITE:
            return not self._writer_active and self._active_readers == 0
        # Readers: only if no writer holds it and no writer is queued.
        if self._writer_active:
            return False
        return not any(k == RWSemaphore.WRITE for _t, k in self._queue)

    def _grant(self, kind: str) -> None:
        if kind == RWSemaphore.WRITE:
            self._writer_active = True
            self.write_acquisitions += 1
        else:
            self._active_readers += 1
            self.read_acquisitions += 1

    def _acquire(self, kind: str):
        thread = self._current()
        yield Compute(self._entry_cost(thread))
        self.acquisitions += 1
        if self._can_grant(kind):
            self._grant(kind)
            return
        self.contended_acquisitions += 1
        start = self.engine.now
        self._queue.append((thread, kind))
        yield Block()
        self.total_wait_cycles += self.engine.now - start
        # The releaser performed the grant on our behalf.

    def acquire_read(self):
        yield from self._acquire(RWSemaphore.READ)

    def acquire_write(self):
        yield from self._acquire(RWSemaphore.WRITE)

    # -- release -----------------------------------------------------------
    def _wake_eligible(self):
        """Grant to queued threads now allowed to run, FIFO order."""
        while self._queue:
            thread, kind = self._queue[0]
            if kind == RWSemaphore.WRITE:
                if self._writer_active or self._active_readers:
                    break
                self._queue.popleft()
                self._grant(kind)
                yield Wake(thread, delay=self.costs.lock_bounce)
                break  # writer is exclusive
            # Reader at head: admit it and any consecutive readers.
            if self._writer_active:
                break
            self._queue.popleft()
            self._grant(kind)
            yield Wake(thread, delay=self.costs.lock_bounce)

    def release_read(self):
        if self._active_readers <= 0:
            raise SimulationError(f"{self.name}: read release underflow")
        self._active_readers -= 1
        yield from self._wake_eligible()
        yield Compute(0.0)

    def release_write(self):
        if not self._writer_active:
            raise SimulationError(f"{self.name}: write release underflow")
        self._writer_active = False
        yield from self._wake_eligible()
        yield Compute(0.0)

    @property
    def writer_active(self) -> bool:
        return self._writer_active

    @property
    def active_readers(self) -> int:
        return self._active_readers
