"""Simulated synchronisation primitives.

Contention is not a constant in this simulator: a thread that hits a
held lock genuinely blocks in the event loop and resumes only when the
holder releases, so lock hold times and arrival patterns — not a tuning
knob — determine scalability.  This is essential for reproducing the
paper's headline result that ``mmap_sem`` serialisation prevents DAX
memory-mapped access from scaling beyond a few cores (Figs. 1b, 8a).

All primitives charge a small uncontended cost and an extra cache-line
bounce when the lock word was last touched by a different core,
following the usual cost structure of spinlocks on cache-coherent x86.

Each lock keeps first-class wait-vs-hold accounting: cycles spent
blocked on the lock (``wait``, also attributed to the engine ledger's
``lock_wait`` domain) versus cycles the lock was actually held
(``hold``).  A contended lock with short holds and long waits is a
convoy; long holds point at the critical section itself — the
distinction Fig. 8a turns on.  Locks register themselves with their
engine so contention reports can enumerate them.

Every acquire/release is a generator to be driven with ``yield from``.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Dict, Optional, Tuple

from repro.config import CostModel
from repro.errors import SimulationError
from repro.obs import CostDomain, charge
from repro.sim.engine import Block, Compute, Engine, SimThread, Wake

#: Zero-cost reschedule effect shared by every release path: the
#: engine only reads effects, and releases fire once per lock round.
_ZERO_COMPUTE = Compute(0.0)


class _LockBase:
    """Shared bookkeeping: the engine, costs, and bounce tracking."""

    def __init__(self, engine: Engine, costs: CostModel, name: str = ""):
        self.engine = engine
        self.costs = costs
        self.name = name or self.__class__.__name__
        #: Precomputed ledger event names — acquire fires per fault, so
        #: the f-string must not be rebuilt every time.  The two entry
        #: costs are hoisted for the same reason.
        self._acquire_event = f"{self.name}-acquire"
        self._blocked_event = f"{self.name}-blocked"
        self._uncontended_cost = costs.lock_uncontended
        self._bounce_cost = costs.lock_bounce
        #: The entry charge takes one of exactly two values (same-core
        #: re-entry or a cache-line bounce); both effects are pre-built
        #: and reused — the engine only reads effects, and the acquire
        #: charge fires once per page fault.
        self._entry_charge = charge(CostDomain.LOCK_WAIT,
                                    self._acquire_event,
                                    self._uncontended_cost)
        self._bounce_charge = charge(CostDomain.LOCK_WAIT,
                                     self._acquire_event,
                                     self._uncontended_cost
                                     + self._bounce_cost)
        self._last_core: Optional[int] = None
        self.acquisitions = 0
        self.contended_acquisitions = 0
        self.total_wait_cycles = 0.0
        self.hold_cycles = 0.0
        #: Name of the thread currently holding the lock (for readers,
        #: the most recent grantee as a representative).  Captured when
        #: a waiter blocks so its wait can be attributed to the holder
        #: that caused it.
        self._holder_name: Optional[str] = None
        #: ``(waiting_tenant, holding_tenant) -> cycles`` matrix, only
        #: populated when an engine tenant resolver is installed.
        self.tenant_waits: Dict[Tuple[str, str], float] = {}
        registry = getattr(engine, "locks", None)
        if registry is not None:
            registry.append(self)

    def _current(self) -> SimThread:
        thread = self.engine.current
        if thread is None:
            raise SimulationError(f"{self.name}: no current thread")
        return thread

    def _entry_effect(self, thread: SimThread):
        """The pre-built entry charge for this acquire (and the bounce
        bookkeeping that goes with choosing it)."""
        core = thread.core.index
        last = self._last_core
        self._last_core = core
        if last is not None and last != core:
            return self._bounce_charge
        return self._entry_charge

    def _record_wait(self, thread: SimThread, waited: float,
                     blocker: Optional[str] = None) -> None:
        """Book blocked time both locally and in the engine ledger.

        Blocked time never passes through a ``Charge`` effect (the
        thread is suspended, not computing), so the lock attributes it
        to the ``lock_wait`` domain directly.

        ``blocker`` is the holder's thread name captured when the
        waiter blocked.  Under an active tenancy runtime (the engine
        carries a ``tenant_resolver``) the wait is additionally booked
        against the *waiting* tenant's ledger view in the ``tenancy``
        domain with the holding tenant named in the event — so a
        tenant stalled behind another tenant's writer shows up in that
        tenant's breakdown instead of vanishing into a global lock
        total.  Un-tenanted runs record nothing extra (bit-identical).
        """
        self.total_wait_cycles += waited
        ledger = getattr(self.engine, "ledger", None)
        if ledger is None:
            return
        ledger.record(thread.name, CostDomain.LOCK_WAIT,
                      self._blocked_event, waited)
        resolver = getattr(self.engine, "tenant_resolver", None)
        if resolver is None:
            return
        waiter_tenant = resolver(thread.name)
        if waiter_tenant is None:
            return
        holder_tenant = resolver(blocker) if blocker else None
        holder_label = holder_tenant or blocker or "unknown"
        key = (waiter_tenant, holder_label)
        self.tenant_waits[key] = self.tenant_waits.get(key, 0.0) + waited
        ledger.record(thread.name, CostDomain.TENANCY,
                      f"{self.name}-blocked-by:{holder_label}", waited)

    @property
    def contention_ratio(self) -> float:
        if not self.acquisitions:
            return 0.0
        return self.contended_acquisitions / self.acquisitions

    def report(self) -> Dict[str, float]:
        """Wait-vs-hold summary for contention reports (Fig. 8a)."""
        out = {
            "name": self.name,
            "kind": self.__class__.__name__,
            "acquisitions": self.acquisitions,
            "contended": self.contended_acquisitions,
            "contention_ratio": self.contention_ratio,
            "wait_cycles": self.total_wait_cycles,
            "hold_cycles": self.hold_cycles,
        }
        if self.tenant_waits:
            out["tenant_waits"] = {
                f"{waiter}<-{holder}": cycles
                for (waiter, holder), cycles
                in sorted(self.tenant_waits.items())}
        return out


class Spinlock(_LockBase):
    """A FIFO ticket spinlock."""

    def __init__(self, engine: Engine, costs: CostModel, name: str = ""):
        super().__init__(engine, costs, name)
        self._held = False
        self._held_since = 0.0
        self._waiters: Deque[SimThread] = deque()

    def acquire(self):
        thread = self._current()
        yield self._entry_effect(thread)
        self.acquisitions += 1
        if not self._held:
            self._held = True
            self._held_since = self.engine.now
            self._holder_name = thread.name
            return
        self.contended_acquisitions += 1
        start = self.engine.now
        blocker = self._holder_name
        self._waiters.append(thread)
        yield Block()
        self._record_wait(thread, self.engine.now - start, blocker)
        self._holder_name = thread.name

    def release(self):
        if not self._held:
            raise SimulationError(f"{self.name}: release while unlocked")
        self.hold_cycles += self.engine.now - self._held_since
        if self._waiters:
            # Hand the lock directly to the next waiter (ticket order);
            # the handoff pays a cache-line transfer.  The new hold
            # starts at the handoff, so handoff latency counts as wait,
            # not hold.
            waiter = self._waiters.popleft()
            self._held_since = self.engine.now + self.costs.lock_bounce
            yield Wake(waiter, delay=self.costs.lock_bounce)
        else:
            self._held = False
            self._holder_name = None
        yield _ZERO_COMPUTE

    @property
    def held(self) -> bool:
        return self._held


class Mutex(Spinlock):
    """Blocking mutex; same DES behaviour as the spinlock model.

    (In a DES there is no busy-wait cost distinction to capture, so the
    mutex shares the ticket-lock implementation but is kept as its own
    type for intent at call sites.)
    """


class RWSemaphore(_LockBase):
    """A writer-fair reader/writer semaphore (Linux rwsem model).

    Readers share; writers are exclusive.  A waiting writer blocks new
    readers (writer fairness), which matches Linux's rwsem behaviour
    closely enough for the contention patterns in the paper: frequent
    short write-mode acquisitions (mmap/munmap) starve and serialise
    everything else on the semaphore.
    """

    READ = "read"
    WRITE = "write"

    def __init__(self, engine: Engine, costs: CostModel, name: str = ""):
        super().__init__(engine, costs, name)
        self._active_readers = 0
        self._writer_active = False
        self._queue: Deque[Tuple[SimThread, str]] = deque()
        self.read_acquisitions = 0
        self.write_acquisitions = 0
        self.read_wait_cycles = 0.0
        self.write_wait_cycles = 0.0
        self.read_hold_cycles = 0.0
        self.write_hold_cycles = 0.0
        self._write_since = 0.0
        self._read_since = 0.0

    # -- acquisition -------------------------------------------------------
    def _can_grant(self, kind: str) -> bool:
        if kind == RWSemaphore.WRITE:
            return not self._writer_active and self._active_readers == 0
        # Readers: only if no writer holds it and no writer is queued.
        if self._writer_active:
            return False
        for _t, k in self._queue:
            if k == RWSemaphore.WRITE:
                return False
        return True

    def _grant(self, kind: str, at: Optional[float] = None,
               thread: Optional[SimThread] = None) -> None:
        """Record a grant starting at ``at`` (default: now).

        A contended handoff wakes the waiter ``lock_bounce`` cycles
        after the release (the lock word must travel to the waiter's
        core), so the new hold starts at the wake, not the release —
        the bounce belongs to the waiter's *wait*, which already spans
        it, exactly as :meth:`Spinlock.release` accounts it.
        """
        now = self.engine.now if at is None else at
        if kind == RWSemaphore.WRITE:
            self._writer_active = True
            self._write_since = now
            self.write_acquisitions += 1
        else:
            if self._active_readers == 0:
                # Reader hold time is the span any reader holds the
                # semaphore (overlapping readers count once).
                self._read_since = now
            self._active_readers += 1
            self.read_acquisitions += 1
        if thread is not None:
            self._holder_name = thread.name

    def _acquire(self, kind: str):
        thread = self._current()
        yield self._entry_effect(thread)
        self.acquisitions += 1
        if self._can_grant(kind):
            self._grant(kind, thread=thread)
            return
        self.contended_acquisitions += 1
        start = self.engine.now
        blocker = self._holder_name
        self._queue.append((thread, kind))
        yield Block()
        waited = self.engine.now - start
        self._record_wait(thread, waited, blocker)
        if kind == RWSemaphore.WRITE:
            self.write_wait_cycles += waited
        else:
            self.read_wait_cycles += waited
        # The releaser performed the grant on our behalf.

    def acquire_read(self):
        # Returns the generator directly (no wrapping frame): callers
        # drive it with ``yield from``, and every frame in that chain
        # is traversed again on each of the fault path's resumptions.
        return self._acquire(RWSemaphore.READ)

    def acquire_write(self):
        return self._acquire(RWSemaphore.WRITE)

    # -- release -----------------------------------------------------------
    def _wake_eligible(self):
        """Grant to queued threads now allowed to run, FIFO order."""
        handoff = self.engine.now + self.costs.lock_bounce
        while self._queue:
            thread, kind = self._queue[0]
            if kind == RWSemaphore.WRITE:
                if self._writer_active or self._active_readers:
                    break
                self._queue.popleft()
                self._grant(kind, at=handoff, thread=thread)
                yield Wake(thread, delay=self.costs.lock_bounce)
                break  # writer is exclusive
            # Reader at head: admit it and any consecutive readers.
            if self._writer_active:
                break
            self._queue.popleft()
            self._grant(kind, at=handoff, thread=thread)
            yield Wake(thread, delay=self.costs.lock_bounce)

    def release_read(self):
        if self._active_readers <= 0:
            raise SimulationError(f"{self.name}: read release underflow")
        self._active_readers -= 1
        if self._active_readers == 0:
            held = self.engine.now - self._read_since
            self.read_hold_cycles += held
            self.hold_cycles += held
        if self._queue:
            yield from self._wake_eligible()
        if not self._writer_active and self._active_readers == 0:
            self._holder_name = None
        yield _ZERO_COMPUTE

    def release_write(self):
        if not self._writer_active:
            raise SimulationError(f"{self.name}: write release underflow")
        self._writer_active = False
        held = self.engine.now - self._write_since
        self.write_hold_cycles += held
        self.hold_cycles += held
        if self._queue:
            yield from self._wake_eligible()
        if not self._writer_active and self._active_readers == 0:
            self._holder_name = None
        yield _ZERO_COMPUTE

    def report(self) -> Dict[str, float]:
        out = super().report()
        out.update({
            "read_acquisitions": self.read_acquisitions,
            "write_acquisitions": self.write_acquisitions,
            "read_wait_cycles": self.read_wait_cycles,
            "write_wait_cycles": self.write_wait_cycles,
            "read_hold_cycles": self.read_hold_cycles,
            "write_hold_cycles": self.write_hold_cycles,
        })
        return out

    @property
    def writer_active(self) -> bool:
        return self._writer_active

    @property
    def active_readers(self) -> int:
        return self._active_readers
