"""Command-line interface: ``python -m repro <experiment>``.

Runs compact versions of the paper's experiments without pytest — for
exploring the simulator interactively.  ``python -m repro list`` shows
the registry; the full-scale regenerations live in ``benchmarks/``.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Callable, Dict

from repro.analysis.report import (
    format_domain_breakdown,
    format_lock_report,
    format_series,
    format_sweep,
    format_table,
)
from repro.analysis.results import Table
from repro.config import MEDIA_PRESETS
from repro.obs import Counter
from repro.topology import PLACEMENTS, MachineTopology
from repro.runner import (
    DEFAULT_CACHE_DIR,
    ResultCache,
    SWEEPS,
    build_sweep,
    run_sweep,
)
from repro.paging.schemes import SCHEME_NAMES
from repro.paging.tlb import AccessPattern
from repro.system import System
from repro.workloads import (
    ApacheConfig,
    AppendConfig,
    AppendVariant,
    DaxVMOptions,
    EphemeralConfig,
    Interface,
    KVConfig,
    PRedisConfig,
    RepetitiveConfig,
    ServerInterface,
    YCSBConfig,
    run_apache,
    run_append,
    run_ephemeral,
    run_predis,
    run_repetitive,
    run_ycsb,
)

EXPERIMENTS: Dict[str, Callable[[argparse.Namespace], None]] = {}
PERF_TARGETS: Dict[str, Callable[[argparse.Namespace], None]] = {}


def experiment(name: str, help_text: str):
    def decorate(fn):
        fn.help_text = help_text
        EXPERIMENTS[name] = fn
        return fn
    return decorate


def perf_target(name: str, help_text: str):
    def decorate(fn):
        fn.help_text = help_text
        PERF_TARGETS[name] = fn
        return fn
    return decorate


def _system(args, **kw) -> System:
    costs = MEDIA_PRESETS[args.media]()
    node_kinds = getattr(args, "node_kinds", None)
    if node_kinds:
        kinds = tuple(k.strip() for k in node_kinds.split(",")
                      if k.strip())
        topology = MachineTopology.with_kinds(costs.machine, kinds)
    else:
        topology = (MachineTopology.split(costs.machine, args.nodes)
                    if args.nodes > 1 else None)
    kw.setdefault("scheme", args.scheme)
    system = System(costs=costs, device_bytes=args.device << 30,
                    aged=not args.fresh, topology=topology,
                    placement=args.policy, pin_node=args.pin_node, **kw)
    tiering = getattr(args, "tiering", None)
    if tiering:
        from repro.mem.physmem import Medium

        data, _, flag = tiering.partition(":")
        system.attach_tiering(data_medium=Medium(data),
                              daemon=flag == "daemon")
    return system


@experiment("ephemeral", "read-once file access across interfaces")
def _ephemeral(args):
    table = Table(f"Ephemeral access, {args.size >> 10} KB files",
                  ["interface", "us/file", "MB/s"])
    for interface in (Interface.READ, Interface.MMAP,
                      Interface.MMAP_POPULATE, Interface.DAXVM):
        system = _system(args)
        cfg = EphemeralConfig(file_size=args.size, num_files=args.ops,
                              num_threads=args.threads,
                              interface=interface)
        r = run_ephemeral(system, cfg)
        table.add_row(interface.value, r.latency_us, r.mb_per_second)
    print(format_table(table))


def _run_named_sweep(args, name: str):
    """Build and execute a registered sweep with the CLI knobs."""
    sweep = build_sweep(name, ops=args.ops, size=args.size,
                        media=args.media, device_gib=args.device,
                        aged=not args.fresh)
    if args.max_points is not None and len(sweep.points) > args.max_points:
        print(f"sweep: truncating {name} to the first {args.max_points} "
              f"of {len(sweep.points)} points (--max-points)",
              file=sys.stderr)
        sweep.points = sweep.points[:args.max_points]
    cache = None if args.no_cache else ResultCache(args.cache_dir)
    return run_sweep(sweep, jobs=args.jobs, cache=cache,
                     point_timeout=args.point_timeout,
                     max_retries=args.max_retries,
                     retry_seed=args.seed,
                     profile=getattr(args, "profile", False))


@experiment("scaling", "read-once throughput vs thread count (fig 1b)")
def _scaling(args):
    result = _run_named_sweep(args, "scaling")
    print(format_series(result.sweep.title, result.series(),
                        x_label=result.sweep.axis))


@experiment("repetitive", "database-style 4KB ops over one big file")
def _repetitive(args):
    table = Table("Repetitive 4KB ops over a large file",
                  ["interface", "pattern", "Kops/s"])
    for pattern in (AccessPattern.SEQUENTIAL, AccessPattern.RANDOM):
        for interface in (Interface.READ, Interface.MMAP,
                          Interface.DAXVM):
            system = _system(args)
            cfg = RepetitiveConfig(
                file_size=96 << 20, op_size=4096,
                num_ops=(96 << 20) // 4096, pattern=pattern,
                interface=interface, monitor_every=8192,
                daxvm=DaxVMOptions(ephemeral=False, unmap_async=False,
                                   nosync=True))
            r = run_repetitive(system, cfg)
            table.add_row(interface.value, pattern.value,
                          r.ops_per_second / 1e3)
    print(format_table(table))


@experiment("apache", "webserver scalability (fig 8a)")
def _apache(args):
    result = _run_named_sweep(args, "apache")
    print(format_series(result.sweep.title, result.series(),
                        x_label=result.sweep.axis))


@experiment("ablations", "incremental DaxVM mechanisms at 16 cores")
def _ablations(args):
    result = _run_named_sweep(args, "ablations")
    print(format_table(result.table()))


@experiment("predis", "P-Redis boot and warm-up timeline (fig 9b)")
def _predis(args):
    for interface in (Interface.MMAP, Interface.MMAP_POPULATE,
                      Interface.DAXVM):
        system = _system(args)
        cfg = PRedisConfig(cache_size=512 << 20, num_gets=args.ops,
                           window=max(500, args.ops // 16),
                           interface=interface)
        r = run_predis(system, cfg)
        timeline = " ".join(f"{v / 1e3:5.0f}"
                            for _t, v in r.timeline.points[:8])
        print(f"{interface.value:>10}: boot={r.boot_seconds * 1e3:8.2f}ms"
              f"  Kops/s: {timeline}")


@experiment("ycsb", "YCSB load_a over the Pmem-RocksDB model (fig 9c)")
def _ycsb(args):
    table = Table("YCSB load_a (Kops/s)", ["variant", "Kops/s",
                                           "sync commits"])
    variants = [
        ("mmap", Interface.MMAP, None, False),
        ("daxvm", Interface.DAXVM,
         DaxVMOptions(ephemeral=False, unmap_async=False), False),
        ("daxvm+pz+ns", Interface.DAXVM,
         DaxVMOptions(ephemeral=False, unmap_async=False, nosync=True),
         True),
    ]
    for name, interface, opts, prezero in variants:
        system = _system(args, fs_type=args.fs)
        kv = KVConfig(interface=interface)
        if opts is not None:
            kv = KVConfig(interface=interface, daxvm=opts)
        cfg = YCSBConfig(workload="load_a", num_ops=args.ops,
                         preload_records=0, kv=kv, prezero=prezero)
        r = run_ycsb(system, cfg)
        table.add_row(name, r.ops_per_second / 1e3,
                      r.counters.get("journal.sync_commits", 0))
    print(format_table(table))


@experiment("media", "DaxVM across storage media (§VI)")
def _media(args):
    table = Table("32KB ephemeral access across media",
                  ["media", "read us", "daxvm us", "daxvm/read"])
    for media, factory in MEDIA_PRESETS.items():
        out = {}
        for interface in (Interface.READ, Interface.DAXVM):
            system = System(costs=factory(),
                            device_bytes=args.device << 30, aged=True)
            cfg = EphemeralConfig(file_size=32 << 10,
                                  num_files=args.ops,
                                  interface=interface)
            out[interface] = run_ephemeral(system, cfg)
        table.add_row(media, out[Interface.READ].latency_us,
                      out[Interface.DAXVM].latency_us,
                      out[Interface.READ].latency_us
                      / out[Interface.DAXVM].latency_us)
    print(format_table(table))


@experiment("crash", "crash-point injection + recovery audit")
def _crash(args):
    from repro.crash import run_crash

    costs = MEDIA_PRESETS[args.media]()
    topology = (MachineTopology.split(costs.machine, args.nodes)
                if args.nodes > 1 else None)

    def factory() -> System:
        # Fresh images: aging churn adds nothing to durability coverage
        # and each crash point rebuilds the machine from scratch.
        return System(costs=costs, device_bytes=args.device << 30,
                      aged=False, fs_type=args.fs, topology=topology,
                      placement=args.policy, pin_node=args.pin_node)

    summary = run_crash(factory, args.workload, seed=args.seed,
                        max_points=args.max_points)
    if args.json:
        print(json.dumps(summary.to_state(), indent=2, sort_keys=True))
    else:
        state = summary.to_state()
        table = Table(
            f"Crash sweep: {summary.workload}, seed {summary.seed}",
            ["metric", "value"])
        for key in ("total_transitions", "points_explored",
                    "invariant_violations", "lost_records",
                    "replayed_records", "rolled_back_txns",
                    "orphan_blocks", "tables_repaired", "ptes_replayed"):
            table.add_row(key, state[key])
        print(format_table(table))
        for line in summary.violations:
            print(f"VIOLATION: {line}")
    if summary.invariant_violations:
        raise SystemExit(
            f"crash: {summary.invariant_violations} invariant "
            f"violation(s) across {summary.points_explored} points")


@experiment("faults", "media-fault injection + poison-handling audit")
def _faults(args):
    from repro.faults import FAULT_WORKLOADS, run_faults

    if args.workload not in FAULT_WORKLOADS:
        raise SystemExit(
            f"faults: unknown workload {args.workload!r}; known: "
            + ", ".join(sorted(FAULT_WORKLOADS)))
    costs = MEDIA_PRESETS[args.media]()
    topology = (MachineTopology.split(costs.machine, args.nodes)
                if args.nodes > 1 else None)

    def factory() -> System:
        # Fresh images: each armed site rebuilds the machine, and
        # aging churn adds nothing to poison-handling coverage.
        return System(costs=costs, device_bytes=args.device << 30,
                      aged=False, fs_type=args.fs, topology=topology,
                      placement=args.policy, pin_node=args.pin_node)

    summary = run_faults(factory, args.workload, seed=args.seed,
                         max_sites=args.max_sites)
    if args.json:
        print(json.dumps(summary.to_state(), indent=2, sort_keys=True))
    else:
        state = summary.to_state()
        table = Table(
            f"Media-fault sweep: {summary.workload}, "
            f"seed {summary.seed}", ["metric", "value"])
        for key in ("total_touches", "sites_explored", "remapped",
                    "cleared", "sigbus_cleared", "bw_windows", "stalls",
                    "bytes_lost", "violations"):
            table.add_row(key, state[key])
        print(format_table(table))
        for line in summary.violations:
            print(f"VIOLATION: {line}")
    if summary.violations:
        raise SystemExit(
            f"faults: {len(summary.violations)} unhandled-poison "
            f"violation(s) across {summary.sites_explored} sites")


@experiment("migrate", "crash/fault hardening audit of post-copy live "
                       "migration")
def _migrate(args):
    from repro.virt import run_migrate_audit

    summary = run_migrate_audit(
        seeds=(args.seed, args.seed + 1),
        max_points=args.max_points, max_sites=args.max_sites,
        composed_points=max(2, min(args.max_points, 6)),
        media=args.media, device_gib=args.device)
    if args.json:
        print(json.dumps(summary.to_state(), indent=2, sort_keys=True))
    else:
        state = summary.to_state()
        table = Table(
            f"Migration hardening audit, seeds {summary.seeds}, "
            f"trigger after {summary.migrate_after} accesses",
            ["metric", "value"])
        for key in ("crash_points", "fault_sites", "composed_points",
                    "points_explored", "violations"):
            table.add_row(key, state[key])
        print(format_table(table))
        for line in summary.violations:
            print(f"VIOLATION: {line}")
    if summary.violations:
        raise SystemExit(
            f"migrate: {len(summary.violations)} invariant violation(s) "
            f"across {summary.points_explored} points")


@perf_target("fig7", "per-domain cycle breakdown of ext4-DAX appends")
def _perf_fig7(args):
    """Where do mmap-append cycles go?  The ledger answers directly:
    zeroing dominates (the paper's Fig. 7 motivation) without any
    bench-side counter arithmetic."""
    system = _system(args)
    cfg = AppendConfig(append_size=args.size if args.size != 32 << 10
                       else 256 << 10,
                       num_appends=max(8, args.ops // 8),
                       variant=AppendVariant.MMAP)
    r = run_append(system, cfg)
    if args.json:
        print(json.dumps({
            "target": "fig7",
            "label": r.label,
            "cycles": r.cycles,
            "domains": r.domains,
            "percentiles": r.percentiles,
            "stats": system.stats.to_json(),
            "ledger": system.ledger.to_json(),
        }, indent=2, sort_keys=True))
        return
    print(format_domain_breakdown(
        f"ext4-DAX mmap append, {cfg.append_size >> 10} KB "
        f"x {cfg.num_appends} (cycles by cost domain)", r.domains))
    append_summary = r.percentiles.get("span.append")
    if append_summary:
        print(f"append latency (cycles): "
              f"p50={append_summary['p50']:.0f} "
              f"p95={append_summary['p95']:.0f} "
              f"p99={append_summary['p99']:.0f}")
    share = r.domain_share("zeroing")
    print(f"zeroing share of attributed cycles: {share * 100:.1f}%")


@perf_target("fig8a", "mmap_sem wait-vs-hold under webserver load")
def _perf_fig8a(args):
    """The rw-semaphore contention behind Fig. 8a's mmap collapse:
    per-lock wait and hold cycles recorded by the locks themselves."""
    workers = args.threads if args.threads > 1 else 8
    system = _system(args)
    cfg = ApacheConfig(num_workers=workers, requests=args.ops,
                       interface=ServerInterface.MMAP)
    r = run_apache(system, cfg)
    reports = [lock.report() for lock in system.engine.locks
               if lock.acquisitions]
    if args.json:
        print(json.dumps({
            "target": "fig8a",
            "label": r.label,
            "cycles": r.cycles,
            "domains": r.domains,
            "locks": reports,
            "stats": system.stats.to_json(),
        }, indent=2, sort_keys=True))
        return
    print(format_lock_report(
        f"Apache mmap, {workers} workers x {args.ops} requests",
        reports))
    print()
    print(format_domain_breakdown("cycles by cost domain", r.domains))


@perf_target("numa", "local/remote access mix on a multi-socket machine")
def _perf_numa(args):
    """Where do cross-socket cycles go?  Runs the pinned read-once
    mmap workload under the requested placement and reports the
    local/remote access split, cross-socket shootdown IPIs and the
    remote-access cycles the ledger attributes to the numa domain."""
    if args.nodes < 2:
        args.nodes = 2
    system = _system(args)
    threads = args.threads if args.threads > 1 else 4
    cfg = EphemeralConfig(file_size=args.size, num_files=args.ops,
                          num_threads=threads, interface=Interface.MMAP,
                          pin_node=args.pin_node)
    r = run_ephemeral(system, cfg)
    counters = {c.value: system.stats.get(c) for c in (
        Counter.NUMA_LOCAL_ACCESSES, Counter.NUMA_REMOTE_ACCESSES,
        Counter.NUMA_LOCAL_BYTES, Counter.NUMA_REMOTE_BYTES,
        Counter.NUMA_CROSS_IPIS, Counter.NUMA_CROSS_IPI_CYCLES)}
    if args.json:
        print(json.dumps({
            "target": "numa",
            "label": r.label,
            "nodes": args.nodes,
            "placement": args.policy,
            "pin_node": args.pin_node,
            "cycles": r.cycles,
            "domains": r.domains,
            "numa_counters": counters,
            "stats": system.stats.to_json(),
            "ledger": system.ledger.to_json(),
        }, indent=2, sort_keys=True))
        return
    print(format_domain_breakdown(
        f"mmap read-once, {args.nodes} sockets, placement="
        f"{args.policy}, threads pinned to node {args.pin_node} "
        f"(cycles by cost domain)", r.domains))
    accesses = (counters["numa.local_accesses"]
                + counters["numa.remote_accesses"])
    remote_share = (counters["numa.remote_accesses"] / accesses
                    if accesses else 0.0)
    print(f"accesses: {counters['numa.local_accesses']:.0f} local, "
          f"{counters['numa.remote_accesses']:.0f} remote "
          f"({remote_share * 100:.1f}% remote)")
    print(f"bytes:    {counters['numa.local_bytes'] / 1e6:.1f} MB local, "
          f"{counters['numa.remote_bytes'] / 1e6:.1f} MB remote")
    print(f"shootdowns: {counters['numa.cross_socket_ipis']:.0f} "
          f"cross-socket IPIs, "
          f"{counters['numa.cross_socket_ipi_cycles']:.0f} cycles")


@perf_target("mmu", "Table II/III walk + attach costs per translation "
                    "scheme")
def _perf_mmu(args):
    """DaxVM's cost structure under each MMU (repro.paging.schemes).

    First a Table II analogue: average cycles per 4 KB TLB miss for
    each scheme, by access pattern and file-table medium, plus whether
    PMem-resident tables would trip the Table III monitor rule.  Then
    one DaxVM syncbench run per scheme, reporting where the ledger
    says the attach/detach and walk cycles actually went, and the
    per-process structure-frame footprint of mapping 2 MB of 4 KB
    pages.
    """
    from repro.mem.physmem import Medium
    from repro.obs import CostDomain
    from repro.paging.flags import PageFlags
    from repro.paging.pagetable import PAGE_SIZE
    from repro.paging.schemes import make_scheme
    from repro.paging.walker import PageWalker
    from repro.workloads import SyncConfig, SyncDiscipline, run_sync

    costs = MEDIA_PRESETS[args.media]()
    walker = PageWalker(costs)
    cases = [("seq/DRAM", AccessPattern.SEQUENTIAL, Medium.DRAM),
             ("rand/DRAM", AccessPattern.RANDOM, Medium.DRAM),
             ("seq/PMem", AccessPattern.SEQUENTIAL, Medium.PMEM),
             ("rand/PMem", AccessPattern.RANDOM, Medium.PMEM)]
    walk_rows = {}
    bench_rows = {}
    for name in SCHEME_NAMES:
        probe = make_scheme(name, System(costs=costs).physmem, costs)
        # The walk costs a DaxVM mapping on this scheme actually pays:
        # schemes that copy translations into process-private DRAM
        # never see the PMem leaf penalty.
        walks = {label: probe.walk_cost(
                     walker, pattern, probe.effective_leaf_medium(medium))
                 for label, pattern, medium in cases}
        walks["huge"] = probe.huge_walk_cost(walker)
        # Table III rule, first clause: would persistent tables push
        # the average walk past the monitor's migration threshold?
        walks["monitor"] = (walks["rand/PMem"]
                            > costs.monitor_walk_cycles)
        base = 0x40000000
        for i in range(512):
            probe.map_page(base + i * PAGE_SIZE, 1024 + i,
                           PageFlags.rw())
        walks["frames_2mb"] = len(probe.structure_frames())
        walk_rows[name] = walks

        system = _system(args, scheme=name)
        cfg = SyncConfig(file_size=max(args.size, 4 << 20),
                         op_size=1 << 10, ops_per_sync=8,
                         num_syncs=max(8, min(args.ops, 64)),
                         discipline=SyncDiscipline.DAXVM_FSYNC)
        r = run_sync(system, cfg)
        bench_rows[name] = {
            "cycles": r.cycles,
            "attach_cycles": system.ledger.event_total(
                CostDomain.FILETABLE, "attach"),
            "detach_cycles": system.ledger.event_total(
                CostDomain.FILETABLE, "detach"),
            "walk_cycles": system.stats.get(Counter.VM_WALK_CYCLES),
            "tlb_misses": system.stats.get(Counter.VM_TLB_MISSES),
        }
    if args.json:
        print(json.dumps({
            "target": "mmu",
            "media": args.media,
            "walks": walk_rows,
            "syncbench": bench_rows,
        }, indent=2, sort_keys=True))
        return
    table = Table(f"Avg cycles per 4KB walk ({args.media})",
                  ["scheme"] + [c[0] for c in cases]
                  + ["huge", "PMem trips monitor", "frames/2MB"])
    for name, walks in walk_rows.items():
        table.add_row(name, *(walks[c[0]] for c in cases),
                      walks["huge"],
                      "yes" if walks["monitor"] else "no",
                      walks["frames_2mb"])
    print(format_table(table))
    print()
    bench = Table("DaxVM syncbench (MAP_SYNC fsync discipline)",
                  ["scheme", "cycles", "attach cyc", "detach cyc",
                   "walk cyc", "tlb misses"])
    for name, row in bench_rows.items():
        bench.add_row(name, row["cycles"], row["attach_cycles"],
                      row["detach_cycles"], row["walk_cycles"],
                      row["tlb_misses"])
    print(format_table(bench))


@perf_target("tiering", "hot/cold daemon breakdown: migrations, "
                        "residency, tier cycles")
def _perf_tiering(args):
    """What does ktierd cost, and what does it buy?  Runs the DaxVM
    syncbench with file data priced on a slow tier (``--tiering``
    medium, default cxl), once without and once with the migration
    daemon, and reports total cycles, the ledger's ``tiering`` domain,
    the migration counters and the final tier residency."""
    from repro.mem.physmem import Medium
    from repro.obs import CostDomain
    from repro.tiering import TieringConfig
    from repro.workloads import SyncConfig, SyncDiscipline, run_sync

    tier = (args.tiering or "cxl").partition(":")[0]
    saved_tiering, args.tiering = args.tiering, None
    if tier == "cxl" and not getattr(args, "node_kinds", None):
        args.node_kinds = "ddr,cxl"
    rows = {}
    try:
        for daemon in (False, True):
            system = _system(args)
            tiers = system.attach_tiering(
                data_medium=Medium(tier), daemon=daemon,
                config=TieringConfig(scan_interval=5e5, hot_touches=1,
                                     cold_scans=4) if daemon else None)
            cfg = SyncConfig(file_size=max(args.size, 4 << 20),
                             op_size=1 << 10, ops_per_sync=16,
                             num_syncs=max(8, min(args.ops, 64)),
                             discipline=SyncDiscipline.DAXVM_FSYNC)
            r = run_sync(system, cfg)
            rows["ktierd" if daemon else "static"] = {
                "cycles": r.cycles,
                "domains": r.domains,
                "tiering_cycles": system.ledger.domain_total(
                    CostDomain.TIERING),
                "scans": system.stats.get(Counter.TIERING_SCANS),
                "promoted_pages": system.stats.get(
                    Counter.TIERING_PROMOTED_PAGES),
                "demoted_pages": system.stats.get(
                    Counter.TIERING_DEMOTED_PAGES),
                "migrated_bytes": system.stats.get(
                    Counter.TIERING_MIGRATED_BYTES),
                "writeback_bytes": system.stats.get(
                    Counter.TIERING_WRITEBACK_BYTES),
                "shootdowns": system.stats.get(
                    Counter.TIERING_SHOOTDOWNS),
                "residency": tiers.residency(),
            }
    finally:
        args.tiering = saved_tiering
    if args.json:
        print(json.dumps({"target": "tiering", "tier": tier,
                          "media": args.media, "rows": rows},
                         indent=2, sort_keys=True))
        return
    print(format_domain_breakdown(
        f"DaxVM syncbench, data on {tier}, ktierd on "
        f"(cycles by cost domain)", rows["ktierd"]["domains"]))
    table = Table(f"Static {tier} placement vs ktierd migration",
                  ["variant", "cycles", "tiering cyc", "scans",
                   "promoted", "demoted", "migrated MB", "shootdowns"])
    for variant, row in rows.items():
        table.add_row(variant, row["cycles"], row["tiering_cycles"],
                      row["scans"], row["promoted_pages"],
                      row["demoted_pages"],
                      round(row["migrated_bytes"] / 1e6, 2),
                      row["shootdowns"])
    print(format_table(table))
    resident = rows["ktierd"]["residency"]
    print(f"ktierd residency at exit: "
          f"{resident if resident else 'all granules on the device tier'}")


@perf_target("consolidate", "per-tenant breakdown + p99-vs-tenant-count "
                            "knee on one consolidated machine")
def _perf_consolidate(args):
    """Where does per-tenant tail latency knee as tenants pile on?
    Runs the apache mix at 1..``--tenants`` tenants (quotas off) for
    the knee table, then one fully loaded machine with quotas *on*
    and the antagonist hog for the per-tenant breakdown: requests,
    p50/p99, throttle cycles, and each tenant's lock-wait and tenancy
    ledger cycles."""
    from repro.tenancy import consolidate_config, run_consolidate

    requests = max(8, min(args.ops, 64))
    counts = [n for n in (1, 2, 4, 8, 16, 32) if n <= args.tenants]
    if counts[-1] != args.tenants:
        counts.append(args.tenants)

    def tenant_p99s(system, run, config):
        rows = {}
        for tenant in config.tenants:
            if tenant.kind == "antagonist":
                continue
            hist = run.percentiles.get(f"tenant.{tenant.name}.request")
            if hist is None:
                # Degenerate single-tenant path: the un-tenanted
                # apache runner observed the span histogram instead.
                hist = run.percentiles.get("span.apache.request", {})
            rows[tenant.name] = hist
        return rows

    knee = []
    for n in counts:
        system = _system(args)
        config = consolidate_config(n, "apache", requests=requests)
        run = run_consolidate(system, config)
        hists = tenant_p99s(system, run, config)
        p50s = [h.get("p50", 0.0) for h in hists.values()]
        p99s = [h.get("p99", 0.0) for h in hists.values()]
        knee.append({
            "tenants": n,
            "cycles": run.cycles,
            "kops_per_sec": run.ops_per_second / 1e3,
            "p50": sum(p50s) / max(1, len(p50s)),
            "p99": max(p99s) if p99s else 0.0,
        })

    system = _system(args)
    config = consolidate_config(args.tenants, "apache", quotas=True,
                                antagonist=True, requests=requests)
    run = run_consolidate(system, config)
    runtime = system.tenancy
    views = runtime.ledger_views()
    hists = tenant_p99s(system, run, config)
    breakdown = {}
    for tenant in config.tenants:
        view = views.get(tenant.name, {})
        hist = hists.get(tenant.name, {})
        breakdown[tenant.name] = {
            "kind": tenant.kind,
            "requests": system.stats.get(f"tenant.{tenant.name}.requests"),
            "p50": hist.get("p50", 0.0),
            "p99": hist.get("p99", 0.0),
            "throttle_cycles": system.stats.get(
                f"tenant.{tenant.name}.cpu_throttle_cycles"),
            "peak_kernel_bytes": system.stats.get(
                f"tenant.{tenant.name}.peak_kernel_bytes"),
            "lock_wait_cycles": view.get("lock_wait", 0.0),
            "tenancy_cycles": view.get("tenancy", 0.0),
            "total_cycles": sum(view.values()),
        }

    if args.json:
        print(json.dumps({"target": "consolidate", "media": args.media,
                          "requests": requests, "knee": knee,
                          "breakdown": breakdown},
                         indent=2, sort_keys=True))
        return
    table = Table("Per-tenant latency vs tenant count (apache mix, "
                  "no quotas)",
                  ["tenants", "cycles", "Kops/s", "mean p50", "max p99"])
    for row in knee:
        table.add_row(row["tenants"], row["cycles"],
                      round(row["kops_per_sec"], 3),
                      round(row["p50"]), round(row["p99"]))
    print(format_table(table))
    table = Table(f"Fully loaded machine: {args.tenants} tenants + hog, "
                  f"quotas on",
                  ["tenant", "kind", "requests", "p50", "p99",
                   "throttled cyc", "lock-wait cyc", "total cyc"])
    for name, row in breakdown.items():
        table.add_row(name, row["kind"], round(row["requests"]),
                      round(row["p50"]), round(row["p99"]),
                      round(row["throttle_cycles"]),
                      round(row["lock_wait_cycles"]),
                      round(row["total_cycles"]))
    print(format_table(table))


@perf_target("migrate", "guest overheads: pass-through identity, nested "
                        "walks, migration downtime and pull traffic")
def _perf_migrate(args):
    """What does each layer of the hypervisor cost?  Runs the guest
    workload bare, under a pass-through hypervisor (must be
    bit-identical), with nested walk pricing, with a full post-copy
    migration (prefetch on/off) and in forced-degraded mode, and
    reports downtime, pull traffic and the ledger's virt domain."""
    from repro.crash.workloads import CRASH_WORKLOADS
    from repro.runner.worker import _reset_naming_counters
    from repro.virt import VirtConfig, run_migrate

    workload = args.workload if args.workload in CRASH_WORKLOADS \
        else "syncbench"
    variants = [
        ("bare", None),
        ("passive", VirtConfig()),
        ("nested", VirtConfig(nested=True)),
        ("migrate+prefetch", VirtConfig(nested=True, migrate=True,
                                        migrate_after=24, seed=args.seed)),
        ("migrate+noprefetch", VirtConfig(nested=True, migrate=True,
                                          migrate_after=24, prefetch=False,
                                          seed=args.seed)),
        ("degraded", VirtConfig(nested=True, migrate=True,
                                migrate_after=24, force_degraded=True,
                                seed=args.seed)),
    ]
    rows = {}
    for name, config in variants:
        _reset_naming_counters()
        system = _system(args)
        if config is None:
            CRASH_WORKLOADS[workload](system)
            rows[name] = {"cycles": system.engine.now, "virt_cycles": 0.0,
                          "downtime": 0.0, "pulled": 0.0,
                          "prefetched": 0.0, "retries": 0.0,
                          "degraded": 0.0, "completed": 0.0,
                          "aborted": 0.0}
            continue
        system.attach_hypervisor(config)
        r = run_migrate(system, workload)
        rows[name] = {
            "cycles": r.cycles,
            "virt_cycles": r.domains.get("virt", 0.0),
            "downtime": r.counters["virt.downtime_cycles"],
            "pulled": r.counters["virt.pages_pulled"],
            "prefetched": r.counters["virt.prefetched_pages"],
            "retries": r.counters["virt.pull_retries"],
            "degraded": r.counters["virt.degraded_accesses"],
            "completed": r.counters["virt.migrations_completed"],
            "aborted": r.counters["virt.migrations_aborted"],
        }
    identical = rows["passive"]["cycles"] == rows["bare"]["cycles"]
    if args.json:
        print(json.dumps({"target": "migrate", "workload": workload,
                          "media": args.media,
                          "passive_identical": identical, "rows": rows},
                         indent=2, sort_keys=True))
        return
    table = Table(f"Hypervisor layers over {workload} ({args.media})",
                  ["variant", "cycles", "virt cyc", "downtime",
                   "pulled", "prefetched", "retries", "degraded",
                   "done/abort"])
    for name, row in rows.items():
        table.add_row(name, row["cycles"], round(row["virt_cycles"]),
                      round(row["downtime"]), round(row["pulled"]),
                      round(row["prefetched"]), round(row["retries"]),
                      round(row["degraded"]),
                      f"{row['completed']:.0f}/{row['aborted']:.0f}")
    print(format_table(table))
    print(f"pass-through guest bit-identical to bare machine: "
          f"{'yes' if identical else 'NO'}")


def _profile_table(result) -> Table:
    """Merge per-point cProfile tables into one sweep-wide top-N.

    Rows are summed by function across every profiled point, so the
    table answers "where did the whole sweep spend its time", not
    "where did one point".
    """
    from repro.runner.worker import PROFILE_TOP

    merged = {}
    for pr in result.points:
        for row in pr.state.get("profile", ()):
            bucket = merged.setdefault(
                row["function"], {"ncalls": 0, "tottime": 0.0,
                                  "cumtime": 0.0})
            bucket["ncalls"] += row["ncalls"]
            bucket["tottime"] += row["tottime"]
            bucket["cumtime"] += row["cumtime"]
    table = Table("Profile — top functions by own time (all points)",
                  ["function", "ncalls", "tottime s", "cumtime s"])
    ranked = sorted(merged.items(), key=lambda kv: -kv[1]["tottime"])
    for function, bucket in ranked[:PROFILE_TOP]:
        table.add_row(function, bucket["ncalls"],
                      round(bucket["tottime"], 4),
                      round(bucket["cumtime"], 4))
    return table


def _sweep_cmd(args) -> int:
    """``python -m repro sweep <name>`` — parallel cached execution."""
    result = _run_named_sweep(args, args.target)
    print(format_sweep(result.sweep.title, result.series(),
                       result.sweep.axis, result.hits, result.misses,
                       result.wall_seconds))
    print()
    print(format_table(result.table()))
    if result.failed:
        print()
        print(format_table(result.failed_table()))
        print(f"sweep: {len(result.failed)} point(s) quarantined, "
              f"{len(result.points)} completed", file=sys.stderr)
    if args.profile:
        print()
        print(format_table(_profile_table(result)))
    if args.expect_failed is not None:
        if len(result.failed) != args.expect_failed:
            print(f"sweep: expected exactly {args.expect_failed} "
                  f"quarantined point(s), got {len(result.failed)}",
                  file=sys.stderr)
            return 1
    elif result.failed:
        return 1
    if args.verify_cache:
        if args.no_cache:
            print("sweep: --verify-cache needs the cache; "
                  "drop --no-cache", file=sys.stderr)
            return 2
        warm = _run_named_sweep(args, args.target)
        if warm.hits != len(warm.points):
            print(f"sweep: cache verify FAILED: only {warm.hits}/"
                  f"{len(warm.points)} points served from cache",
                  file=sys.stderr)
            return 1
        for cold, hot in zip(result.points, warm.points):
            a = json.dumps(cold.comparable_state(), sort_keys=True)
            b = json.dumps(hot.comparable_state(), sort_keys=True)
            if a != b:
                print(f"sweep: cache verify FAILED: point "
                      f"{cold.point.label} round-trips differently",
                      file=sys.stderr)
                return 1
        print(f"cache verify OK: {warm.hits}/{len(warm.points)} points "
              f"replayed identically")
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="DaxVM reproduction experiments (compact versions; "
                    "full regenerations live in benchmarks/)")
    parser.add_argument("experiment",
                        choices=sorted(EXPERIMENTS) + ["perf", "sweep",
                                                       "list"],
                        help="which experiment to run ('perf' drills "
                             "into instrumentation breakdowns, 'sweep' "
                             "fans a named sweep across worker "
                             "processes with result caching)")
    parser.add_argument("target", nargs="?",
                        choices=sorted(set(PERF_TARGETS) | set(SWEEPS)),
                        help="perf target (with 'perf') or sweep name "
                             "(with 'sweep')")
    parser.add_argument("--json", action="store_true",
                        help="emit machine-readable JSON (perf only)")
    parser.add_argument("--ops", type=int, default=400,
                        help="operation/file/request count")
    parser.add_argument("--size", type=int, default=32 << 10,
                        help="file size in bytes where applicable")
    parser.add_argument("--threads", type=int, default=1)
    parser.add_argument("--device", type=int, default=4,
                        help="device size in GiB")
    parser.add_argument("--fresh", action="store_true",
                        help="fresh (unaged) file system image")
    parser.add_argument("--fs", choices=("ext4", "nova", "xfs"),
                        default="ext4")
    parser.add_argument("--media", choices=sorted(MEDIA_PRESETS),
                        default="optane")
    parser.add_argument("--scheme", choices=SCHEME_NAMES,
                        default="radix4",
                        help="translation architecture for experiments "
                             "that build one machine (sweeps carry the "
                             "scheme per point instead)")
    parser.add_argument("--nodes", type=int, default=1,
                        help="NUMA sockets (1 = uniform machine)")
    parser.add_argument("--policy", choices=PLACEMENTS, default="local",
                        help="file/device placement relative to "
                             "--pin-node (multi-socket only)")
    parser.add_argument("--pin-node", type=int, default=0,
                        help="socket the placement is defined against")
    parser.add_argument("--node-kinds", default=None,
                        help="comma list of memory-node kinds (ddr, "
                             "cxl, far), e.g. 'ddr,cxl' adds a CXL "
                             "expander beside the socket; overrides "
                             "--nodes")
    parser.add_argument("--tiering", default=None,
                        help="price file data on this tier instead of "
                             "the device medium (dram/pmem/cxl/far); "
                             "append ':daemon' to start the hot/cold "
                             "migration kthread, e.g. 'cxl:daemon'")
    parser.add_argument("--workload",
                        choices=("syncbench", "kvstore", "readbench"),
                        default="syncbench",
                        help="crash/fault workload (with 'crash' or "
                             "'faults'; 'readbench' is faults-only)")
    parser.add_argument("--seed", type=int, default=0,
                        help="crash/fault sampling seed (also seeds "
                             "sweep retry backoff)")
    parser.add_argument("--max-points", type=int, default=64,
                        help="crash points to explore (with 'crash'); "
                             "with 'sweep', run only the first N points "
                             "of the manifest (CI smoke)")
    parser.add_argument("--max-sites", type=int, default=64,
                        help="fault sites to arm (with 'faults')")
    parser.add_argument("--tenants", type=int, default=8,
                        help="tenant count for 'perf consolidate' "
                             "(knee runs 1..N, breakdown at N)")
    parser.add_argument("--jobs", type=int, default=1,
                        help="worker processes for sweep execution")
    parser.add_argument("--point-timeout", type=float, default=None,
                        help="watchdog seconds per sweep point; hung "
                             "points are quarantined (needs --jobs >= 2 "
                             "for isolation)")
    parser.add_argument("--max-retries", type=int, default=0,
                        help="retries for retryable sweep-point "
                             "failures (seeded exponential backoff)")
    parser.add_argument("--expect-failed", type=int, default=None,
                        help="sweep exits 0 only if exactly this many "
                             "points were quarantined (CI isolation "
                             "checks); default: any failure exits 1")
    parser.add_argument("--no-cache", action="store_true",
                        help="bypass the sweep result cache")
    parser.add_argument("--cache-dir", default=DEFAULT_CACHE_DIR,
                        help="sweep result cache directory")
    parser.add_argument("--verify-cache", action="store_true",
                        help="after a sweep, replay it from cache and "
                             "fail unless every point round-trips "
                             "identically")
    parser.add_argument("--profile", action="store_true",
                        help="cProfile every sweep point and print a "
                             "merged top-functions table (bypasses the "
                             "result cache; simulated numbers are "
                             "unchanged, walls include profiler "
                             "overhead)")
    return parser


def main(argv=None) -> int:
    args = build_parser().parse_args(argv)
    if args.experiment == "list":
        for name, fn in sorted(EXPERIMENTS.items()):
            print(f"{name:<12} {fn.help_text}")
        for name, fn in sorted(PERF_TARGETS.items()):
            print(f"perf {name:<7} {fn.help_text}")
        for name, fn in sorted(SWEEPS.items()):
            print(f"sweep {name:<6} {fn.help_text}")
        return 0
    if args.experiment == "perf":
        if args.target is None or args.target not in PERF_TARGETS:
            print("perf needs a target: " + ", ".join(sorted(PERF_TARGETS)),
                  file=sys.stderr)
            return 2
        PERF_TARGETS[args.target](args)
        return 0
    if args.experiment == "sweep":
        if args.target is None or args.target not in SWEEPS:
            print("sweep needs a name: " + ", ".join(sorted(SWEEPS)),
                  file=sys.stderr)
            return 2
        return _sweep_cmd(args)
    EXPERIMENTS[args.experiment](args)
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    sys.exit(main())
