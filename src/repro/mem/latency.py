"""Memory access cost functions and bandwidth throttling.

These pure functions translate "touch N bytes on medium M in pattern P"
into cycles, encoding the micro-architectural observations of §III-C of
the paper:

* user-space code reading a fresh DAX mapping pays PMem latency /
  bandwidth, while a ``read()`` system call's copy prefetches the data
  into the cache hierarchy, so subsequent user-space processing runs at
  cache speed;
* nt-stores deliver roughly double the PMem write bandwidth of regular
  stores followed by clwb/sfence flushes (Yang et al., FAST'20);
* kernel copies cannot use AVX-512 (register save/restore across the
  boundary), so they run at a discounted bandwidth.

Since the memory-tier refactor every cost here dispatches through the
:class:`~repro.mem.tiers.MediumSpec` registry — no function branches on
a specific :class:`~repro.mem.physmem.Medium` member, and an unknown
medium raises instead of silently pricing as PMem.  For DRAM and PMem
the specs carry the historical constants verbatim and the expressions
below combine them in the historical order, so DRAM+PMem-only machines
are bit-identical to the pre-refactor model (held by
``tests/test_tier_golden.py``).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable, List, Optional, Tuple

from repro.config import CostModel
from repro.errors import InvalidArgumentError
from repro.mem.physmem import Medium
from repro.mem.tiers import MediumSpec, medium_specs, spec_for

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.topology import MachineTopology


class SharedBandwidth:
    """The PMem device's aggregate read/write bandwidth ceilings.

    Single-threaded runs never feel these (one thread's streaming rate
    sits well below the device total); at high thread counts they are
    what flattens every interface's scaling curve, read() included.
    """

    def __init__(self, read_bw: float, write_bw: float, freq_hz: float):
        self.read_bw = read_bw
        self.write_bw = write_bw
        self.freq_hz = freq_hz
        self._read = BandwidthThrottle(read_bw, freq_hz)
        self._write = BandwidthThrottle(write_bw, freq_hz)
        #: Optional proportional-admission hook (duck-typed, installed
        #: by repro.tenancy when quotas are on): ``extra_delay(pool,
        #: read_bytes, write_bytes, now)`` rate-caps the *current
        #: tenant's* traffic at its weighted share of the pool without
        #: consuming anyone else's tokens.  ``None`` = unweighted.
        self.admission = None

    def delay(self, read_bytes: float, write_bytes: float,
              now: float) -> float:
        """Cycles until the device can complete this transfer."""
        wait = 0.0
        if read_bytes:
            wait = max(wait, self._read.delay_for(int(read_bytes), now))
        if write_bytes:
            wait = max(wait, self._write.delay_for(int(write_bytes), now))
        if self.admission is not None:
            wait = max(wait, self.admission.extra_delay(
                self, read_bytes, write_bytes, now))
        return wait

    def bytes_moved(self) -> float:
        """Cumulative bytes admitted through this pool (telemetry for
        the tiering daemon's expander-side rate limiter)."""
        return self._read.total_bytes + self._write.total_bytes


class MemoryModel:
    """Cycle costs for loads, stores, copies and flushes."""

    def __init__(self, costs: CostModel):
        self.costs = costs
        #: The pluggable tier registry: every pricing decision below
        #: reads the touched medium's spec instead of branching on the
        #: enum.
        self.specs = medium_specs(costs)
        #: Optional :class:`repro.tiering.TierMap` — the hot/cold data
        #: placement overlay consulted by the VM access path and the
        #: FS copy paths.  ``None`` (the default) means all file data
        #: lives on the device's native medium, which reproduces the
        #: pre-tiering model exactly.
        self.tiers = None
        #: Per-node device-level contention pools; set by System,
        #: absent in unit use.  Node 0's pool doubles as the legacy
        #: single-socket ``shared`` attribute.
        self._pools: List[Optional[SharedBandwidth]] = [None]
        #: Optane media interference: background write streams
        #: (pre-zeroing) disturb concurrent accesses beyond their
        #: bandwidth share (FAST'20's mixed-traffic penalty).  Kept as
        #: a per-node stack of active factors so multiple background
        #: streams compose (enter/exit) instead of clobbering a scalar.
        self._interference: List[List[float]] = [[]]
        #: Static NUMA description + frame->node recovery; wired by
        #: System via :meth:`set_topology`, absent in unit use (which
        #: then behaves exactly like the uniform pre-topology model).
        self.topology: Optional["MachineTopology"] = None
        self.node_of_frame: Optional[Callable[[int], int]] = None
        #: Optional :class:`repro.crash.PersistenceDomain`: durability
        #: state rides the same calls that price the data movement.
        #: Purely passive byte accounting — the cost results are
        #: untouched, so performance runs are bit-identical with or
        #: without a domain attached.
        self.persistence = None
        #: Optional :class:`repro.faults.MediaFaults`; the VM access
        #: path consults it for poisoned frames (SIGBUS) and it drives
        #: bandwidth-degradation windows through the interference
        #: stack.  ``None`` in ordinary performance runs.
        self.faults = None

    # -- NUMA wiring --------------------------------------------------------
    def set_topology(self, topology: "MachineTopology",
                     node_of_frame: Callable[[int], int]) -> None:
        """Teach the model the socket layout and frame ownership."""
        self.topology = topology
        self.node_of_frame = node_of_frame
        grow = topology.num_nodes - len(self._interference)
        for _ in range(grow):
            self._interference.append([])

    def numa_factors(self, core: Optional[int], frame: Optional[int],
                     medium: Medium) -> Tuple[float, float, int, bool]:
        """(latency factor, bandwidth factor, target node, is remote)
        for a core touching a frame.

        Uniform (no/1-node topology, or caller without placement info)
        degenerates to ``(1.0, 1.0, 0, False)`` — and multiplying by
        exactly 1.0 is bit-exact, so the uniform path reproduces the
        pre-topology numbers.
        """
        if (self.topology is None or self.topology.num_nodes == 1
                or core is None or frame is None):
            return 1.0, 1.0, 0, False
        core_node = self.topology.node_of_core(core)
        target = (self.node_of_frame(frame)
                  if self.node_of_frame is not None else core_node)
        return (self.topology.latency_factor(core_node, target, medium),
                self.topology.bandwidth_factor(core_node, target, medium),
                target, core_node != target)

    # -- per-node device bandwidth pools ------------------------------------
    @property
    def shared(self) -> Optional["SharedBandwidth"]:
        """Node 0's aggregate-bandwidth pool (legacy single-socket
        name; assignment rewires the model to one pool)."""
        return self._pools[0]

    @shared.setter
    def shared(self, pool: Optional["SharedBandwidth"]) -> None:
        self._pools = [pool]

    def set_pools(self, pools: List["SharedBandwidth"]) -> None:
        """Install one aggregate-bandwidth pool per NUMA node."""
        self._pools = list(pools)

    def pool(self, node: int) -> Optional["SharedBandwidth"]:
        # Device frames past the modelled regions clamp to the last
        # node (mirrors PhysicalMemory.node_of for synthetic devices).
        return self._pools[min(node, len(self._pools) - 1)]

    @property
    def pools(self) -> List[Optional["SharedBandwidth"]]:
        """Every per-node bandwidth pool (entries may be ``None``)."""
        return list(self._pools)

    def device_delay(self, read_bytes: float, write_bytes: float,
                     now: float, node: int = 0) -> float:
        """Extra wait imposed by one node's aggregate PMem bandwidth
        (0 if the shared model is not wired up)."""
        pool = self.pool(node)
        if pool is None:
            return 0.0
        return pool.delay(read_bytes, write_bytes, now)

    # -- media interference (enter/exit, per node) --------------------------
    @property
    def interference(self) -> float:
        """Node 0's effective interference factor (legacy name)."""
        return self.interference_for(0)

    @interference.setter
    def interference(self, value: float) -> None:
        # Legacy scalar assignment: 1.0 clears node 0, anything else
        # replaces node 0's stack with that single factor.
        self._interference[0] = [] if value == 1.0 else [float(value)]

    def interference_for(self, node: int) -> float:
        """Effective factor on a node: the worst active stream, 1.0
        when nothing is interfering."""
        if node >= len(self._interference):
            return 1.0
        stack = self._interference[node]
        return max(stack) if stack else 1.0

    def enter_interference(self, factor: float, node: int = 0) -> None:
        """A background stream starts disturbing a node's media."""
        while node >= len(self._interference):
            self._interference.append([])
        self._interference[node].append(float(factor))

    def exit_interference(self, factor: float, node: int = 0) -> None:
        """The matching end of :meth:`enter_interference` — removes one
        instance of the factor, leaving other streams' penalties
        untouched (raises if there is nothing to exit)."""
        try:
            self._interference[node].remove(float(factor))
        except (IndexError, ValueError):
            raise InvalidArgumentError(
                f"exit_interference({factor}, node={node}) without a "
                f"matching enter") from None

    def reset_interference(self) -> None:
        """Forget all active streams (power cycle)."""
        self._interference = [[] for _ in self._interference]

    # -- tier registry ------------------------------------------------------
    def spec(self, medium: Medium) -> MediumSpec:
        """The medium's pricing spec; unknown media raise loudly."""
        return spec_for(self.specs, medium)

    # -- scalar access ------------------------------------------------------
    def load_latency(self, medium: Medium, cached: bool = False,
                     factor: float = 1.0) -> float:
        """Latency of one dependent load from ``medium``; ``factor``
        is the NUMA latency multiplier (cache hits never pay it)."""
        if cached:
            return self.costs.cache_load_latency
        return self.spec(medium).load_latency * factor

    # -- streaming access ---------------------------------------------------
    def stream_read(self, nbytes: int, medium: Medium,
                    cached: bool = False, node: int = 0,
                    bw_factor: float = 1.0) -> float:
        """Sequentially scan ``nbytes`` (AVX-512 width reads) living on
        ``node``; ``bw_factor`` < 1 models the off-socket link."""
        if cached:
            bandwidth = self.costs.dram_read_bw * 2.5  # LLC-resident
        else:
            spec = self.spec(medium)
            bandwidth = spec.read_bw * bw_factor
            if spec.interference_prone:
                bandwidth /= self.interference_for(node)
        return self.costs.copy_cycles(nbytes, bandwidth)

    def stream_write(self, nbytes: int, medium: Medium,
                     ntstore: bool = True, node: int = 0,
                     bw_factor: float = 1.0) -> float:
        """Write ``nbytes`` sequentially.

        ``ntstore=True`` streams past the cache at nt-store bandwidth
        (immediately durable on PMem).  ``ntstore=False`` models plain
        cached stores: they complete at near-DRAM speed and the data
        sits dirty in the cache — durability costs are paid later by
        whoever flushes (msync/fsync via :meth:`clwb_flush`).
        """
        spec = self.spec(medium)
        if self.persistence is not None and spec.persistent:
            self.persistence.note_stream(nbytes, ntstore)
        if not ntstore or not spec.ntstore_streams:
            # DRAM-class media (and non-temporal bypass disabled): the
            # cache hierarchy absorbs the stores at DRAM drain speed.
            bandwidth = self.costs.dram_write_bw
        else:
            bandwidth = spec.ntstore_bw * bw_factor
            if spec.interference_prone:
                bandwidth /= self.interference_for(node)
        return self.costs.copy_cycles(nbytes, bandwidth)

    def random_read(self, nbytes: int, granule: int, medium: Medium,
                    node: int = 0, lat_factor: float = 1.0,
                    bw_factor: float = 1.0) -> float:
        """Read ``nbytes`` in random ``granule``-sized chunks."""
        chunks = max(1, nbytes // granule)
        per_chunk = (self.load_latency(medium, factor=lat_factor)
                     + self.stream_read(granule, medium, node=node,
                                        bw_factor=bw_factor) * 0.55)
        return chunks * per_chunk

    # -- copies ---------------------------------------------------------------
    def memcpy(self, nbytes: int, src: Medium, dst: Medium,
               kernel: bool = False, ntstore: bool = True,
               bw_factor: float = 1.0) -> float:
        """Copy ``nbytes``; bandwidth is the min of source and sink.

        ``kernel=True`` applies the no-AVX discount of syscall-path
        copies (§III-C, Vectorization).  ``bw_factor`` discounts the
        whole pipe when either end sits across the UPI link.
        """
        dst_spec = self.spec(dst)
        if self.persistence is not None and dst_spec.persistent:
            self.persistence.note_stream(nbytes, ntstore)
        read_bw = self.spec(src).read_bw
        if not ntstore or not dst_spec.ntstore_streams:
            # Cached stores: the cache absorbs them at DRAM-like speed
            # (device durability, if needed, is a later clwb flush).
            write_bw = self.costs.dram_write_bw
        else:
            write_bw = dst_spec.ntstore_bw
        bandwidth = min(read_bw, write_bw) * bw_factor
        if kernel:
            bandwidth *= self.costs.kernel_copy_ratio
        return self.costs.copy_cycles(nbytes, bandwidth)

    # -- persistence ------------------------------------------------------
    def clwb_flush(self, nbytes: int, bw_factor: float = 1.0,
                   medium: Medium = Medium.PMEM) -> float:
        """Flush ``nbytes`` of dirty cache lines to the device
        (clwb+sfence)."""
        if self.persistence is not None:
            self.persistence.note_flush(nbytes)
        return self.costs.copy_cycles(
            nbytes, self.spec(medium).clwb_bw * bw_factor)

    def zero(self, nbytes: int, bw_factor: float = 1.0,
             medium: Medium = Medium.PMEM) -> float:
        """Zero ``nbytes`` of device memory with nt-stores."""
        return self.costs.copy_cycles(
            nbytes, self.spec(medium).zero_bw * bw_factor)


class BandwidthThrottle:
    """A token bucket limiting a background consumer's PMem bandwidth.

    DaxVM's pre-zeroing kthread is rate limited so zeroing does not
    saturate PMem bandwidth and stall foreground operations (§IV-E).
    The bucket accrues budget in simulated time; ``delay_for`` returns
    how long the consumer must wait before it may move ``nbytes``.
    """

    def __init__(self, bytes_per_second: float, freq_hz: float):
        if bytes_per_second <= 0:
            raise ValueError("throttle bandwidth must be positive")
        self.bytes_per_cycle = bytes_per_second / freq_hz
        self._paid_until = 0.0
        #: Cumulative bytes charged through this bucket — pure
        #: telemetry (never read back into pricing decisions here).
        self.total_bytes = 0.0

    def delay_for(self, nbytes: int, now: float) -> float:
        """Cycles to wait (possibly 0) before moving ``nbytes`` now."""
        self.total_bytes += nbytes
        cost_cycles = nbytes / self.bytes_per_cycle
        start = max(now, self._paid_until)
        self._paid_until = start + cost_cycles
        return self._paid_until - now
