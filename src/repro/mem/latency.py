"""Memory access cost functions and bandwidth throttling.

These pure functions translate "touch N bytes on medium M in pattern P"
into cycles, encoding the micro-architectural observations of §III-C of
the paper:

* user-space code reading a fresh DAX mapping pays PMem latency /
  bandwidth, while a ``read()`` system call's copy prefetches the data
  into the cache hierarchy, so subsequent user-space processing runs at
  cache speed;
* nt-stores deliver roughly double the PMem write bandwidth of regular
  stores followed by clwb/sfence flushes (Yang et al., FAST'20);
* kernel copies cannot use AVX-512 (register save/restore across the
  boundary), so they run at a discounted bandwidth.
"""

from __future__ import annotations

from repro.config import CostModel
from repro.mem.physmem import Medium


class SharedBandwidth:
    """The PMem device's aggregate read/write bandwidth ceilings.

    Single-threaded runs never feel these (one thread's streaming rate
    sits well below the device total); at high thread counts they are
    what flattens every interface's scaling curve, read() included.
    """

    def __init__(self, read_bw: float, write_bw: float, freq_hz: float):
        self._read = BandwidthThrottle(read_bw, freq_hz)
        self._write = BandwidthThrottle(write_bw, freq_hz)

    def delay(self, read_bytes: float, write_bytes: float,
              now: float) -> float:
        """Cycles until the device can complete this transfer."""
        wait = 0.0
        if read_bytes:
            wait = max(wait, self._read.delay_for(int(read_bytes), now))
        if write_bytes:
            wait = max(wait, self._write.delay_for(int(write_bytes), now))
        return wait


class MemoryModel:
    """Cycle costs for loads, stores, copies and flushes."""

    def __init__(self, costs: CostModel):
        self.costs = costs
        #: Device-level contention; set by System, absent in unit use.
        self.shared: "SharedBandwidth | None" = None
        #: Optane media interference multiplier: background write
        #: streams (pre-zeroing) disturb concurrent accesses beyond
        #: their bandwidth share (FAST'20's mixed-traffic penalty).
        #: Raised by the pre-zero daemon while it is actively zeroing.
        self.interference: float = 1.0

    def device_delay(self, read_bytes: float, write_bytes: float,
                     now: float) -> float:
        """Extra wait imposed by aggregate PMem bandwidth (0 if the
        shared model is not wired up)."""
        if self.shared is None:
            return 0.0
        return self.shared.delay(read_bytes, write_bytes, now)

    # -- scalar access ------------------------------------------------------
    def load_latency(self, medium: Medium, cached: bool = False) -> float:
        """Latency of one dependent load from ``medium``."""
        if cached:
            return self.costs.cache_load_latency
        if medium is Medium.DRAM:
            return self.costs.dram_load_latency
        return self.costs.pmem_load_latency

    # -- streaming access ---------------------------------------------------
    def stream_read(self, nbytes: int, medium: Medium,
                    cached: bool = False) -> float:
        """Sequentially scan ``nbytes`` (AVX-512 width reads)."""
        if cached:
            bandwidth = self.costs.dram_read_bw * 2.5  # LLC-resident
        elif medium is Medium.DRAM:
            bandwidth = self.costs.dram_read_bw
        else:
            bandwidth = self.costs.pmem_read_bw / self.interference
        return self.costs.copy_cycles(nbytes, bandwidth)

    def stream_write(self, nbytes: int, medium: Medium,
                     ntstore: bool = True) -> float:
        """Write ``nbytes`` sequentially.

        ``ntstore=True`` streams past the cache at nt-store bandwidth
        (immediately durable on PMem).  ``ntstore=False`` models plain
        cached stores: they complete at near-DRAM speed and the data
        sits dirty in the cache — durability costs are paid later by
        whoever flushes (msync/fsync via :meth:`clwb_flush`).
        """
        if medium is Medium.DRAM or not ntstore:
            bandwidth = self.costs.dram_write_bw
        else:
            bandwidth = self.costs.pmem_ntstore_bw / self.interference
        return self.costs.copy_cycles(nbytes, bandwidth)

    def random_read(self, nbytes: int, granule: int,
                    medium: Medium) -> float:
        """Read ``nbytes`` in random ``granule``-sized chunks."""
        chunks = max(1, nbytes // granule)
        per_chunk = (self.load_latency(medium)
                     + self.stream_read(granule, medium) * 0.55)
        return chunks * per_chunk

    # -- copies ---------------------------------------------------------------
    def memcpy(self, nbytes: int, src: Medium, dst: Medium,
               kernel: bool = False, ntstore: bool = True) -> float:
        """Copy ``nbytes``; bandwidth is the min of source and sink.

        ``kernel=True`` applies the no-AVX discount of syscall-path
        copies (§III-C, Vectorization).
        """
        read_bw = (self.costs.pmem_read_bw if src is Medium.PMEM
                   else self.costs.dram_read_bw)
        if dst is Medium.DRAM or not ntstore:
            # Cached stores: the cache absorbs them at DRAM-like speed
            # (PMem durability, if needed, is a later clwb flush).
            write_bw = self.costs.dram_write_bw
        else:
            write_bw = self.costs.pmem_ntstore_bw
        bandwidth = min(read_bw, write_bw)
        if kernel:
            bandwidth *= self.costs.kernel_copy_ratio
        return self.costs.copy_cycles(nbytes, bandwidth)

    # -- persistence ------------------------------------------------------
    def clwb_flush(self, nbytes: int) -> float:
        """Flush ``nbytes`` of dirty cache lines to PMem (clwb+sfence)."""
        return self.costs.copy_cycles(nbytes, self.costs.pmem_clwb_bw)

    def zero(self, nbytes: int) -> float:
        """Zero ``nbytes`` of PMem with nt-stores."""
        return self.costs.copy_cycles(nbytes, self.costs.pmem_zero_bw)


class BandwidthThrottle:
    """A token bucket limiting a background consumer's PMem bandwidth.

    DaxVM's pre-zeroing kthread is rate limited so zeroing does not
    saturate PMem bandwidth and stall foreground operations (§IV-E).
    The bucket accrues budget in simulated time; ``delay_for`` returns
    how long the consumer must wait before it may move ``nbytes``.
    """

    def __init__(self, bytes_per_second: float, freq_hz: float):
        if bytes_per_second <= 0:
            raise ValueError("throttle bandwidth must be positive")
        self.bytes_per_cycle = bytes_per_second / freq_hz
        self._paid_until = 0.0

    def delay_for(self, nbytes: int, now: float) -> float:
        """Cycles to wait (possibly 0) before moving ``nbytes`` now."""
        cost_cycles = nbytes / self.bytes_per_cycle
        start = max(now, self._paid_until)
        self._paid_until = start + cost_cycles
        return self._paid_until - now
