"""The pluggable memory-tier registry (``MediumSpec``).

The paper's world has exactly two media — DRAM and Optane PMem — and
the original cost model priced them with ``if medium is Medium.DRAM …
else <PMem>`` branches.  ROADMAP item 3 adds CXL memory expanders and
NT-interleave/far-memory nodes to the hierarchy, which makes the
dichotomy untenable: every layer that branches on the enum would need
a third and fourth arm.  Instead, each medium carries one
:class:`MediumSpec` — its load latency, streaming bandwidths,
persistence flag, NT-store behaviour, page-walk leaf cost and
cross-socket topology factors — and every consumer dispatches through
the spec.

Equivalence contract: for DRAM and PMem the specs carry **exactly**
the constants the old branches read (same :class:`~repro.config.
CostModel` fields, combined downstream in the same expression order),
so a DRAM+PMem-only machine is bit-identical to the pre-refactor
simulator.  ``tests/test_tier_golden.py`` holds the model to that.

Dispatch is exhaustive: an unregistered medium raises
:class:`~repro.errors.InvalidArgumentError` instead of silently
pricing as PMem (the old ``else`` arm's failure mode).

Calibration sources for the new tiers:

* ``cxl`` — a CXL 2.0 memory expander (DRAM behind an x8 link):
  load latency ~2.5x local DRAM (~220 ns; CXLRAMSim v1.0's measured
  points), streaming reads around the practical x8 link rate and
  writes somewhat below it.  Volatile: a power cycle clears it.
* ``far`` — an NT-interleave/far-memory node per "Emulating Hybrid
  Memory on NUMA Hardware": remote-socket DRAM used as a slow second
  tier, ~1.8x load latency and ~60 % of local DRAM bandwidth.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Dict

from repro.errors import InvalidArgumentError
from repro.mem.physmem import Medium

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.config import CostModel


@dataclass(frozen=True)
class MediumSpec:
    """Everything the cost model needs to know about one medium."""

    medium: Medium
    #: One dependent random load, cycles (NUMA factors multiply this).
    load_latency: float
    #: Single-thread sequential read bandwidth, bytes/s.
    read_bw: float
    #: nt-store streaming write bandwidth, bytes/s (used only when
    #: :attr:`ntstore_streams` is true).
    ntstore_bw: float
    #: clwb+sfence flush bandwidth, bytes/s.
    clwb_bw: float
    #: memset-zero (nt-store) bandwidth, bytes/s.
    zero_bw: float
    #: Reading the leaf PTE cache line on a page walk, cycles.
    walk_leaf: float
    #: Remote / local load-latency ratio across the UPI link.
    remote_latency: float
    #: Remote / local streaming-bandwidth ratio (< 1).
    remote_bw: float
    #: Contents survive a power cycle?
    persistent: bool = False
    #: Do nt-stores stream to the device at :attr:`ntstore_bw`?  When
    #: false (DRAM-class media) every store is absorbed by the cache
    #: hierarchy and drains at DRAM write bandwidth.
    ntstore_streams: bool = False
    #: Does Optane's mixed-traffic media interference apply?
    interference_prone: bool = False
    #: Does traffic contend on the per-node PMem device pools (the
    #: aggregate-DIMM bandwidth ceiling)?
    device_pooled: bool = False


def medium_specs(costs: "CostModel") -> Dict[Medium, MediumSpec]:
    """Build the per-medium registry from one calibrated cost model.

    DRAM and PMem lift the historical constants verbatim — the
    bit-identicality contract depends on it.  CXL and far-memory use
    the ``cxl_*`` / ``far_*`` constants of :class:`~repro.config.
    CostModel`.
    """
    from repro.config import (
        NUMA_REMOTE_CXL_BW,
        NUMA_REMOTE_CXL_LATENCY,
        NUMA_REMOTE_DRAM_BW,
        NUMA_REMOTE_DRAM_LATENCY,
        NUMA_REMOTE_FAR_BW,
        NUMA_REMOTE_FAR_LATENCY,
        NUMA_REMOTE_PMEM_BW,
        NUMA_REMOTE_PMEM_LATENCY,
    )

    return {
        Medium.DRAM: MediumSpec(
            medium=Medium.DRAM,
            load_latency=costs.dram_load_latency,
            read_bw=costs.dram_read_bw,
            ntstore_bw=costs.dram_write_bw,
            clwb_bw=costs.dram_write_bw,
            zero_bw=costs.dram_write_bw,
            walk_leaf=costs.walk_leaf_dram,
            remote_latency=NUMA_REMOTE_DRAM_LATENCY,
            remote_bw=NUMA_REMOTE_DRAM_BW,
            persistent=False,
            ntstore_streams=False,
            interference_prone=False,
            device_pooled=False,
        ),
        Medium.PMEM: MediumSpec(
            medium=Medium.PMEM,
            load_latency=costs.pmem_load_latency,
            read_bw=costs.pmem_read_bw,
            ntstore_bw=costs.pmem_ntstore_bw,
            clwb_bw=costs.pmem_clwb_bw,
            zero_bw=costs.pmem_zero_bw,
            walk_leaf=costs.walk_leaf_pmem,
            remote_latency=NUMA_REMOTE_PMEM_LATENCY,
            remote_bw=NUMA_REMOTE_PMEM_BW,
            persistent=True,
            ntstore_streams=True,
            interference_prone=True,
            device_pooled=True,
        ),
        Medium.CXL: MediumSpec(
            medium=Medium.CXL,
            load_latency=costs.cxl_load_latency,
            read_bw=costs.cxl_read_bw,
            ntstore_bw=costs.cxl_ntstore_bw,
            clwb_bw=costs.cxl_ntstore_bw,
            zero_bw=costs.cxl_ntstore_bw,
            walk_leaf=costs.walk_leaf_cxl,
            remote_latency=NUMA_REMOTE_CXL_LATENCY,
            remote_bw=NUMA_REMOTE_CXL_BW,
            persistent=False,
            ntstore_streams=True,
            interference_prone=False,
            device_pooled=False,
        ),
        Medium.FAR: MediumSpec(
            medium=Medium.FAR,
            load_latency=costs.far_load_latency,
            read_bw=costs.far_read_bw,
            ntstore_bw=costs.far_write_bw,
            clwb_bw=costs.far_write_bw,
            zero_bw=costs.far_write_bw,
            walk_leaf=costs.walk_leaf_far,
            remote_latency=NUMA_REMOTE_FAR_LATENCY,
            remote_bw=NUMA_REMOTE_FAR_BW,
            persistent=False,
            ntstore_streams=True,
            interference_prone=False,
            device_pooled=False,
        ),
    }


def spec_for(specs: Dict[Medium, MediumSpec], medium: Medium
             ) -> MediumSpec:
    """Exhaustive registry lookup: unknown media raise, loudly."""
    try:
        return specs[medium]
    except (KeyError, TypeError):
        raise InvalidArgumentError(
            f"no MediumSpec registered for {medium!r}; known media: "
            f"{sorted(m.value for m in specs)}") from None


#: Media ordered hot (fastest load) to cold — the tiering daemon's
#: promotion direction.  Recomputed per cost model by callers that
#: need the calibrated ordering; this is the default calibration's.
TIER_ORDER = (Medium.DRAM, Medium.CXL, Medium.FAR, Medium.PMEM)


__all__ = ["MediumSpec", "TIER_ORDER", "medium_specs", "spec_for"]
