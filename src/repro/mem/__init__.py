"""Physical memory substrate: DRAM and PMem media, frames and costs."""

from repro.mem.latency import BandwidthThrottle, MemoryModel
from repro.mem.physmem import Medium, PhysicalMemory, Region

__all__ = [
    "BandwidthThrottle",
    "MemoryModel",
    "Medium",
    "PhysicalMemory",
    "Region",
]
