"""Physical memory: the DRAM and PMem media and frame accounting.

The simulator does not store file *contents* — only placement.  What
matters for every result in the paper is **where** bytes and page-table
pages live (DRAM vs PMem), since the medium drives load latency, page
walk costs (Table II) and bandwidth.  ``PhysicalMemory`` hands out 4 KB
frame numbers from each medium and tracks usage so experiments can
report footprint numbers (e.g. DaxVM's file-table storage tax, §V-B).
"""

from __future__ import annotations

import enum
from typing import Dict, List

from repro.errors import MemoryError_


class Medium(enum.Enum):
    """The storage medium backing a physical frame."""

    DRAM = "dram"
    PMEM = "pmem"


class Region:
    """A frame allocator over one contiguous physical medium."""

    FRAME_SIZE = 4096

    def __init__(self, medium: Medium, size_bytes: int, base_frame: int = 0):
        self.medium = medium
        self.size_bytes = size_bytes
        self.total_frames = size_bytes // Region.FRAME_SIZE
        self.base_frame = base_frame
        self._next_frame = 0
        self._free: List[int] = []
        self.allocated_frames = 0
        self.peak_frames = 0

    def alloc_frame(self) -> int:
        """Allocate one 4 KB frame; returns its global frame number."""
        if self._free:
            frame = self._free.pop()
        elif self._next_frame < self.total_frames:
            frame = self.base_frame + self._next_frame
            self._next_frame += 1
        else:
            raise MemoryError_(
                f"{self.medium.value}: out of frames "
                f"({self.total_frames} total)")
        self.allocated_frames += 1
        self.peak_frames = max(self.peak_frames, self.allocated_frames)
        return frame

    def free_frame(self, frame: int) -> None:
        self._free.append(frame)
        self.allocated_frames -= 1

    @property
    def allocated_bytes(self) -> int:
        return self.allocated_frames * Region.FRAME_SIZE

    @property
    def peak_bytes(self) -> int:
        return self.peak_frames * Region.FRAME_SIZE


class PhysicalMemory:
    """The machine's physical memory: one DRAM and one PMem region.

    Frame numbers are globally unique across media (PMem frames start
    above the DRAM range), so a page-table entry's target medium can be
    recovered from the frame number alone — exactly the property the
    page-walk cost model needs.
    """

    def __init__(self, dram_bytes: int, pmem_bytes: int):
        self.dram = Region(Medium.DRAM, dram_bytes, base_frame=0)
        pmem_base = self.dram.total_frames
        self.pmem = Region(Medium.PMEM, pmem_bytes, base_frame=pmem_base)
        self._regions: Dict[Medium, Region] = {
            Medium.DRAM: self.dram,
            Medium.PMEM: self.pmem,
        }

    def region(self, medium: Medium) -> Region:
        return self._regions[medium]

    def alloc_frame(self, medium: Medium) -> int:
        return self._regions[medium].alloc_frame()

    def free_frame(self, frame: int) -> None:
        self._regions[self.medium_of(frame)].free_frame(frame)

    def medium_of(self, frame: int) -> Medium:
        return Medium.DRAM if frame < self.pmem.base_frame else Medium.PMEM
