"""Physical memory: per-NUMA-node DRAM and PMem media, frame accounting.

The simulator does not store file *contents* — only placement.  What
matters for every result in the paper is **where** bytes and page-table
pages live — which medium (DRAM vs PMem) *and*, since the topology
refactor, which socket — because medium and socket together drive load
latency, page walk costs (Table II) and bandwidth.  ``PhysicalMemory``
hands out 4 KB frame numbers from each node's media and tracks usage so
experiments can report footprint numbers (e.g. DaxVM's file-table
storage tax, §V-B).

Frame-number recovery property: frames are laid out as all nodes' DRAM
regions followed by all nodes' PMem regions — then, only on machines
that configure them, all CXL-expander regions and all far-memory
regions — so **both** the medium and the owning node of a frame can be
recovered from the frame number alone (``medium_of`` / ``node_of``) —
exactly what the page-walk cost model and the NUMA access accounting
need.  A 1-node DRAM+PMem topology degenerates to the historical "one
DRAM then one PMem region" layout with identical frame numbers.
"""

from __future__ import annotations

import enum
from typing import TYPE_CHECKING, List, Optional

from repro.errors import MemoryError_

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (typing only)
    from repro.topology import MachineTopology


class Medium(enum.Enum):
    """The storage medium backing a physical frame.

    Pricing for each member lives in its :class:`~repro.mem.tiers.
    MediumSpec` — nothing outside that registry may assume the set of
    media is closed.
    """

    DRAM = "dram"
    PMEM = "pmem"
    #: A CXL memory expander: DRAM-class media behind a CXL link —
    #: volatile, no DIMM-pool contention, ~2.5x DRAM load latency.
    CXL = "cxl"
    #: An NT-interleave / far-memory node ("Emulating Hybrid Memory on
    #: NUMA Hardware"): remote-socket DRAM used as a slow second tier.
    FAR = "far"


class AllocPolicy(enum.Enum):
    """NUMA placement policy for frame allocations."""

    #: Allocate on the target node or fail.
    LOCAL = "local"
    #: Prefer the target node, spill to the others in node order.
    PREFERRED = "preferred"
    #: Round-robin across all nodes.
    INTERLEAVE = "interleave"


class Region:
    """A frame allocator over one contiguous physical medium."""

    FRAME_SIZE = 4096

    def __init__(self, medium: Medium, size_bytes: int, base_frame: int = 0,
                 node: int = 0):
        self.medium = medium
        self.size_bytes = size_bytes
        self.total_frames = size_bytes // Region.FRAME_SIZE
        self.base_frame = base_frame
        self.node = node
        self._next_frame = 0
        self._free: List[int] = []
        self._free_set: set = set()
        self.allocated_frames = 0
        self.peak_frames = 0

    @property
    def end_frame(self) -> int:
        return self.base_frame + self.total_frames

    def contains(self, frame: int) -> bool:
        return self.base_frame <= frame < self.end_frame

    def alloc_frame(self) -> int:
        """Allocate one 4 KB frame; returns its global frame number."""
        if self._free:
            frame = self._free.pop()
            self._free_set.discard(frame)
        elif self._next_frame < self.total_frames:
            frame = self.base_frame + self._next_frame
            self._next_frame += 1
        else:
            raise MemoryError_(
                f"{self.medium.value}/node{self.node}: out of frames "
                f"({self.total_frames} total)")
        self.allocated_frames += 1
        self.peak_frames = max(self.peak_frames, self.allocated_frames)
        return frame

    def free_frame(self, frame: int) -> None:
        """Return a frame to the freelist.

        Freeing a frame this region never handed out, or one that is
        already free, would silently corrupt ``allocated_frames`` and
        let the allocator serve the same frame twice — so both raise.
        """
        index = frame - self.base_frame
        if not 0 <= index < self._next_frame:
            raise MemoryError_(
                f"{self.medium.value}/node{self.node}: freeing frame "
                f"{frame} that was never allocated")
        if frame in self._free_set:
            raise MemoryError_(
                f"{self.medium.value}/node{self.node}: double free of "
                f"frame {frame}")
        self._free.append(frame)
        self._free_set.add(frame)
        self.allocated_frames -= 1

    @property
    def allocated_bytes(self) -> int:
        return self.allocated_frames * Region.FRAME_SIZE

    @property
    def peak_bytes(self) -> int:
        return self.peak_frames * Region.FRAME_SIZE


class PhysicalMemory:
    """The machine's physical memory: per-node DRAM and PMem regions.

    Frame numbers are globally unique across media and nodes (every
    node's DRAM range sits below every node's PMem range), so a
    page-table entry's target medium *and* socket can be recovered
    from the frame number alone — exactly the property the page-walk
    cost model and the NUMA accounting rely on.

    Constructed either the historical way (``dram_bytes, pmem_bytes``
    — one node) or from a :class:`~repro.topology.MachineTopology`.
    ``.dram`` / ``.pmem`` remain node 0's regions so single-socket
    call sites are untouched.
    """

    def __init__(self, dram_bytes: Optional[int] = None,
                 pmem_bytes: Optional[int] = None,
                 topology: Optional["MachineTopology"] = None):
        if topology is not None:
            specs = [(node.dram_bytes, node.pmem_bytes,
                      node.cxl_bytes, node.far_bytes)
                     for node in topology.nodes]
        else:
            if dram_bytes is None or pmem_bytes is None:
                raise MemoryError_(
                    "PhysicalMemory needs dram_bytes+pmem_bytes or a "
                    "topology")
            specs = [(dram_bytes, pmem_bytes, 0, 0)]
        self.topology = topology
        self.dram_regions: List[Region] = []
        self.pmem_regions: List[Region] = []
        self.cxl_regions: List[Region] = []
        self.far_regions: List[Region] = []
        base = 0
        for node, spec in enumerate(specs):
            region = Region(Medium.DRAM, spec[0], base_frame=base, node=node)
            self.dram_regions.append(region)
            base += region.total_frames
        self._pmem_floor = base
        for node, spec in enumerate(specs):
            region = Region(Medium.PMEM, spec[1], base_frame=base, node=node)
            self.pmem_regions.append(region)
            base += region.total_frames
        # Expander media sit above every DRAM/PMem frame so that the
        # historical two-medium frame numbering is untouched when no
        # node carries them (the tier-equivalence golden relies on it).
        self._cxl_floor = base
        if any(spec[2] for spec in specs):
            for node, spec in enumerate(specs):
                region = Region(Medium.CXL, spec[2], base_frame=base,
                                node=node)
                self.cxl_regions.append(region)
                base += region.total_frames
        self._far_floor = base
        if any(spec[3] for spec in specs):
            for node, spec in enumerate(specs):
                region = Region(Medium.FAR, spec[3], base_frame=base,
                                node=node)
                self.far_regions.append(region)
                base += region.total_frames
        self._frames_end = base
        self.dram = self.dram_regions[0]
        self.pmem = self.pmem_regions[0]
        self._by_medium = {Medium.DRAM: self.dram_regions,
                           Medium.PMEM: self.pmem_regions,
                           Medium.CXL: self.cxl_regions,
                           Medium.FAR: self.far_regions}
        self._interleave_next = {medium: 0 for medium in Medium}
        #: Optional :class:`repro.crash.PersistenceDomain`: PMem frame
        #: lifecycle is reported so crash exploration can account for
        #: persistent-capacity churn.  Passive — allocation behaviour
        #: is unchanged.
        self.persistence = None
        #: Optional per-tenant frame accountant (duck-typed, installed
        #: by repro.tenancy): ``charge_alloc(medium)`` runs *before* a
        #: frame is handed out and may reclaim or refuse (cgroup
        #: ``limits.memory`` semantics), ``note_alloc(frame)`` /
        #: ``note_free(frame)`` track ownership.  ``None`` = untracked.
        self.accountant = None

    @property
    def num_nodes(self) -> int:
        return len(self.dram_regions)

    def region(self, medium: Medium, node: int = 0) -> Region:
        return self._by_medium[medium][node]

    def pmem_bases(self) -> List[int]:
        return [region.base_frame for region in self.pmem_regions]

    def pmem_frames(self) -> List[int]:
        return [region.total_frames for region in self.pmem_regions]

    def media_present(self) -> List[Medium]:
        """Media with any capacity on this machine, fixed order."""
        return [medium for medium, regions in self._by_medium.items()
                if any(region.total_frames for region in regions)]

    # -- allocation ---------------------------------------------------------
    def alloc_frame(self, medium: Medium, node: Optional[int] = None,
                    policy: AllocPolicy = AllocPolicy.LOCAL) -> int:
        """Allocate a frame of ``medium`` under a placement policy.

        With no ``node`` (the historical call shape) allocation comes
        from node 0 — identical to the pre-topology allocator.
        """
        regions = self._by_medium[medium]
        if not regions:
            raise MemoryError_(
                f"this machine has no {medium.value} memory (no node "
                f"carries the medium; see --node-kinds)")
        if policy is AllocPolicy.INTERLEAVE and len(regions) > 1:
            order = list(range(len(regions)))
            start = self._interleave_next[medium]
            self._interleave_next[medium] = (start + 1) % len(regions)
            order = order[start:] + order[:start]
        elif policy is AllocPolicy.PREFERRED:
            target = node or 0
            order = [target] + [n for n in range(len(regions))
                                if n != target]
        else:
            order = [node or 0]
        if self.accountant is not None:
            # May raise MemoryError_ when the requesting tenant is over
            # its hard limit and reclaim could not free enough frames.
            self.accountant.charge_alloc(medium)
        last_error: Optional[MemoryError_] = None
        for candidate in order:
            try:
                frame = regions[candidate].alloc_frame()
            except MemoryError_ as exc:
                last_error = exc
                continue
            if self.persistence is not None and medium is Medium.PMEM:
                self.persistence.note_pmem_frame(+1)
            if self.accountant is not None:
                self.accountant.note_alloc(frame)
            return frame
        raise last_error  # type: ignore[misc]

    def free_frame(self, frame: int) -> None:
        region = self.region_of(frame)
        region.free_frame(frame)
        if self.persistence is not None and region.medium is Medium.PMEM:
            self.persistence.note_pmem_frame(-1)
        if self.accountant is not None:
            self.accountant.note_free(frame)

    # -- frame-number recovery ---------------------------------------------
    def medium_of(self, frame: int) -> Medium:
        if frame < self._pmem_floor:
            return Medium.DRAM
        if frame < self._cxl_floor:
            return Medium.PMEM
        if frame < self._far_floor:
            return Medium.CXL
        if frame < self._frames_end:
            return Medium.FAR
        # Frames past every region (standalone test devices with
        # synthetic base frames) stay "somewhere on PMem" — the
        # historical clamp.
        return Medium.PMEM

    def region_of(self, frame: int) -> Region:
        """The region owning a frame (raises on out-of-range frames)."""
        regions = self._by_medium[self.medium_of(frame)]
        for region in regions:
            if region.contains(frame):
                return region
        raise MemoryError_(f"frame {frame} lies in no physical region")

    def node_of(self, frame: int) -> int:
        """The NUMA node owning a frame.

        Frames past the last PMem region (e.g. standalone test devices
        with synthetic base frames) are attributed to the last node
        rather than raising — they are always "somewhere on PMem" for
        placement purposes.
        """
        regions = self._by_medium[self.medium_of(frame)]
        for region in regions:
            if region.contains(frame):
                return region.node
        return regions[-1].node
