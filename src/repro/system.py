"""`System` — one simulated machine: engine, memory, FS, processes.

This is the package's main entry point.  A ``System`` owns the
discrete-event engine, physical memory, the (optionally aged) PMem
block device and a file system; ``new_process()`` creates an
``mm_struct`` per process and ``daxvm_for()`` equips a process with
the DaxVM interface (sharing one FS-wide file-table manager).

Typical use::

    sys = System(fs_type="ext4", aged=True)
    proc = sys.new_process()
    dax = sys.daxvm_for(proc)

    def worker():
        f = yield from sys.fs.open("/data", create=True)
        yield from sys.fs.write(f, 0, 1 << 20)
        vma = yield from dax.mmap(f.inode)
        yield from proc.mm.access(vma, 0, 1 << 20)
        yield from dax.munmap(vma)
        yield from sys.fs.close(f)

    sys.spawn(worker(), core=0)
    sys.run()
    print(sys.seconds(), "simulated seconds")
"""

from __future__ import annotations

from typing import Optional

from repro.config import DEFAULT_COSTS, CostModel
from repro.core.filetable import FileTableManager
from repro.core.interface import DaxVM
from repro.errors import InvalidArgumentError
from repro.fs.aging import AgingProfile, aged_device
from repro.fs.block import BlockDevice
from repro.fs.ext4 import Ext4Dax
from repro.fs.nova import Nova
from repro.fs.xfs import XfsDax
from repro.fs.vfs import VFS
from repro.mem.latency import MemoryModel, SharedBandwidth
from repro.mem.physmem import PhysicalMemory
from repro.obs import Ledger, Tracer
from repro.sim.engine import Engine, KernelGen, SimThread
from repro.sim.stats import Stats
from repro.topology import MachineTopology, device_placement
from repro.vm.mm import MMStruct

_FS_TYPES = {"ext4": Ext4Dax, "nova": Nova, "xfs": XfsDax}


class Process:
    """A simulated process: an mm_struct and (optionally) DaxVM."""

    def __init__(self, system: "System", mm: MMStruct, name: str):
        self.system = system
        self.mm = mm
        self.name = name
        self.daxvm: Optional[DaxVM] = None


class System:
    """One simulated machine (single-socket by default; pass a
    :class:`~repro.topology.MachineTopology` for NUMA configurations)."""

    def __init__(self, costs: CostModel = DEFAULT_COSTS,
                 num_cores: Optional[int] = None,
                 device_bytes: int = 8 << 30,
                 fs_type: str = "ext4",
                 aged: bool = False,
                 aging_profile: AgingProfile = AgingProfile(),
                 topology: Optional[MachineTopology] = None,
                 placement: str = "local",
                 pin_node: int = 0,
                 scheme: str = "radix4"):
        self.costs = costs
        #: Translation architecture for every process on this machine
        #: (see repro.paging.schemes); ``radix4`` is the pre-refactor
        #: x86-64 radix simulator, bit for bit.
        self.scheme = scheme
        if topology is None:
            topology = MachineTopology.single_node(costs.machine)
        self.topology = topology
        #: File/device placement relative to ``pin_node`` (see
        #: repro.topology.device_placement); a no-op on one node.
        self.placement = placement
        self.pin_node = pin_node
        cores = num_cores or topology.num_cores
        self.engine = Engine(cores, topology=topology,
                             freq_hz=costs.machine.freq_hz)
        self.stats = Stats()
        self.physmem = PhysicalMemory(topology=topology)
        self.mem = MemoryModel(costs)
        self.mem.set_topology(topology, self.physmem.node_of)
        self.mem.set_pools(self._make_pools())
        base_frame, frame_map = device_placement(
            topology, self.physmem.pmem_bases(),
            self.physmem.pmem_frames(), placement, pin_node)
        if aged:
            self.device = aged_device(device_bytes, aging_profile,
                                      base_frame=base_frame,
                                      frame_map=frame_map)
        else:
            self.device = BlockDevice(device_bytes, base_frame=base_frame,
                                      frame_map=frame_map)
        self.vfs = VFS()
        fs_cls = _FS_TYPES.get(fs_type)
        if fs_cls is None:
            raise InvalidArgumentError(
                f"unknown fs_type {fs_type!r}; use one of {set(_FS_TYPES)}")
        self.fs = fs_cls(self.device, self.vfs, costs, self.mem, self.stats)
        self.fs.engine = self.engine
        self.trace = self._make_tracer()
        self._filetables: Optional[FileTableManager] = None
        self._process_count = 0
        #: Attached :class:`repro.crash.PersistenceDomain`, if any.
        self.persistence = None
        #: Attached :class:`repro.faults.MediaFaults`, if any.
        self.faults = None
        #: Attached :class:`repro.tiering.TieringDaemon`, if any.
        self.tiering = None
        #: Attached :class:`repro.tenancy.TenancyRuntime`, if any.
        self.tenancy = None
        #: Attached :class:`repro.virt.Hypervisor`, if any.
        self.hypervisor = None

    def _make_pools(self) -> "list[SharedBandwidth]":
        """One aggregate PMem bandwidth pool per socket.  The machine
        total is shared equally — splitting the DIMMs across sockets
        splits their aggregate bandwidth — so one node reproduces the
        historical single pool exactly."""
        n = self.topology.num_nodes
        return [SharedBandwidth(self.costs.pmem_total_read_bw / n,
                                self.costs.pmem_total_write_bw / n,
                                self.costs.machine.freq_hz)
                for _ in range(n)]

    def _make_tracer(self, ring: int = 256) -> Tracer:
        """Span tracer bound to the current engine's clock/scheduler."""
        return Tracer(
            clock=lambda: self.engine.now,
            current=lambda: (self.engine.current.name
                             if self.engine.current is not None else "main"),
            stats=self.stats,
            ring=ring,
        )

    @property
    def ledger(self) -> Ledger:
        """The engine's per-domain cycle-attribution ledger."""
        return self.engine.ledger

    # -- processes -----------------------------------------------------------
    def new_process(self, name: str = "", aslr_seed: int = 0,
                    home_node: int = 0) -> Process:
        """Create a process; its private page tables (and fallback
        accessor node) live on ``home_node``."""
        self._process_count += 1
        pname = name or f"proc{self._process_count}"
        mm = MMStruct(self.engine, self.costs, self.physmem, self.mem,
                      self.stats, aslr_seed=aslr_seed, name=pname,
                      topology=self.topology, home_node=home_node,
                      scheme=self.scheme)
        process = Process(self, mm, pname)
        if self.hypervisor is not None:
            self.hypervisor.enroll(process)
        return process

    @property
    def filetables(self) -> FileTableManager:
        """The FS-wide file-table manager (created on first use).
        Volatile tables are placed on the device's home socket so
        walks from co-located threads stay local."""
        if self._filetables is None:
            self._filetables = FileTableManager(
                self.fs, self.physmem, self.costs, self.stats,
                table_node=self.physmem.node_of(self.device.base_frame))
        return self._filetables

    def daxvm_for(self, process: Process, enable_prezero: bool = True,
                  batch_pages: Optional[int] = None,
                  start_prezero_thread: bool = False) -> DaxVM:
        """Equip a process with the DaxVM interface."""
        dax = DaxVM(self.engine, process.mm, self.fs, self.physmem,
                    self.mem, self.costs, self.stats,
                    filetables=self.filetables,
                    enable_prezero=enable_prezero,
                    batch_pages=batch_pages)
        if enable_prezero and start_prezero_thread:
            dax.prezero.start(core=self.engine.cores[-1].index)
        process.daxvm = dax
        return dax

    # -- execution -----------------------------------------------------------
    def spawn(self, gen: KernelGen, core: Optional[int] = None,
              name: str = "", process: Optional[Process] = None,
              daemon: bool = False) -> SimThread:
        """Start a simulated thread (registering its core in the
        process cpumask when one is given)."""
        thread = self.engine.spawn(gen, core=core, name=name, daemon=daemon)
        if process is not None:
            process.mm.register_thread(thread.core.index)
        return thread

    def run(self, max_events: Optional[int] = None) -> float:
        return self.engine.run(max_events=max_events)

    # -- power cycling -----------------------------------------------------
    def power_cycle(self, crash: bool = False, seed: int = 0):
        """Reboot the machine: volatile state dies, storage persists.

        A fresh engine replaces the old one (all processes and kernel
        threads are gone); the inode cache is dropped, which destroys
        volatile file tables; persistent file tables and every block
        on the device survive.  With ``crash=True`` the power failure
        tears the unfenced tail of recent persistent-table updates
        (within the journal discipline's window) and a mount-time
        recovery pass replays them — returns the RecoveryReport.
        """
        from repro.core.recovery import RecoveryLog, simulate_crash

        report = None
        if crash:
            simulate_crash(self.vfs, seed=seed)
        else:
            self.vfs.inode_cache.evict_all()
        self._reboot()
        if self._filetables is not None:
            report = RecoveryLog(self.vfs, self._filetables).recover_all()
        return report

    def _reboot(self) -> None:
        """Replace the volatile machine state after a power cycle.

        A fresh engine replaces the old one (all processes and kernel
        threads are gone); bandwidth pools, interference stacks, free
        interceptors and barriers reset.  Storage — the device, the
        VFS namespace, persistent tables — is untouched.  Callers that
        model a *crash* (rather than a clean shutdown) must discard
        non-durable state first; the crash injector does this through
        its PersistenceDomain before rebooting.
        """
        self.engine = Engine(len(self.engine.cores),
                             topology=self.topology,
                             freq_hz=self.costs.machine.freq_hz)
        self.fs.engine = self.engine
        # The tracer's clock closes over ``self.engine``, so it follows
        # the new engine automatically; open spans died with the boot.
        self.trace.reset()
        self.mem.set_pools(self._make_pools())
        self.mem.reset_interference()
        self.fs.free_interceptor = None
        self.fs.free_barriers.clear()

    # -- crash exploration -------------------------------------------------
    def attach_persistence(self, domain) -> None:
        """Wire a :class:`repro.crash.PersistenceDomain` into every
        layer that moves durable state: the file system (metadata and
        journal transactions), the memory model (stream/copy/flush byte
        accounting) and physical memory (PMem frame lifecycle)."""
        self.persistence = domain
        self.fs.persistence = domain
        self.mem.persistence = domain
        self.physmem.persistence = domain

    # -- media-fault injection ----------------------------------------------
    def attach_faults(self, faults) -> None:
        """Wire a :class:`repro.faults.MediaFaults` into the layers that
        touch media: the file system (badblocks scans on read/append)
        and the memory model (poisoned-frame checks and bandwidth
        windows on the mapped-access path).

        Attaching twice is refused: the second plan would silently
        replace the first's hooks mid-run, leaving armed sites that can
        never fire (and a fault clock that jumps backwards).
        """
        if self.faults is not None:
            raise ValueError(
                "attach_faults: a MediaFaults plan is already attached; "
                "build a fresh System per plan")
        self.faults = faults
        self.fs.faults = faults
        self.mem.faults = faults
        faults.bind(self)

    # -- memory tiering ------------------------------------------------------
    def attach_tiering(self, data_medium=None, daemon: bool = False,
                       config=None, core: Optional[int] = None):
        """Attach a data-placement overlay (and optionally start the
        migration daemon).

        ``data_medium`` picks where file data is priced by default —
        ``Medium.PMEM`` reproduces the untierd machine, ``Medium.CXL``
        models the file system backed by an expander, ``Medium.DRAM``
        a DRAM-resident (tmpfs-like) placement.  With ``daemon=True``
        a ktierd thread scans hotness tags every ``config.
        scan_interval`` cycles and migrates 2 MB granules between the
        device tier and ``config.hot_medium``.  Returns the TierMap.
        """
        from repro.mem.physmem import Medium
        from repro.tiering import TierMap, TieringDaemon

        if self.mem.tiers is not None or self.tiering is not None:
            raise ValueError(
                "attach_tiering: a tier overlay is already attached; "
                "a second TierMap would silently orphan the first's "
                "residency state")
        tiers = TierMap(default=data_medium or Medium.PMEM)
        self.mem.tiers = tiers
        if daemon:
            self.tiering = TieringDaemon(self.engine, self.mem,
                                         self.costs, self.stats,
                                         tiers, config=config)
            self.tiering.start(core=core if core is not None
                               else self.engine.cores[-1].index)
        return tiers

    # -- multi-tenant consolidation ------------------------------------------
    def attach_tenancy(self, config):
        """Attach a :class:`repro.tenancy.TenancyRuntime` for
        ``config`` and install its enforcement hooks.

        Passive configs (one plain tenant, no quotas) install nothing
        — the machine stays bit-identical to an un-tenanted one (the
        ``tenancy_equivalence`` golden gate).  Returns the runtime.
        """
        from repro.tenancy import TenancyRuntime

        self.tenancy = TenancyRuntime(self, config)
        self.tenancy.install()
        return self.tenancy

    # -- guest VMs / live migration ------------------------------------------
    def attach_hypervisor(self, config=None):
        """Attach a :class:`repro.virt.Hypervisor` to this machine.

        A pass-through hypervisor (``VirtConfig()`` — no nested
        pricing, no migration) installs hooks that never fire, keeping
        the machine bit-identical to a bare one (the
        ``virt_equivalence`` golden gate).  Returns the hypervisor.
        """
        from repro.virt import Hypervisor, VirtConfig

        if self.hypervisor is not None:
            raise ValueError(
                "attach_hypervisor: a hypervisor is already attached; "
                "a second one would double-price guest walks and race "
                "the first's migration state machine")
        self.hypervisor = Hypervisor(self, config or VirtConfig())
        return self.hypervisor

    def seconds(self, cycles: Optional[float] = None) -> float:
        value = self.engine.now if cycles is None else cycles
        return value / self.costs.machine.freq_hz
