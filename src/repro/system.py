"""`System` — one simulated machine: engine, memory, FS, processes.

This is the package's main entry point.  A ``System`` owns the
discrete-event engine, physical memory, the (optionally aged) PMem
block device and a file system; ``new_process()`` creates an
``mm_struct`` per process and ``daxvm_for()`` equips a process with
the DaxVM interface (sharing one FS-wide file-table manager).

Typical use::

    sys = System(fs_type="ext4", aged=True)
    proc = sys.new_process()
    dax = sys.daxvm_for(proc)

    def worker():
        f = yield from sys.fs.open("/data", create=True)
        yield from sys.fs.write(f, 0, 1 << 20)
        vma = yield from dax.mmap(f.inode)
        yield from proc.mm.access(vma, 0, 1 << 20)
        yield from dax.munmap(vma)
        yield from sys.fs.close(f)

    sys.spawn(worker(), core=0)
    sys.run()
    print(sys.seconds(), "simulated seconds")
"""

from __future__ import annotations

from typing import Optional

from repro.config import DEFAULT_COSTS, CostModel
from repro.core.filetable import FileTableManager
from repro.core.interface import DaxVM
from repro.errors import InvalidArgumentError
from repro.fs.aging import AgingProfile, aged_device
from repro.fs.block import BlockDevice
from repro.fs.ext4 import Ext4Dax
from repro.fs.nova import Nova
from repro.fs.xfs import XfsDax
from repro.fs.vfs import VFS
from repro.mem.latency import MemoryModel, SharedBandwidth
from repro.mem.physmem import PhysicalMemory
from repro.obs import Ledger, Tracer
from repro.sim.engine import Engine, KernelGen, SimThread
from repro.sim.stats import Stats
from repro.vm.mm import MMStruct

_FS_TYPES = {"ext4": Ext4Dax, "nova": Nova, "xfs": XfsDax}


class Process:
    """A simulated process: an mm_struct and (optionally) DaxVM."""

    def __init__(self, system: "System", mm: MMStruct, name: str):
        self.system = system
        self.mm = mm
        self.name = name
        self.daxvm: Optional[DaxVM] = None


class System:
    """One simulated single-socket machine."""

    def __init__(self, costs: CostModel = DEFAULT_COSTS,
                 num_cores: Optional[int] = None,
                 device_bytes: int = 8 << 30,
                 fs_type: str = "ext4",
                 aged: bool = False,
                 aging_profile: AgingProfile = AgingProfile()):
        self.costs = costs
        cores = num_cores or costs.machine.num_cores
        self.engine = Engine(cores)
        self.stats = Stats()
        self.physmem = PhysicalMemory(costs.machine.dram_bytes,
                                      costs.machine.pmem_bytes)
        self.mem = MemoryModel(costs)
        self.mem.shared = SharedBandwidth(costs.pmem_total_read_bw,
                                          costs.pmem_total_write_bw,
                                          costs.machine.freq_hz)
        if aged:
            self.device = aged_device(device_bytes, aging_profile,
                                      base_frame=self.physmem.pmem.base_frame)
        else:
            self.device = BlockDevice(device_bytes,
                                      base_frame=self.physmem.pmem.base_frame)
        self.vfs = VFS()
        fs_cls = _FS_TYPES.get(fs_type)
        if fs_cls is None:
            raise InvalidArgumentError(
                f"unknown fs_type {fs_type!r}; use one of {set(_FS_TYPES)}")
        self.fs = fs_cls(self.device, self.vfs, costs, self.mem, self.stats)
        self.fs.engine = self.engine
        self.trace = self._make_tracer()
        self._filetables: Optional[FileTableManager] = None
        self._process_count = 0

    def _make_tracer(self, ring: int = 256) -> Tracer:
        """Span tracer bound to the current engine's clock/scheduler."""
        return Tracer(
            clock=lambda: self.engine.now,
            current=lambda: (self.engine.current.name
                             if self.engine.current is not None else "main"),
            stats=self.stats,
            ring=ring,
        )

    @property
    def ledger(self) -> Ledger:
        """The engine's per-domain cycle-attribution ledger."""
        return self.engine.ledger

    # -- processes -----------------------------------------------------------
    def new_process(self, name: str = "", aslr_seed: int = 0) -> Process:
        self._process_count += 1
        pname = name or f"proc{self._process_count}"
        mm = MMStruct(self.engine, self.costs, self.physmem, self.mem,
                      self.stats, aslr_seed=aslr_seed, name=pname)
        return Process(self, mm, pname)

    @property
    def filetables(self) -> FileTableManager:
        """The FS-wide file-table manager (created on first use)."""
        if self._filetables is None:
            self._filetables = FileTableManager(
                self.fs, self.physmem, self.costs, self.stats)
        return self._filetables

    def daxvm_for(self, process: Process, enable_prezero: bool = True,
                  batch_pages: Optional[int] = None,
                  start_prezero_thread: bool = False) -> DaxVM:
        """Equip a process with the DaxVM interface."""
        dax = DaxVM(self.engine, process.mm, self.fs, self.physmem,
                    self.mem, self.costs, self.stats,
                    filetables=self.filetables,
                    enable_prezero=enable_prezero,
                    batch_pages=batch_pages)
        if enable_prezero and start_prezero_thread:
            dax.prezero.start(core=self.engine.cores[-1].index)
        process.daxvm = dax
        return dax

    # -- execution -----------------------------------------------------------
    def spawn(self, gen: KernelGen, core: Optional[int] = None,
              name: str = "", process: Optional[Process] = None,
              daemon: bool = False) -> SimThread:
        """Start a simulated thread (registering its core in the
        process cpumask when one is given)."""
        thread = self.engine.spawn(gen, core=core, name=name, daemon=daemon)
        if process is not None:
            process.mm.register_thread(thread.core.index)
        return thread

    def run(self, max_events: Optional[int] = None) -> float:
        return self.engine.run(max_events=max_events)

    # -- power cycling -----------------------------------------------------
    def power_cycle(self, crash: bool = False, seed: int = 0):
        """Reboot the machine: volatile state dies, storage persists.

        A fresh engine replaces the old one (all processes and kernel
        threads are gone); the inode cache is dropped, which destroys
        volatile file tables; persistent file tables and every block
        on the device survive.  With ``crash=True`` the power failure
        tears the unfenced tail of recent persistent-table updates
        (within the journal discipline's window) and a mount-time
        recovery pass replays them — returns the RecoveryReport.
        """
        from repro.core.recovery import RecoveryLog, simulate_crash

        report = None
        if crash:
            simulate_crash(self.vfs, seed=seed)
        else:
            self.vfs.inode_cache.evict_all()
        self.engine = Engine(len(self.engine.cores))
        self.fs.engine = self.engine
        # The tracer's clock closes over ``self.engine``, so it follows
        # the new engine automatically; open spans died with the boot.
        self.trace.reset()
        self.mem.shared = SharedBandwidth(self.costs.pmem_total_read_bw,
                                          self.costs.pmem_total_write_bw,
                                          self.costs.machine.freq_hz)
        self.mem.interference = 1.0
        self.fs.free_interceptor = None
        self.fs.free_barriers.clear()
        if self._filetables is not None:
            report = RecoveryLog(self.vfs, self._filetables).recover_all()
        return report

    def seconds(self, cycles: Optional[float] = None) -> float:
        value = self.engine.now if cycles is None else cycles
        return value / self.costs.machine.freq_hz
