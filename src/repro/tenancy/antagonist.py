"""The antagonist tenant: a stress-ng style ``--vm`` memory hog.

Each iteration maps a window of its scratch file, dirties every page
(write faults → page-table allocation, dirty tracking, TLB pressure)
and unmaps it again (shootdowns) — the classic noisy neighbour that
hammers mmap_sem, the fault path and the device write bandwidth all
at once.  Under quotas the hog is the tenant the controller is
expected to box in.

Memory discipline: the hog checks its own frame books *before* each
map and parks (a priced back-off) when a new window would push it
past ``limits.memory`` — the cooperative high-watermark style real
stressors use under cgroups.  A hard-limit raise mid-page-fault
would abandon held mmap_sem state, so the hog never lets it happen;
the raise path is exercised by unit tests with bare allocations.
"""

from __future__ import annotations

from repro.obs import CostDomain, charge
from repro.obs.counters import Counter
from repro.paging.tlb import AccessPattern
from repro.vm.vma import MapFlags, Protection

#: Bytes mapped and dirtied per iteration.
WINDOW_BYTES = 2 << 20
#: Cycles the hog parks when its books show no headroom.
BACKOFF_CYCLES = 200_000.0


def hog_loop(runtime, tenant, ctx):
    """The antagonist's closed loop (generator for one SimThread)."""
    system = runtime.system
    process = ctx["process"]
    handle = ctx["handle"]
    window = ctx["window_bytes"]
    pages = window // 4096
    accountant = runtime.accountant
    # Headroom check in *frames*: a window's worth of page tables is
    # tiny, so demand a conservative window-sized cushion.
    limit_frames = tenant.spec.memory_limit // 4096
    for _ in range(tenant.requests):
        if (accountant is not None and accountant.enforcing
                and accountant.frames.get(tenant.name, 0) + pages // 8
                >= limit_frames):
            yield charge(CostDomain.TENANCY, "hog-backoff",
                         BACKOFF_CYCLES)
            continue
        vma = yield from process.mm.mmap(
            system.fs, handle.inode, 0, window,
            Protection.rw(), MapFlags.SHARED)
        yield from process.mm.access(
            vma, 0, window, write=True,
            pattern=AccessPattern.SEQUENTIAL)
        system.stats.add(Counter.TENANCY_ANTAGONIST_PAGES, pages)
        yield from process.mm.munmap(vma)
        runtime.note_request(tenant, 0.0, observe=False)


def hog_setup(runtime, tenant):
    """Create the hog's scratch file and process (outside the loop)."""
    from repro.workloads.filegen import create_files

    system = runtime.system
    inode = create_files(system, [WINDOW_BYTES],
                         prefix=f"/hog-{tenant.name}")[0]
    process = system.new_process(name=tenant.name, aslr_seed=tenant.seed)
    return {"process": process, "inode": inode,
            "window_bytes": WINDOW_BYTES}


def hog_boot(runtime, tenant, ctx):
    """Open the scratch file once (boot phase, unmeasured)."""
    system = runtime.system
    handle = yield from system.fs.open(f"/hog-{tenant.name}/f000000")
    ctx["handle"] = handle
