"""Quota enforcement: CPU throttles, frame accounting, bandwidth WFQ.

Three cgroup-analog mechanisms, each wired into an existing hook on
the layer it polices:

* :class:`CpuThrottle` — installed on ``SimThread.cpu_throttle``; the
  engine stretches every cycle the thread charges by ``1/share - 1``
  and books the stretch to the ``tenancy`` cost domain (CFS bandwidth
  control, priced as lost wall-clock rather than modelled as a
  runqueue).
* :class:`TenantAccountant` — installed on ``PhysicalMemory.
  accountant``; tracks which tenant owns each dynamically allocated
  frame (page-table pages, DaxVM ephemeral pools, kernel metadata)
  and, when enforcing, implements ``limits.memory`` reclaim-or-fail.
* :class:`BandwidthAdmission` — installed on each ``SharedBandwidth``
  pool; weighted-fair admission via a per-(tenant, pool) token bucket
  sized at the tenant's weight share of the pool.  The sub-bucket
  only *delays* the tenant — it never charges the shared bucket, so a
  throttled tenant cannot push other tenants' ``_paid_until`` out.

:class:`QuotaController` is the kthread that periodically scans
usage, counts soft (``requests.memory``) breaches and publishes the
per-tenant gauges.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Tuple

from repro.errors import MemoryError_, SimulationError
from repro.mem.latency import BandwidthThrottle
from repro.obs import CostDomain, charge
from repro.obs.counters import Counter
from repro.tenancy.spec import TenantSpec

FRAME_SIZE = 4096


class QuotaError(MemoryError_):
    """A tenant breached ``limits.memory`` and reclaim fell short."""


class QuotaAccountingError(SimulationError):
    """Internal quota books disagree — a charge was lost or doubled."""


class CpuThrottle:
    """Per-thread ``limits.cpu`` stretch factor.

    Duck-typed against the engine hook: ``stretch(cycles)`` returns
    the extra cycles to serialize after a charge, ``event`` labels the
    ledger entry.  A share of 1.0 builds a zero-rate throttle that
    returns 0.0 extra — callers should simply not install one.
    """

    __slots__ = ("share", "rate", "event", "throttled_cycles")

    def __init__(self, share: float, event: str = "cpu-throttle"):
        if not 0.0 < share <= 1.0:
            raise QuotaAccountingError(
                f"cpu share must be in (0, 1], got {share}")
        self.share = share
        self.rate = 1.0 / share - 1.0
        self.event = event
        self.throttled_cycles = 0.0

    def stretch(self, cycles: float) -> float:
        extra = cycles * self.rate
        if extra > 0.0:
            self.throttled_cycles += extra
        return extra


class TenantAccountant:
    """Per-tenant physical-frame books on the global allocator.

    Ownership is charged to the *allocating thread's* tenant (the
    ``engine.current`` at ``alloc_frame`` time) and released to
    whichever tenant owns the frame, whoever frees it — so shared
    teardown (daemons reaping another tenant's zombies) never
    corrupts the books.  Frames allocated outside any tenant context
    (boot, filegen) are untracked, exactly like kernel boot pages
    sitting outside every cgroup.
    """

    def __init__(self, engine, stats, specs: Dict[str, TenantSpec]):
        self.engine = engine
        self.stats = stats
        self.specs = dict(specs)
        self.frames: Dict[str, int] = {name: 0 for name in self.specs}
        self.peak_frames: Dict[str, int] = {name: 0 for name in self.specs}
        self._owner: Dict[int, str] = {}
        #: Per-tenant reclaim callbacks: ``fn(frames_needed) -> freed``.
        #: Callbacks free frames through ``physmem.free_frame`` so the
        #: books update through the normal path.
        self.reclaimers: Dict[str, List[Callable[[int], int]]] = {}
        #: Hard-limit enforcement armed (quotas on)?
        self.enforcing = False
        self.hard_failures = 0
        self.reclaimed_frames = 0

    # -- identity -----------------------------------------------------------
    def _current_tenant(self) -> Optional[str]:
        thread = self.engine.current
        if thread is None:
            return None
        tenant = getattr(thread, "tenant", None)
        return tenant if tenant in self.specs else None

    # -- PhysicalMemory hook ------------------------------------------------
    def charge_alloc(self, medium) -> None:
        """Gate one frame allocation against ``limits.memory``.

        Runs *before* the frame is handed out.  Over the hard limit:
        run the tenant's reclaimers; if the books still show no
        headroom, refuse (the cgroup OOM analog).
        """
        if not self.enforcing:
            return
        tenant = self._current_tenant()
        if tenant is None:
            return
        spec = self.specs[tenant]
        if spec.memory_limit <= 0:
            return
        limit = spec.memory_limit // FRAME_SIZE
        if self.frames[tenant] < limit:
            return
        needed = self.frames[tenant] - limit + 1
        freed = 0
        for reclaim in self.reclaimers.get(tenant, ()):
            freed += int(reclaim(needed - freed))
            if self.frames[tenant] < limit:
                break
        if freed > 0:
            self.reclaimed_frames += freed
            self.stats.add(Counter.TENANCY_RECLAIMED_FRAMES, freed)
        if self.frames[tenant] >= limit:
            self.hard_failures += 1
            self.stats.add(Counter.TENANCY_HARD_FAILURES)
            raise QuotaError(
                f"tenant {tenant}: limits.memory "
                f"({spec.memory_limit} B = {limit} frames) exceeded and "
                f"reclaim freed only {freed} frames")

    def note_alloc(self, frame: int) -> None:
        tenant = self._current_tenant()
        if tenant is None:
            return
        self._owner[frame] = tenant
        used = self.frames[tenant] + 1
        self.frames[tenant] = used
        if used > self.peak_frames[tenant]:
            self.peak_frames[tenant] = used

    def note_free(self, frame: int) -> None:
        tenant = self._owner.pop(frame, None)
        if tenant is not None:
            self.frames[tenant] -= 1

    # -- queries ------------------------------------------------------------
    def usage_bytes(self, tenant: str) -> int:
        return self.frames.get(tenant, 0) * FRAME_SIZE

    def peak_bytes(self, tenant: str) -> int:
        return self.peak_frames.get(tenant, 0) * FRAME_SIZE

    def register_reclaimer(self, tenant: str,
                           fn: Callable[[int], int]) -> None:
        self.reclaimers.setdefault(tenant, []).append(fn)

    def audit(self) -> None:
        """Cross-check the books; raises QuotaAccountingError on drift."""
        counts: Dict[str, int] = {name: 0 for name in self.specs}
        for tenant in self._owner.values():
            counts[tenant] = counts.get(tenant, 0) + 1
        for tenant, used in self.frames.items():
            if used < 0:
                raise QuotaAccountingError(
                    f"tenant {tenant}: negative frame count {used}")
            if used != counts.get(tenant, 0):
                raise QuotaAccountingError(
                    f"tenant {tenant}: frame counter {used} != "
                    f"{counts.get(tenant, 0)} owned frames")


class BandwidthAdmission:
    """Weighted-fair admission into shared device-bandwidth pools.

    Each (tenant, pool) pair gets a private token bucket sized at the
    tenant's weight share of the pool.  ``extra_delay`` returns how
    much *longer* than the shared-pool delay the requester must wait;
    the pool takes ``max(shared, admission)`` so an uncontended heavy
    tenant is clipped to its share while light tenants sail through.
    """

    def __init__(self, engine, stats, weights: Dict[str, float]):
        total = sum(weights.values())
        self.engine = engine
        self.stats = stats
        self.shares = {name: weight / total
                       for name, weight in weights.items()}
        self._buckets: Dict[Tuple[int, str],
                            Tuple[BandwidthThrottle, BandwidthThrottle]] = {}
        self.throttled_cycles = 0.0

    def extra_delay(self, pool, read_bytes: float, write_bytes: float,
                    now: float) -> float:
        thread = self.engine.current
        tenant = getattr(thread, "tenant", None) if thread else None
        if tenant is None:
            return 0.0
        share = self.shares.get(tenant)
        if share is None or share >= 1.0:
            return 0.0
        key = (id(pool), tenant)
        buckets = self._buckets.get(key)
        if buckets is None:
            buckets = (BandwidthThrottle(pool.read_bw * share,
                                         pool.freq_hz),
                       BandwidthThrottle(pool.write_bw * share,
                                         pool.freq_hz))
            self._buckets[key] = buckets
        wait = 0.0
        if read_bytes:
            wait = max(wait, buckets[0].delay_for(int(read_bytes), now))
        if write_bytes:
            wait = max(wait, buckets[1].delay_for(int(write_bytes), now))
        if wait > 0.0:
            self.throttled_cycles += wait
            self.stats.add(Counter.TENANCY_BW_THROTTLE_CYCLES, wait)
        return wait


class QuotaController:
    """The quota-controller kthread (one per consolidated machine).

    Wakes every ``scan_interval`` cycles, samples each tenant's frame
    usage, counts ``requests.memory`` breaches and publishes the
    per-tenant gauges as timeline samples.  Scans are priced into the
    ``tenancy`` domain so controller overhead shows up in the books
    rather than being free.
    """

    #: Cycles one scan costs per tenant examined.
    SCAN_COST_PER_TENANT = 4_000.0

    def __init__(self, engine, stats, accountant: TenantAccountant,
                 specs: Dict[str, TenantSpec],
                 scan_interval: float = 2.0e6):
        self.engine = engine
        self.stats = stats
        self.accountant = accountant
        self.specs = dict(specs)
        self.scan_interval = scan_interval
        self.scans = 0
        self.soft_breaches: Dict[str, int] = {name: 0 for name in specs}
        self._thread = None

    def start(self, core: int = 0) -> None:
        self._thread = self.engine.spawn(
            self._run(), core=core, name="quota-kthread", daemon=True)

    def _run(self):
        while True:
            yield charge(CostDomain.TENANCY, "quota-scan-idle",
                         self.scan_interval)
            self.scan()
            yield charge(CostDomain.TENANCY, "quota-scan",
                         self.SCAN_COST_PER_TENANT * len(self.specs))

    def scan(self) -> None:
        """One scan: pure bookkeeping (priced by the caller)."""
        self.scans += 1
        self.stats.add(Counter.TENANCY_QUOTA_SCANS)
        now = self.engine.now
        for name in sorted(self.specs):
            spec = self.specs[name]
            usage = self.accountant.usage_bytes(name)
            self.stats.sample(f"tenant.{name}.memory_bytes", now,
                              float(usage))
            if spec.memory_request and usage > spec.memory_request:
                self.soft_breaches[name] += 1
                self.stats.add(Counter.TENANCY_SOFT_BREACHES)
                self.stats.add(f"tenant.{name}.soft_breaches")
