"""Tenant descriptors and quota blocks for consolidated machines.

A *tenant* is one customer sharing the simulated machine: a named
workload with a closed-loop request stream (each logical client issues
the next request only after the previous one completes, optionally
after a seeded think time) and a :class:`TenantSpec` quota block in
the Kubernetes resource-model shape — ``limits.cpu`` as a fractional
core share, ``requests.memory`` / ``limits.memory`` in bytes, and a
proportional device-bandwidth weight.

This module is deliberately dependency-light (no workload or engine
imports): specs round-trip through JSON so sweeps can key their result
cache on the exact tenancy configuration.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Tuple

from repro.errors import InvalidArgumentError

#: Workload kinds a tenant may run.  ``antagonist`` is the stress-ng
#: style ``--vm`` hog (repro.tenancy.antagonist).
TENANT_KINDS = ("apache", "predis", "kvstore", "antagonist")

#: Mix names accepted by :func:`consolidate_config`.
CONSOLIDATE_MIXES = ("apache", "predis", "kvstore", "mixed")


@dataclass(frozen=True)
class TenantSpec:
    """cgroup-style resource quotas for one tenant.

    ``cpu_limit`` is a fractional share of one core (``limits.cpu``):
    1.0 means unthrottled, 0.5 stretches every cycle the tenant's
    threads charge by 2x.  ``memory_request`` is the soft guarantee
    (breaches are counted, not enforced), ``memory_limit`` the hard
    cap on dynamically allocated physical frames — on breach the
    accountant reclaims or the allocation fails.  ``bandwidth_weight``
    is the tenant's proportional share of each device bandwidth pool.
    """

    cpu_limit: float = 1.0
    memory_request: int = 48 << 20
    memory_limit: int = 192 << 20
    bandwidth_weight: float = 1.0

    def __post_init__(self):
        if not 0.0 < self.cpu_limit <= 1.0:
            raise InvalidArgumentError(
                f"limits.cpu must be in (0, 1], got {self.cpu_limit}")
        if self.memory_request < 0 or self.memory_limit < 0:
            raise InvalidArgumentError("memory quotas must be >= 0")
        if self.memory_limit and self.memory_request > self.memory_limit:
            raise InvalidArgumentError(
                f"requests.memory ({self.memory_request}) exceeds "
                f"limits.memory ({self.memory_limit})")
        if self.bandwidth_weight <= 0.0:
            raise InvalidArgumentError("bandwidth_weight must be > 0")

    def to_state(self) -> Dict:
        return {"cpu_limit": self.cpu_limit,
                "memory_request": self.memory_request,
                "memory_limit": self.memory_limit,
                "bandwidth_weight": self.bandwidth_weight}

    @staticmethod
    def from_state(state: Dict) -> "TenantSpec":
        return TenantSpec(
            cpu_limit=state.get("cpu_limit", 1.0),
            memory_request=state.get("memory_request", 48 << 20),
            memory_limit=state.get("memory_limit", 192 << 20),
            bandwidth_weight=state.get("bandwidth_weight", 1.0))


#: Default quota block for an interactive tenant.
TENANT_SPEC = TenantSpec()

#: Default quota block for the antagonist: half a core, a quarter of
#: everyone else's bandwidth weight, and a tight memory box.
ANTAGONIST_SPEC = TenantSpec(cpu_limit=0.5,
                             memory_request=16 << 20,
                             memory_limit=64 << 20,
                             bandwidth_weight=0.25)


@dataclass(frozen=True)
class Tenant:
    """One consolidated customer: a workload plus its quota block.

    ``requests`` sizes the closed-loop stream (operations for kvstore,
    GETs for P-Redis, HTTP requests for Apache, map/dirty/unmap
    iterations for the antagonist).  ``think_cycles`` is the mean
    seeded think time between requests (0 = saturating closed loop).
    """

    name: str
    kind: str = "apache"
    spec: TenantSpec = field(default_factory=TenantSpec)
    requests: int = 64
    think_cycles: float = 0.0
    seed: int = 0

    def __post_init__(self):
        if not self.name:
            raise InvalidArgumentError("tenant needs a name")
        if self.kind not in TENANT_KINDS:
            raise InvalidArgumentError(
                f"unknown tenant kind {self.kind!r}; use one of "
                f"{TENANT_KINDS}")
        if self.requests <= 0:
            raise InvalidArgumentError("tenant.requests must be > 0")
        if self.think_cycles < 0:
            raise InvalidArgumentError("think_cycles must be >= 0")

    def to_state(self) -> Dict:
        return {"name": self.name, "kind": self.kind,
                "spec": self.spec.to_state(), "requests": self.requests,
                "think_cycles": self.think_cycles, "seed": self.seed}

    @staticmethod
    def from_state(state: Dict) -> "Tenant":
        return Tenant(name=state["name"],
                      kind=state.get("kind", "apache"),
                      spec=TenantSpec.from_state(state.get("spec", {})),
                      requests=state.get("requests", 64),
                      think_cycles=state.get("think_cycles", 0.0),
                      seed=state.get("seed", 0))


@dataclass(frozen=True)
class TenancyConfig:
    """The full multi-tenant shape of one run.

    ``quotas`` arms enforcement (CPU throttles, hard memory limits,
    bandwidth admission and the quota-controller kthread); with it off
    tenants still run concurrently and are still *attributed*, they
    are just not policed.  ``scan_interval`` is the controller's scan
    period in cycles.
    """

    tenants: Tuple[Tenant, ...] = ()
    quotas: bool = False
    scan_interval: float = 2.0e6

    def __post_init__(self):
        if not self.tenants:
            raise InvalidArgumentError("TenancyConfig needs >= 1 tenant")
        names = [t.name for t in self.tenants]
        if len(set(names)) != len(names):
            raise InvalidArgumentError(f"duplicate tenant names: {names}")
        if self.scan_interval <= 0:
            raise InvalidArgumentError("scan_interval must be > 0")

    @property
    def passive(self) -> bool:
        """True when tenancy adds nothing observable: a single plain
        tenant, no quotas, saturating closed loop.  The runtime then
        delegates to the un-tenanted workload runner and installs no
        hooks, so the run is bit-identical to a machine that never
        heard of tenants (the ``tenancy_equivalence`` golden gate)."""
        return (len(self.tenants) == 1
                and not self.quotas
                and self.tenants[0].kind != "antagonist"
                and self.tenants[0].think_cycles == 0.0)

    @property
    def mix(self) -> str:
        """The workload mix label (ignores the antagonist)."""
        kinds = {t.kind for t in self.tenants if t.kind != "antagonist"}
        if not kinds:
            return "antagonist"
        return kinds.pop() if len(kinds) == 1 else "mixed"

    @property
    def antagonist(self) -> bool:
        return any(t.kind == "antagonist" for t in self.tenants)

    def to_state(self) -> Dict:
        return {"tenants": [t.to_state() for t in self.tenants],
                "quotas": self.quotas,
                "scan_interval": self.scan_interval}

    @staticmethod
    def from_state(state: Dict) -> "TenancyConfig":
        return TenancyConfig(
            tenants=tuple(Tenant.from_state(t)
                          for t in state.get("tenants", [])),
            quotas=state.get("quotas", False),
            scan_interval=state.get("scan_interval", 2.0e6))


def consolidate_config(num_tenants: int, mix: str = "apache", *,
                       quotas: bool = False, antagonist: bool = False,
                       requests: int = 64, think_cycles: float = 0.0,
                       seed: int = 0) -> TenancyConfig:
    """Build the standard consolidation-sweep tenant set.

    ``num_tenants`` foreground tenants named ``t0..t{n-1}`` run the
    ``mix`` workload (``mixed`` cycles apache/predis/kvstore);
    ``antagonist=True`` appends a ``hog`` tenant on top.  Seeds are
    derived per-tenant so streams differ but runs are reproducible.
    """
    if num_tenants <= 0:
        raise InvalidArgumentError("num_tenants must be > 0")
    if mix not in CONSOLIDATE_MIXES:
        raise InvalidArgumentError(
            f"unknown mix {mix!r}; use one of {CONSOLIDATE_MIXES}")
    cycle = (("apache", "predis", "kvstore") if mix == "mixed"
             else (mix,))
    tenants = [Tenant(name=f"t{i}", kind=cycle[i % len(cycle)],
                      spec=TENANT_SPEC, requests=requests,
                      think_cycles=think_cycles, seed=seed + i)
               for i in range(num_tenants)]
    if antagonist:
        tenants.append(Tenant(name="hog", kind="antagonist",
                              spec=ANTAGONIST_SPEC,
                              requests=max(2 * requests, 8),
                              think_cycles=0.0, seed=seed + 7919))
    return TenancyConfig(tenants=tuple(tenants), quotas=quotas)
