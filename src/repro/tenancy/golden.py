"""The tenancy-equivalence golden: un-tenanted vs degenerate tenancy.

The consolidation subsystem hangs hooks on hot paths — an accountant
on the frame allocator, admission on the bandwidth pools, a throttle
check in the engine's charge path, holder tracking in the locks.  The
promise that buys them in: a machine running **one** plain tenant
with no quotas and no antagonist is *bit-identical* to a machine that
never heard of tenants.

This module pins that promise the honest way.  The golden file is
captured from the **un-tenanted** runners — ``run_apache`` /
``run_predis`` / ``run_ycsb`` called directly, no tenancy attached,
no hook installed — for the three single-tenant no-quota points of
the ``consolidate`` sweep.  ``tests/test_tenancy_golden.py`` replays
the same points through the full sweep path
(``worker.run_point`` with the tenancy payload attached, i.e. the
degenerate passive path) and byte-compares the states.

``python -m repro.tenancy.golden`` recaptures the file; do that only
when a PR intentionally changes simulated costs, and say so in the PR.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Dict, List

GOLDEN_PATH = (Path(__file__).resolve().parents[3]
               / "tests" / "golden" / "tenancy_equivalence.json")

#: Builder knobs for the pinned consolidate sweep (match the CI
#: smoke's machine shape: optane, 1 GiB device, aged image).
KNOBS = {"ops": 8, "size": 64 << 10, "media": "optane",
         "device_gib": 1, "aged": True}


def pinned_points() -> List:
    """The degenerate points: one tenant, no quotas, no antagonist —
    one per workload mix (these take the passive path)."""
    from repro.runner.sweeps import build_sweep

    sweep = build_sweep("consolidate", **KNOBS)
    return [point for point in sweep.points
            if point.x == 1 and point.series.endswith("noq+nohog")]


def golden_states() -> Dict[str, object]:
    """Run every pinned point through the *un-tenanted* runners.

    Mirrors :func:`repro.runner.worker.run_point` — same machine
    build, same naming-counter reset, same result state — except that
    no tenancy is attached and the original workload runner is called
    directly.  What this captures is, verbatim, the simulator's
    output before the tenancy subsystem existed.
    """
    from repro.config import MEDIA_PRESETS
    from repro.runner.manifest import result_state
    from repro.runner.worker import _reset_naming_counters
    from repro.system import System
    from repro.tenancy.runtime import _run_untenanted
    from repro.tenancy.spec import TenancyConfig

    out: Dict[str, object] = {}
    for point in pinned_points():
        config = TenancyConfig.from_state(point.tenancy)
        assert config.passive, "pinned points must be degenerate"
        _reset_naming_counters()
        costs = MEDIA_PRESETS[point.media]()
        system = System(costs=costs,
                        device_bytes=point.device_gib << 30,
                        aged=point.aged, scheme=point.scheme)
        run = _run_untenanted(system, config.tenants[0])
        locks = [lock.report() for lock in system.engine.locks
                 if lock.acquisitions]
        state = result_state(run, system.stats, system.ledger,
                             locks, 0.0)
        out[point.label] = {k: v for k, v in state.items()
                            if k != "wall_seconds"}
    return out


def golden_json() -> str:
    return json.dumps(golden_states(), indent=2, sort_keys=True) + "\n"


def main() -> None:
    GOLDEN_PATH.parent.mkdir(parents=True, exist_ok=True)
    GOLDEN_PATH.write_text(golden_json())
    print(f"captured {GOLDEN_PATH}")


if __name__ == "__main__":
    main()
