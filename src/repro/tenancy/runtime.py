"""The multi-tenant runtime: identity, attribution, the run driver.

:class:`TenancyRuntime` owns everything per-run: the thread → tenant
registry (exact thread-name match — ``t1.worker`` never bleeds into a
``t10`` view), the enforcement objects from
:mod:`repro.tenancy.controller`, per-tenant request-latency
histograms (``tenant.<name>.request`` in ``stats.timings``) and the
per-tenant ledger views that make mmap_sem and TLB-shootdown
contention attributable to the tenant that suffered it.

:func:`run_consolidate` is the driver the ``consolidate`` sweep and
``perf consolidate`` target call: it materializes each tenant's
workload (small Apache / P-Redis-style / kvstore closed loops, plus
the antagonist), runs the boot phase unmeasured, then measures the
steady-state request phase.

The **degenerate path**: a passive config (one plain tenant, no
quotas, no antagonist, no think time) delegates to the original
un-tenanted workload runner and installs *no* hooks — so the run is
bit-identical to a machine without the tenancy subsystem.  The
``tenancy_equivalence`` golden gate holds this equivalence forever.
"""

from __future__ import annotations

import random
from typing import Dict, List, Optional, Tuple

from repro.errors import InvalidArgumentError
from repro.obs import CostDomain, charge
from repro.obs.counters import Counter
from repro.paging.tlb import AccessPattern
from repro.tenancy import antagonist as hog
from repro.tenancy.controller import (BandwidthAdmission, CpuThrottle,
                                      QuotaController, TenantAccountant)
from repro.tenancy.spec import Tenant, TenancyConfig
from repro.vm.vma import MapFlags, Protection
from repro.workloads.apache import ApacheConfig, ServerInterface, \
    _serve_request, run_apache
from repro.workloads.common import Interface, Measurement
from repro.workloads.filegen import create_file_set, create_files
from repro.workloads.kvstore import KVConfig, PmemKVStore
from repro.workloads.predis import PRedisConfig, run_predis
from repro.workloads.ycsb import YCSBConfig, run_ycsb

# -- per-tenant workload shapes (kept small: 16 tenants must still be
# -- a sub-minute simulation) ---------------------------------------------

_APACHE_PAGE = 16 << 10
_APACHE_PAGES = 8

_PREDIS_CACHE = 4 << 20
_PREDIS_VALUE = 4 << 10
_PREDIS_INDEX = 256 << 10

_KV = dict(record_size=2048, memtable_limit=1 << 20,
           sstable_size=1 << 20, wal_size=1 << 20)
_KV_PRELOAD = 32

#: Userspace protocol handling per P-Redis GET (mirrors predis._server).
_PREDIS_PROTOCOL_CYCLES = 3000.0


def apache_config(tenant: Tenant) -> ApacheConfig:
    return ApacheConfig(page_size=_APACHE_PAGE, num_pages=_APACHE_PAGES,
                        num_workers=1, requests=tenant.requests,
                        interface=ServerInterface.MMAP)


def predis_config(tenant: Tenant) -> PRedisConfig:
    return PRedisConfig(cache_size=_PREDIS_CACHE, value_size=_PREDIS_VALUE,
                        index_size=_PREDIS_INDEX,
                        num_gets=tenant.requests,
                        window=max(1, tenant.requests // 4),
                        interface=Interface.MMAP,
                        seed=99 + tenant.seed)


def ycsb_config(tenant: Tenant) -> YCSBConfig:
    return YCSBConfig(workload="run_a", num_ops=tenant.requests,
                      preload_records=_KV_PRELOAD,
                      kv=KVConfig(interface=Interface.MMAP,
                                  seed=5 + tenant.seed, **_KV),
                      monitor_every=0, seed=11 + tenant.seed)


class TenancyRuntime:
    """Per-run tenancy state attached to one :class:`System`."""

    def __init__(self, system, config: TenancyConfig):
        self.system = system
        self.config = config
        self.tenants: Dict[str, Tenant] = {t.name: t
                                           for t in config.tenants}
        #: Exact thread-name → tenant-name registry.  Exact match is
        #: the collision guard: tenants ``t1`` and ``t10`` each list
        #: their own thread names, no prefix matching anywhere.
        self.thread_names: Dict[str, str] = {}
        self._threads: List[Tuple[object, Tenant]] = []
        self._throttles: Dict[str, CpuThrottle] = {}
        self.accountant: Optional[TenantAccountant] = None
        self.admission: Optional[BandwidthAdmission] = None
        self.controller: Optional[QuotaController] = None
        self.installed = False

    @property
    def passive(self) -> bool:
        return self.config.passive

    # -- wiring -------------------------------------------------------------
    def install(self) -> "TenancyRuntime":
        """Wire the hooks.  No-op for passive configs: the degenerate
        single-tenant run must stay bit-identical to an un-tenanted
        machine, so not one hook may be touched."""
        if self.passive or self.installed:
            return self
        system = self.system
        engine = system.engine
        engine.tenant_resolver = self.tenant_of
        specs = {t.name: t.spec for t in self.config.tenants}
        self.accountant = TenantAccountant(engine, system.stats, specs)
        system.physmem.accountant = self.accountant
        if self.config.quotas:
            self.accountant.enforcing = True
            weights = {name: spec.bandwidth_weight
                       for name, spec in specs.items()}
            self.admission = BandwidthAdmission(engine, system.stats,
                                                weights)
            for pool in system.mem.pools:
                if pool is not None:
                    pool.admission = self.admission
        self.installed = True
        return self

    def register(self, thread, tenant: Tenant) -> None:
        """Tag a SimThread with its tenant identity.

        Must run before the thread's first charge (i.e. after spawn,
        before ``system.run()``) so CPU throttling and frame
        accounting see every cycle and frame the thread produces.
        """
        thread.tenant = tenant.name
        self.thread_names[thread.name] = tenant.name
        self._threads.append((thread, tenant))
        if self.config.quotas and tenant.spec.cpu_limit < 1.0:
            throttle = self._throttles.get(tenant.name)
            if throttle is None:
                throttle = CpuThrottle(tenant.spec.cpu_limit)
                self._throttles[tenant.name] = throttle
            thread.cpu_throttle = throttle

    def tenant_of(self, thread_name: str) -> Optional[str]:
        """The resolver installed on ``engine.tenant_resolver``."""
        return self.thread_names.get(thread_name)

    # -- observation --------------------------------------------------------
    def note_request(self, tenant: Tenant, latency: float,
                     observe: bool = True) -> None:
        stats = self.system.stats
        stats.add(Counter.TENANCY_REQUESTS)
        stats.add(f"tenant.{tenant.name}.requests")
        if observe:
            stats.observe(f"tenant.{tenant.name}.request", latency)

    def think(self, tenant: Tenant, rng: random.Random):
        """Seeded closed-loop think time (generator; may yield nothing)."""
        mean = tenant.think_cycles
        if mean <= 0.0:
            return
        cycles = mean * (0.5 + rng.random())
        self.system.stats.add(Counter.TENANCY_THINK_CYCLES, cycles)
        yield charge(CostDomain.TENANCY, "think", cycles)

    # -- per-tenant books ----------------------------------------------------
    def ledger_view(self, tenant: str) -> Dict[str, float]:
        """This tenant's cycles by cost domain (its threads only)."""
        view: Dict[str, float] = {}
        for thread_name, domains in self.system.ledger.per_thread().items():
            if self.thread_names.get(thread_name) != tenant:
                continue
            for domain, cycles in domains.items():
                view[domain] = view.get(domain, 0.0) + cycles
        return view

    def ledger_views(self) -> Dict[str, Dict[str, float]]:
        return {name: self.ledger_view(name) for name in self.tenants}

    def publish(self) -> None:
        """Fold enforcement totals into the counters (end of run)."""
        stats = self.system.stats
        for name, throttle in self._throttles.items():
            if throttle.throttled_cycles:
                stats.add(Counter.TENANCY_THROTTLE_CYCLES,
                          throttle.throttled_cycles)
                stats.add(f"tenant.{name}.cpu_throttle_cycles",
                          throttle.throttled_cycles)
        if self.accountant is not None:
            for name in self.tenants:
                stats.add(f"tenant.{name}.peak_kernel_bytes",
                          float(self.accountant.peak_bytes(name)))

    def audit(self) -> None:
        """Quota-accounting invariants; raises on violation.

        Frame books must balance exactly; throttle cycles booked to
        the ledger must match the throttles' own totals (floating-
        point tolerance only, the sums run in different orders).
        """
        if self.accountant is not None:
            self.accountant.audit()
        if self._throttles:
            from repro.tenancy.controller import QuotaAccountingError
            booked = 0.0
            for domain, event, cycles in \
                    self.system.ledger.to_state()["events"]:
                if (domain == CostDomain.TENANCY.value
                        and event == "cpu-throttle"):
                    booked += cycles
            held = sum(t.throttled_cycles
                       for t in self._throttles.values())
            if abs(booked - held) > 1e-6 * max(1.0, held):
                raise QuotaAccountingError(
                    f"cpu-throttle ledger total {booked} != throttle "
                    f"books {held}")


# -- tenant workload bodies ------------------------------------------------

def _apache_setup(runtime: TenancyRuntime, tenant: Tenant) -> Dict:
    system = runtime.system
    cfg = apache_config(tenant)
    prefix = f"/ht-{tenant.name}"
    create_file_set(system, cfg.num_pages, cfg.page_size, prefix=prefix)
    process = system.new_process(name=tenant.name, aslr_seed=tenant.seed)
    paths = [f"{prefix}/f{i:06d}" for i in range(cfg.num_pages)]
    return {"process": process, "cfg": cfg, "paths": paths}


def _apache_loop(runtime: TenancyRuntime, tenant: Tenant, ctx: Dict):
    system = runtime.system
    cfg, process, paths = ctx["cfg"], ctx["process"], ctx["paths"]
    rng = random.Random(7919 * tenant.seed + 1)
    for _ in range(tenant.requests):
        path = paths[rng.randrange(len(paths))]
        t0 = system.engine.now
        yield from _serve_request(system, process, cfg, path, None)
        runtime.note_request(tenant, system.engine.now - t0)
        yield from runtime.think(tenant, rng)


def _predis_setup(runtime: TenancyRuntime, tenant: Tenant) -> Dict:
    system = runtime.system
    prefix = f"/pr-{tenant.name}"
    create_files(system, [_PREDIS_CACHE, _PREDIS_INDEX], prefix=prefix)
    process = system.new_process(name=tenant.name, aslr_seed=tenant.seed)
    return {"process": process, "prefix": prefix}


def _predis_boot(runtime: TenancyRuntime, tenant: Tenant, ctx: Dict):
    system = runtime.system
    process, prefix = ctx["process"], ctx["prefix"]
    cache = yield from system.fs.open(f"{prefix}/f000000")
    index = yield from system.fs.open(f"{prefix}/f000001")
    ctx["cache_vma"] = yield from process.mm.mmap(
        system.fs, cache.inode, 0, _PREDIS_CACHE,
        Protection.rw(), MapFlags.SHARED)
    ctx["index_vma"] = yield from process.mm.mmap(
        system.fs, index.inode, 0, _PREDIS_INDEX,
        Protection.rw(), MapFlags.SHARED)


def _predis_loop(runtime: TenancyRuntime, tenant: Tenant, ctx: Dict):
    system = runtime.system
    process = ctx["process"]
    cache_vma, index_vma = ctx["cache_vma"], ctx["index_vma"]
    slots = _PREDIS_CACHE // _PREDIS_VALUE
    index_pages = _PREDIS_INDEX // 4096
    rng = random.Random(7919 * tenant.seed + 2)
    for _ in range(tenant.requests):
        slot = rng.randrange(slots)
        bucket = rng.randrange(index_pages)
        t0 = system.engine.now
        yield from process.mm.access(
            index_vma, bucket * 4096, 64, pattern=AccessPattern.RANDOM)
        yield from process.mm.access(
            cache_vma, slot * _PREDIS_VALUE, _PREDIS_VALUE,
            pattern=AccessPattern.RANDOM, copy=True)
        yield charge(CostDomain.USERSPACE, "protocol-handling",
                     _PREDIS_PROTOCOL_CYCLES)
        runtime.note_request(tenant, system.engine.now - t0)
        yield from runtime.think(tenant, rng)


def _kv_setup(runtime: TenancyRuntime, tenant: Tenant) -> Dict:
    system = runtime.system
    process = system.new_process(name=tenant.name, aslr_seed=tenant.seed)
    store = PmemKVStore(system, process,
                        KVConfig(interface=Interface.MMAP,
                                 seed=5 + tenant.seed, **_KV))
    return {"process": process, "store": store}


def _kv_boot(runtime: TenancyRuntime, tenant: Tenant, ctx: Dict):
    store = ctx["store"]
    yield from store.start()
    for _ in range(min(_KV_PRELOAD, tenant.requests)):
        yield from store.put()


def _kv_loop(runtime: TenancyRuntime, tenant: Tenant, ctx: Dict):
    system = runtime.system
    store = ctx["store"]
    rng = random.Random(7919 * tenant.seed + 3)
    for _ in range(tenant.requests):
        roll = rng.random()
        t0 = system.engine.now
        if roll < 0.5:
            yield from store.get()
        elif roll < 0.9:
            yield from store.put()
        else:
            yield from store.read_modify_write()
        runtime.note_request(tenant, system.engine.now - t0)
        yield from runtime.think(tenant, rng)


_SETUP = {"apache": _apache_setup, "predis": _predis_setup,
          "kvstore": _kv_setup, "antagonist": hog.hog_setup}
_BOOT = {"apache": None, "predis": _predis_boot,
         "kvstore": _kv_boot, "antagonist": hog.hog_boot}
_LOOP = {"apache": _apache_loop, "predis": _predis_loop,
         "kvstore": _kv_loop, "antagonist": hog.hog_loop}

#: Approximate payload bytes per request, for RunResult throughput.
_REQUEST_BYTES = {"apache": _APACHE_PAGE, "predis": _PREDIS_VALUE,
                  "kvstore": _KV["record_size"], "antagonist": 0}


def _run_untenanted(system, tenant: Tenant):
    """The original single-workload runners (degenerate path)."""
    if tenant.kind == "apache":
        return run_apache(system, apache_config(tenant))
    if tenant.kind == "predis":
        return run_predis(system, predis_config(tenant)).run
    if tenant.kind == "kvstore":
        return run_ycsb(system, ycsb_config(tenant))
    raise InvalidArgumentError(
        f"no un-tenanted runner for kind {tenant.kind!r}")


def run_consolidate(system, config: Optional[TenancyConfig] = None):
    """Run one consolidated machine; returns a RunResult.

    Uses the tenancy runtime already attached to ``system`` (or
    attaches ``config``).  Passive configs delegate to the original
    un-tenanted runner — the golden-gated degenerate path.
    """
    runtime = system.tenancy
    if runtime is None:
        if config is None:
            raise InvalidArgumentError(
                "run_consolidate needs system.attach_tenancy(...) or an "
                "explicit config")
        runtime = system.attach_tenancy(config)
    cfg = runtime.config
    if cfg.passive:
        return _run_untenanted(system, cfg.tenants[0])
    runtime.install()
    num_cores = len(system.engine.cores)

    ctxs = {tenant.name: _SETUP[tenant.kind](runtime, tenant)
            for tenant in cfg.tenants}

    booted = False
    for i, tenant in enumerate(cfg.tenants):
        boot = _BOOT[tenant.kind]
        if boot is None:
            continue
        thread = system.spawn(boot(runtime, tenant, ctxs[tenant.name]),
                              core=i % num_cores,
                              name=f"{tenant.name}.boot",
                              process=ctxs[tenant.name]["process"])
        runtime.register(thread, tenant)
        booted = True
    if booted:
        system.run()

    measure = Measurement(system)
    measure.start()
    for i, tenant in enumerate(cfg.tenants):
        thread = system.spawn(
            _LOOP[tenant.kind](runtime, tenant, ctxs[tenant.name]),
            core=i % num_cores, name=f"{tenant.name}.worker",
            process=ctxs[tenant.name]["process"])
        runtime.register(thread, tenant)
    if cfg.quotas:
        runtime.controller = QuotaController(
            system.engine, system.stats, runtime.accountant,
            {t.name: t.spec for t in cfg.tenants},
            scan_interval=cfg.scan_interval)
        runtime.controller.start(core=system.engine.cores[-1].index)
    system.run()

    runtime.publish()
    runtime.audit()
    foreground = [t for t in cfg.tenants if t.kind != "antagonist"]
    operations = sum(t.requests for t in foreground)
    payload = sum(t.requests * _REQUEST_BYTES[t.kind] for t in foreground)
    label = (f"consolidate[{cfg.mix}x{len(foreground)},"
             f"{'quotas' if cfg.quotas else 'noq'},"
             f"{'hog' if cfg.antagonist else 'nohog'}]")
    return measure.finish(label, operations=operations,
                          bytes_processed=payload)
