"""Multi-tenant consolidation: many customers, one simulated machine.

The paper's microbenchmarks run one workload at a time; real DAX
deployments consolidate many tenants onto one box, where the
interesting failure mode is *interference* — shared device bandwidth,
mmap_sem writers, TLB-shootdown IPIs landing on co-resident cores.
This package runs N tenant workloads concurrently under cgroup-style
quotas and threads tenant identity through the ledger and counters so
every stolen cycle is attributable.

Entry points: build a :class:`TenancyConfig` (usually via
:func:`consolidate_config`), ``system.attach_tenancy(config)``, then
:func:`run_consolidate`.  ``python -m repro sweep consolidate`` and
``python -m repro perf consolidate`` drive the standard matrix.
"""

from repro.tenancy.controller import (BandwidthAdmission, CpuThrottle,
                                      QuotaAccountingError,
                                      QuotaController, QuotaError,
                                      TenantAccountant)
from repro.tenancy.runtime import TenancyRuntime, run_consolidate
from repro.tenancy.spec import (ANTAGONIST_SPEC, CONSOLIDATE_MIXES,
                                TENANT_KINDS, TENANT_SPEC, TenancyConfig,
                                Tenant, TenantSpec, consolidate_config)

__all__ = [
    "ANTAGONIST_SPEC",
    "BandwidthAdmission",
    "CONSOLIDATE_MIXES",
    "CpuThrottle",
    "QuotaAccountingError",
    "QuotaController",
    "QuotaError",
    "TENANT_KINDS",
    "TENANT_SPEC",
    "TenancyConfig",
    "Tenant",
    "TenantAccountant",
    "TenancyRuntime",
    "TenantSpec",
    "consolidate_config",
    "run_consolidate",
]
